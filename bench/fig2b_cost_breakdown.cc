// Figure 2(b): computation/communication/other breakdown for dimension-
// based (D) vs vector-based (V) partitioning under blocking (B) and
// non-blocking (NB) communication, Sift1M on four workers.
//
// Expected shape: V moves ~66% less communication time than D; NB modes
// overlap transfers with compute and shrink the comm share.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void CostBreakdown(benchmark::State& state, Mode mode, CommMode comm) {
  const BenchWorld& world = GetWorld("sift1m");
  HarmonyOptions opts = MakeOptions(world, mode, 4);
  opts.net.mode = comm;
  // Keep pruning off: Figure 2(b) isolates the partitioning cost structure.
  opts.enable_pruning = false;
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), /*k=*/10, /*nprobe=*/8,
                        /*with_recall=*/false);
  }
  const ClusterBreakdown& b = outcome.stats.breakdown;
  state.counters["comp_ms"] = b.compute_seconds * 1e3;
  state.counters["comm_ms"] = b.comm_seconds * 1e3;
  state.counters["other_ms"] = b.other_seconds * 1e3;
  state.counters["makespan_ms"] = b.makespan_seconds * 1e3;
  state.counters["total_MB"] = static_cast<double>(b.total_bytes) / 1e6;
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  using harmony::CommMode;
  using harmony::Mode;
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  const struct {
    const char* name;
    Mode mode;
    CommMode comm;
  } kConfigs[] = {
      {"fig2b/D-B", Mode::kHarmonyDimension, CommMode::kBlocking},
      {"fig2b/D-NB", Mode::kHarmonyDimension, CommMode::kNonBlocking},
      {"fig2b/V-B", Mode::kHarmonyVector, CommMode::kBlocking},
      {"fig2b/V-NB", Mode::kHarmonyVector, CommMode::kNonBlocking},
  };
  for (const auto& config : kConfigs) {
    benchmark::RegisterBenchmark(config.name, harmony::bench::CostBreakdown,
                                 config.mode, config.comm)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
