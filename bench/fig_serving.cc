// Serving saturation curves: offered load vs tail latency under SLO
// admission control (serve/).
//
// For each load point a deterministic multi-tenant Poisson/burst trace is
// generated at a multiple of the frontend's estimated capacity
// (executors / est_query_seconds), scheduled once (decisions are a pure
// function of trace + policy), and replayed on both backends:
//  * sim      — virtual-clock service times, fully reproducible;
//  * threaded — real threads, wall-clock service times anchored to the
//               same dispatch schedule (threaded points use fewer queries
//               and loads to keep the bench quick).
// The est_query_seconds estimate is calibrated from one pinned warm-up
// batch on the virtual clock, so admission control is honest about the
// simulated cost model rather than hand-tuned.
//
// Emits BENCH_serving.json (tools/run_benches.sh refreshes it): per point
// p50/p95/p99, goodput, SLO attainment, shed/timeout rates, Jain fairness.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/serving.h"

namespace harmony {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  std::string backend;
  double load_factor = 0.0;
  double offered_qps = 0.0;
  size_t num_queries = 0;
  size_t num_tenants = 0;
  double slo_seconds = 0.0;
  size_t groups = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double goodput_qps = 0.0;
  double slo_attainment = 0.0;
  double shed_rate = 0.0;
  double timeout_rate = 0.0;
  double jain = 0.0;
  size_t degraded = 0;
  uint64_t schedule_fingerprint = 0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

/// One calibrated serving policy per engine: est_query_seconds comes from a
/// warm-up group on the virtual clock (deterministic), so the admission
/// estimates track the simulated cost model.
ServePolicy CalibratedPolicy(const BenchWorld& world, HarmonyEngine* engine,
                             size_t k, size_t nprobe) {
  const size_t probe = std::min<size_t>(kMaxQueryGroup,
                                        world.data.workload.queries.size());
  DatasetView sample(world.data.workload.queries.Row(0), probe,
                     world.data.workload.queries.dim());
  auto warm = engine->SearchBatchPinned(sample, k, nprobe);
  HARMONY_CHECK_MSG(warm.ok(), warm.status().ToString());
  const double group_seconds = warm.value().stats.makespan_seconds;

  ServePolicy policy;
  policy.est_query_seconds = group_seconds / static_cast<double>(probe);
  policy.est_dispatch_seconds = 0.1 * group_seconds;
  policy.max_linger_seconds = 2.0 * policy.est_query_seconds;
  policy.executors = 2;
  policy.max_pending_groups = 8;
  policy.mailbox_capacity = 64;
  return policy;
}

void ServingPoint(benchmark::State& state, const std::string& dataset,
                  bool threaded, double load_factor, size_t num_queries) {
  constexpr size_t kMachines = 4;
  constexpr size_t kK = 10;
  constexpr size_t kNprobe = 8;
  const BenchWorld& world = GetWorld(dataset, /*zipf=*/0.0);
  HarmonyEngine* engine = GetEngine(world, Mode::kHarmony, kMachines);

  ServingOptions sopts;
  sopts.k = kK;
  sopts.nprobe = kNprobe;
  sopts.degraded_nprobe = 2;
  sopts.policy = CalibratedPolicy(world, engine, kK, kNprobe);
  const double capacity_qps = static_cast<double>(sopts.policy.executors) /
                              sopts.policy.est_query_seconds;

  ArrivalSpec spec;
  spec.num_queries = num_queries;
  spec.num_tenants = 6;
  spec.offered_qps = load_factor * capacity_qps;
  spec.zipf_theta = 0.9;
  spec.burst_factor = 1.5;
  spec.mean_burst = 6.0;
  // SLO: a full group's estimated service plus generous queueing headroom.
  spec.slo_seconds = 8.0 * sopts.policy.est_query_seconds *
                     static_cast<double>(sopts.policy.max_group);
  spec.seed = 42;
  auto trace = GenerateArrivalTrace(world.data.mixture, spec);
  HARMONY_CHECK_MSG(trace.ok(), trace.status().ToString());

  ServingFrontend frontend(engine, sopts);
  Result<ServingReport> report = Status::OK();
  for (auto _ : state) {
    report = threaded ? frontend.RunThreaded(trace.value())
                      : frontend.RunSimulated(trace.value());
  }
  HARMONY_CHECK_MSG(report.ok(), report.status().ToString());
  const ServingReport& r = report.value();

  Row row;
  row.dataset = dataset;
  row.backend = threaded ? "threaded" : "sim";
  row.load_factor = load_factor;
  row.offered_qps = spec.offered_qps;
  row.num_queries = spec.num_queries;
  row.num_tenants = spec.num_tenants;
  row.slo_seconds = spec.slo_seconds;
  row.groups = r.schedule.groups.size();
  row.p50 = r.stats.latency_p50_seconds;
  row.p95 = r.stats.latency_p95_seconds;
  row.p99 = r.stats.latency_p99_seconds;
  row.goodput_qps = r.stats.goodput_qps;
  row.slo_attainment = r.stats.slo_attainment;
  row.shed_rate = r.stats.shed_rate;
  row.timeout_rate = r.stats.timeout_rate;
  row.jain = r.stats.jain_fairness;
  row.degraded = r.stats.degraded;
  row.schedule_fingerprint = r.schedule.Fingerprint();
  Rows().push_back(row);

  state.counters["offered_qps"] = row.offered_qps;
  state.counters["goodput_qps"] = row.goodput_qps;
  state.counters["p99_ms"] = row.p99 * 1e3;
  state.counters["slo_attainment"] = row.slo_attainment;
  state.counters["shed_rate"] = row.shed_rate;
}

void Register(const std::string& dataset, bool threaded, double load,
              size_t num_queries) {
  std::string name = "fig_serving/" + dataset + "/" +
                     (threaded ? "threaded" : "sim") +
                     "/load:" + std::to_string(load);
  benchmark::RegisterBenchmark(name.c_str(), ServingPoint, dataset, threaded,
                               load, num_queries)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  const std::string dataset = "sift1m";
  // Simulated saturation sweep: sub-critical through heavy overload.
  for (const double load : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    Register(dataset, /*threaded=*/false, load, /*num_queries=*/512);
  }
  // Threaded spot checks (real threads are slower; fewer queries/points).
  for (const double load : {0.5, 2.0}) {
    Register(dataset, /*threaded=*/true, load, /*num_queries=*/96);
  }
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_serving\",\n"
               "  \"note\": \"saturation curves under SLO admission control; "
               "sim latencies are virtual-clock (deterministic), threaded "
               "are wall-clock on the same schedule; load_factor is offered "
               "rate over estimated capacity\",\n"
               "  \"results\": [");
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"backend\": \"%s\", "
        "\"load_factor\": %.2f, \"offered_qps\": %.1f, "
        "\"num_queries\": %zu, \"num_tenants\": %zu, "
        "\"slo_seconds\": %.6f, \"groups\": %zu, "
        "\"p50_seconds\": %.6f, \"p95_seconds\": %.6f, "
        "\"p99_seconds\": %.6f, \"goodput_qps\": %.1f, "
        "\"slo_attainment\": %.4f, \"shed_rate\": %.4f, "
        "\"timeout_rate\": %.4f, \"jain_fairness\": %.4f, "
        "\"degraded\": %zu, \"schedule_fingerprint\": \"%016llx\"}",
        first ? "" : ",", r.dataset.c_str(), r.backend.c_str(), r.load_factor,
        r.offered_qps, r.num_queries, r.num_tenants, r.slo_seconds, r.groups,
        r.p50, r.p95, r.p99, r.goodput_qps, r.slo_attainment, r.shed_rate,
        r.timeout_rate, r.jain, r.degraded,
        static_cast<unsigned long long>(r.schedule_fingerprint));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_serving.json");
  return 0;
}
