// Micro-benchmarks of the hot kernels (real measured wall time, classic
// google-benchmark loops): distance kernels, partial-slice kernels, top-K
// heap maintenance, k-means assignment. These are the building blocks whose
// cost the simulator charges; the measured per-component throughput also
// justifies the MachineParams::ops_per_sec calibration.

// The batched-vs-per-row section at the bottom additionally emits
// machine-readable curves to BENCH_kernels.json (docs/kernels.md): per
// (rows, width) grid point, the per-row and batched ns/row and their
// ratio, for both metrics, under the resolved kernel table.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "index/distance.h"
#include "index/kmeans.h"
#include "index/scan_kernel.h"
#include "util/rng.h"
#include "util/topk.h"
#include "workload/synthetic.h"

namespace harmony {
namespace {

std::vector<float> RandomVec(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_L2SqDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 1), b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SqDistance(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2SqDistance)->Arg(100)->Arg(128)->Arg(420)->Arg(1024)->Arg(2709);

void BM_InnerProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 3), b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_InnerProduct)->Arg(128)->Arg(420)->Arg(1024);

void BM_PartialL2Slice(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(width, 5), b = RandomVec(width, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialL2Sq(a.data(), b.data(), width));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_PartialL2Slice)->Arg(32)->Arg(105)->Arg(256)->Arg(678);

void BM_TopKHeapPush(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> dists(4096);
  for (float& d : dists) d = rng.NextFloat();
  for (auto _ : state) {
    TopKHeap heap(k);
    for (size_t i = 0; i < dists.size(); ++i) {
      heap.Push(static_cast<int64_t>(i), dists[i]);
    }
    benchmark::DoNotOptimize(heap.threshold());
  }
  state.SetItemsProcessed(state.iterations() * dists.size());
}
BENCHMARK(BM_TopKHeapPush)->Arg(10)->Arg(100);

void BM_NearestCentroid(benchmark::State& state) {
  const size_t nlist = static_cast<size_t>(state.range(0));
  GaussianMixtureSpec spec;
  spec.num_vectors = nlist;
  spec.dim = 128;
  spec.num_components = nlist;
  auto mix = GenerateGaussianMixture(spec);
  const auto q = RandomVec(128, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NearestCentroid(mix.value().vectors.View(), q.data()));
  }
  state.SetItemsProcessed(state.iterations() * nlist * 128);
}
BENCHMARK(BM_NearestCentroid)->Arg(64)->Arg(256)->Arg(1024);

// --- Batched block-scan kernels vs the per-row loop ----------------------
//
// The per-row baseline is exactly what the engines' historical candidate
// loop did: one table row-kernel call per candidate. The batched side is
// one l2_batch/ip_batch call streaming the same contiguous rows.

void BM_BlockScanPerRow(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  const ScanKernelTable& kt = ScanKernels();
  const auto q = RandomVec(width, 21);
  const auto data = RandomVec(rows * width, 22);
  std::vector<float> accum(rows, 0.0f);
  for (auto _ : state) {
    for (size_t i = 0; i < rows; ++i) {
      accum[i] += kt.l2_row(q.data(), data.data() + i * width, width);
    }
    benchmark::DoNotOptimize(accum.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * width);
}
BENCHMARK(BM_BlockScanPerRow)
    ->Args({64, 32})->Args({256, 32})->Args({256, 128})->Args({1024, 256});

void BM_BlockScanBatched(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  const ScanKernelTable& kt = ScanKernels();
  const auto q = RandomVec(width, 21);
  const auto data = RandomVec(rows * width, 22);
  std::vector<float> accum(rows, 0.0f);
  for (auto _ : state) {
    kt.l2_batch(q.data(), data.data(), rows, width, accum.data());
    benchmark::DoNotOptimize(accum.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * width);
}
BENCHMARK(BM_BlockScanBatched)
    ->Args({64, 32})->Args({256, 32})->Args({256, 128})->Args({1024, 256});

}  // namespace

// Measurement helpers behind BENCH_kernels.json. The two sides of each
// grid point are timed in interleaved reps (A,B,A,B,...) with the minimum
// kept per side, so background load perturbs both curves alike instead of
// biasing whichever side happened to run during a busy slice.
template <typename Fn>
size_t CalibrateIters(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    if (ns >= 1e6 || iters >= (size_t{1} << 24)) return iters;
    iters *= 4;
  }
}

template <typename Fn>
double TimeOnceNs(const Fn& fn, size_t iters) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (size_t i = 0; i < iters; ++i) fn();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
          .count());
  return ns / static_cast<double>(iters);
}

template <typename FnA, typename FnB>
std::pair<double, double> MeasureInterleavedNs(const FnA& a, const FnB& b) {
  const size_t ia = CalibrateIters(a);
  const size_t ib = CalibrateIters(b);
  double best_a = std::numeric_limits<double>::max();
  double best_b = std::numeric_limits<double>::max();
  // Min over many interleaved reps: on a 1-vCPU VM, individual reps are
  // regularly inflated by host steal time; the minimum of each side is the
  // stable signal.
  for (int rep = 0; rep < 21; ++rep) {
    best_a = std::min(best_a, TimeOnceNs(a, ia));
    best_b = std::min(best_b, TimeOnceNs(b, ib));
  }
  return {best_a, best_b};
}

/// Fills `storage` and returns a pointer to `n` random floats at a fixed
/// 4KiB page phase (`phase` cache lines past a page boundary). Without
/// this, malloc luck decides whether the query buffer 4K-aliases the row
/// stream, which swings the load-bound per-row baseline by ~25% across
/// processes and makes the recorded speedups irreproducible.
float* AlignedRandomVec(size_t n, uint64_t seed, size_t phase,
                        std::vector<float>* storage) {
  constexpr size_t kPage = 4096 / sizeof(float);
  storage->assign(n + 2 * kPage, 0.0f);
  const auto base = reinterpret_cast<uintptr_t>(storage->data());
  const size_t align =
      (kPage - (base / sizeof(float)) % kPage) % kPage + phase * 16;
  float* out = storage->data() + align;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

void WriteKernelCurves(const char* path) {
  const ScanKernelTable& kt = ScanKernels();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"kernel_table\": \"%s\",\n  \"results\": [", kt.name);
  const size_t rows_grid[] = {4, 16, 64, 256, 1024};
  const size_t width_grid[] = {16, 32, 64, 128, 256};
  bool first = true;
  for (const bool ip : {false, true}) {
    for (const size_t rows : rows_grid) {
      for (const size_t width : width_grid) {
        std::vector<float> q_store, data_store;
        const float* q = AlignedRandomVec(width, 31, /*phase=*/1, &q_store);
        const float* data =
            AlignedRandomVec(rows * width, 32, /*phase=*/8, &data_store);
        std::vector<float> accum(rows, 0.0f);
        const auto [per_row_ns, batched_ns] = MeasureInterleavedNs(
            [&] {
              for (size_t i = 0; i < rows; ++i) {
                accum[i] += ip ? kt.ip_row(q, data + i * width, width)
                               : kt.l2_row(q, data + i * width, width);
              }
              benchmark::DoNotOptimize(accum.data());
            },
            [&] {
              if (ip) {
                kt.ip_batch(q, data, rows, width, accum.data());
              } else {
                kt.l2_batch(q, data, rows, width, accum.data());
              }
              benchmark::DoNotOptimize(accum.data());
            });
        std::fprintf(f,
                     "%s\n    {\"metric\": \"%s\", \"rows\": %zu, "
                     "\"width\": %zu, \"per_row_ns\": %.1f, "
                     "\"batched_ns\": %.1f, \"speedup\": %.3f}",
                     first ? "" : ",", ip ? "ip" : "l2", rows, width,
                     per_row_ns, batched_ns, per_row_ns / batched_ns);
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (kernel table: %s)\n", path, kt.name);
}

}  // namespace harmony

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::WriteKernelCurves("BENCH_kernels.json");
  return 0;
}
