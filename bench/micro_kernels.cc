// Micro-benchmarks of the hot kernels (real measured wall time, classic
// google-benchmark loops): distance kernels, partial-slice kernels, top-K
// heap maintenance, k-means assignment. These are the building blocks whose
// cost the simulator charges; the measured per-component throughput also
// justifies the MachineParams::ops_per_sec calibration.

#include <benchmark/benchmark.h>

#include "index/distance.h"
#include "index/kmeans.h"
#include "util/rng.h"
#include "util/topk.h"
#include "workload/synthetic.h"

namespace harmony {
namespace {

std::vector<float> RandomVec(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_L2SqDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 1), b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SqDistance(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2SqDistance)->Arg(100)->Arg(128)->Arg(420)->Arg(1024)->Arg(2709);

void BM_InnerProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 3), b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_InnerProduct)->Arg(128)->Arg(420)->Arg(1024);

void BM_PartialL2Slice(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(width, 5), b = RandomVec(width, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialL2Sq(a.data(), b.data(), width));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_PartialL2Slice)->Arg(32)->Arg(105)->Arg(256)->Arg(678);

void BM_TopKHeapPush(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> dists(4096);
  for (float& d : dists) d = rng.NextFloat();
  for (auto _ : state) {
    TopKHeap heap(k);
    for (size_t i = 0; i < dists.size(); ++i) {
      heap.Push(static_cast<int64_t>(i), dists[i]);
    }
    benchmark::DoNotOptimize(heap.threshold());
  }
  state.SetItemsProcessed(state.iterations() * dists.size());
}
BENCHMARK(BM_TopKHeapPush)->Arg(10)->Arg(100);

void BM_NearestCentroid(benchmark::State& state) {
  const size_t nlist = static_cast<size_t>(state.range(0));
  GaussianMixtureSpec spec;
  spec.num_vectors = nlist;
  spec.dim = 128;
  spec.num_components = nlist;
  auto mix = GenerateGaussianMixture(spec);
  const auto q = RandomVec(128, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NearestCentroid(mix.value().vectors.View(), q.data()));
  }
  state.SetItemsProcessed(state.iterations() * nlist * 128);
}
BENCHMARK(BM_NearestCentroid)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace harmony

BENCHMARK_MAIN();
