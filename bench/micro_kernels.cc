// Micro-benchmarks of the hot kernels (real measured wall time, classic
// google-benchmark loops): distance kernels, partial-slice kernels, top-K
// heap maintenance, k-means assignment. These are the building blocks whose
// cost the simulator charges; the measured per-component throughput also
// justifies the MachineParams::ops_per_sec calibration.

// The batched-vs-per-row section at the bottom additionally emits
// machine-readable curves to BENCH_kernels.json (docs/kernels.md): per
// (rows, width) grid point, the per-row and batched ns/row and their
// ratio, for both metrics, under the resolved kernel table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "index/distance.h"
#include "index/kernel_tune.h"
#include "index/kmeans.h"
#include "index/scan_kernel.h"
#include "util/rng.h"
#include "util/topk.h"
#include "workload/synthetic.h"

namespace harmony {
namespace {

std::vector<float> RandomVec(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_L2SqDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 1), b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SqDistance(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2SqDistance)->Arg(100)->Arg(128)->Arg(420)->Arg(1024)->Arg(2709);

void BM_InnerProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, 3), b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_InnerProduct)->Arg(128)->Arg(420)->Arg(1024);

void BM_PartialL2Slice(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(width, 5), b = RandomVec(width, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialL2Sq(a.data(), b.data(), width));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_PartialL2Slice)->Arg(32)->Arg(105)->Arg(256)->Arg(678);

void BM_TopKHeapPush(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> dists(4096);
  for (float& d : dists) d = rng.NextFloat();
  for (auto _ : state) {
    TopKHeap heap(k);
    for (size_t i = 0; i < dists.size(); ++i) {
      heap.Push(static_cast<int64_t>(i), dists[i]);
    }
    benchmark::DoNotOptimize(heap.threshold());
  }
  state.SetItemsProcessed(state.iterations() * dists.size());
}
BENCHMARK(BM_TopKHeapPush)->Arg(10)->Arg(100);

void BM_NearestCentroid(benchmark::State& state) {
  const size_t nlist = static_cast<size_t>(state.range(0));
  GaussianMixtureSpec spec;
  spec.num_vectors = nlist;
  spec.dim = 128;
  spec.num_components = nlist;
  auto mix = GenerateGaussianMixture(spec);
  const auto q = RandomVec(128, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NearestCentroid(mix.value().vectors.View(), q.data()));
  }
  state.SetItemsProcessed(state.iterations() * nlist * 128);
}
BENCHMARK(BM_NearestCentroid)->Arg(64)->Arg(256)->Arg(1024);

// --- Batched block-scan kernels vs the per-row loop ----------------------
//
// The per-row baseline is exactly what the engines' historical candidate
// loop did: one table row-kernel call per candidate. The batched side is
// one l2_batch/ip_batch call streaming the same contiguous rows.

void BM_BlockScanPerRow(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  const ScanKernelTable& kt = ScanKernels();
  const auto q = RandomVec(width, 21);
  const auto data = RandomVec(rows * width, 22);
  std::vector<float> accum(rows, 0.0f);
  for (auto _ : state) {
    for (size_t i = 0; i < rows; ++i) {
      accum[i] += kt.l2_row(q.data(), data.data() + i * width, width);
    }
    benchmark::DoNotOptimize(accum.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * width);
}
BENCHMARK(BM_BlockScanPerRow)
    ->Args({64, 32})->Args({256, 32})->Args({256, 128})->Args({1024, 256});

void BM_BlockScanBatched(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  const ScanKernelTable& kt = ScanKernels();
  const auto q = RandomVec(width, 21);
  const auto data = RandomVec(rows * width, 22);
  std::vector<float> accum(rows, 0.0f);
  for (auto _ : state) {
    kt.l2_batch(q.data(), data.data(), rows, width, accum.data());
    benchmark::DoNotOptimize(accum.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * width);
}
BENCHMARK(BM_BlockScanBatched)
    ->Args({64, 32})->Args({256, 32})->Args({256, 128})->Args({1024, 256});

}  // namespace

// Measurement helpers behind BENCH_kernels.json. The two sides of each
// grid point are timed in interleaved reps (A,B,A,B,...) with the minimum
// kept per side, so background load perturbs both curves alike instead of
// biasing whichever side happened to run during a busy slice.
template <typename Fn>
size_t CalibrateIters(const Fn& fn, double sample_ns = 1e6) {
  using clock = std::chrono::steady_clock;
  size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    if (ns >= sample_ns || iters >= (size_t{1} << 24)) return iters;
    iters *= 4;
  }
}

template <typename Fn>
double TimeOnceNs(const Fn& fn, size_t iters) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (size_t i = 0; i < iters; ++i) fn();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
          .count());
  return ns / static_cast<double>(iters);
}

struct InterleavedTimes {
  double a_ns = 0.0;
  double b_ns = 0.0;
  double ratio = 0.0;  // robust a/b estimate from paired samples
};

template <typename FnA, typename FnB>
InterleavedTimes MeasureInterleavedNs(const FnA& a, const FnB& b,
                                      int reps = 21, double sample_ns = 1e6) {
  const size_t ia = CalibrateIters(a, sample_ns);
  const size_t ib = CalibrateIters(b, sample_ns);
  InterleavedTimes out;
  double best_a = std::numeric_limits<double>::max();
  double best_b = std::numeric_limits<double>::max();
  // Min over many interleaved reps: on a 1-vCPU VM, individual reps are
  // regularly inflated by host steal time; the minimum of each side is the
  // stable signal. Callers raise `reps` for the tiniest grid points, whose
  // per-call times sit near the timer floor.
  //
  // The ratio is estimated separately as the median of *paired* samples
  // (a_i / b_i with the two sides timed back to back). Host frequency
  // states drift on multi-millisecond scales, so two independent min
  // estimates can each be clean yet come from different clock regimes;
  // pairing cancels the drift because adjacent samples share it.
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const double na = TimeOnceNs(a, ia);
    const double nb = TimeOnceNs(b, ib);
    best_a = std::min(best_a, na);
    best_b = std::min(best_b, nb);
    ratios.push_back(na / nb);
  }
  std::sort(ratios.begin(), ratios.end());
  out.a_ns = best_a;
  out.b_ns = best_b;
  out.ratio = ratios[ratios.size() / 2];
  return out;
}

/// Fills `storage` and returns a pointer to `n` random floats at a fixed
/// 4KiB page phase (`phase` cache lines past a page boundary). Without
/// this, malloc luck decides whether the query buffer 4K-aliases the row
/// stream, which swings the load-bound per-row baseline by ~25% across
/// processes and makes the recorded speedups irreproducible.
float* AlignedRandomVec(size_t n, uint64_t seed, size_t phase,
                        std::vector<float>* storage) {
  constexpr size_t kPage = 4096 / sizeof(float);
  storage->assign(n + 2 * kPage, 0.0f);
  const auto base = reinterpret_cast<uintptr_t>(storage->data());
  const size_t align =
      (kPage - (base / sizeof(float)) % kPage) % kPage + phase * 16;
  float* out = storage->data() + align;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

void WriteKernelCurves(const char* path) {
  // Best available tier + the startup autotuner's tile picks — exactly the
  // dispatch a default engine run records in its plan. The batched side
  // runs the shaped entries under the tuned shape; counts below the tuned
  // row block take the shaped kernels' per-row dispatch guard, which is
  // what keeps small batches at per-row cost (no cell below ~1.0x).
  const KernelTuneTable& tune = ResolveKernelTune(KernelTier::kAuto);
  const ScanKernelTable& kt = ScanKernelsFor(tune.tier);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"kernel_table\": \"%s\",\n  \"tier\": \"%s\",\n"
               "  \"tuned\": \"%s\",\n"
               "  \"note\": \"speedup = median of paired interleaved "
               "samples; rows below the tuned row block dispatch to the "
               "identical per-row kernel, so those cells measure 1.0 "
               "within host noise\",\n  \"results\": [",
               kt.name, KernelTierName(tune.tier), tune.ToString().c_str());
  const size_t rows_grid[] = {4, 16, 64, 256, 1024};
  const size_t width_grid[] = {16, 32, 64, 128, 256};
  bool first = true;
  for (const bool ip : {false, true}) {
    const Metric metric = ip ? Metric::kInnerProduct : Metric::kL2;
    for (const size_t rows : rows_grid) {
      for (const size_t width : width_grid) {
        const KernelShape shape = tune.shape(metric, width);
        std::vector<float> q_store, data_store;
        const float* q = AlignedRandomVec(width, 31, /*phase=*/1, &q_store);
        const float* data =
            AlignedRandomVec(rows * width, 32, /*phase=*/8, &data_store);
        std::vector<float> accum(rows, 0.0f);
        const InterleavedTimes t = MeasureInterleavedNs(
            [&] {
              for (size_t i = 0; i < rows; ++i) {
                accum[i] += ip ? kt.ip_row(q, data + i * width, width)
                               : kt.l2_row(q, data + i * width, width);
              }
              benchmark::DoNotOptimize(accum.data());
            },
            [&] {
              if (ip) {
                kt.ip_batch_shaped(q, data, rows, width, accum.data(), shape);
              } else {
                kt.l2_batch_shaped(q, data, rows, width, accum.data(), shape);
              }
              benchmark::DoNotOptimize(accum.data());
            },
            /*reps=*/rows <= 16 ? 61 : 21,
            // Longer samples for the tiniest grid points: their per-call
            // times sit near the timer floor, and the paired-ratio noise
            // shrinks with sample length.
            /*sample_ns=*/rows <= 16 ? 4e6 : 1e6);
        std::fprintf(f,
                     "%s\n    {\"metric\": \"%s\", \"rows\": %zu, "
                     "\"width\": %zu, \"per_row_ns\": %.1f, "
                     "\"batched_ns\": %.1f, \"speedup\": %.3f}",
                     first ? "" : ",", ip ? "ip" : "l2", rows, width,
                     t.a_ns, t.b_ns, t.ratio);
        first = false;
      }
    }
  }
  // Group kernels vs nq independent shaped batch calls: the win is the
  // shared row stream — each tile's rows are loaded once for the whole
  // query tile instead of once per query.
  std::fprintf(f, "\n  ],\n  \"group_results\": [");
  first = true;
  for (const bool ip : {false, true}) {
    const Metric metric = ip ? Metric::kInnerProduct : Metric::kL2;
    for (const size_t nq : {size_t{2}, size_t{4}, size_t{8}}) {
      for (const size_t rows : {size_t{64}, size_t{256}}) {
        for (const size_t width : {size_t{32}, size_t{128}}) {
          const KernelShape shape = tune.shape(metric, width);
          std::vector<std::vector<float>> q_stores(nq);
          std::vector<const float*> qs(nq);
          for (size_t i = 0; i < nq; ++i) {
            qs[i] = AlignedRandomVec(width, 41 + i, /*phase=*/1 + i,
                                     &q_stores[i]);
          }
          std::vector<float> data_store;
          const float* data =
              AlignedRandomVec(rows * width, 52, /*phase=*/8, &data_store);
          std::vector<float> accum(nq * rows, 0.0f);
          std::vector<float*> accums(nq);
          for (size_t i = 0; i < nq; ++i) accums[i] = accum.data() + i * rows;
          const InterleavedTimes t = MeasureInterleavedNs(
              [&] {
                for (size_t i = 0; i < nq; ++i) {
                  if (ip) {
                    kt.ip_batch_shaped(qs[i], data, rows, width, accums[i],
                                       shape);
                  } else {
                    kt.l2_batch_shaped(qs[i], data, rows, width, accums[i],
                                       shape);
                  }
                }
                benchmark::DoNotOptimize(accum.data());
              },
              [&] {
                if (ip) {
                  kt.ip_group_shaped(qs.data(), nq, data, rows, width,
                                     accums.data(), shape);
                } else {
                  kt.l2_group_shaped(qs.data(), nq, data, rows, width,
                                     accums.data(), shape);
                }
                benchmark::DoNotOptimize(accum.data());
              });
          std::fprintf(f,
                       "%s\n    {\"metric\": \"%s\", \"nq\": %zu, "
                       "\"rows\": %zu, \"width\": %zu, \"batch_ns\": %.1f, "
                       "\"group_ns\": %.1f, \"speedup\": %.3f}",
                       first ? "" : ",", ip ? "ip" : "l2", nq, rows, width,
                       t.a_ns, t.b_ns, t.ratio);
          first = false;
        }
      }
    }
  }
  // ADC code-stream kernel vs the scalar per-row table walk (the reference
  // PQ loop).
  std::fprintf(f, "\n  ],\n  \"adc_results\": [");
  first = true;
  const size_t ksub = 256;
  for (const size_t m : {size_t{8}, size_t{16}}) {
    for (const size_t count : {size_t{16}, size_t{256}, size_t{1024}}) {
      std::vector<float> lut_store;
      const float* lut =
          AlignedRandomVec(m * ksub, 61, /*phase=*/1, &lut_store);
      Rng rng(62);
      std::vector<uint8_t> codes(count * m);
      for (uint8_t& c : codes) {
        c = static_cast<uint8_t>(rng.NextU64() & 0xFF);
      }
      std::vector<float> out(count, 0.0f);
      const InterleavedTimes t = MeasureInterleavedNs(
          [&] {
            for (size_t r = 0; r < count; ++r) {
              float adc = 0.0f;
              const uint8_t* code = codes.data() + r * m;
              for (size_t s = 0; s < m; ++s) adc += lut[s * ksub + code[s]];
              out[r] = adc;
            }
            benchmark::DoNotOptimize(out.data());
          },
          [&] {
            kt.adc_batch(lut, ksub, codes.data(), m, count, out.data());
            benchmark::DoNotOptimize(out.data());
          });
      std::fprintf(f,
                   "%s\n    {\"code_size\": %zu, \"count\": %zu, "
                   "\"scalar_ns\": %.1f, \"batched_ns\": %.1f, "
                   "\"speedup\": %.3f}",
                   first ? "" : ",", m, count, t.a_ns, t.b_ns, t.ratio);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (tier %s, tuned %s)\n", path,
               KernelTierName(tune.tier), tune.ToString().c_str());
}

}  // namespace harmony

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::WriteKernelCurves("BENCH_kernels.json");
  return 0;
}
