// Figure 2(a): pruning ratio by dimension quarter (motivation experiment).
//
// Four machines each hold one quarter of the dimensions (pure dimension
// partition, fixed block order). Expected shape: ~0% pruned at the first
// quarter, ~50% by the second, >80% at the third and fourth.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void PruningMotivation(benchmark::State& state, const std::string& dataset) {
  const BenchWorld& world = GetWorld(dataset);
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmonyDimension, 4);
  // Fixed physical block order so slice position == dimension quarter.
  opts.enable_pipeline = false;
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), /*k=*/10, /*nprobe=*/4,
                        /*with_recall=*/false);
  }
  const PruneStats& prune = outcome.stats.prune;
  state.counters["slice1_pruned_pct"] = 100.0 * prune.PruneRatioAt(0);
  state.counters["slice2_pruned_pct"] = 100.0 * prune.PruneRatioAt(1);
  state.counters["slice3_pruned_pct"] = 100.0 * prune.PruneRatioAt(2);
  state.counters["slice4_pruned_pct"] = 100.0 * prune.PruneRatioAt(3);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  benchmark::RegisterBenchmark("fig2a/sift1m/4dim_slices",
                               harmony::bench::PruningMotivation, "sift1m")
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
