// Figure 8: time breakdown (communication / computation / other) of the
// three Harmony strategies across the eight small datasets, four workers.
//
// Expected shape: Harmony-vector has near-zero communication;
// Harmony-dimension has the most (extra dimension slicing); Harmony sits in
// between and has the lowest computation thanks to pruning. Communication
// matters relatively more on low-dimensional datasets (e.g. Sift1M at 128
// dims) than on high-dimensional ones (Msong at 420 dims).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void TimeBreakdown(benchmark::State& state, const std::string& dataset,
                   Mode mode) {
  const BenchWorld& world = GetWorld(dataset);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunMode(world, mode, 4, /*k=*/10, /*nprobe=*/8,
                      /*with_recall=*/false);
  }
  const ClusterBreakdown& b = outcome.stats.breakdown;
  state.counters["comp_ms"] = b.compute_seconds * 1e3;
  state.counters["comm_ms"] = b.comm_seconds * 1e3;
  state.counters["other_ms"] = b.other_seconds * 1e3;
  state.counters["makespan_ms"] = b.makespan_seconds * 1e3;
}

void RegisterAll() {
  const struct {
    Mode mode;
    const char* label;
  } kModes[] = {
      {Mode::kHarmonyVector, "harmony-vector"},
      {Mode::kHarmonyDimension, "harmony-dimension"},
      {Mode::kHarmony, "harmony"},
  };
  for (const std::string& dataset : SmallDatasetNames()) {
    for (const auto& m : kModes) {
      benchmark::RegisterBenchmark(("fig8/" + dataset + "/" + m.label).c_str(),
                                   TimeBreakdown, dataset, m.mode)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
