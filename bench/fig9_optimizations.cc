// Figure 9: contribution of each optimization technique to Harmony's
// throughput, measured by leave-one-out ablation on four workers under a
// moderately skewed workload (the regime all three features target).
//
// Paper averages: balanced load 1.75x, pipeline + asynchronous execution
// 1.25x, pruning 1.51x. On Sift1M the load is naturally uniform so the
// balanced-load and pipeline gains are smaller there, while pruning holds.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

double QpsWith(const BenchWorld& world, size_t b_vec, size_t b_dim,
               bool balanced, bool pipeline, bool pruning, size_t nprobe) {
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmony, 4);
  // Pin the grid so toggling one feature cannot be compensated by the
  // planner switching shapes — the ablation isolates the feature.
  opts.force_b_vec = b_vec;
  opts.force_b_dim = b_dim;
  opts.enable_balanced_load = balanced;
  opts.enable_pipeline = pipeline;
  opts.enable_pruning = pruning;
  auto engine = MakeEngine(opts, world);
  return RunSearch(world, engine.get(), /*k=*/10, nprobe,
                   /*with_recall=*/false)
      .stats.qps;
}

void Contribution(benchmark::State& state, const std::string& dataset,
                  double zipf) {
  // Each feature is isolated on the workload and grid shape it targets:
  //  * balanced load — skewed queries on the hybrid 2x2 grid, where shard
  //    placement and per-batch deferral exist (B_vec > 1), few probes so
  //    the hot shard stays hot;
  //  * pipeline + pruning — the 1x4 dimension grid at nprobe 8, where the
  //    stagger and the early stop act across the four dimension stages.
  const BenchWorld& skewed = GetWorld(dataset, zipf);
  const BenchWorld& uniform = GetWorld(dataset, 0.0);
  double balanced_x = 0.0, pipeline_x = 0.0, pruning_x = 0.0, full = 0.0;
  for (auto _ : state) {
    const double grid_full = QpsWith(skewed, 2, 2, true, true, true, 2);
    balanced_x = grid_full / QpsWith(skewed, 2, 2, false, true, true, 2);
    const double dim_full = QpsWith(uniform, 1, 4, true, true, true, 8);
    pipeline_x = dim_full / QpsWith(uniform, 1, 4, true, false, true, 8);
    pruning_x = dim_full / QpsWith(uniform, 1, 4, true, true, false, 8);
    full = dim_full;
  }
  state.counters["qps_full"] = full;
  state.counters["balanced_load_x"] = balanced_x;
  state.counters["pipeline_x"] = pipeline_x;
  state.counters["pruning_x"] = pruning_x;
}

void RegisterAll() {
  for (const std::string& dataset : SmallDatasetNames()) {
    benchmark::RegisterBenchmark(("fig9/" + dataset).c_str(), Contribution,
                                 dataset, 2.0)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
