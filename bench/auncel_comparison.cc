// Section 6.5.4: comparison with Auncel. Auncel distributes load with a
// fixed vector-style partitioning (round-robin, no load-aware placement,
// no pruning across machines); under skew it behaves like Harmony-vector,
// while Harmony exploits pruning + fine-grained balancing.
//
// Expected shape: comparable QPS under uniform load; Harmony increasingly
// ahead as skew grows.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void AuncelPoint(benchmark::State& state, const std::string& dataset,
                 double zipf) {
  const BenchWorld& world = GetWorld(dataset, zipf);
  double auncel = 0.0, harmony_qps = 0.0;
  for (auto _ : state) {
    auncel = RunMode(world, Mode::kAuncelLike, 4, 10, 2, false).stats.qps;
    harmony_qps = RunMode(world, Mode::kHarmony, 4, 10, 2, false).stats.qps;
  }
  state.counters["auncel_like_qps"] = auncel;
  state.counters["harmony_qps"] = harmony_qps;
  state.counters["harmony_over_auncel"] =
      auncel > 0.0 ? harmony_qps / auncel : 0.0;
  state.counters["zipf_theta"] = zipf;
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  for (const std::string& dataset : {std::string("sift1m"),
                                     std::string("deep1m"),
                                     std::string("glove1.2m")}) {
    for (const double zipf : {0.0, 1.0, 2.0}) {
      std::ostringstream name;
      name << "auncel/" << dataset << "/zipf:" << zipf;
      benchmark::RegisterBenchmark(name.str().c_str(), harmony::bench::AuncelPoint,
                                   dataset, zipf)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
