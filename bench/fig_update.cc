// Mutable-store update sweep: recall and tail latency vs update rate
// (docs/mutability.md).
//
// For each update rate a deterministic serving trace with a second
// Poisson op class (inserts + deletes, delete_frac of the stream) is
// replayed on the virtual-clock backend against a fresh engine. The bench
// records, per point:
//  * p95 latency with the update stream riding the SLO lanes, then again
//    after a rank-barrier merge (same query workload, frozen store);
//  * recall@10 against exact ground truth over the *live* set (base rows
//    minus deletes plus inserts) before and after the merge — the
//    acceptance contract: the drift across a merge stays within 0.005;
//  * the pre-merge delta overhead (delta-shard bytes, tombstone bitset
//    bytes) relative to the frozen store.
//
// Emits BENCH_update.json (tools/run_benches.sh refreshes it).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/serving.h"

namespace harmony {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double update_rate = 0.0;
  double delete_frac = 0.0;
  size_t num_queries = 0;
  size_t base_rows = 0;
  size_t inserts_applied = 0;
  size_t deletes_applied = 0;
  size_t pending_delta_rows = 0;
  uint64_t delta_bytes = 0;
  uint64_t tombstone_bytes = 0;
  uint64_t index_bytes = 0;
  double recall_before = 0.0;
  double recall_after = 0.0;
  double p95_before = 0.0;
  double p95_after = 0.0;
  double p50_before = 0.0;
  double p50_after = 0.0;
  uint64_t generation = 0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

/// Calibrate admission estimates from one pinned warm-up batch on the
/// virtual clock (same idiom as fig_serving) so the offered load is an
/// honest multiple of simulated capacity.
ServePolicy CalibratedPolicy(const BenchWorld& world, HarmonyEngine* engine,
                             size_t k, size_t nprobe) {
  const size_t probe = std::min<size_t>(kMaxQueryGroup,
                                        world.data.workload.queries.size());
  DatasetView sample(world.data.workload.queries.Row(0), probe,
                     world.data.workload.queries.dim());
  auto warm = engine->SearchBatchPinned(sample, k, nprobe);
  HARMONY_CHECK_MSG(warm.ok(), warm.status().ToString());
  const double group_seconds = warm.value().stats.makespan_seconds;

  ServePolicy policy;
  policy.est_query_seconds = group_seconds / static_cast<double>(probe);
  policy.est_dispatch_seconds = 0.1 * group_seconds;
  policy.max_linger_seconds = 2.0 * policy.est_query_seconds;
  policy.executors = 2;
  policy.max_pending_groups = 8;
  policy.mailbox_capacity = 64;
  return policy;
}

/// recall@10 of a pinned batch against exact ground truth over the live
/// set. Ground-truth row indices are remapped through `live_ids` back to
/// global ids before comparison.
double LiveRecall(HarmonyEngine* engine, const BenchWorld& world,
                  const Dataset& live, const std::vector<int64_t>& live_ids,
                  size_t k, size_t nprobe) {
  auto gt = ComputeGroundTruth(live.View(),
                               world.data.workload.queries.View(), k,
                               Metric::kL2);
  HARMONY_CHECK_MSG(gt.ok(), gt.status().ToString());
  std::vector<std::vector<Neighbor>> truth = std::move(gt).value();
  for (std::vector<Neighbor>& q : truth) {
    for (Neighbor& n : q) n.id = live_ids[static_cast<size_t>(n.id)];
  }
  auto out =
      engine->SearchBatchPinned(world.data.workload.queries.View(), k, nprobe);
  HARMONY_CHECK_MSG(out.ok(), out.status().ToString());
  return MeanRecallAtK(out.value().results, truth, k);
}

void UpdatePoint(benchmark::State& state, const std::string& dataset,
                 double rate_factor, double delete_frac) {
  constexpr size_t kMachines = 4;
  constexpr size_t kK = 10;
  constexpr size_t kNprobe = 8;
  const BenchWorld& world = GetWorld(dataset, /*zipf=*/0.0);
  // Fresh engine per point: the update stream mutates it, so the shared
  // engine cache must not see these points.
  std::unique_ptr<HarmonyEngine> engine =
      MakeEngine(MakeOptions(world, Mode::kHarmony, kMachines), world);
  const size_t base_rows = engine->IdSpan();

  ServingOptions sopts;
  sopts.k = kK;
  sopts.nprobe = kNprobe;
  sopts.degraded_nprobe = 2;
  sopts.policy = CalibratedPolicy(world, engine.get(), kK, kNprobe);
  const double capacity_qps = static_cast<double>(sopts.policy.executors) /
                              sopts.policy.est_query_seconds;

  ArrivalSpec spec;
  spec.num_queries = 256;
  spec.num_tenants = 4;
  // Sub-critical query load so the p95 movement isolates the update
  // stream's lane interference rather than queueing collapse.
  spec.offered_qps = 0.5 * capacity_qps;
  spec.zipf_theta = 0.9;
  spec.slo_seconds = 8.0 * sopts.policy.est_query_seconds *
                     static_cast<double>(sopts.policy.max_group);
  spec.seed = 42;
  // The update rate is swept as a multiple of the query rate so points are
  // comparable across calibrated capacities.
  spec.update_rate = rate_factor * spec.offered_qps;
  spec.delete_frac = delete_frac;
  auto trace = GenerateArrivalTrace(world.data.mixture, spec);
  HARMONY_CHECK_MSG(trace.ok(), trace.status().ToString());

  Row row;
  row.dataset = dataset;
  row.update_rate = spec.update_rate;
  row.delete_frac = delete_frac;
  row.num_queries = spec.num_queries;
  row.base_rows = base_rows;

  for (auto _ : state) {
    ServingFrontend frontend(engine.get(), sopts);
    auto before = frontend.RunSimulated(trace.value());
    HARMONY_CHECK_MSG(before.ok(), before.status().ToString());
    row.inserts_applied = before.value().inserts_applied;
    row.deletes_applied = before.value().deletes_applied;
    row.p95_before = before.value().stats.latency_p95_seconds;
    row.p50_before = before.value().stats.latency_p50_seconds;

    // Pre-merge overhead: pending delta shards + tombstone bitset.
    row.pending_delta_rows = engine->pending_delta_rows();
    const MemoryStats mem = engine->IndexMemory();
    row.delta_bytes = mem.delta_bytes_total;
    row.tombstone_bytes = mem.tombstone_bytes;
    row.index_bytes = mem.index_bytes_total;

    // Live set: base rows minus tombstoned ids plus the applied inserts
    // (insert i of the replay holds global id base_rows + i and row i of
    // the trace's update_vectors — sequential assignment in apply order).
    std::vector<int64_t> live_ids;
    Dataset live(std::vector<float>(), world.data.mixture.vectors.dim());
    for (size_t gid = 0; gid < engine->IdSpan(); ++gid) {
      if (engine->IsDeleted(static_cast<int64_t>(gid))) continue;
      const float* vec =
          gid < base_rows
              ? world.data.mixture.vectors.Row(gid)
              : trace.value().update_vectors.Row(gid - base_rows);
      HARMONY_CHECK(live.Append(vec, live.dim()).ok());
      live_ids.push_back(static_cast<int64_t>(gid));
    }
    row.recall_before =
        LiveRecall(engine.get(), world, live, live_ids, kK, kNprobe);

    HARMONY_CHECK(engine->MergeUpdates().ok());
    row.generation = engine->generation();
    row.recall_after =
        LiveRecall(engine.get(), world, live, live_ids, kK, kNprobe);

    // Post-merge tail latency: the identical query workload (the update
    // stream draws from its own RNG, so an updates-off trace carries the
    // same arrivals and schedule) against the frozen merged store.
    ArrivalSpec frozen = spec;
    frozen.update_rate = 0.0;
    auto trace2 = GenerateArrivalTrace(world.data.mixture, frozen);
    HARMONY_CHECK_MSG(trace2.ok(), trace2.status().ToString());
    ServingFrontend frontend2(engine.get(), sopts);
    auto after = frontend2.RunSimulated(trace2.value());
    HARMONY_CHECK_MSG(after.ok(), after.status().ToString());
    row.p95_after = after.value().stats.latency_p95_seconds;
    row.p50_after = after.value().stats.latency_p50_seconds;
  }
  Rows().push_back(row);

  state.counters["recall_before_merge"] = row.recall_before;
  state.counters["recall_after_merge"] = row.recall_after;
  state.counters["recall_drift"] = row.recall_after - row.recall_before;
  state.counters["p95_before_ms"] = row.p95_before * 1e3;
  state.counters["p95_after_ms"] = row.p95_after * 1e3;
  state.counters["delta_overhead_pct"] =
      row.index_bytes > 0
          ? 100.0 * static_cast<double>(row.delta_bytes + row.tombstone_bytes) /
                static_cast<double>(row.index_bytes)
          : 0.0;
}

void RegisterAll() {
  const std::string dataset = "sift1m";
  // rate_factor = updates per query; 0 is the frozen-store control point.
  for (const double factor : {0.0, 0.5, 2.0, 8.0}) {
    std::string name =
        "fig_update/" + dataset + "/rate_x:" + std::to_string(factor);
    benchmark::RegisterBenchmark(name.c_str(), UpdatePoint, dataset, factor,
                                 /*delete_frac=*/0.3)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Delete-heavy spot check: tombstone filtering dominates the delta scan.
  benchmark::RegisterBenchmark(
      ("fig_update/" + dataset + "/rate_x:2.000000/deletes:0.9").c_str(),
      UpdatePoint, dataset, 2.0, /*delete_frac=*/0.9)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_update\",\n"
               "  \"note\": \"epoch-versioned mutable store: inserts buffer "
               "into delta shards and deletes tombstone at the rank barrier "
               "until a merge rebuilds the grid blocks; recall is measured "
               "against exact ground truth over the live set before and "
               "after the merge, p95 on the virtual-clock serving backend "
               "with updates sharing the SLO lanes\",\n"
               "  \"results\": [");
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"update_rate_qps\": %.1f, "
        "\"delete_frac\": %.2f, \"num_queries\": %zu, \"base_rows\": %zu, "
        "\"inserts_applied\": %zu, \"deletes_applied\": %zu, "
        "\"pending_delta_rows\": %zu, \"delta_bytes\": %llu, "
        "\"tombstone_bytes\": %llu, \"index_bytes\": %llu, "
        "\"delta_overhead_pct\": %.3f, "
        "\"recall_at_10_before_merge\": %.4f, "
        "\"recall_at_10_after_merge\": %.4f, \"recall_drift\": %.4f, "
        "\"p95_seconds_before_merge\": %.6f, "
        "\"p95_seconds_after_merge\": %.6f, "
        "\"p50_seconds_before_merge\": %.6f, "
        "\"p50_seconds_after_merge\": %.6f, \"generation\": %llu}",
        first ? "" : ",", r.dataset.c_str(), r.update_rate, r.delete_frac,
        r.num_queries, r.base_rows, r.inserts_applied, r.deletes_applied,
        r.pending_delta_rows, static_cast<unsigned long long>(r.delta_bytes),
        static_cast<unsigned long long>(r.tombstone_bytes),
        static_cast<unsigned long long>(r.index_bytes),
        r.index_bytes > 0
            ? 100.0 *
                  static_cast<double>(r.delta_bytes + r.tombstone_bytes) /
                  static_cast<double>(r.index_bytes)
            : 0.0,
        r.recall_before, r.recall_after, r.recall_after - r.recall_before,
        r.p95_before, r.p95_after, r.p50_before, r.p50_after,
        static_cast<unsigned long long>(r.generation));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_update.json");
  return 0;
}
