// Extension study (paper Sections 1-2): graph-based vs cluster-based
// indexing, and why Harmony distributes the latter. Two measurements on the
// sift1m stand-in:
//  1. single-node recall/time of HNSW vs IVF at matched effort — graphs
//     win standalone, as the literature says;
//  2. the fraction of HNSW edges that cross machine boundaries under an
//     N-way partition — the paper's motivating claim that "query paths tend
//     to introduce edges across machines", which makes graph traversal
//     latency-bound in a distributed setting while IVF lists shard cleanly.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/hnsw_index.h"
#include "util/timer.h"

namespace harmony {
namespace bench {
namespace {

const HnswIndex& GetHnsw(const BenchWorld& world) {
  static auto& cache = *new std::map<const BenchWorld*,
                                     std::unique_ptr<HnswIndex>>();
  auto it = cache.find(&world);
  if (it != cache.end()) return *it->second;
  HnswParams params;
  params.m = 16;
  params.ef_construction = 120;
  auto index = std::make_unique<HnswIndex>(params);
  HARMONY_CHECK(index->Add(world.data.mixture.vectors.View()).ok());
  return *cache.emplace(&world, std::move(index)).first->second;
}

void HnswVsIvf(benchmark::State& state, size_t ef, size_t nprobe) {
  const BenchWorld& world = GetWorld("sift1m");
  const HnswIndex& hnsw = GetHnsw(world);
  const DatasetView queries = world.data.workload.queries.View();
  const auto& gt = GetGroundTruth(world, 10);

  double hnsw_recall = 0.0, ivf_recall = 0.0;
  double hnsw_seconds = 0.0, ivf_seconds = 0.0;
  for (auto _ : state) {
    StopWatch w1;
    double hr = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto r = hnsw.Search(queries.Row(q), 10, ef);
      HARMONY_CHECK(r.ok());
      hr += RecallAtK(r.value(), gt[q], 10);
    }
    hnsw_seconds = w1.ElapsedSeconds();
    hnsw_recall = hr / static_cast<double>(queries.size());

    StopWatch w2;
    double ir = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto r = world.index->Search(queries.Row(q), 10, nprobe);
      HARMONY_CHECK(r.ok());
      ir += RecallAtK(r.value(), gt[q], 10);
    }
    ivf_seconds = w2.ElapsedSeconds();
    ivf_recall = ir / static_cast<double>(queries.size());
  }
  state.counters["hnsw_recall"] = hnsw_recall;
  state.counters["ivf_recall"] = ivf_recall;
  state.counters["hnsw_qps_wall"] =
      static_cast<double>(queries.size()) / hnsw_seconds;
  state.counters["ivf_qps_wall"] =
      static_cast<double>(queries.size()) / ivf_seconds;
}

void CrossEdges(benchmark::State& state, size_t machines) {
  const BenchWorld& world = GetWorld("sift1m");
  const HnswIndex& hnsw = GetHnsw(world);
  double fraction = 0.0;
  for (auto _ : state) {
    const auto [cross, total] = hnsw.CrossPartitionEdges(machines);
    fraction = total > 0 ? static_cast<double>(cross) /
                               static_cast<double>(total)
                         : 0.0;
  }
  state.counters["cross_edge_fraction"] = fraction;
  state.counters["machines"] = static_cast<double>(machines);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  const struct {
    size_t ef;
    size_t nprobe;
  } kPoints[] = {{16, 2}, {48, 4}, {128, 8}};
  for (const auto& p : kPoints) {
    benchmark::RegisterBenchmark(
        ("extension_graph/hnsw_vs_ivf/ef:" + std::to_string(p.ef) +
         "/nprobe:" + std::to_string(p.nprobe))
            .c_str(),
        harmony::bench::HnswVsIvf, p.ef, p.nprobe)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (const size_t machines : {4, 8, 16}) {
    benchmark::RegisterBenchmark(
        ("extension_graph/cross_edges/machines:" + std::to_string(machines))
            .c_str(),
        harmony::bench::CrossEdges, machines)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
