// Table 4: index memory comparison — single-node Faiss vs the per-node
// footprint of Harmony-vector / Harmony-dimension / Harmony on four nodes.
//
// Expected shape: each distributed per-node footprint is ~1/4 of Faiss;
// dimension-splitting methods carry a small (~2%) overhead for replicated
// row ids / per-row intermediates, with Harmony between vector and
// dimension.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void IndexMemory(benchmark::State& state, const std::string& dataset) {
  const BenchWorld& world = GetWorld(dataset);
  uint64_t faiss = 0, vec = 0, dim = 0, har = 0;
  MemoryStats pq;
  MemoryStats mut;
  for (auto _ : state) {
    faiss = world.index->SizeBytes();
    vec = GetEngine(world, Mode::kHarmonyVector, 4)
              ->IndexMemory()
              .index_bytes_max_node;
    dim = GetEngine(world, Mode::kHarmonyDimension, 4)
              ->IndexMemory()
              .index_bytes_max_node;
    har = GetEngine(world, Mode::kHarmony, 4)
              ->IndexMemory()
              .index_bytes_max_node;
    // Compressed column: the same grid with 16x8-bit quantized block
    // streams on top of the float slices (docs/quantization.md). The
    // max-node footprint grows by the code streams; the compressed bytes
    // alone are what a scan touches before the rerank.
    pq = GetPqEngine(world, Mode::kHarmony, 4, /*subspaces=*/16)
             ->IndexMemory();
    // Mutable-store columns: a fresh engine carrying one pending update
    // wave — 1% inserts (rows re-drawn from the base set under new ids)
    // and 0.5% deletes — measures the delta-shard buffers and tombstone
    // bitset a node pays for between merges (docs/mutability.md). Fresh
    // because the cached engines must stay pristine for the rows above.
    std::unique_ptr<HarmonyEngine> fresh =
        MakeEngine(MakeOptions(world, Mode::kHarmony, 4), world);
    const size_t rows = world.data.mixture.vectors.size();
    const size_t inserts = rows / 100 > 0 ? rows / 100 : 1;
    const DatasetView wave(world.data.mixture.vectors.Row(0), inserts,
                           world.data.mixture.vectors.dim());
    HARMONY_CHECK(fresh->InsertVectors(wave).ok());
    std::vector<int64_t> victims;
    for (size_t i = 0; i < rows; i += 200) {
      victims.push_back(static_cast<int64_t>(i));
    }
    HARMONY_CHECK(fresh->DeleteVectors(victims).ok());
    mut = fresh->IndexMemory();
  }
  state.counters["faiss_MB"] = static_cast<double>(faiss) / 1e6;
  state.counters["harmony_vector_MB"] = static_cast<double>(vec) / 1e6;
  state.counters["harmony_dimension_MB"] = static_cast<double>(dim) / 1e6;
  state.counters["harmony_MB"] = static_cast<double>(har) / 1e6;
  state.counters["harmony_pq_MB"] =
      static_cast<double>(pq.index_bytes_max_node) / 1e6;
  state.counters["pq_code_MB"] =
      static_cast<double>(pq.index_code_bytes) / 1e6;
  state.counters["pq_scan_compression_x"] =
      pq.index_code_bytes > 0
          ? static_cast<double>(pq.index_bytes_total) /
                static_cast<double>(pq.index_code_bytes)
          : 0.0;
  state.counters["delta_shard_MB"] =
      static_cast<double>(mut.delta_bytes_total) / 1e6;
  state.counters["tombstone_KB"] =
      static_cast<double>(mut.tombstone_bytes) / 1e3;
  state.counters["delta_overhead_pct"] =
      mut.index_bytes_total > 0
          ? 100.0 *
                static_cast<double>(mut.delta_bytes_total +
                                    mut.tombstone_bytes) /
                static_cast<double>(mut.index_bytes_total)
          : 0.0;
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  for (const std::string& dataset : harmony::bench::SmallDatasetNames()) {
    benchmark::RegisterBenchmark(("table4/" + dataset).c_str(),
                                 harmony::bench::IndexMemory, dataset)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
