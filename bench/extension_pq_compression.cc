// Extension study (paper Section 2.1 contrasts lossy quantization with
// Harmony's lossless distribution): IVF-Flat vs IVF-PQ on a single node —
// memory footprint vs recall at matched nprobe. PQ cuts storage ~10-15x but
// caps recall; Harmony instead keeps exact vectors and splits them across
// machines (Table 4 shows its per-node footprint dropping ~4x on 4 nodes
// with no recall loss).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/pq.h"

namespace harmony {
namespace bench {
namespace {

void PqVsFlat(benchmark::State& state, const std::string& dataset,
              size_t subspaces) {
  const BenchWorld& world = GetWorld(dataset);
  const DatasetView base = world.data.mixture.vectors.View();
  const DatasetView queries = world.data.workload.queries.View();

  IvfPqIndex::Params params;
  params.nlist = world.index->nlist();
  params.seed = world.data.spec.seed;
  params.pq.num_subspaces = subspaces;
  params.pq.bits = 8;
  IvfPqIndex pq_index(params);
  HARMONY_CHECK(pq_index.Train(base).ok());
  HARMONY_CHECK(pq_index.Add(base).ok());

  double pq_recall = 0.0, flat_recall = 0.0;
  for (auto _ : state) {
    const auto& gt = GetGroundTruth(world, 10);
    double pq_sum = 0.0, flat_sum = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto pq_result = pq_index.Search(queries.Row(q), 10, 8);
      auto flat_result = world.index->Search(queries.Row(q), 10, 8);
      HARMONY_CHECK(pq_result.ok() && flat_result.ok());
      pq_sum += RecallAtK(pq_result.value(), gt[q], 10);
      flat_sum += RecallAtK(flat_result.value(), gt[q], 10);
    }
    pq_recall = pq_sum / static_cast<double>(queries.size());
    flat_recall = flat_sum / static_cast<double>(queries.size());
  }
  state.counters["pq_recall_at_10"] = pq_recall;
  state.counters["flat_recall_at_10"] = flat_recall;
  state.counters["pq_MB"] = static_cast<double>(pq_index.SizeBytes()) / 1e6;
  state.counters["flat_MB"] =
      static_cast<double>(world.index->SizeBytes()) / 1e6;
  state.counters["compression_x"] =
      static_cast<double>(world.index->SizeBytes()) /
      static_cast<double>(pq_index.SizeBytes());
}

void RegisterAll() {
  for (const std::string& dataset : {std::string("sift1m"),
                                     std::string("deep1m")}) {
    for (const size_t m : {4, 8, 16}) {
      benchmark::RegisterBenchmark(
          ("extension_pq/" + dataset + "/subspaces:" + std::to_string(m))
              .c_str(),
          PqVsFlat, dataset, m)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
