// Figure 6: QPS–recall trade-off under uniform workloads.
//
// Paper setup: Faiss on one node vs Harmony / Harmony-vector /
// Harmony-dimension on four worker nodes, sweeping nprobe to trade recall
// for throughput; the two billion-class datasets run on 16 nodes.
// Expected shape: all distributed strategies beat Faiss by ~machine-count;
// at high recall Harmony exceeds the theoretical speedup thanks to pruning,
// while below ~99% recall Harmony-vector is the fastest distribution.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void QpsRecallPoint(benchmark::State& state, const std::string& dataset,
                    Mode mode, size_t machines, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunMode(world, mode, machines, /*k=*/10, nprobe);
  }
  state.counters["qps"] = outcome.stats.qps;
  state.counters["recall_at_10"] = outcome.recall;
  state.counters["nprobe"] = static_cast<double>(nprobe);
  state.counters["nodes"] =
      static_cast<double>(mode == Mode::kSingleNode ? 1 : machines);
}

void RegisterAll() {
  const struct {
    Mode mode;
    const char* label;
  } kModes[] = {
      {Mode::kSingleNode, "faiss-1node"},
      {Mode::kHarmonyVector, "harmony-vector"},
      {Mode::kHarmonyDimension, "harmony-dimension"},
      {Mode::kHarmony, "harmony"},
  };
  for (const std::string& dataset : SmallDatasetNames()) {
    const BenchWorld& world = GetWorld(dataset);
    for (const auto& m : kModes) {
      for (size_t nprobe = 1; nprobe <= world.index->nlist(); nprobe *= 2) {
        benchmark::RegisterBenchmark(("fig6/" + dataset + "/" + m.label + "/nprobe:" +
             std::to_string(nprobe)).c_str(),
            QpsRecallPoint, dataset, m.mode, 4, nprobe)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  // Billion-class stand-ins: 16 nodes (Faiss cannot host them on one node
  // in the paper; we still run the 1-node baseline on the scaled stand-in
  // for reference).
  for (const std::string& dataset : {std::string("spacev1b"),
                                     std::string("sift1b")}) {
    for (const auto& m : kModes) {
      if (m.mode == Mode::kSingleNode) continue;
      for (const size_t nprobe : {4, 16, 64}) {
        benchmark::RegisterBenchmark(("fig6/" + dataset + "/16nodes/" + m.label + "/nprobe:" +
             std::to_string(nprobe)).c_str(),
            QpsRecallPoint, dataset, m.mode, 16, nprobe)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
