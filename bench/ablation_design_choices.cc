// Ablations of Harmony's own design choices (beyond the paper's Figure 9):
//
//  * pipeline batch size — the granularity at which partial results flow and
//    the pruning threshold refreshes: tiny batches refine τ fastest but pay
//    a per-message cost; huge batches starve the vector-level pipeline;
//  * prewarm cache size — how many client-cached vectors per list seed the
//    initial threshold;
//  * α (cost-model imbalance weight) under a skewed workload — low α lets
//    the planner chase communication savings into hot-spot territory, high
//    α over-rotates to dimension splitting.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void BatchSizeSweep(benchmark::State& state, size_t batch) {
  const BenchWorld& world = GetWorld("sift1m");
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmonyDimension, 4);
  opts.pipeline_batch = batch;
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), 10, 8, /*with_recall=*/false);
  }
  state.counters["qps"] = outcome.stats.qps;
  state.counters["avg_prune_pct"] =
      100.0 * outcome.stats.prune.AveragePruneRatio();
  state.counters["msgs"] =
      static_cast<double>(outcome.stats.breakdown.total_messages);
}

void PrewarmSweep(benchmark::State& state, size_t per_list) {
  const BenchWorld& world = GetWorld("sift1m");
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmonyDimension, 4);
  opts.prewarm_per_list = per_list;
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), 10, 8, /*with_recall=*/false);
  }
  state.counters["qps"] = outcome.stats.qps;
  state.counters["avg_prune_pct"] =
      100.0 * outcome.stats.prune.AveragePruneRatio();
  state.counters["client_cache_MB"] =
      static_cast<double>(engine->IndexMemory().client_bytes) / 1e6;
}

void AlphaSweep(benchmark::State& state, double alpha) {
  const BenchWorld& world = GetWorld("sift1m", /*zipf=*/2.0);
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmony, 4);
  opts.alpha = alpha;
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), 10, 2, /*with_recall=*/false);
  }
  state.counters["qps"] = outcome.stats.qps;
  state.counters["chosen_b_dim"] =
      static_cast<double>(engine->plan().num_dim_blocks);
}

void RegisterAll() {
  for (const size_t batch : {16, 64, 256, 1024, 4096}) {
    benchmark::RegisterBenchmark(
        ("ablation/pipeline_batch:" + std::to_string(batch)).c_str(),
        BatchSizeSweep, batch)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (const size_t per_list : {0, 1, 4, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("ablation/prewarm_per_list:" + std::to_string(per_list)).c_str(),
        PrewarmSweep, per_list)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (const double alpha : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    std::ostringstream name;
    name << "ablation/alpha:" << alpha;
    benchmark::RegisterBenchmark(name.str().c_str(), AlphaSweep, alpha)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
