// Figure 11(a): impact of dimensionality and dataset size on Harmony's
// speedup over single-node Faiss, on Gaussian synthetic data, four nodes.
//
// Paper: dims 64..512, sizes 250K..1M; speedup grows ~26.8% per dimension
// doubling and ~25.9% per size doubling, exceeding 4x (the machine count)
// on the largest configuration thanks to pruning. Our stand-ins scale the
// sizes down 50x (5K..20K) per DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/queries.h"
#include "workload/synthetic.h"

namespace harmony {
namespace bench {
namespace {

struct SyntheticWorld {
  GaussianMixture mixture;
  QueryWorkload workload;
  IvfIndex index;
};

const SyntheticWorld& GetSynthetic(size_t dim, size_t size) {
  static auto& cache =
      *new std::map<std::string, std::unique_ptr<SyntheticWorld>>();
  const std::string key = std::to_string(dim) + "/" + std::to_string(size);
  if (auto it = cache.find(key); it != cache.end()) return *it->second;

  auto world = std::make_unique<SyntheticWorld>();
  GaussianMixtureSpec spec;
  spec.num_vectors = size;
  spec.dim = dim;
  spec.num_components = 64;
  spec.seed = 1000 + dim + size;
  auto mix = GenerateGaussianMixture(spec);
  HARMONY_CHECK(mix.ok());
  world->mixture = std::move(mix).value();

  QueryWorkloadSpec qspec;
  qspec.num_queries = 128;
  qspec.seed = spec.seed ^ 0xF00D;
  auto queries = GenerateQueries(world->mixture, qspec);
  HARMONY_CHECK(queries.ok());
  world->workload = std::move(queries).value();

  IvfParams params;
  params.nlist = 32;
  params.seed = spec.seed;
  world->index = IvfIndex(params);
  HARMONY_CHECK(world->index.Train(world->mixture.vectors.View()).ok());
  HARMONY_CHECK(world->index.Add(world->mixture.vectors.View()).ok());
  return *cache.emplace(key, std::move(world)).first->second;
}

double QpsFor(const SyntheticWorld& world, Mode mode, size_t machines) {
  HarmonyOptions opts;
  opts.mode = mode;
  opts.num_machines = machines;
  opts.ivf.nlist = world.index.nlist();
  HarmonyEngine engine(opts);
  HARMONY_CHECK(engine.BuildFromIndex(world.index).ok());
  auto result = engine.SearchBatch(world.workload.queries.View(), 10, 8);
  HARMONY_CHECK(result.ok());
  return result.value().stats.qps;
}

void DimSizePoint(benchmark::State& state, size_t dim, size_t size) {
  const SyntheticWorld& world = GetSynthetic(dim, size);
  double speedup = 0.0;
  for (auto _ : state) {
    const double single = QpsFor(world, Mode::kSingleNode, 1);
    const double multi = QpsFor(world, Mode::kHarmony, 4);
    speedup = single > 0.0 ? multi / single : 0.0;
  }
  state.counters["speedup_vs_faiss"] = speedup;
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["size"] = static_cast<double>(size);
}

void RegisterAll() {
  const double scale = EnvScale(1.0);
  for (const size_t dim : {64, 128, 256, 512}) {
    for (const size_t paper_size : {250000, 500000, 1000000}) {
      // DESIGN.md substitution: paper sizes scaled 1/50.
      const size_t size = std::max<size_t>(
          2000, static_cast<size_t>(paper_size / 50 * scale));
      std::ostringstream name;
      name << "fig11a/dim:" << dim << "/size:" << paper_size << "(scaled:"
           << size << ")";
      benchmark::RegisterBenchmark(name.str().c_str(), DimSizePoint, dim, size)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
