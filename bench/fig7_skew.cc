// Figure 7: impact of load distribution (query skew) on query performance,
// per distribution strategy, four worker nodes.
//
// Query sets are manipulated to increasing imbalance (Zipf exponent over
// the data's cluster structure); imbalance is quantified by the variance of
// per-node load (Section 4.2.1). Expected shape: Harmony-vector loses ~56%
// QPS as skew grows; Harmony-dimension stays flat; Harmony tracks the best
// of both and wins overall.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

double LoadVariance(const BatchStats& stats) {
  const auto& loads = stats.node_compute_seconds;
  if (loads.empty()) return 0.0;
  double mean = 0.0;
  for (const double l : loads) mean += l;
  mean /= static_cast<double>(loads.size());
  double var = 0.0;
  for (const double l : loads) var += (l - mean) * (l - mean);
  return var / static_cast<double>(loads.size());
}

void SkewPoint(benchmark::State& state, const std::string& dataset, Mode mode,
               double zipf) {
  const BenchWorld& world = GetWorld(dataset, zipf);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunMode(world, mode, 4, /*k=*/10, /*nprobe=*/1,
                      /*with_recall=*/false);
  }
  state.counters["qps"] = outcome.stats.qps;
  state.counters["zipf_theta"] = zipf;
  state.counters["load_variance"] = LoadVariance(outcome.stats);
}

void RegisterAll() {
  const struct {
    Mode mode;
    const char* label;
  } kModes[] = {
      {Mode::kHarmonyVector, "harmony-vector"},
      {Mode::kHarmonyDimension, "harmony-dimension"},
      {Mode::kHarmony, "harmony"},
  };
  for (const std::string& dataset : SmallDatasetNames()) {
    for (const auto& m : kModes) {
      for (const double zipf : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5}) {
        std::ostringstream name;
        name << "fig7/" << dataset << "/" << m.label << "/zipf:" << zipf;
        benchmark::RegisterBenchmark(name.str().c_str(), SkewPoint, dataset, m.mode,
                                     zipf)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
