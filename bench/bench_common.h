#ifndef HARMONY_BENCH_BENCH_COMMON_H_
#define HARMONY_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure/per-table benchmark binaries.
//
// Every binary reproduces one table or figure of the HARMONY paper
// (SIGMOD 2025). Conventions:
//  * datasets are the Table 2 stand-ins (dimensions faithful, cardinality
//    scaled; rescale with the HARMONY_SCALE env var);
//  * every distribution strategy shares one trained IVF clustering per
//    dataset, as in the paper's methodology (Section 6.1);
//  * performance numbers are virtual-time (simulated cluster) QPS /
//    latency; recall is measured against exact brute-force ground truth.

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "util/logging.h"
#include "workload/datasets.h"
#include "workload/ground_truth.h"

namespace harmony {
namespace bench {

/// Materialized dataset + shared clustering; queries vary by skew level but
/// the base vectors and clustering are shared across skew levels.
struct BenchWorld {
  BenchData data;          // base vectors + queries at this skew level
  const IvfIndex* index;   // shared clustering (owned by the cache)
};

inline size_t ScaledNlist(const StandInSpec& spec, size_t num_vectors) {
  // Keep lists reasonably populated on scaled-down data: aim for >= 100
  // vectors per list, but never fewer than 8 lists.
  size_t nlist = spec.nlist_hint;
  while (nlist > 8 && num_vectors / nlist < 100) nlist /= 2;
  return nlist;
}

namespace internal {

template <typename T>
std::map<std::string, std::unique_ptr<T>>& Cache() {
  static auto& cache = *new std::map<std::string, std::unique_ptr<T>>();
  return cache;
}

}  // namespace internal

/// Dataset + queries at the requested skew; the IVF clustering is built
/// once per (dataset, scale) and shared across skew levels and strategies.
inline const BenchWorld& GetWorld(const std::string& name, double zipf = 0.0) {
  const double scale = EnvScale(1.0);
  std::ostringstream key;
  key << name << "/" << scale << "/" << zipf;
  auto& worlds = internal::Cache<BenchWorld>();
  if (auto it = worlds.find(key.str()); it != worlds.end()) {
    return *it->second;
  }

  auto world = std::make_unique<BenchWorld>();
  auto spec = GetStandIn(name);
  HARMONY_CHECK_MSG(spec.ok(), spec.status().ToString());
  auto data = MakeStandIn(spec.value(), scale, zipf);
  HARMONY_CHECK_MSG(data.ok(), data.status().ToString());
  world->data = std::move(data).value();

  // Shared clustering per (dataset, scale).
  std::ostringstream index_key;
  index_key << name << "/" << scale;
  auto& indexes = internal::Cache<IvfIndex>();
  auto idx_it = indexes.find(index_key.str());
  if (idx_it == indexes.end()) {
    IvfParams params;
    params.nlist = ScaledNlist(world->data.spec, world->data.spec.num_vectors);
    params.seed = world->data.spec.seed;
    auto index = std::make_unique<IvfIndex>(params);
    HARMONY_CHECK(index->Train(world->data.mixture.vectors.View()).ok());
    HARMONY_CHECK(index->Add(world->data.mixture.vectors.View()).ok());
    idx_it = indexes.emplace(index_key.str(), std::move(index)).first;
  }
  world->index = idx_it->second.get();

  return *worlds.emplace(key.str(), std::move(world)).first->second;
}

/// Exact top-`k` ground truth for a world's queries (cached; only computed
/// by benches that report recall).
inline const std::vector<std::vector<Neighbor>>& GetGroundTruth(
    const BenchWorld& world, size_t k = 100) {
  using Gt = std::vector<std::vector<Neighbor>>;
  std::ostringstream key;
  key << &world << "/" << k;
  auto& cache = internal::Cache<Gt>();
  if (auto it = cache.find(key.str()); it != cache.end()) return *it->second;
  auto gt = ComputeGroundTruth(world.data.mixture.vectors.View(),
                               world.data.workload.queries.View(), k,
                               Metric::kL2);
  HARMONY_CHECK_MSG(gt.ok(), gt.status().ToString());
  return *cache.emplace(key.str(),
                        std::make_unique<Gt>(std::move(gt).value()))
              .first->second;
}

inline HarmonyOptions MakeOptions(const BenchWorld& world, Mode mode,
                                  size_t machines) {
  HarmonyOptions opts;
  opts.mode = mode;
  opts.num_machines = mode == Mode::kSingleNode ? 1 : machines;
  opts.ivf.nlist = world.index->nlist();
  opts.ivf.seed = world.data.spec.seed;
  return opts;
}

/// Builds an engine sharing the world's clustering.
inline std::unique_ptr<HarmonyEngine> MakeEngine(const HarmonyOptions& opts,
                                                 const BenchWorld& world) {
  auto engine = std::make_unique<HarmonyEngine>(opts);
  HARMONY_CHECK(engine->BuildFromIndex(*world.index).ok());
  return engine;
}

/// Cached engine per (world, mode, machines) so nprobe sweeps do not
/// re-partition the data for every point.
inline HarmonyEngine* GetEngine(const BenchWorld& world, Mode mode,
                                size_t machines) {
  std::ostringstream key;
  key << &world << "/" << ModeToString(mode) << "/" << machines;
  auto& cache = internal::Cache<HarmonyEngine>();
  if (auto it = cache.find(key.str()); it != cache.end()) {
    return it->second.get();
  }
  auto engine = std::make_unique<HarmonyEngine>(MakeOptions(world, mode,
                                                            machines));
  HARMONY_CHECK(engine->BuildFromIndex(*world.index).ok());
  return cache.emplace(key.str(), std::move(engine)).first->second.get();
}

/// Cached engine with quantized block streams on (docs/quantization.md):
/// same shared clustering, 8-bit PQ codes at `subspaces` subspaces on the
/// grid, exact float rerank capped at `rerank_depth` ADC candidates per
/// chain (0 = rerank every survivor).
inline HarmonyEngine* GetPqEngine(const BenchWorld& world, Mode mode,
                                  size_t machines, size_t subspaces,
                                  size_t rerank_depth = 0) {
  std::ostringstream key;
  key << &world << "/" << ModeToString(mode) << "/" << machines << "/pq"
      << subspaces << "/r" << rerank_depth;
  auto& cache = internal::Cache<HarmonyEngine>();
  if (auto it = cache.find(key.str()); it != cache.end()) {
    return it->second.get();
  }
  HarmonyOptions opts = MakeOptions(world, mode, machines);
  opts.use_pq_streams = true;
  opts.pq_subspaces = subspaces;
  opts.rerank_depth = rerank_depth;
  auto engine = std::make_unique<HarmonyEngine>(opts);
  HARMONY_CHECK(engine->BuildFromIndex(*world.index).ok());
  return cache.emplace(key.str(), std::move(engine)).first->second.get();
}

struct RunOutcome {
  BatchStats stats;
  double recall = 0.0;  // Only filled when with_recall = true.
};

inline RunOutcome RunSearch(const BenchWorld& world, HarmonyEngine* engine,
                            size_t k, size_t nprobe, bool with_recall = true) {
  auto result =
      engine->SearchBatch(world.data.workload.queries.View(), k, nprobe);
  HARMONY_CHECK_MSG(result.ok(), result.status().ToString());
  RunOutcome outcome;
  if (with_recall) {
    outcome.recall =
        MeanRecallAtK(result.value().results, GetGroundTruth(world, k), k);
  }
  outcome.stats = std::move(result.value().stats);
  return outcome;
}

/// One-shot convenience: cached engine + search.
inline RunOutcome RunMode(const BenchWorld& world, Mode mode, size_t machines,
                          size_t k, size_t nprobe, bool with_recall = true) {
  return RunSearch(world, GetEngine(world, mode, machines), k, nprobe,
                   with_recall);
}

/// The eight small datasets of the 4-node experiments, in paper order.
inline std::vector<std::string> SmallDatasetNames() {
  std::vector<std::string> names;
  for (const StandInSpec& spec : SmallStandIns()) names.push_back(spec.name);
  return names;
}

}  // namespace bench
}  // namespace harmony

#endif  // HARMONY_BENCH_BENCH_COMMON_H_
