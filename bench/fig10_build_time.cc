// Figure 10: index build time breakdown — Train (k-means), Add (assigning
// base vectors to lists) and Pre-assign (distributing grid blocks to
// machines) — for Harmony-vector / Harmony-dimension / Harmony on four
// nodes, plus single-node Faiss.
//
// Expected shape: Train and Add are identical across methods (shared
// clustering); Pre-assign is longer for the dimension-splitting methods
// (slice copies + per-row intermediates) and scales with dataset bytes.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void BuildTime(benchmark::State& state, const std::string& dataset,
               Mode mode) {
  const BenchWorld& world = GetWorld(dataset);
  BuildStats build;
  for (auto _ : state) {
    // Fresh engine per iteration so Pre-assign is actually measured.
    HarmonyOptions opts = MakeOptions(world, mode, 4);
    HarmonyEngine engine(opts);
    HARMONY_CHECK(engine.BuildFromIndex(*world.index).ok());
    build = engine.build_stats();
  }
  state.counters["train_s"] = build.train_seconds;
  state.counters["add_s"] = build.add_seconds;
  state.counters["preassign_s"] = build.preassign_seconds;
}

void RegisterAll() {
  const struct {
    Mode mode;
    const char* label;
  } kModes[] = {
      {Mode::kSingleNode, "faiss-1node"},
      {Mode::kHarmonyVector, "vector"},
      {Mode::kHarmonyDimension, "dimension"},
      {Mode::kHarmony, "harmony"},
  };
  for (const std::string& dataset : SmallDatasetNames()) {
    for (const auto& m : kModes) {
      benchmark::RegisterBenchmark(("fig10/" + dataset + "/" + m.label).c_str(),
                                   BuildTime, dataset, m.mode)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
