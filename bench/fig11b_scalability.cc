// Figure 11(b): scalability across 4 / 8 / 16 worker nodes per strategy.
//
// Expected shape: Harmony (grid/"group-based") exceeds linear speedup
// thanks to pruning; Harmony-vector scales ~linearly; Harmony-dimension
// gains then flattens/declines as finer dimension splits inflate
// communication.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void ScalabilityPoint(benchmark::State& state, const std::string& dataset,
                      Mode mode, size_t machines) {
  const BenchWorld& world = GetWorld(dataset);
  double speedup = 0.0, qps = 0.0;
  for (auto _ : state) {
    const double single =
        RunMode(world, Mode::kSingleNode, 1, 10, 8, false).stats.qps;
    qps = RunMode(world, mode, machines, 10, 8, false).stats.qps;
    speedup = single > 0.0 ? qps / single : 0.0;
  }
  state.counters["qps"] = qps;
  state.counters["speedup_vs_1node"] = speedup;
  state.counters["nodes"] = static_cast<double>(machines);
}

void RegisterAll() {
  const struct {
    Mode mode;
    const char* label;
  } kModes[] = {
      {Mode::kHarmony, "harmony"},
      {Mode::kHarmonyVector, "harmony-vector"},
      {Mode::kHarmonyDimension, "harmony-dimension"},
  };
  for (const auto& m : kModes) {
    for (const size_t machines : {4, 8, 16}) {
      std::ostringstream name;
      name << "fig11b/sift1m/" << m.label << "/nodes:" << machines;
      benchmark::RegisterBenchmark(name.str().c_str(), ScalabilityPoint, "sift1m",
                                   m.mode, machines)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
