// Fault-tolerance figure (extension beyond the paper): recall and degraded
// fraction as a function of injected fault severity.
//
// Two sweeps on the 4-node Harmony grid:
//  * drop-prob sweep — per-message drop probability from 0 to 0.5 with a
//    2-retry budget; recall should stay near the healthy value until the
//    loss rate pushes past the retry budget, then fall off gracefully;
//  * crashed-node sweep — kill 1..3 of the 4 machines from t=0; every
//    query still answers, recall decays roughly with the surviving fraction
//    of the grid.
//
// Counters: recall_at_10 (all queries), degraded_recall (degraded queries
// only; -1 when none), degraded_frac, blocks_lost, shards_lost, retries,
// failovers, hedged.
//
// A third sweep (availability, PR 5) crosses the drop-prob axis with grid
// replication factor R in {1, 2, 3}: at R >= 2, failover routing absorbs
// losses that R = 1 surfaces as degraded queries — the degraded fraction
// stays at zero far past the R = 1 knee, at the cost of R-fold stored
// blocks. One crashed node is included so failover is exercised against a
// dead machine, not just unlucky coins.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/fault.h"
#include "net/remote_worker.h"
#include "net/socket_backend.h"
#include "net/socket_transport.h"

namespace harmony {
namespace bench {
namespace {

/// One benchmark point, collected for BENCH_fault.json.
struct Row {
  std::string dataset;
  std::string backend = "sim";
  uint64_t rpcs = 0;
  uint64_t workers_killed = 0;
  double drop_prob = 0.0;
  size_t crashed_nodes = 0;
  size_t replication = 1;
  size_t num_queries = 0;
  double recall = 0.0;
  double degraded_recall = -1.0;
  double degraded_frac = 0.0;
  uint64_t blocks_lost = 0;
  uint64_t shards_lost = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t hedged = 0;
  double qps = 0.0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

/// Engine cache keyed also by replication factor: the shared GetEngine
/// cache is (world, mode, machines) and replication changes the stored
/// blocks, so replicated engines need their own slots.
HarmonyEngine* GetReplicatedEngine(const BenchWorld& world, size_t machines,
                                   size_t replication) {
  std::ostringstream key;
  key << &world << "/harmony/" << machines << "/R" << replication;
  auto& cache = internal::Cache<HarmonyEngine>();
  if (auto it = cache.find(key.str()); it != cache.end()) {
    return it->second.get();
  }
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmony, machines);
  opts.replication_factor = replication;
  return cache.emplace(key.str(), MakeEngine(opts, world)).first->second.get();
}

void FaultPointOn(benchmark::State& state, const std::string& dataset,
                  const FaultPlan& plan, HarmonyEngine* engine,
                  size_t replication, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  engine->SetFaultPlan(plan);
  BatchResult batch;
  for (auto _ : state) {
    auto result = engine->SearchBatch(world.data.workload.queries.View(),
                                      /*k=*/10, nprobe);
    HARMONY_CHECK_MSG(result.ok(), result.status().ToString());
    batch = std::move(result).value();
  }
  // The engine is cached across points: restore the fault-free plan so
  // later benches (or other registrations) see a healthy engine.
  engine->SetFaultPlan(FaultPlan{});
  const auto& gt = GetGroundTruth(world, 10);

  size_t degraded = 0;
  for (const uint8_t flag : batch.degraded) degraded += flag != 0;
  Row row;
  row.dataset = dataset;
  row.drop_prob = plan.drop_prob;
  row.crashed_nodes = plan.crashes.size();
  row.replication = replication;
  row.num_queries = batch.degraded.size();
  row.recall = MeanRecallAtK(batch.results, gt, 10);
  row.degraded_recall = RecallOverFlagged(batch.results, batch.degraded, gt,
                                          10);
  row.degraded_frac =
      batch.degraded.empty()
          ? 0.0
          : static_cast<double>(degraded) /
                static_cast<double>(batch.degraded.size());
  row.blocks_lost = batch.stats.faults.blocks_lost;
  row.shards_lost = batch.stats.faults.shards_lost;
  row.retries = batch.stats.faults.retries;
  row.failovers = batch.stats.faults.failovers;
  row.hedged = batch.stats.faults.hedged;
  row.qps = batch.stats.qps;
  Rows().push_back(row);

  state.counters["recall_at_10"] = row.recall;
  state.counters["degraded_recall"] = row.degraded_recall;
  state.counters["degraded_frac"] = row.degraded_frac;
  state.counters["blocks_lost"] = static_cast<double>(row.blocks_lost);
  state.counters["shards_lost"] = static_cast<double>(row.shards_lost);
  state.counters["retries"] = static_cast<double>(row.retries);
  state.counters["failovers"] = static_cast<double>(row.failovers);
  state.counters["hedged"] = static_cast<double>(row.hedged);
  state.counters["qps"] = row.qps;
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_fault\",\n"
               "  \"note\": \"recall/degraded fraction vs injected faults; "
               "the replication rows sweep grid replication factor R with "
               "one node crashed — at R >= 2 failover keeps the degraded "
               "fraction at zero\",\n"
               "  \"results\": [");
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"backend\": \"%s\", "
        "\"drop_prob\": %.2f, "
        "\"crashed_nodes\": %zu, \"replication\": %zu, "
        "\"workers_killed\": %llu, "
        "\"num_queries\": %zu, \"recall_at_10\": %.4f, "
        "\"degraded_recall\": %.4f, \"degraded_frac\": %.4f, "
        "\"blocks_lost\": %llu, \"shards_lost\": %llu, \"retries\": %llu, "
        "\"failovers\": %llu, \"hedged\": %llu, \"rpcs\": %llu, "
        "\"qps\": %.2f}",
        first ? "" : ",", r.dataset.c_str(), r.backend.c_str(), r.drop_prob,
        r.crashed_nodes,
        r.replication, static_cast<unsigned long long>(r.workers_killed),
        r.num_queries, r.recall, r.degraded_recall,
        r.degraded_frac, static_cast<unsigned long long>(r.blocks_lost),
        static_cast<unsigned long long>(r.shards_lost),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.hedged),
        static_cast<unsigned long long>(r.rpcs), r.qps);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

void FaultPoint(benchmark::State& state, const std::string& dataset,
                const FaultPlan& plan, size_t machines, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  FaultPointOn(state, dataset, plan,
               GetEngine(world, Mode::kHarmony, machines), /*replication=*/1,
               nprobe);
}

void ReplicationPoint(benchmark::State& state, const std::string& dataset,
                      const FaultPlan& plan, size_t machines,
                      size_t replication, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  FaultPointOn(state, dataset, plan,
               GetReplicatedEngine(world, machines, replication), replication,
               nprobe);
}

/// The real-socket transport row: in-process worker serve loops on
/// unix-domain sockets (thread workers, the multi-process topology without
/// fork cost in a bench), a frontend engine bit-identical by construction.
/// With kill_frames > 0 worker 1 hangs up for good after that many frames:
/// at R = 2 failover must absorb the death with zero degraded queries.
void SocketPoint(benchmark::State& state, const std::string& dataset,
                 size_t replication, uint64_t kill_frames, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmony, 4);
  opts.replication_factor = replication;
  // Bitwise-parity alignment across backends (docs/execution.md).
  opts.enable_pipeline = false;
  opts.pipeline_batch = 1 << 20;
  HarmonyEngine frontend(opts);
  HARMONY_CHECK(frontend.BuildFromIndex(*world.index).ok());

  constexpr size_t kWorkers = 2;
  std::vector<SocketAddr> addrs(kWorkers);
  std::vector<std::unique_ptr<HarmonyEngine>> engines;
  std::vector<std::unique_ptr<SocketWorker>> workers;
  std::vector<SocketListener> listeners;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (size_t w = 0; w < kWorkers; ++w) {
    addrs[w].is_unix = true;
    addrs[w].path = "/tmp/harmony_bench_" + std::to_string(getpid()) + "_" +
                    std::to_string(w) + ".sock";
    engines.push_back(std::make_unique<HarmonyEngine>(opts));
    HARMONY_CHECK(engines.back()->BuildFromIndex(*world.index).ok());
    SocketWorkerOptions wopts;
    wopts.worker_id = static_cast<uint32_t>(w);
    wopts.num_workers = kWorkers;
    wopts.poll_ms = 50;
    if (w == 1) wopts.faults.kill_after_frames = kill_frames;
    workers.push_back(
        std::make_unique<SocketWorker>(engines.back().get(), wopts));
    HARMONY_CHECK(workers.back()->Init().ok());
    auto listener = SocketListener::Listen(addrs[w]);
    HARMONY_CHECK_MSG(listener.ok(), listener.status().ToString());
    listeners.push_back(std::move(listener).value());
  }
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w]() {
      (void)workers[w]->Serve(&listeners[w], &stop);
    });
  }

  auto hello = MakeEngineHello(&frontend, 0, kWorkers);
  HARMONY_CHECK_MSG(hello.ok(), hello.status().ToString());
  SocketFrontendOptions fopts;
  fopts.rpc_deadline_ms = 5000;
  fopts.max_attempts = 2;
  SocketFrontend net(fopts);
  HARMONY_CHECK(net.Connect(addrs, hello.value()).ok());

  ThreadedOutput out;
  for (auto _ : state) {
    auto result = SearchBatchOverSockets(
        &frontend, &net, world.data.workload.queries.View(), /*k=*/10,
        nprobe);
    HARMONY_CHECK_MSG(result.ok(), result.status().ToString());
    out = std::move(result).value();
  }

  net.ShutdownWorkers();
  stop.store(true);
  for (std::thread& t : threads) t.join();
  for (const SocketAddr& a : addrs) unlink(a.path.c_str());

  const auto& gt = GetGroundTruth(world, 10);
  size_t degraded = 0;
  for (const uint8_t flag : out.degraded) degraded += flag != 0;
  Row row;
  row.dataset = dataset;
  row.backend = "socket";
  row.replication = replication;
  row.workers_killed = net.stats().workers_marked_dead;
  row.rpcs = net.stats().rpcs;
  row.num_queries = out.degraded.size();
  row.recall = MeanRecallAtK(out.results, gt, 10);
  row.degraded_recall = RecallOverFlagged(out.results, out.degraded, gt, 10);
  row.degraded_frac = out.degraded.empty()
                          ? 0.0
                          : static_cast<double>(degraded) /
                                static_cast<double>(out.degraded.size());
  row.blocks_lost = out.faults.blocks_lost;
  row.shards_lost = out.faults.shards_lost;
  row.retries = out.faults.retries;
  row.failovers = out.faults.failovers;
  row.hedged = out.faults.hedged;
  row.qps = out.wall_seconds > 0.0
                ? static_cast<double>(row.num_queries) / out.wall_seconds
                : 0.0;
  Rows().push_back(row);

  state.counters["recall_at_10"] = row.recall;
  state.counters["degraded_frac"] = row.degraded_frac;
  state.counters["failovers"] = static_cast<double>(row.failovers);
  state.counters["workers_killed"] = static_cast<double>(row.workers_killed);
  state.counters["rpcs"] = static_cast<double>(row.rpcs);
  state.counters["qps"] = row.qps;
}

void RegisterAll() {
  const size_t kMachines = 4;
  const size_t kNprobe = 4;
  for (const std::string& dataset : {std::string("sift1m"),
                                     std::string("glove1.2m")}) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
      FaultPlan plan;
      plan.seed = 1234;
      plan.drop_prob = drop;
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/drop:" << drop;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (size_t dead = 1; dead <= 3; ++dead) {
      FaultPlan plan;
      plan.seed = 1234;
      for (size_t m = 0; m < dead; ++m) {
        plan.crashes.push_back({m, 0.0});
      }
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/crashed:" << dead << "of"
           << kMachines;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  // Socket-backend rows: the real transport, fault-free at R = 1 and with
  // a worker killed mid-run at R = 2 (docs/failure_model.md).
  benchmark::RegisterBenchmark("fig_fault/sift1m/socket:R1", SocketPoint,
                               std::string("sift1m"), /*replication=*/1,
                               /*kill_frames=*/0, kNprobe)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig_fault/sift1m/socket:R2-killed", SocketPoint,
                               std::string("sift1m"), /*replication=*/2,
                               /*kill_frames=*/6, kNprobe)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  // Availability sweep: drop_prob x replication factor, with one node
  // crashed from the start so failover runs against a dead machine.
  for (const size_t replication : {size_t{1}, size_t{2}, size_t{3}}) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
      FaultPlan plan;
      plan.seed = 1234;
      plan.drop_prob = drop;
      plan.crashes.push_back({0, 0.0});
      std::ostringstream name;
      name << "fig_fault/sift1m/replication:" << replication
           << "/drop:" << drop;
      benchmark::RegisterBenchmark(name.str().c_str(), ReplicationPoint,
                                   std::string("sift1m"), plan, kMachines,
                                   replication, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_fault.json");
  return 0;
}
