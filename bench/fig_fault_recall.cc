// Fault-tolerance figure (extension beyond the paper): recall and degraded
// fraction as a function of injected fault severity.
//
// Two sweeps on the 4-node Harmony grid:
//  * drop-prob sweep — per-message drop probability from 0 to 0.5 with a
//    2-retry budget; recall should stay near the healthy value until the
//    loss rate pushes past the retry budget, then fall off gracefully;
//  * crashed-node sweep — kill 1..3 of the 4 machines from t=0; every
//    query still answers, recall decays roughly with the surviving fraction
//    of the grid.
//
// Counters: recall_at_10 (all queries), degraded_recall (degraded queries
// only; -1 when none), degraded_frac, blocks_lost, shards_lost, retries.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/fault.h"

namespace harmony {
namespace bench {
namespace {

void FaultPoint(benchmark::State& state, const std::string& dataset,
                const FaultPlan& plan, size_t machines, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  HarmonyEngine* engine = GetEngine(world, Mode::kHarmony, machines);
  engine->SetFaultPlan(plan);
  BatchResult batch;
  for (auto _ : state) {
    auto result = engine->SearchBatch(world.data.workload.queries.View(),
                                      /*k=*/10, nprobe);
    HARMONY_CHECK_MSG(result.ok(), result.status().ToString());
    batch = std::move(result).value();
  }
  // The engine is cached across points: restore the fault-free plan so
  // later benches (or other registrations) see a healthy engine.
  engine->SetFaultPlan(FaultPlan{});
  const auto& gt = GetGroundTruth(world, 10);

  size_t degraded = 0;
  for (const uint8_t flag : batch.degraded) degraded += flag != 0;
  state.counters["recall_at_10"] = MeanRecallAtK(batch.results, gt, 10);
  state.counters["degraded_recall"] =
      RecallOverFlagged(batch.results, batch.degraded, gt, 10);
  state.counters["degraded_frac"] =
      batch.degraded.empty()
          ? 0.0
          : static_cast<double>(degraded) /
                static_cast<double>(batch.degraded.size());
  state.counters["blocks_lost"] =
      static_cast<double>(batch.stats.faults.blocks_lost);
  state.counters["shards_lost"] =
      static_cast<double>(batch.stats.faults.shards_lost);
  state.counters["retries"] = static_cast<double>(batch.stats.faults.retries);
  state.counters["qps"] = batch.stats.qps;
}

void RegisterAll() {
  const size_t kMachines = 4;
  const size_t kNprobe = 4;
  for (const std::string& dataset : {std::string("sift1m"),
                                     std::string("glove")}) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
      FaultPlan plan;
      plan.seed = 1234;
      plan.drop_prob = drop;
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/drop:" << drop;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (size_t dead = 1; dead <= 3; ++dead) {
      FaultPlan plan;
      plan.seed = 1234;
      for (size_t m = 0; m < dead; ++m) {
        plan.crashes.push_back({m, 0.0});
      }
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/crashed:" << dead << "of"
           << kMachines;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
