// Fault-tolerance figure (extension beyond the paper): recall and degraded
// fraction as a function of injected fault severity.
//
// Two sweeps on the 4-node Harmony grid:
//  * drop-prob sweep — per-message drop probability from 0 to 0.5 with a
//    2-retry budget; recall should stay near the healthy value until the
//    loss rate pushes past the retry budget, then fall off gracefully;
//  * crashed-node sweep — kill 1..3 of the 4 machines from t=0; every
//    query still answers, recall decays roughly with the surviving fraction
//    of the grid.
//
// Counters: recall_at_10 (all queries), degraded_recall (degraded queries
// only; -1 when none), degraded_frac, blocks_lost, shards_lost, retries,
// failovers, hedged.
//
// A third sweep (availability, PR 5) crosses the drop-prob axis with grid
// replication factor R in {1, 2, 3}: at R >= 2, failover routing absorbs
// losses that R = 1 surfaces as degraded queries — the degraded fraction
// stays at zero far past the R = 1 knee, at the cost of R-fold stored
// blocks. One crashed node is included so failover is exercised against a
// dead machine, not just unlucky coins.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "net/fault.h"

namespace harmony {
namespace bench {
namespace {

/// One benchmark point, collected for BENCH_fault.json.
struct Row {
  std::string dataset;
  double drop_prob = 0.0;
  size_t crashed_nodes = 0;
  size_t replication = 1;
  size_t num_queries = 0;
  double recall = 0.0;
  double degraded_recall = -1.0;
  double degraded_frac = 0.0;
  uint64_t blocks_lost = 0;
  uint64_t shards_lost = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t hedged = 0;
  double qps = 0.0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

/// Engine cache keyed also by replication factor: the shared GetEngine
/// cache is (world, mode, machines) and replication changes the stored
/// blocks, so replicated engines need their own slots.
HarmonyEngine* GetReplicatedEngine(const BenchWorld& world, size_t machines,
                                   size_t replication) {
  std::ostringstream key;
  key << &world << "/harmony/" << machines << "/R" << replication;
  auto& cache = internal::Cache<HarmonyEngine>();
  if (auto it = cache.find(key.str()); it != cache.end()) {
    return it->second.get();
  }
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmony, machines);
  opts.replication_factor = replication;
  return cache.emplace(key.str(), MakeEngine(opts, world)).first->second.get();
}

void FaultPointOn(benchmark::State& state, const std::string& dataset,
                  const FaultPlan& plan, HarmonyEngine* engine,
                  size_t replication, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  engine->SetFaultPlan(plan);
  BatchResult batch;
  for (auto _ : state) {
    auto result = engine->SearchBatch(world.data.workload.queries.View(),
                                      /*k=*/10, nprobe);
    HARMONY_CHECK_MSG(result.ok(), result.status().ToString());
    batch = std::move(result).value();
  }
  // The engine is cached across points: restore the fault-free plan so
  // later benches (or other registrations) see a healthy engine.
  engine->SetFaultPlan(FaultPlan{});
  const auto& gt = GetGroundTruth(world, 10);

  size_t degraded = 0;
  for (const uint8_t flag : batch.degraded) degraded += flag != 0;
  Row row;
  row.dataset = dataset;
  row.drop_prob = plan.drop_prob;
  row.crashed_nodes = plan.crashes.size();
  row.replication = replication;
  row.num_queries = batch.degraded.size();
  row.recall = MeanRecallAtK(batch.results, gt, 10);
  row.degraded_recall = RecallOverFlagged(batch.results, batch.degraded, gt,
                                          10);
  row.degraded_frac =
      batch.degraded.empty()
          ? 0.0
          : static_cast<double>(degraded) /
                static_cast<double>(batch.degraded.size());
  row.blocks_lost = batch.stats.faults.blocks_lost;
  row.shards_lost = batch.stats.faults.shards_lost;
  row.retries = batch.stats.faults.retries;
  row.failovers = batch.stats.faults.failovers;
  row.hedged = batch.stats.faults.hedged;
  row.qps = batch.stats.qps;
  Rows().push_back(row);

  state.counters["recall_at_10"] = row.recall;
  state.counters["degraded_recall"] = row.degraded_recall;
  state.counters["degraded_frac"] = row.degraded_frac;
  state.counters["blocks_lost"] = static_cast<double>(row.blocks_lost);
  state.counters["shards_lost"] = static_cast<double>(row.shards_lost);
  state.counters["retries"] = static_cast<double>(row.retries);
  state.counters["failovers"] = static_cast<double>(row.failovers);
  state.counters["hedged"] = static_cast<double>(row.hedged);
  state.counters["qps"] = row.qps;
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_fault\",\n"
               "  \"note\": \"recall/degraded fraction vs injected faults; "
               "the replication rows sweep grid replication factor R with "
               "one node crashed — at R >= 2 failover keeps the degraded "
               "fraction at zero\",\n"
               "  \"results\": [");
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"drop_prob\": %.2f, "
        "\"crashed_nodes\": %zu, \"replication\": %zu, "
        "\"num_queries\": %zu, \"recall_at_10\": %.4f, "
        "\"degraded_recall\": %.4f, \"degraded_frac\": %.4f, "
        "\"blocks_lost\": %llu, \"shards_lost\": %llu, \"retries\": %llu, "
        "\"failovers\": %llu, \"hedged\": %llu, \"qps\": %.2f}",
        first ? "" : ",", r.dataset.c_str(), r.drop_prob, r.crashed_nodes,
        r.replication, r.num_queries, r.recall, r.degraded_recall,
        r.degraded_frac, static_cast<unsigned long long>(r.blocks_lost),
        static_cast<unsigned long long>(r.shards_lost),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.hedged), r.qps);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

void FaultPoint(benchmark::State& state, const std::string& dataset,
                const FaultPlan& plan, size_t machines, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  FaultPointOn(state, dataset, plan,
               GetEngine(world, Mode::kHarmony, machines), /*replication=*/1,
               nprobe);
}

void ReplicationPoint(benchmark::State& state, const std::string& dataset,
                      const FaultPlan& plan, size_t machines,
                      size_t replication, size_t nprobe) {
  const BenchWorld& world = GetWorld(dataset);
  FaultPointOn(state, dataset, plan,
               GetReplicatedEngine(world, machines, replication), replication,
               nprobe);
}

void RegisterAll() {
  const size_t kMachines = 4;
  const size_t kNprobe = 4;
  for (const std::string& dataset : {std::string("sift1m"),
                                     std::string("glove1.2m")}) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
      FaultPlan plan;
      plan.seed = 1234;
      plan.drop_prob = drop;
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/drop:" << drop;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (size_t dead = 1; dead <= 3; ++dead) {
      FaultPlan plan;
      plan.seed = 1234;
      for (size_t m = 0; m < dead; ++m) {
        plan.crashes.push_back({m, 0.0});
      }
      std::ostringstream name;
      name << "fig_fault/" << dataset << "/crashed:" << dead << "of"
           << kMachines;
      benchmark::RegisterBenchmark(name.str().c_str(), FaultPoint, dataset,
                                   plan, kMachines, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  // Availability sweep: drop_prob x replication factor, with one node
  // crashed from the start so failover runs against a dead machine.
  for (const size_t replication : {size_t{1}, size_t{2}, size_t{3}}) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
      FaultPlan plan;
      plan.seed = 1234;
      plan.drop_prob = drop;
      plan.crashes.push_back({0, 0.0});
      std::ostringstream name;
      name << "fig_fault/sift1m/replication:" << replication
           << "/drop:" << drop;
      benchmark::RegisterBenchmark(name.str().c_str(), ReplicationPoint,
                                   std::string("sift1m"), plan, kMachines,
                                   replication, kNprobe)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_fault.json");
  return 0;
}
