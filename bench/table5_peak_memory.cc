// Table 5: peak per-node memory during query execution per strategy,
// four nodes.
//
// Expected shape: peak memory proportional to dataset bytes; the
// dimension-splitting strategies add intermediate-result overhead that
// *shrinks relative to* stored data as dimensionality grows; Harmony sits
// between Harmony-vector and Harmony-dimension.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

uint64_t PeakBytes(const BenchWorld& world, Mode mode) {
  return RunMode(world, mode, 4, /*k=*/10, /*nprobe=*/8, /*with_recall=*/false)
      .stats.memory.peak_query_bytes;
}

void PeakMemory(benchmark::State& state, const std::string& dataset) {
  const BenchWorld& world = GetWorld(dataset);
  uint64_t vec = 0, har = 0, dim = 0, pq = 0;
  MemoryStats mut;
  for (auto _ : state) {
    vec = PeakBytes(world, Mode::kHarmonyVector);
    har = PeakBytes(world, Mode::kHarmony);
    dim = PeakBytes(world, Mode::kHarmonyDimension);
    // Compressed column: quantized block streams (16x8-bit codes, exact
    // rerank) on the same grid; stored code streams add to the footprint
    // while in-flight intermediates shrink with the compressed scans.
    pq = RunSearch(world, GetPqEngine(world, Mode::kHarmony, 4,
                                      /*subspaces=*/16, /*rerank_depth=*/40),
                   /*k=*/10, /*nprobe=*/8, /*with_recall=*/false)
             .stats.memory.peak_query_bytes;
    // Mutable-store columns: peak execution against a pending update wave
    // (1% inserts, 0.5% deletes) — the epoch fold re-materializes the
    // delta rows inside the scanned stores, and the delta buffers +
    // tombstone bitset ride on top until a merge (docs/mutability.md).
    // Fresh engine: the cached ones must stay pristine.
    std::unique_ptr<HarmonyEngine> fresh =
        MakeEngine(MakeOptions(world, Mode::kHarmony, 4), world);
    const size_t rows = world.data.mixture.vectors.size();
    const size_t inserts = rows / 100 > 0 ? rows / 100 : 1;
    const DatasetView wave(world.data.mixture.vectors.Row(0), inserts,
                           world.data.mixture.vectors.dim());
    HARMONY_CHECK(fresh->InsertVectors(wave).ok());
    std::vector<int64_t> victims;
    for (size_t i = 0; i < rows; i += 200) {
      victims.push_back(static_cast<int64_t>(i));
    }
    HARMONY_CHECK(fresh->DeleteVectors(victims).ok());
    mut = RunSearch(world, fresh.get(), /*k=*/10, /*nprobe=*/8,
                    /*with_recall=*/false)
              .stats.memory;
    const MemoryStats stored = fresh->IndexMemory();
    mut.delta_bytes_total = stored.delta_bytes_total;
    mut.tombstone_bytes = stored.tombstone_bytes;
  }
  state.counters["harmony_vector_MB"] = static_cast<double>(vec) / 1e6;
  state.counters["harmony_MB"] = static_cast<double>(har) / 1e6;
  state.counters["harmony_dimension_MB"] = static_cast<double>(dim) / 1e6;
  state.counters["harmony_pq_MB"] = static_cast<double>(pq) / 1e6;
  state.counters["dim_overhead_pct"] =
      vec > 0 ? 100.0 * (static_cast<double>(dim) - static_cast<double>(vec)) /
                    static_cast<double>(vec)
              : 0.0;
  state.counters["harmony_delta_peak_MB"] =
      static_cast<double>(mut.peak_query_bytes) / 1e6;
  state.counters["delta_shard_MB"] =
      static_cast<double>(mut.delta_bytes_total) / 1e6;
  state.counters["tombstone_KB"] =
      static_cast<double>(mut.tombstone_bytes) / 1e3;
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  for (const std::string& dataset : harmony::bench::SmallDatasetNames()) {
    benchmark::RegisterBenchmark(("table5/" + dataset).c_str(),
                                 harmony::bench::PeakMemory, dataset)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
