// Table 3: average pruning ratio per dimension slice (split of size 4)
// across the eight small datasets, four nodes.
//
// Expected shape (paper): first slice 0%, second ~33.6% avg, third ~66.2%,
// fourth ~92.3%; strongly dataset-dependent, with the final slice always
// above 80%.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

void PruningRatio(benchmark::State& state, const std::string& dataset) {
  const BenchWorld& world = GetWorld(dataset);
  HarmonyOptions opts = MakeOptions(world, Mode::kHarmonyDimension, 4);
  opts.enable_pipeline = false;  // Fixed order: position == physical slice.
  auto engine = MakeEngine(opts, world);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine.get(), /*k=*/10, /*nprobe=*/4,
                        /*with_recall=*/false);
  }
  const PruneStats& prune = outcome.stats.prune;
  state.counters["slice1_pct"] = 100.0 * prune.PruneRatioAt(0);
  state.counters["slice2_pct"] = 100.0 * prune.PruneRatioAt(1);
  state.counters["slice3_pct"] = 100.0 * prune.PruneRatioAt(2);
  state.counters["slice4_pct"] = 100.0 * prune.PruneRatioAt(3);
  state.counters["avg_pct"] = 100.0 * prune.AveragePruneRatio();
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  for (const std::string& dataset : harmony::bench::SmallDatasetNames()) {
    benchmark::RegisterBenchmark(("table3/" + dataset).c_str(),
                                 harmony::bench::PruningRatio, dataset)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
