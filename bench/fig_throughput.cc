// Throughput sweep: query-group shared scans x intra-node parallelism.
//
// Fig6-style setup (Harmony on 4 worker nodes, k=10) sweeping
// ExecOptions::threads_per_node and the query-group size. QPS and makespan
// are simulated-cluster virtual time: threads_per_node maps to per-node
// compute lanes (SimNode::ChargeComputeAt), so the reported speedup is the
// cost model's — independent of how many cores the host running this binary
// happens to have (recorded as host_hardware_threads for honesty).
// Bytes-streamed comes from the union-of-group-rows accounting both
// engines share: with shared scans a row streamed for a whole query group
// is billed once for the group instead of once per surviving query.
//
// Emits BENCH_throughput.json (tools/run_benches.sh refreshes it).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  double zipf = 0.0;
  size_t nprobe = 0;
  size_t machines = 0;
  size_t threads_per_node = 0;
  bool shared_scans = false;
  size_t query_group_size = 0;
  size_t num_queries = 0;
  size_t pq_subspaces = 0;  // 0 = float block streams
  size_t rerank_depth = 0;
  double qps = 0.0;
  double makespan_seconds = 0.0;
  double recall = 0.0;
  uint64_t bytes_streamed = 0;
  uint64_t bytes_compressed = 0;
  uint64_t total_bytes = 0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

void ThroughputPoint(benchmark::State& state, const std::string& dataset,
                     double zipf, size_t threads_per_node, bool shared_scans,
                     size_t group_size, size_t nprobe, size_t pq_subspaces,
                     size_t rerank_depth) {
  constexpr size_t kMachines = 4;
  const BenchWorld& world = GetWorld(dataset, zipf);
  HarmonyEngine* engine =
      pq_subspaces > 0
          ? GetPqEngine(world, Mode::kHarmony, kMachines, pq_subspaces,
                        rerank_depth)
          : GetEngine(world, Mode::kHarmony, kMachines);
  engine->SetParallelism(threads_per_node, group_size, shared_scans);
  RunOutcome outcome;
  for (auto _ : state) {
    outcome = RunSearch(world, engine, /*k=*/10, nprobe);
  }
  engine->SetParallelism(1, 4, true);  // restore defaults for other points

  Row row;
  row.dataset = dataset;
  row.zipf = zipf;
  row.nprobe = nprobe;
  row.machines = kMachines;
  row.threads_per_node = threads_per_node;
  row.shared_scans = shared_scans;
  row.query_group_size = group_size;
  row.num_queries = world.data.workload.queries.View().size();
  row.pq_subspaces = pq_subspaces;
  row.rerank_depth = rerank_depth;
  row.qps = outcome.stats.qps;
  row.makespan_seconds = outcome.stats.makespan_seconds;
  row.recall = outcome.recall;
  row.bytes_streamed = outcome.stats.breakdown.total_bytes_streamed;
  row.bytes_compressed = outcome.stats.breakdown.total_bytes_compressed;
  row.total_bytes = outcome.stats.breakdown.total_bytes;
  Rows().push_back(row);

  state.counters["qps"] = row.qps;
  state.counters["recall_at_10"] = row.recall;
  state.counters["bytes_streamed"] = static_cast<double>(row.bytes_streamed);
  state.counters["threads_per_node"] = static_cast<double>(threads_per_node);
  state.counters["group_size"] =
      static_cast<double>(shared_scans ? group_size : 1);
  if (pq_subspaces > 0) {
    state.counters["bytes_compressed"] =
        static_cast<double>(row.bytes_compressed);
  }
}

void Register(const std::string& dataset, double zipf, size_t threads,
              bool shared, size_t group, size_t nprobe, size_t pq = 0,
              size_t rerank_depth = 0) {
  std::string name = "fig_throughput/" + dataset + "/zipf:" +
                     std::to_string(zipf) + "/tpn:" + std::to_string(threads) +
                     (shared ? "/shared:g" + std::to_string(group)
                             : "/unshared") +
                     "/nprobe:" + std::to_string(nprobe) +
                     (pq > 0 ? "/pq:m" + std::to_string(pq) : "");
  benchmark::RegisterBenchmark(name.c_str(), ThroughputPoint, dataset, zipf,
                               threads, shared, group, nprobe, pq,
                               rerank_depth)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  constexpr size_t kNprobe = 8;
  const std::string dataset = "sift1m";
  for (const double zipf : {0.0, 1.0}) {
    // Threads-per-node sweep, shared scans on (default group) and off.
    for (const size_t threads : {1, 2, 4, 8}) {
      Register(dataset, zipf, threads, /*shared=*/true, /*group=*/4, kNprobe);
      Register(dataset, zipf, threads, /*shared=*/false, /*group=*/1, kNprobe);
    }
    // Group-size sweep at a fixed thread count.
    for (const size_t group : {2, 8}) {
      Register(dataset, zipf, /*threads=*/4, /*shared=*/true, group, kNprobe);
    }
    // Quantized block streams on/off at the default point (the off twins
    // are registered above): 16x8-bit PQ codes, exact rerank of the 40
    // best ADC candidates per chain (docs/quantization.md).
    Register(dataset, zipf, /*threads=*/1, /*shared=*/true, /*group=*/4,
             kNprobe, /*pq=*/16, /*rerank_depth=*/160);
    Register(dataset, zipf, /*threads=*/1, /*shared=*/false, /*group=*/1,
             kNprobe, /*pq=*/16, /*rerank_depth=*/160);
  }
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_throughput\",\n"
               "  \"host_hardware_threads\": %u,\n"
               "  \"note\": \"qps/makespan are simulated virtual time; "
               "threads_per_node maps to per-node compute lanes, so the "
               "speedup is the cost model's, not the host's\",\n"
               "  \"results\": [",
               std::thread::hardware_concurrency());
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"zipf\": %.2f, \"nprobe\": %zu, "
        "\"machines\": %zu, \"threads_per_node\": %zu, "
        "\"shared_scans\": %s, \"query_group_size\": %zu, "
        "\"num_queries\": %zu, \"pq_subspaces\": %zu, "
        "\"rerank_depth\": %zu, \"qps\": %.2f, \"makespan_seconds\": %.6f, "
        "\"recall_at_10\": %.4f, \"bytes_streamed\": %llu, "
        "\"bytes_streamed_per_query\": %.1f, \"bytes_compressed\": %llu, "
        "\"total_bytes\": %llu}",
        first ? "" : ",", r.dataset.c_str(), r.zipf, r.nprobe, r.machines,
        r.threads_per_node, r.shared_scans ? "true" : "false",
        r.query_group_size, r.num_queries, r.pq_subspaces, r.rerank_depth,
        r.qps, r.makespan_seconds,
        r.recall, static_cast<unsigned long long>(r.bytes_streamed),
        static_cast<double>(r.bytes_streamed) /
            static_cast<double>(r.num_queries),
        static_cast<unsigned long long>(r.bytes_compressed),
        static_cast<unsigned long long>(r.total_bytes));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_throughput.json");
  return 0;
}
