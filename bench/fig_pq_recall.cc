// Quantized block streams: recall/compression curve (docs/quantization.md).
//
// Sweeps the PQ subspace budget M (8-bit codewords) and the exact-rerank
// depth on the 4-node Harmony grid and records, per point, recall@10
// against the float path, the per-row compression ratio, and the
// streamed-byte split (compressed code bytes vs float bytes, including the
// rerank's float re-reads). The acceptance contract for the quantized path
// lives here: recall@10 after the rerank stays within 0.005 of the float
// engine while the streamed bytes drop by the code compression factor.
//
// Emits BENCH_pq.json (tools/run_benches.sh refreshes it).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace harmony {
namespace bench {
namespace {

struct Row {
  std::string dataset;
  size_t nprobe = 0;
  size_t machines = 0;
  size_t pq_subspaces = 0;
  size_t rerank_depth = 0;
  size_t num_queries = 0;
  double float_recall = 0.0;
  double pq_recall = 0.0;
  double qps = 0.0;
  uint64_t code_bytes_stored = 0;
  double row_compression_x = 0.0;  // float row bytes / code row bytes
  uint64_t bytes_streamed = 0;       // PQ path, incl. rerank float re-reads
  uint64_t bytes_compressed = 0;     // code-byte share of bytes_streamed
  uint64_t float_bytes_streamed = 0; // float-path twin at the same point
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

void PqPoint(benchmark::State& state, const std::string& dataset,
             size_t subspaces, size_t rerank_depth) {
  constexpr size_t kMachines = 4;
  constexpr size_t kNprobe = 8;
  const BenchWorld& world = GetWorld(dataset);
  HarmonyEngine* flt = GetEngine(world, Mode::kHarmony, kMachines);
  HarmonyEngine* pq =
      GetPqEngine(world, Mode::kHarmony, kMachines, subspaces, rerank_depth);

  RunOutcome flt_out, pq_out;
  for (auto _ : state) {
    flt_out = RunSearch(world, flt, /*k=*/10, kNprobe);
    pq_out = RunSearch(world, pq, /*k=*/10, kNprobe);
  }

  Row row;
  row.dataset = dataset;
  row.nprobe = kNprobe;
  row.machines = kMachines;
  row.pq_subspaces = subspaces;
  row.rerank_depth = rerank_depth;
  row.num_queries = world.data.workload.queries.View().size();
  row.float_recall = flt_out.recall;
  row.pq_recall = pq_out.recall;
  row.qps = pq_out.stats.qps;
  const MemoryStats mem = pq->IndexMemory();
  row.code_bytes_stored = mem.index_code_bytes;
  // Per-row: width*4 float bytes vs one byte per subspace code.
  size_t code_row_bytes = 0;
  const GridQuantizer& q = pq->quantizer();
  for (size_t d = 0; d < q.num_blocks(); ++d) code_row_bytes += q.code_size(d);
  row.row_compression_x =
      code_row_bytes > 0 ? static_cast<double>(q.dim() * sizeof(float)) /
                               static_cast<double>(code_row_bytes)
                         : 0.0;
  row.bytes_streamed = pq_out.stats.breakdown.total_bytes_streamed;
  row.bytes_compressed = pq_out.stats.breakdown.total_bytes_compressed;
  row.float_bytes_streamed = flt_out.stats.breakdown.total_bytes_streamed;
  Rows().push_back(row);

  state.counters["pq_recall_at_10"] = row.pq_recall;
  state.counters["float_recall_at_10"] = row.float_recall;
  state.counters["recall_delta"] = row.float_recall - row.pq_recall;
  state.counters["row_compression_x"] = row.row_compression_x;
  state.counters["streamed_drop_x"] =
      row.bytes_streamed > 0
          ? static_cast<double>(row.float_bytes_streamed) /
                static_cast<double>(row.bytes_streamed)
          : 0.0;
}

void RegisterAll() {
  const std::string dataset = "sift1m";
  // Depth sweep at the serving budget M=16: depth 160 is the serving
  // configuration (the acceptance point: recall@10 within 0.005 of the
  // float path at a >= 8x streamed-byte drop), depth 0 reranks every ADC
  // survivor and is the recall ceiling of the quantized path.
  for (const size_t depth : {40, 100, 140, 160, 200, 0}) {
    std::string name = "fig_pq/" + dataset + "/m:16/rerank:" +
                       std::to_string(depth);
    benchmark::RegisterBenchmark(name.c_str(), PqPoint, dataset,
                                 size_t{16}, depth)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Subspace sweep at the serving depth: the compression/recall trade.
  for (const size_t m : {4, 8, 32}) {
    std::string name = "fig_pq/" + dataset + "/m:" + std::to_string(m) +
                       "/rerank:160";
    benchmark::RegisterBenchmark(name.c_str(), PqPoint, dataset, m,
                                 size_t{160})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for write\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_pq\",\n"
               "  \"note\": \"quantized block streams: 8-bit PQ codes on "
               "the 4-node grid, ADC scans with conservative prune bounds, "
               "exact float rerank at the rank barrier; bytes_streamed "
               "includes the rerank's float re-reads\",\n"
               "  \"results\": [");
  bool first = true;
  for (const Row& r : Rows()) {
    std::fprintf(
        f,
        "%s\n    {\"dataset\": \"%s\", \"nprobe\": %zu, \"machines\": %zu, "
        "\"pq_subspaces\": %zu, \"rerank_depth\": %zu, \"num_queries\": %zu, "
        "\"float_recall_at_10\": %.4f, \"pq_recall_at_10\": %.4f, "
        "\"recall_delta\": %.4f, \"qps\": %.2f, "
        "\"code_bytes_stored\": %llu, \"row_compression_x\": %.2f, "
        "\"bytes_streamed\": %llu, \"bytes_compressed\": %llu, "
        "\"float_bytes_streamed\": %llu, \"streamed_drop_x\": %.2f}",
        first ? "" : ",", r.dataset.c_str(), r.nprobe, r.machines,
        r.pq_subspaces, r.rerank_depth, r.num_queries, r.float_recall,
        r.pq_recall, r.float_recall - r.pq_recall, r.qps,
        static_cast<unsigned long long>(r.code_bytes_stored),
        r.row_compression_x,
        static_cast<unsigned long long>(r.bytes_streamed),
        static_cast<unsigned long long>(r.bytes_compressed),
        static_cast<unsigned long long>(r.float_bytes_streamed),
        r.bytes_streamed > 0
            ? static_cast<double>(r.float_bytes_streamed) /
                  static_cast<double>(r.bytes_streamed)
            : 0.0);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace harmony

int main(int argc, char** argv) {
  harmony::SetLogLevel(harmony::LogLevel::kWarn);
  harmony::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  harmony::bench::WriteJson("BENCH_pq.json");
  return 0;
}
