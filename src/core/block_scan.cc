#include "core/block_scan.h"

#include <algorithm>

#include "core/pruning.h"
#include "index/scan_kernel.h"
#include "util/logging.h"

namespace harmony {

namespace {

/// Historical per-candidate loop: single-row kernels, scalar prune test,
/// compaction interleaved with accumulation. Kept as the bitwise reference
/// the batched path is regression-tested against.
size_t ScanBlockReference(const BlockScanParams& p, size_t begin, size_t count,
                          int64_t* id, int32_t* list, int32_t* row,
                          float* partial, float* rem_p_sq,
                          BlockScanCounters* counters) {
  const bool use_ip = p.metric != Metric::kL2;
  size_t w = 0;
  for (size_t i = begin; i < begin + count; ++i) {
    if (p.prune && CanPrune(p.metric, partial[i],
                            p.use_norms ? rem_p_sq[i] : 0.0f, p.rem_q_sq,
                            p.tau)) {
      ++counters->dropped;
      continue;
    }
    const ListSlice* ls = p.slices[static_cast<size_t>(list[i])];
    HARMONY_CHECK_MSG(ls != nullptr, "missing list slice on machine");
    const float* vrow = ls->slice.Row(static_cast<size_t>(row[i]));
    if (use_ip) {
      partial[i] += PartialIp(p.q_slice, vrow, p.width);
      if (p.use_norms) {
        rem_p_sq[i] -= ls->block_norm_sq[static_cast<size_t>(row[i])];
      }
    } else {
      partial[i] += PartialL2Sq(p.q_slice, vrow, p.width);
    }
    counters->ops += DistanceOpCost(p.width);
    const size_t dst = begin + w;
    id[dst] = id[i];
    list[dst] = list[i];
    row[dst] = row[i];
    partial[dst] = partial[i];
    if (p.use_norms) rem_p_sq[dst] = rem_p_sq[i];
    ++w;
  }
  return w;
}

/// Pass 1 of the batched path: evaluate the CanPrune bounds
/// kPruneMaskWidth candidates at a time into a survivor mask, compacting
/// the SoA arrays in place — no row data is touched for pruned candidates.
size_t PruneCompact(const BlockScanParams& p, size_t begin, size_t count,
                    int64_t* id, int32_t* list, int32_t* row, float* partial,
                    float* rem_p_sq, BlockScanCounters* counters) {
  const ScanKernelTable& kt = ScanKernels();
  const bool use_ip = p.metric != Metric::kL2;
  size_t w = 0;  // Write offset relative to `begin`.
  size_t i = 0;
  while (i < count) {
    const size_t chunk = std::min(kPruneMaskWidth, count - i);
    uint32_t mask;
    if (!use_ip) {
      mask = kt.prune_mask_l2(partial + begin + i, chunk, p.tau);
    } else if (p.use_norms) {
      mask = kt.prune_mask_ip(partial + begin + i, rem_p_sq + begin + i,
                              chunk, p.rem_q_sq, p.tau);
    } else {
      // IP without the norm column cannot occur in the engines (pruning
      // needs > 1 block, which materializes norms); fall back to the exact
      // scalar bound for completeness.
      mask = 0;
      for (size_t j = 0; j < chunk; ++j) {
        if (CanPrune(p.metric, partial[begin + i + j], 0.0f, p.rem_q_sq,
                     p.tau)) {
          mask |= uint32_t{1} << j;
        }
      }
    }
    if (mask == 0 && w == i) {
      // Nothing pruned and no gap accumulated yet: the chunk is already in
      // place.
      w += chunk;
      i += chunk;
      continue;
    }
    for (size_t j = 0; j < chunk; ++j) {
      if ((mask & (uint32_t{1} << j)) != 0) {
        ++counters->dropped;
        continue;
      }
      const size_t src = begin + i + j;
      const size_t dst = begin + w;
      if (dst != src) {
        id[dst] = id[src];
        list[dst] = list[src];
        row[dst] = row[src];
        partial[dst] = partial[src];
        if (p.use_norms) rem_p_sq[dst] = rem_p_sq[src];
      }
      ++w;
    }
    i += chunk;
  }
  return w;
}

/// Pass 2 of the batched path: split the (list-major, row-ascending)
/// survivors into runs of consecutive rows of one list slice and stream
/// each run through the batched kernels.
void ScanRuns(const BlockScanParams& p, size_t begin, size_t survivors,
              const int32_t* list, const int32_t* row, float* partial,
              float* rem_p_sq) {
  const ScanKernelTable& kt = ScanKernels();
  const bool use_ip = p.metric != Metric::kL2;
  size_t j = 0;
  while (j < survivors) {
    const int32_t li = list[begin + j];
    const ListSlice* ls = p.slices[static_cast<size_t>(li)];
    HARMONY_CHECK_MSG(ls != nullptr, "missing list slice on machine");
    const size_t r0 = static_cast<size_t>(row[begin + j]);
    size_t run = 1;
    while (j + run < survivors && list[begin + j + run] == li &&
           static_cast<size_t>(row[begin + j + run]) == r0 + run) {
      ++run;
    }
    const float* rows = ls->slice.RowBlock(r0, run);
    if (use_ip) {
      kt.ip_batch(p.q_slice, rows, run, p.width, partial + begin + j);
      if (p.use_norms) {
        const float* bn = ls->block_norm_sq.data() + r0;
        for (size_t t = 0; t < run; ++t) rem_p_sq[begin + j + t] -= bn[t];
      }
    } else {
      kt.l2_batch(p.q_slice, rows, run, p.width, partial + begin + j);
    }
    j += run;
  }
}

}  // namespace

size_t ScanBlock(const BlockScanParams& p, size_t begin, size_t count,
                 int64_t* id, int32_t* list, int32_t* row, float* partial,
                 float* rem_p_sq, BlockScanCounters* counters) {
  if (!p.use_batched) {
    return ScanBlockReference(p, begin, count, id, list, row, partial,
                              rem_p_sq, counters);
  }
  size_t w = count;
  if (p.prune) {
    w = PruneCompact(p, begin, count, id, list, row, partial, rem_p_sq,
                     counters);
  }
  ScanRuns(p, begin, w, list, row, partial, rem_p_sq);
  counters->ops += static_cast<uint64_t>(w) * DistanceOpCost(p.width);
  return w;
}

}  // namespace harmony
