#include "core/block_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/pruning.h"
#include "index/scan_kernel.h"
#include "util/logging.h"

namespace harmony {

namespace {

/// The stage's kernel table: the dispatch's recorded tier table when one is
/// attached (plan-recorded replay), otherwise the process-wide resolved
/// table — the historical behavior of default-constructed params.
inline const ScanKernelTable& TableOf(const KernelDispatch& d) {
  return d.table != nullptr ? *d.table : ScanKernels();
}

/// Cross-run streaming prefetch (tuned distance): touch the head rows of
/// the *next* candidate run while the current run's kernel streams, so the
/// walk does not stall on the list-slice boundary. A pure memory hint —
/// never reads out of bounds (capped by the slice's row count) and never
/// changes results.
inline void PrefetchRunHead(const DimSlicedMatrix& slice, size_t r0,
                            size_t rows_ahead) {
  const size_t limit = std::min(r0 + rows_ahead, slice.num_rows());
  for (size_t r = r0; r < limit; ++r) {
    __builtin_prefetch(slice.Row(r), 0 /*read*/, 1 /*low locality*/);
  }
}

/// Folds one row's raw ADC sum into the candidate's running partial and
/// conservative prune bound (docs/quantization.md). Scalar on purpose: the
/// batched path calls it row by row after the adc_batch kernel, so reference
/// and batched PQ scans share one arithmetic sequence.
///
/// `partial` is the rerank's ranking score: the midpoint of the conservative
/// interval around the true partial. L2 brackets ||q-p||_d between
/// (sqrt(adc) -+ err)^2, whose midpoint is adc + err^2 — rows whose codes
/// reconstruct poorly carry the least trustworthy ADC estimates and rank
/// behind equally-scored rows with tight codes, which measurably sharpens
/// the depth pick. IP brackets <q,p>_d symmetrically (adc -+ ||q|| err), so
/// its midpoint is the raw sum. `bound` keeps the sound end of the interval
/// for the monotone prune masks.
inline void AccumulateAdc(const BlockScanParams& p, bool use_ip, float adc,
                          float err, float* partial, float* bound) {
  if (use_ip) {
    *partial += adc;
    // <q,p> <= <q,p_hat> + ||q|| * ||p - p_hat|| (Cauchy–Schwarz).
    *bound += adc + p.q_band_norm * err;
  } else {
    *partial += adc + err * err;
    // ||q-p|| >= ||q-p_hat|| - ||p-p_hat|| (triangle inequality).
    const float t = std::sqrt(adc) - err;
    *bound += t > 0.0f ? t * t : 0.0f;
  }
}

/// Historical per-candidate loop: single-row kernels, scalar prune test,
/// compaction interleaved with accumulation. Kept as the bitwise reference
/// the batched path is regression-tested against.
size_t ScanBlockReference(const BlockScanParams& p, size_t begin, size_t count,
                          int64_t* id, int32_t* list, int32_t* row,
                          float* partial, float* rem_p_sq, float* bound,
                          BlockScanCounters* counters) {
  const ScanKernelTable& kt = TableOf(p.dispatch);
  const bool use_ip = p.metric != Metric::kL2;
  const bool use_pq = p.luts != nullptr;
  size_t w = 0;
  for (size_t i = begin; i < begin + count; ++i) {
    if (p.prune && CanPrune(p.metric, use_pq ? bound[i] : partial[i],
                            p.use_norms ? rem_p_sq[i] : 0.0f, p.rem_q_sq,
                            p.tau)) {
      ++counters->dropped;
      continue;
    }
    const ListSlice* ls = p.slices[static_cast<size_t>(list[i])];
    HARMONY_CHECK_MSG(ls != nullptr, "missing list slice on machine");
    if (use_pq) {
      const float* lut = p.luts[static_cast<size_t>(list[i])];
      const size_t r = static_cast<size_t>(row[i]);
      const uint8_t* code = ls->codes.data() + r * p.code_size;
      float adc = 0.0f;
      for (size_t m = 0; m < p.code_size; ++m) {
        adc += lut[m * p.ksub + code[m]];
      }
      AccumulateAdc(p, use_ip, adc, ls->code_err[r], &partial[i], &bound[i]);
      if (use_ip && p.use_norms) rem_p_sq[i] -= ls->block_norm_sq[r];
      counters->ops += DistanceOpCost(p.code_size);
    } else {
      const float* vrow = ls->slice.Row(static_cast<size_t>(row[i]));
      if (use_ip) {
        partial[i] += kt.ip_row(p.q_slice, vrow, p.width);
        if (p.use_norms) {
          rem_p_sq[i] -= ls->block_norm_sq[static_cast<size_t>(row[i])];
        }
      } else {
        partial[i] += kt.l2_row(p.q_slice, vrow, p.width);
      }
      counters->ops += DistanceOpCost(p.width);
    }
    const size_t dst = begin + w;
    id[dst] = id[i];
    list[dst] = list[i];
    row[dst] = row[i];
    partial[dst] = partial[i];
    if (p.use_norms) rem_p_sq[dst] = rem_p_sq[i];
    if (use_pq) bound[dst] = bound[i];
    ++w;
  }
  return w;
}

/// Pass 1 of the batched path: evaluate the CanPrune bounds
/// kPruneMaskWidth candidates at a time into a survivor mask, compacting
/// the SoA arrays in place — no row data is touched for pruned candidates.
size_t PruneCompact(const BlockScanParams& p, size_t begin, size_t count,
                    int64_t* id, int32_t* list, int32_t* row, float* partial,
                    float* rem_p_sq, float* bound, BlockScanCounters* counters) {
  const ScanKernelTable& kt = TableOf(p.dispatch);
  const bool use_ip = p.metric != Metric::kL2;
  const bool use_pq = p.luts != nullptr;
  // PQ streams test the conservative bound column with the same mask
  // kernels; the bound is a sound stand-in for the exact partial (lower
  // bound for L2, upper bound for IP), so pruning stays monotone.
  const float* gate = use_pq ? bound : partial;
  size_t w = 0;  // Write offset relative to `begin`.
  size_t i = 0;
  while (i < count) {
    const size_t chunk = std::min(kPruneMaskWidth, count - i);
    uint64_t mask;
    if (!use_ip) {
      mask = kt.prune_mask_l2(gate + begin + i, chunk, p.tau);
    } else if (p.use_norms) {
      mask = kt.prune_mask_ip(gate + begin + i, rem_p_sq + begin + i,
                              chunk, p.rem_q_sq, p.tau);
    } else {
      // IP without the norm column cannot occur in the engines (pruning
      // needs > 1 block, which materializes norms); fall back to the exact
      // scalar bound for completeness.
      mask = 0;
      for (size_t j = 0; j < chunk; ++j) {
        if (CanPrune(p.metric, gate[begin + i + j], 0.0f, p.rem_q_sq,
                     p.tau)) {
          mask |= uint64_t{1} << j;
        }
      }
    }
    if (mask == 0 && w == i) {
      // Nothing pruned and no gap accumulated yet: the chunk is already in
      // place.
      w += chunk;
      i += chunk;
      continue;
    }
    for (size_t j = 0; j < chunk; ++j) {
      if ((mask & (uint64_t{1} << j)) != 0) {
        ++counters->dropped;
        continue;
      }
      const size_t src = begin + i + j;
      const size_t dst = begin + w;
      if (dst != src) {
        id[dst] = id[src];
        list[dst] = list[src];
        row[dst] = row[src];
        partial[dst] = partial[src];
        if (p.use_norms) rem_p_sq[dst] = rem_p_sq[src];
        if (use_pq) bound[dst] = bound[src];
      }
      ++w;
    }
    i += chunk;
  }
  return w;
}

/// Chunk size of the adc_batch scratch buffer: big enough to amortize the
/// kernel call, small enough for the stack.
constexpr size_t kAdcChunk = 256;

/// PQ twin of a batched run: the code rows stream through the ADC kernel in
/// kAdcChunk tiles, then a scalar post-pass folds each row's ADC sum into
/// the partial/bound columns — the same AccumulateAdc sequence the
/// reference loop runs, so the two PQ paths are bit-identical.
void ScanCodeRun(const BlockScanParams& p, bool use_ip, const ListSlice* ls,
                 const float* lut, size_t r0, size_t run, float* partial,
                 float* rem_p_sq, float* bound) {
  const ScanKernelTable& kt = TableOf(p.dispatch);
  float adc[kAdcChunk];
  size_t done = 0;
  while (done < run) {
    const size_t n = std::min(kAdcChunk, run - done);
    const uint8_t* codes = ls->codes.data() + (r0 + done) * p.code_size;
    kt.adc_batch(lut, p.ksub, codes, p.code_size, n, adc);
    const float* err = ls->code_err.data() + r0 + done;
    for (size_t t = 0; t < n; ++t) {
      AccumulateAdc(p, use_ip, adc[t], err[t], &partial[done + t],
                    &bound[done + t]);
    }
    if (use_ip && p.use_norms) {
      const float* bn = ls->block_norm_sq.data() + r0 + done;
      for (size_t t = 0; t < n; ++t) rem_p_sq[done + t] -= bn[t];
    }
    done += n;
  }
}

/// Pass 2 of the batched path: split the (list-major, row-ascending)
/// survivors into runs of consecutive rows of one list slice and stream
/// each run through the batched kernels.
void ScanRuns(const BlockScanParams& p, size_t begin, size_t survivors,
              const int32_t* list, const int32_t* row, float* partial,
              float* rem_p_sq, float* bound) {
  const ScanKernelTable& kt = TableOf(p.dispatch);
  const bool shaped = p.dispatch.table != nullptr;
  const size_t pf_rows = shaped ? p.dispatch.shape.prefetch : 0;
  const bool use_ip = p.metric != Metric::kL2;
  const bool use_pq = p.luts != nullptr;
  size_t j = 0;
  while (j < survivors) {
    const int32_t li = list[begin + j];
    const ListSlice* ls = p.slices[static_cast<size_t>(li)];
    HARMONY_CHECK_MSG(ls != nullptr, "missing list slice on machine");
    const size_t r0 = static_cast<size_t>(row[begin + j]);
    size_t run = 1;
    while (j + run < survivors && list[begin + j + run] == li &&
           static_cast<size_t>(row[begin + j + run]) == r0 + run) {
      ++run;
    }
    // Cross-run streaming: while this run's kernel prefetches within the
    // run, the boundary into the next run (usually another list's slice)
    // has no coverage — hint its head rows now, at the tuned distance.
    if (pf_rows > 0 && !use_pq && j + run < survivors) {
      const int32_t nli = list[begin + j + run];
      const ListSlice* nls = p.slices[static_cast<size_t>(nli)];
      if (nls != nullptr) {
        PrefetchRunHead(nls->slice,
                        static_cast<size_t>(row[begin + j + run]), pf_rows);
      }
    }
    if (use_pq) {
      // Runs never cross lists, so one residual ADC table covers the run.
      ScanCodeRun(p, use_ip, ls, p.luts[static_cast<size_t>(li)], r0, run,
                  partial + begin + j,
                  rem_p_sq == nullptr ? nullptr : rem_p_sq + begin + j,
                  bound + begin + j);
    } else {
      const float* rows = ls->slice.RowBlock(r0, run);
      if (use_ip) {
        if (shaped) {
          kt.ip_batch_shaped(p.q_slice, rows, run, p.width,
                             partial + begin + j, p.dispatch.shape);
        } else {
          kt.ip_batch(p.q_slice, rows, run, p.width, partial + begin + j);
        }
        if (p.use_norms) {
          const float* bn = ls->block_norm_sq.data() + r0;
          for (size_t t = 0; t < run; ++t) rem_p_sq[begin + j + t] -= bn[t];
        }
      } else {
        if (shaped) {
          kt.l2_batch_shaped(p.q_slice, rows, run, p.width,
                             partial + begin + j, p.dispatch.shape);
        } else {
          kt.l2_batch(p.q_slice, rows, run, p.width, partial + begin + j);
        }
      }
    }
    j += run;
  }
}

}  // namespace

size_t ScanBlock(const BlockScanParams& p, size_t begin, size_t count,
                 int64_t* id, int32_t* list, int32_t* row, float* partial,
                 float* rem_p_sq, float* bound, BlockScanCounters* counters) {
  if (!p.use_batched) {
    return ScanBlockReference(p, begin, count, id, list, row, partial,
                              rem_p_sq, bound, counters);
  }
  size_t w = count;
  if (p.prune) {
    w = PruneCompact(p, begin, count, id, list, row, partial, rem_p_sq, bound,
                     counters);
  }
  ScanRuns(p, begin, w, list, row, partial, rem_p_sq, bound);
  counters->ops += static_cast<uint64_t>(w) *
                   DistanceOpCost(p.luts != nullptr ? p.code_size : p.width);
  return w;
}

namespace {

/// A member's contiguous candidate range for one IVF list (rows ascending;
/// gaps where candidates were pruned). `cursor` advances as tiles are
/// consumed.
struct ListSeg {
  size_t member;
  size_t cursor;
  size_t end;
};

/// One distinct IVF list touched by the group, in first-appearance order
/// across members (within a stage every candidate is touched exactly once,
/// so list processing order cannot affect bits).
struct ListWork {
  int32_t global_list;
  const ListSlice* ls;
  std::vector<ListSeg> segs;
};

BlockScanParams MemberParams(const GroupScanParams& p,
                             const GroupMemberScan& m) {
  BlockScanParams mp;
  mp.metric = p.metric;
  mp.use_norms = p.use_norms;
  mp.prune = m.prune;
  mp.tau = m.tau;
  mp.rem_q_sq = m.rem_q_sq;
  mp.q_slice = m.q_slice;
  mp.width = p.width;
  mp.slices = m.slices;
  mp.use_batched = p.use_batched;
  mp.luts = m.luts;
  mp.ksub = p.ksub;
  mp.code_size = p.code_size;
  mp.q_band_norm = m.q_band_norm;
  mp.dispatch = p.dispatch;
  return mp;
}

}  // namespace

uint64_t ScanBlockGroup(const GroupScanParams& p, GroupMemberScan* members,
                        size_t num_members) {
  const bool use_ip = p.metric != Metric::kL2;
  const uint64_t row_bytes =
      p.use_pq ? p.code_size : p.width * sizeof(float);
  if (!p.use_batched) {
    // Reference mode: solo reference scans, one per member. No sharing, so
    // every survivor streams its own row.
    uint64_t bytes = 0;
    for (size_t m = 0; m < num_members; ++m) {
      GroupMemberScan& mem = members[m];
      mem.survivors = ScanBlockReference(
          MemberParams(p, mem), 0, mem.count, mem.id, mem.list, mem.row,
          mem.partial, mem.rem_p_sq, mem.bound, &mem.counters);
      bytes += static_cast<uint64_t>(mem.survivors) * row_bytes;
    }
    return bytes;
  }

  // Pass 1: per-member prune-compaction, each against its own tau.
  for (size_t m = 0; m < num_members; ++m) {
    GroupMemberScan& mem = members[m];
    if (mem.prune) {
      mem.survivors =
          PruneCompact(MemberParams(p, mem), 0, mem.count, mem.id, mem.list,
                       mem.row, mem.partial, mem.rem_p_sq, mem.bound,
                       &mem.counters);
    } else {
      mem.survivors = mem.count;
    }
    mem.counters.ops +=
        static_cast<uint64_t>(mem.survivors) *
        DistanceOpCost(p.use_pq ? p.code_size : p.width);
  }

  // Segment discovery: survivors are list-major, so each member contributes
  // one contiguous segment per probed list; match segments across members by
  // global list id, keeping first-appearance order.
  std::vector<ListWork> lists;
  for (size_t m = 0; m < num_members; ++m) {
    const GroupMemberScan& mem = members[m];
    size_t j = 0;
    while (j < mem.survivors) {
      const int32_t li = mem.list[j];
      const size_t b = j;
      while (j < mem.survivors && mem.list[j] == li) ++j;
      const int32_t gl = mem.global_lists[static_cast<size_t>(li)];
      const ListSlice* ls = mem.slices[static_cast<size_t>(li)];
      HARMONY_CHECK_MSG(ls != nullptr, "missing list slice on machine");
      ListWork* work = nullptr;
      for (ListWork& lw : lists) {
        if (lw.global_list == gl) {
          work = &lw;
          break;
        }
      }
      if (work == nullptr) {
        lists.push_back(ListWork{gl, ls, {}});
        work = &lists.back();
      }
      HARMONY_CHECK_MSG(work->ls == ls, "co-probing members disagree on slice");
      work->segs.push_back(ListSeg{m, b, j});
    }
  }

  // Pass 2: per list, merge-walk the members' row streams into row-aligned
  // tiles. A tile is a run of consecutive rows that every member of the
  // subset S wants next; it is cut short where a member outside S would
  // join, so divergent streams re-align at the earliest opportunity.
  const ScanKernelTable& kt = TableOf(p.dispatch);
  const bool shaped = p.dispatch.table != nullptr;
  const size_t pf_rows = shaped ? p.dispatch.shape.prefetch : 0;
  std::vector<const float*> qs(num_members);
  std::vector<float*> accums(num_members);
  std::vector<ListSeg*> active(num_members);
  uint64_t bytes = 0;
  for (ListWork& lw : lists) {
    for (;;) {
      int32_t rmin = -1;
      for (ListSeg& seg : lw.segs) {
        if (seg.cursor >= seg.end) continue;
        const int32_t r = members[seg.member].row[seg.cursor];
        if (rmin < 0 || r < rmin) rmin = r;
      }
      if (rmin < 0) break;
      size_t len = std::numeric_limits<size_t>::max();
      size_t ns = 0;
      for (ListSeg& seg : lw.segs) {
        if (seg.cursor >= seg.end) continue;
        const GroupMemberScan& mem = members[seg.member];
        const int32_t r = mem.row[seg.cursor];
        if (r == rmin) {
          size_t run = 1;
          while (seg.cursor + run < seg.end &&
                 mem.row[seg.cursor + run] == rmin + static_cast<int32_t>(run)) {
            ++run;
          }
          len = std::min(len, run);
          active[ns++] = &seg;
        } else {
          // A member waiting at a later row caps the tile so it can join
          // the next one.
          len = std::min(len, static_cast<size_t>(r - rmin));
        }
      }
      if (p.use_pq) {
        // The code tile is streamed once for the subset; per member the
        // ADC accumulation is the solo ScanCodeRun sequence (each member
        // has its own LUT, so there is no cross-query ADC kernel — the
        // shared stream is the byte win, the compute is already cheap).
        for (size_t s = 0; s < ns; ++s) {
          GroupMemberScan& mem = members[active[s]->member];
          // The segment's member-local list id selects the member's
          // residual ADC table for this list (constant across the segment).
          const float* lut =
              mem.luts[static_cast<size_t>(mem.list[active[s]->cursor])];
          ScanCodeRun(MemberParams(p, mem), use_ip, lw.ls, lut,
                      static_cast<size_t>(rmin), len,
                      mem.partial + active[s]->cursor,
                      mem.rem_p_sq == nullptr
                          ? nullptr
                          : mem.rem_p_sq + active[s]->cursor,
                      mem.bound + active[s]->cursor);
        }
      } else {
        const float* rows =
            lw.ls->slice.RowBlock(static_cast<size_t>(rmin), len);
        // Merge-walk streaming: the tile's kernel prefetches within the
        // tile; hint the rows just past it (the likely next tile of this
        // list) at the tuned distance so the walk crosses tile boundaries
        // without a cold stall.
        if (pf_rows > 0) {
          PrefetchRunHead(lw.ls->slice, static_cast<size_t>(rmin) + len,
                          pf_rows);
        }
        if (ns == 1) {
          const GroupMemberScan& mem = members[active[0]->member];
          float* acc = mem.partial + active[0]->cursor;
          if (use_ip) {
            if (shaped) {
              kt.ip_batch_shaped(mem.q_slice, rows, len, p.width, acc,
                                 p.dispatch.shape);
            } else {
              kt.ip_batch(mem.q_slice, rows, len, p.width, acc);
            }
          } else {
            if (shaped) {
              kt.l2_batch_shaped(mem.q_slice, rows, len, p.width, acc,
                                 p.dispatch.shape);
            } else {
              kt.l2_batch(mem.q_slice, rows, len, p.width, acc);
            }
          }
        } else {
          for (size_t s = 0; s < ns; ++s) {
            const GroupMemberScan& mem = members[active[s]->member];
            qs[s] = mem.q_slice;
            accums[s] = mem.partial + active[s]->cursor;
          }
          if (use_ip) {
            if (shaped) {
              kt.ip_group_shaped(qs.data(), ns, rows, len, p.width,
                                 accums.data(), p.dispatch.shape);
            } else {
              kt.ip_group(qs.data(), ns, rows, len, p.width, accums.data());
            }
          } else {
            if (shaped) {
              kt.l2_group_shaped(qs.data(), ns, rows, len, p.width,
                                 accums.data(), p.dispatch.shape);
            } else {
              kt.l2_group(qs.data(), ns, rows, len, p.width, accums.data());
            }
          }
        }
        if (use_ip && p.use_norms) {
          const float* bn =
              lw.ls->block_norm_sq.data() + static_cast<size_t>(rmin);
          for (size_t s = 0; s < ns; ++s) {
            float* rp = members[active[s]->member].rem_p_sq + active[s]->cursor;
            for (size_t t = 0; t < len; ++t) rp[t] -= bn[t];
          }
        }
      }
      for (size_t s = 0; s < ns; ++s) active[s]->cursor += len;
      bytes += static_cast<uint64_t>(len) * row_bytes;
    }
  }
  return bytes;
}

}  // namespace harmony
