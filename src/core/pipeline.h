#ifndef HARMONY_CORE_PIPELINE_H_
#define HARMONY_CORE_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "core/pruning.h"
#include "core/router.h"
#include "core/stats.h"
#include "core/worker.h"
#include "index/ivf_index.h"
#include "net/cluster.h"
#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Execution knobs; each maps to one of the optimizations isolated
/// in the paper's Figure 9 ablation.
struct ExecOptions {
  Metric metric = Metric::kL2;
  size_t k = 10;
  size_t nprobe = 8;
  /// Dimension-level early stop (Algorithm 1 lines 8-11).
  bool enable_pruning = true;
  /// Staggered dimension-block ordering + asynchronous execution; when off,
  /// every chain walks blocks 0..B-1 in physical order and the engine uses
  /// blocking communication.
  bool enable_pipeline = true;
  /// Load-aware dynamic ordering: blocks owned by currently-overloaded
  /// machines are deferred to late pipeline stages where pruning has
  /// removed most candidates (Section 4.3, "Load Balancing Strategies").
  bool dynamic_dim_order = true;
  /// Client-cached sample vectors per IVF list for heap prewarming.
  size_t prewarm_per_list = 4;
  /// Candidates per pipeline batch. Each batch streams through the chain's
  /// dimension stages independently and its completed distances tighten the
  /// query's threshold before the next batch is checked — the granularity
  /// at which Algorithm 1's UpdatePruning refines τ.
  size_t pipeline_batch = 256;
  /// Batched block-scan kernels (docs/kernels.md): vectorized
  /// prune-compaction + multi-row SIMD partial distances over list-major
  /// candidate runs. Off selects the historical per-candidate reference
  /// loop; both paths are bitwise identical in results, op charges and
  /// virtual-clock timings (regression-tested), so this knob exists only
  /// for that A/B and for perf bisection.
  bool use_batched_kernels = true;
  /// --- Query-group shared scans + intra-node parallelism (PR 3).
  /// Shared scans: chains that co-probe a shard at the same pipeline stage
  /// (BatchRouting::chain_group) stream each dimension block's rows once
  /// per group instead of once per query. In the threaded engine this picks
  /// the group dispatch path; in the simulated engine execution is
  /// unchanged (per-query accumulation order and tie-breaking are
  /// preserved, so results are byte-identical on/off) and only the
  /// bytes-streamed cost accounting switches to group-shared billing.
  bool shared_scans = true;
  /// Query-group size cap (chains per group); must match the group_size the
  /// routing was built with. 1 degenerates to per-query scans.
  size_t query_group_size = 4;
  /// Intra-node parallel execution: worker threads per node in the threaded
  /// engine, and compute lanes per simulated node (SimNode::ChargeComputeAt)
  /// in the simulator. 1 keeps both engines on their historical serial
  /// per-node path, bit-for-bit.
  size_t threads_per_node = 1;
  /// Optional metadata filter: when `labels` is non-null (one int32 per
  /// global vector id), only candidates whose label equals `allowed_label`
  /// are scanned — predicate push-down into the first dimension stage.
  const std::vector<int32_t>* labels = nullptr;
  int32_t allowed_label = -1;
  /// --- Fault handling (docs/failure_model.md). The simulated engine reads
  /// the fault plan from its SimCluster; `faults` here is what
  /// ExecuteThreaded builds its ThreadedCluster from. These knobs shape the
  /// coordinator's reaction: how often a lost message is resent before the
  /// target block is declared lost and the query completes degraded.
  FaultPlan faults;
  size_t max_retries = 2;
  /// Hard wall-clock bail-out for the threaded coordinator: when > 0, a
  /// batch that fails to finish within this budget (e.g. a lost baton)
  /// returns Status kTimeout instead of blocking forever. 0 disables.
  double max_wall_seconds = 0.0;
};

/// \brief Results and instrumentation of one simulated batch execution.
struct PipelineOutput {
  std::vector<std::vector<Neighbor>> results;
  PruneStats prune;
  /// Peak per-machine in-flight intermediate bytes (query slices + partial
  /// result vectors) over the widest vector-pipeline stage.
  uint64_t peak_intermediate_bytes = 0;
  /// Virtual completion time of each query (its last chain's result merged
  /// at the client); queries all arrive at t=0, so this is also the
  /// per-query latency.
  std::vector<double> query_completion_seconds;
  /// Per-query degraded flag (size num_queries, all zero on a healthy run):
  /// the query's results were computed from an incomplete pipeline because
  /// a shard or dimension block was lost past the retry budget.
  std::vector<uint8_t> degraded;
  FaultStats faults;
};

/// \brief Runs the full Algorithm 1 pipeline on the simulated cluster:
/// prewarm -> vector pipeline over chains -> dimension pipeline per chain,
/// charging every compute/transfer to the cluster's virtual clocks.
///
/// All distance arithmetic is executed for real; only its *cost* is
/// simulated. Results are exact with pruning on or off (pruning is sound).
Result<PipelineOutput> ExecuteSimulated(const IvfIndex& index,
                                        const PartitionPlan& plan,
                                        const std::vector<WorkerStore>& stores,
                                        const PrewarmCache& prewarm,
                                        const BatchRouting& routing,
                                        const DatasetView& queries,
                                        const ExecOptions& opts,
                                        SimCluster* cluster);

}  // namespace harmony

#endif  // HARMONY_CORE_PIPELINE_H_
