#ifndef HARMONY_CORE_PIPELINE_H_
#define HARMONY_CORE_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "core/exec_plan.h"
#include "core/partition.h"
#include "core/pruning.h"
#include "core/router.h"
#include "core/stats.h"
#include "core/worker.h"
#include "index/ivf_index.h"
#include "net/cluster.h"
#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Results and instrumentation of one simulated batch execution.
struct PipelineOutput {
  std::vector<std::vector<Neighbor>> results;
  PruneStats prune;
  /// Peak per-machine in-flight intermediate bytes (query slices + partial
  /// result vectors) over the widest vector-pipeline stage.
  uint64_t peak_intermediate_bytes = 0;
  /// Virtual completion time of each query (its last chain's result merged
  /// at the client); queries all arrive at t=0, so this is also the
  /// per-query latency.
  std::vector<double> query_completion_seconds;
  /// Per-query degraded flag (size num_queries, all zero on a healthy run):
  /// the query's results were computed from an incomplete pipeline because
  /// a shard or dimension block was lost past the retry budget.
  std::vector<uint8_t> degraded;
  FaultStats faults;
};

/// \brief Runs the full Algorithm 1 pipeline on the simulated cluster:
/// prewarm -> vector pipeline over chains -> dimension pipeline per chain,
/// charging every compute/transfer to the cluster's virtual clocks.
///
/// The chain lifecycle (candidate build, loss schedules, stage ordering,
/// fault booking, scan parameters, shared-scan billing) lives in
/// core/exec_plan.cc and core/chain_exec.cc, shared with ExecuteThreaded;
/// this engine contributes the discrete-event schedule over the cluster's
/// virtual clocks (see docs/execution.md).
///
/// All distance arithmetic is executed for real; only its *cost* is
/// simulated. Results are exact with pruning on or off (pruning is sound).
Result<PipelineOutput> ExecuteSimulated(const IvfIndex& index,
                                        const PartitionPlan& plan,
                                        const std::vector<WorkerStore>& stores,
                                        const PrewarmCache& prewarm,
                                        const BatchRouting& routing,
                                        const DatasetView& queries,
                                        const ExecOptions& opts,
                                        SimCluster* cluster);

}  // namespace harmony

#endif  // HARMONY_CORE_PIPELINE_H_
