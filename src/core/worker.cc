#include "core/worker.h"

#include <cmath>

#include "index/distance.h"
#include "index/pq.h"

namespace harmony {

namespace {

/// Encodes slice rows [begin_row, num_rows) of block `dim_block` into the
/// list's code stream. Codes quantize the row's *coarse-centroid residual*
/// (IVFADC): `c_slice` is the list centroid restricted to this block's
/// columns, and row p encodes r = p - c. The recorded slack
/// ||r - decode(code)|| equals ||p - (c + decode(code))||, so the ADC prune
/// bounds stay conservative unchanged (docs/quantization.md).
void EncodeCodeRows(const GridQuantizer& pq, size_t dim_block,
                    const float* c_slice, size_t begin_row, ListSlice* ls) {
  const ProductQuantizer& q = pq.block(dim_block);
  const size_t width = q.dim();
  const size_t rows = ls->slice.num_rows();
  ls->code_size = q.code_size();
  ls->codes.resize(rows * q.code_size());
  ls->code_err.resize(rows);
  std::vector<float> residual(width);
  std::vector<float> decoded(width);
  for (size_t r = begin_row; r < rows; ++r) {
    const float* row = ls->slice.Row(r);
    for (size_t k = 0; k < width; ++k) residual[k] = row[k] - c_slice[k];
    uint8_t* code = ls->codes.data() + r * q.code_size();
    q.Encode(residual.data(), code);
    q.Decode(code, decoded.data());
    ls->code_err[r] =
        std::sqrt(PartialL2Sq(residual.data(), decoded.data(), width));
  }
}

}  // namespace

void WorkerStore::IndexBlock(size_t index) {
  const Block& block = blocks_[index];
  block_index_.emplace(BlockKey(block.vec_shard, block.dim_block), index);
}

const ListSlice* WorkerStore::FindListSlice(size_t vec_shard,
                                            size_t dim_block,
                                            int32_t list_id) const {
  const auto bit = block_index_.find(BlockKey(vec_shard, dim_block));
  if (bit == block_index_.end()) return nullptr;
  const Block& block = blocks_[bit->second];
  const auto it = block.lists.find(list_id);
  return it == block.lists.end() ? nullptr : &it->second;
}

Status WorkerStore::AppendVector(size_t vec_shard, size_t dim_block,
                                 int32_t list_id, DimRange range,
                                 const float* full_vector, size_t full_dim,
                                 int64_t global_id, bool with_norms,
                                 const GridQuantizer* pq,
                                 const float* centroid) {
  const auto bit = block_index_.find(BlockKey(vec_shard, dim_block));
  if (bit == block_index_.end()) {
    return Status::NotFound("machine does not own the requested block");
  }
  Block& block = blocks_[bit->second];
  auto [it, inserted] = block.lists.try_emplace(list_id);
  ListSlice& ls = it->second;
  if (inserted) {
    // First row of a list that was empty at build time: seed a zero-row
    // matrix carrying the block's column range, then append into it.
    auto empty = DimSlicedMatrix::FromColumns(
        DatasetView(full_vector, 1, full_dim), range, {});
    if (!empty.ok()) return empty.status();
    ls.slice = std::move(empty).value();
  }
  ls.slice.AppendFullRow(full_vector, global_id);
  if (with_norms) {
    const float* slice_row = ls.slice.Row(ls.slice.num_rows() - 1);
    ls.block_norm_sq.push_back(PartialIp(slice_row, slice_row, range.width()));
    ls.total_norm_sq.push_back(PartialIp(full_vector, full_vector, full_dim));
  }
  if (pq != nullptr && pq->trained()) {
    if (centroid == nullptr) {
      return Status::InvalidArgument(
          "residual code streams need the list's coarse centroid");
    }
    EncodeCodeRows(*pq, dim_block, centroid + range.begin,
                   ls.slice.num_rows() - 1, &ls);
  }
  return Status::OK();
}

size_t WorkerStore::SizeBytes() const {
  size_t bytes = 0;
  for (const Block& block : blocks_) {
    for (const auto& [list_id, slice] : block.lists) {
      (void)list_id;
      bytes += slice.SizeBytes();
    }
  }
  return bytes;
}

size_t WorkerStore::CodeBytes() const {
  size_t bytes = 0;
  for (const Block& block : blocks_) {
    for (const auto& [list_id, slice] : block.lists) {
      (void)list_id;
      bytes += slice.CodeBytes();
    }
  }
  return bytes;
}

Result<std::vector<WorkerStore>> BuildWorkerStores(const IvfIndex& index,
                                                   const PartitionPlan& plan,
                                                   bool with_norms,
                                                   const GridQuantizer* pq) {
  if (!index.trained()) {
    return Status::FailedPrecondition("index must be trained");
  }
  if (pq != nullptr && pq->trained() &&
      pq->num_blocks() != plan.num_dim_blocks) {
    return Status::InvalidArgument(
        "grid quantizer block count does not match the partition plan");
  }
  std::vector<WorkerStore> stores(plan.num_machines);
  for (size_t m = 0; m < plan.num_machines; ++m) {
    stores[m].machine_id_ = static_cast<int>(m);
  }

  for (size_t v = 0; v < plan.num_vec_shards; ++v) {
    for (size_t d = 0; d < plan.num_dim_blocks; ++d) {
      // Materialize block (v, d) on every replica machine; replica 0 is the
      // MachineOf owner and the only copy on unreplicated plans.
      for (size_t rep = 0; rep < plan.replication; ++rep) {
        const size_t machine = static_cast<size_t>(plan.ReplicaOf(v, d, rep));
        WorkerStore::Block block;
        block.vec_shard = v;
        block.dim_block = d;
        block.range = plan.dim_ranges[d];
        for (const int32_t list_id : plan.shard_lists[v]) {
          const DatasetView vectors =
              index.ListVectors(static_cast<size_t>(list_id));
          if (vectors.empty()) continue;
          ListSlice ls;
          HARMONY_ASSIGN_OR_RETURN(
              ls.slice,
              DimSlicedMatrix::FromAllRows(
                  vectors, block.range,
                  index.ListIds(static_cast<size_t>(list_id))));
          if (with_norms) {
            ls.block_norm_sq.resize(ls.slice.num_rows());
            ls.total_norm_sq.resize(ls.slice.num_rows());
            for (size_t r = 0; r < ls.slice.num_rows(); ++r) {
              const float* row = ls.slice.Row(r);
              ls.block_norm_sq[r] = PartialIp(row, row, block.range.width());
              const float* full = vectors.Row(r);
              ls.total_norm_sq[r] = PartialIp(full, full, vectors.dim());
            }
          }
          if (pq != nullptr && pq->trained()) {
            EncodeCodeRows(
                *pq, d,
                index.centroids().Row(static_cast<size_t>(list_id)) +
                    block.range.begin,
                0, &ls);
          }
          block.lists.emplace(list_id, std::move(ls));
        }
        stores[machine].blocks_.push_back(std::move(block));
        stores[machine].IndexBlock(stores[machine].blocks_.size() - 1);
      }
    }
  }
  return stores;
}

void DeltaShard::Append(const float* row, size_t full_dim, int64_t id,
                        int32_t list, const std::vector<DimRange>& ranges) {
  dim = full_dim;
  if (block_rows.size() != ranges.size()) block_rows.resize(ranges.size());
  full_rows.insert(full_rows.end(), row, row + full_dim);
  ids.push_back(id);
  lists.push_back(list);
  for (size_t d = 0; d < ranges.size(); ++d) {
    block_rows[d].insert(block_rows[d].end(), row + ranges[d].begin,
                         row + ranges[d].end);
  }
}

void DeltaShard::Reslice(const std::vector<DimRange>& ranges) {
  block_rows.assign(ranges.size(), {});
  for (size_t r = 0; r < rows(); ++r) {
    const float* row = full_rows.data() + r * dim;
    for (size_t d = 0; d < ranges.size(); ++d) {
      block_rows[d].insert(block_rows[d].end(), row + ranges[d].begin,
                           row + ranges[d].end);
    }
  }
}

void DeltaShard::Clear() {
  full_rows.clear();
  ids.clear();
  lists.clear();
  block_rows.clear();
}

size_t DeltaShard::SizeBytes() const {
  size_t bytes = full_rows.size() * sizeof(float) +
                 ids.size() * sizeof(int64_t) + lists.size() * sizeof(int32_t);
  for (const std::vector<float>& b : block_rows) {
    bytes += b.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace harmony
