#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace harmony {

double WorkloadProfile::TotalProbedCandidates() const {
  double total = 0.0;
  for (size_t l = 0; l < list_probe_count.size(); ++l) {
    total += list_probe_count[l] * static_cast<double>(list_sizes[l]);
  }
  return total;
}

WorkloadProfile ProfileWorkload(const IvfIndex& index,
                                const DatasetView& queries, size_t k,
                                size_t nprobe, size_t sample) {
  WorkloadProfile profile;
  profile.num_queries = queries.size();
  profile.dim = index.dim();
  profile.k = k;
  profile.nprobe = nprobe;
  profile.list_sizes = index.ListSizes();
  profile.list_probe_count.assign(index.nlist(), 0.0);

  size_t routed = queries.size();
  if (sample > 0) routed = std::min(routed, sample);
  if (routed == 0) return profile;
  // Uniform stride so the sample spans the batch.
  const size_t stride = std::max<size_t>(1, queries.size() / routed);
  size_t seen = 0;
  for (size_t q = 0; q < queries.size() && seen < routed; q += stride, ++seen) {
    for (const int32_t l : index.ProbeLists(queries.Row(q), nprobe)) {
      profile.list_probe_count[static_cast<size_t>(l)] += 1.0;
    }
  }
  // Scale the sample back up to the full batch.
  const double scale =
      static_cast<double>(queries.size()) / static_cast<double>(seen);
  for (double& c : profile.list_probe_count) c *= scale;
  return profile;
}

std::string CostEstimate::ToString() const {
  std::ostringstream os;
  os << "cost{total=" << total_cost << "s comp=" << comp_seconds
     << "s comm=" << comm_seconds << "s imbalance=" << imbalance << "s}";
  return os.str();
}

CostEstimate EstimatePlanCost(const PartitionPlan& plan,
                              const WorkloadProfile& profile,
                              const CostModelParams& params) {
  CostEstimate est;
  est.node_load_seconds.assign(plan.num_machines, 0.0);
  const NetworkModel net(params.net);
  const double ops_per_sec = params.machine.ops_per_sec;
  const size_t b_dim = plan.num_dim_blocks;

  // Expected survival fraction of candidates entering dimension-pipeline
  // position j. With rotation/dynamic ordering every machine sees every
  // position equally often, so each machine's expected share uses the mean
  // survival across positions.
  double mean_survival = 1.0;
  if (params.pruning_enabled && b_dim > 1) {
    double total = 0.0, s = 1.0;
    for (size_t j = 0; j < b_dim; ++j) {
      total += s;
      s *= params.pruning_survival;
    }
    mean_survival = total / static_cast<double>(b_dim);
  }

  // Quantized block streams: per-block scan cost in ops (ADC lookups per
  // code byte instead of float width) using GridQuantizer's
  // width-proportional subspace apportionment, plus the end-of-chain
  // survival fraction whose float rows the exact rerank re-reads.
  const bool use_pq = params.pq_subspaces > 0;
  std::vector<double> scan_width(b_dim);
  for (size_t d = 0; d < b_dim; ++d) {
    const double width = static_cast<double>(plan.dim_ranges[d].width());
    scan_width[d] = width;
    if (use_pq) {
      const double dim = std::max(1.0, static_cast<double>(profile.dim));
      scan_width[d] = std::min(
          width, std::max(1.0, static_cast<double>(params.pq_subspaces) *
                                   width / dim));
    }
  }
  double end_survival = 1.0;
  if (params.pruning_enabled) {
    for (size_t j = 0; j + 1 < b_dim; ++j) {
      end_survival *= params.pruning_survival;
    }
  }

  // --- Computation: per probed list, candidates * dim ops split across the
  // dimension blocks of the owning shard's row of the grid.
  for (size_t l = 0; l < profile.list_probe_count.size(); ++l) {
    const double probes = profile.list_probe_count[l];
    if (probes <= 0.0) continue;
    const double candidates = static_cast<double>(profile.list_sizes[l]);
    const size_t shard = static_cast<size_t>(plan.list_to_shard[l]);
    for (size_t d = 0; d < b_dim; ++d) {
      const double width = static_cast<double>(plan.dim_ranges[d].width());
      double ops = probes * candidates * scan_width[d] * mean_survival;
      // Exact float rerank of the end-of-chain survivors, charged to the
      // block owners the rows are fetched from.
      if (use_pq) ops += probes * candidates * width * end_survival;
      const double secs = ops / ops_per_sec;
      est.comp_seconds += secs;
      // With replication the router spreads a block's stages across its R
      // replicas (hash-rotated per stage), so the expected load on each
      // replica node is secs / R. At R = 1 this is the historical owner
      // charge, bit for bit.
      const size_t reps =
          std::max<size_t>(1, std::min(params.replication, plan.replication));
      if (reps == 1) {
        est.node_load_seconds[static_cast<size_t>(
            plan.MachineOf(shard, d))] += secs;
      } else {
        const double share = secs / static_cast<double>(reps);
        for (size_t r = 0; r < reps; ++r) {
          est.node_load_seconds[static_cast<size_t>(
              plan.ReplicaOf(shard, d, r))] += share;
        }
      }
    }
  }

  // --- Communication: per probed (query, shard) pair:
  //  * query dispatch: B_dim messages whose payload widths sum to dim;
  //  * partial-result hops: (B_dim - 1) messages of surviving candidates;
  //  * final result: one k-sized message back to the client.
  // Expected probed shards per query: distinct shards among its probed
  // lists; approximated from per-shard probe mass.
  std::vector<double> shard_probe_mass(plan.num_vec_shards, 0.0);
  double total_probes = 0.0;
  for (size_t l = 0; l < profile.list_probe_count.size(); ++l) {
    shard_probe_mass[static_cast<size_t>(plan.list_to_shard[l])] +=
        profile.list_probe_count[l];
    total_probes += profile.list_probe_count[l];
  }
  const double queries = static_cast<double>(profile.num_queries);
  double expected_shard_visits = 0.0;
  if (queries > 0.0) {
    for (const double mass : shard_probe_mass) {
      // P(query visits shard) ≈ 1 - (1 - m/(Q*nprobe))^nprobe, via the
      // per-probe shard hit rate.
      const double per_probe =
          total_probes > 0.0 ? mass / total_probes : 0.0;
      const double p_visit =
          1.0 - std::pow(1.0 - per_probe,
                         static_cast<double>(profile.nprobe));
      expected_shard_visits += p_visit * queries;
    }
  }

  const double mean_candidates_per_visit =
      expected_shard_visits > 0.0
          ? profile.TotalProbedCandidates() / expected_shard_visits
          : 0.0;
  // The executor streams each chain in pipeline batches; every batch emits
  // its own partial-result hops and result message, so finer dimension
  // splits multiply the per-message latency cost.
  const double batches_per_visit = std::max(
      1.0, std::ceil(mean_candidates_per_visit /
                     static_cast<double>(std::max<size_t>(1, params.pipeline_batch))));
  const double bytes_per_float = 4.0;
  double comm = 0.0;
  // Query dispatch: payload dim*4 bytes split over B_dim messages.
  comm += expected_shard_visits *
          (static_cast<double>(b_dim) * net.params().latency_seconds +
           static_cast<double>(profile.dim) * bytes_per_float /
               net.params().bandwidth_bytes_per_sec);
  // Partial-result hops: ids (4B) + accumulated partials (4B) per survivor,
  // one hop chain per batch.
  if (b_dim > 1) {
    double survivors = mean_candidates_per_visit;
    double hop_bytes = 0.0;
    double s = 1.0;
    for (size_t j = 0; j + 1 < b_dim; ++j) {
      if (params.pruning_enabled) s *= params.pruning_survival;
      hop_bytes += survivors * s * 8.0;
    }
    comm += expected_shard_visits *
            (batches_per_visit * static_cast<double>(b_dim - 1) *
                 net.params().latency_seconds +
             hop_bytes / net.params().bandwidth_bytes_per_sec);
  }
  // Result return: k neighbors of 8 bytes, one message per batch.
  comm += expected_shard_visits *
          (batches_per_visit * net.params().latency_seconds +
           static_cast<double>(profile.k) * 8.0 /
               net.params().bandwidth_bytes_per_sec);
  // Quantized block streams: scans move one code byte per subspace in
  // place of a float row, and the rank barrier fetches each end survivor's
  // float rows back from the block owners for the exact rerank. Byte terms
  // only — the message count per batch is unchanged.
  if (use_pq) {
    double stream_bytes = 0.0;
    for (size_t d = 0; d < b_dim; ++d) {
      stream_bytes += mean_candidates_per_visit * mean_survival * scan_width[d];
    }
    stream_bytes += mean_candidates_per_visit * end_survival *
                    static_cast<double>(profile.dim) * bytes_per_float;
    comm += expected_shard_visits * stream_bytes /
            net.params().bandwidth_bytes_per_sec;
  }
  est.comm_seconds = comm;

  // --- Imbalance factor I(π): stddev of Load(n, π).
  double mean_load = 0.0;
  for (const double load : est.node_load_seconds) mean_load += load;
  mean_load /= static_cast<double>(plan.num_machines);
  double var = 0.0;
  for (const double load : est.node_load_seconds) {
    var += (load - mean_load) * (load - mean_load);
  }
  est.imbalance = std::sqrt(var / static_cast<double>(plan.num_machines));

  est.total_cost =
      est.comp_seconds + est.comm_seconds + params.alpha * est.imbalance;
  return est;
}

}  // namespace harmony
