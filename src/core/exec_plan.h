#ifndef HARMONY_CORE_EXEC_PLAN_H_
#define HARMONY_CORE_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/exec_options.h"
#include "core/partition.h"
#include "core/pruning.h"
#include "core/router.h"
#include "core/worker.h"
#include "index/ivf_index.h"
#include "net/fault.h"
#include "net/health.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Execution knobs; each maps to one of the optimizations isolated
/// in the paper's Figure 9 ablation. The knobs shared with the engine
/// facade live in the ExecTuning base (core/exec_options.h); the fields
/// below exist only at the execution layer.
struct ExecOptions : ExecTuning {
  Metric metric = Metric::kL2;
  size_t k = 10;
  size_t nprobe = 8;
  /// Load-aware dynamic ordering: blocks owned by currently-overloaded
  /// machines are deferred to late pipeline stages where pruning has
  /// removed most candidates (Section 4.3, "Load Balancing Strategies").
  bool dynamic_dim_order = true;
  /// Batched block-scan kernels (docs/kernels.md): vectorized
  /// prune-compaction + multi-row SIMD partial distances over list-major
  /// candidate runs. Off selects the historical per-candidate reference
  /// loop; both paths are bitwise identical in results, op charges and
  /// virtual-clock timings (regression-tested), so this knob exists only
  /// for that A/B and for perf bisection.
  bool use_batched_kernels = true;
  /// Optional metadata filter: when `labels` is non-null (one int32 per
  /// global vector id), only candidates whose label equals `allowed_label`
  /// are scanned — predicate push-down into the first dimension stage.
  const std::vector<int32_t>* labels = nullptr;
  int32_t allowed_label = -1;
  /// The engine's grid quantizer; required (trained, plan-aligned) when
  /// `use_pq_streams` is on, ignored otherwise. Like `labels`, a borrowed
  /// pointer — the engine owns the quantizer.
  const GridQuantizer* pq = nullptr;
  /// Tombstone bitset over global ids (docs/mutability.md); null when no
  /// deletes are pending. Tombstoned rows are still scanned and billed —
  /// they live in the frozen blocks until the next merge — but are filtered
  /// at the rank barrier, so they never reach a result heap or survive
  /// exact rerank. Borrowed from the engine's mutable-store state.
  const uint64_t* tombstones = nullptr;
  size_t tombstone_words = 0;
  /// Store generation the batch executes against (bumped by each merge);
  /// recorded so traces and parity checks can name the snapshot.
  uint64_t store_generation = 0;
};

/// \brief Everything one batch execution needs, resolved once up front and
/// shared read-only by every stage of both engines: the static tables
/// (index, partition plan, stores, prewarm cache, routing, queries, options)
/// plus the derived per-batch facts each engine used to recompute inline.
struct ExecContext {
  const IvfIndex* index = nullptr;
  const PartitionPlan* plan = nullptr;
  const std::vector<WorkerStore>* stores = nullptr;
  const PrewarmCache* prewarm = nullptr;
  const BatchRouting* routing = nullptr;
  const DatasetView* queries = nullptr;
  const ExecOptions* opts = nullptr;

  size_t b_dim = 0;
  size_t dim = 0;
  size_t num_queries = 0;
  bool use_ip = false;
  /// Remaining-norm tracking is only materialized when inner-product
  /// pruning can actually fire (more than one dimension block).
  bool use_norms = false;
  uint32_t max_retries = 0;

  /// Fault oracle of the engine's cluster; attached by the engine glue once
  /// its cluster exists (the threaded cluster is built after the context).
  const FaultInjector* faults = nullptr;
  bool faulty = false;

  /// Replication factor of the plan (>= 1). `routed` is true when replica
  /// routing is active — either because the plan is replicated (R > 1 spreads
  /// stage load across replicas even on healthy runs) or because faults can
  /// fire (the replica walk is what decides delivery / failover / loss). At
  /// R = 1 with no faults both engines keep the historical direct path.
  size_t replication = 1;
  bool routed = false;

  /// Quantized block streams (docs/quantization.md). When `use_pq` is on,
  /// MakeExecContext builds the ADC lookup tables once up front — a pure
  /// function of (quantizer, index centroids, routing, queries) shared
  /// read-only by both engines. Codes are coarse-centroid residuals
  /// (IVFADC), so there is one table per (query, probed list, dim block):
  /// query q's table for probe slot s and block d starts at
  /// `luts[(q * lut_probes + s) * lut_stride + lut_offset[d]]` and holds
  /// M_d * ksub_d floats in subspace-major order (the adc_batch kernel
  /// layout). For L2 the table is built from the residual query q - c_l;
  /// for IP it is built from q with the constant block term <q^(d), c_l^(d)>
  /// folded into subspace 0's entries, so the ADC sum estimates the block's
  /// true partial either way.
  bool use_pq = false;
  std::vector<float> luts;
  std::vector<size_t> lut_offset;  // per dim block
  size_t lut_stride = 0;
  size_t lut_probes = 0;  // probe slots per query (max over the batch)
  /// IP/cosine only: ||q^(d)|| per (query, block) — `pq_q_norm[q * b_dim +
  /// d]` — the Cauchy–Schwarz factor that turns the per-row quantization
  /// residual into an upper bound on the block's true inner product.
  std::vector<float> pq_q_norm;
  /// Ops one query's LUT build costs (billed by PrewarmQuery's charge hook).
  uint64_t lut_build_ops = 0;

  /// Tombstone bitset of the batch's store snapshot (copied from the
  /// options): rows whose bit is set are dead — scanned and billed like any
  /// frozen row, but dropped at the rank barrier by both engines.
  const uint64_t* tombstones = nullptr;
  size_t tombstone_words = 0;
  uint64_t store_generation = 0;

  /// True when `id` is tombstoned in this batch's snapshot. Ids past the
  /// bitset (rows inserted after the set was sized) are live.
  bool IsDeleted(int64_t id) const {
    if (tombstones == nullptr || id < 0) return false;
    const size_t word = static_cast<size_t>(id) >> 6;
    if (word >= tombstone_words) return false;
    return (tombstones[word] >> (static_cast<size_t>(id) & 63)) & 1u;
  }

  /// Node-health tracker of the running batch; attached by the engine glue
  /// (each engine owns one tracker per Execute* call). May stay null: all
  /// readers treat a missing tracker as "every node healthy".
  NodeHealthTracker* health = nullptr;

  /// Resolved kernel tune table of this batch (never null after
  /// MakeExecContext): the dispatch tier plus per-(metric, width-bucket)
  /// tile shapes every scan stage of both engines runs with. Recording it
  /// here — rather than letting each stage consult process state — is what
  /// makes the tile selection plan-recorded: simulated and threaded replays
  /// of one batch execute the identical kernels.
  const KernelTuneTable* kernel_tune = nullptr;

  /// The stage dispatch for one dimension-block width under this batch's
  /// recorded tune table (metric comes from the options).
  KernelDispatch DispatchFor(size_t width) const {
    return kernel_tune->DispatchFor(opts->metric, width);
  }

  void AttachFaults(const FaultInjector* injector) {
    faults = injector;
    faulty = injector != nullptr && injector->enabled();
    routed = faulty || replication > 1;
  }

  void AttachHealth(NodeHealthTracker* tracker) { health = tracker; }
};

/// Validates the batch inputs shared by both engines (query dimensionality,
/// the 64-block lost-mask limit, fault-plan probabilities and multipliers,
/// replication-factor bounds) and resolves the derived facts. Engine glue
/// keeps its substrate-specific checks (cluster size, store count).
Result<ExecContext> MakeExecContext(const IvfIndex& index,
                                    const PartitionPlan& plan,
                                    const std::vector<WorkerStore>& stores,
                                    const PrewarmCache& prewarm,
                                    const BatchRouting& routing,
                                    const DatasetView& queries,
                                    const ExecOptions& opts);

/// \brief One chain's materialized scan state: the per-(block, list) slice
/// table plus the candidate SoA arrays that flow through the dimension
/// stages (pipeline batches / baton hops own ranges of them and compact
/// survivors in place).
struct ChainCandidates {
  /// slices[d * lists + li]: the slice of chain list li in block d, on the
  /// machine owning grid block (shard, d). Built once per chain at dispatch
  /// (the client holds the routing tables and, in-process, can read every
  /// store), so stages pay neither the lookup nor a per-stage allocation.
  std::vector<const ListSlice*> slices;
  /// PQ streams only: luts[d * lists + li] is the ADC table of (this chain's
  /// query, list li, block d) — residual codes make the table per probed
  /// list, and candidate runs are list-major, so stages resolve one table
  /// per run. Laid out in lockstep with `slices`; empty when PQ is off.
  std::vector<const float*> luts;
  std::vector<int64_t> id;
  std::vector<int32_t> list;
  std::vector<int32_t> row;
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
  /// PQ streams only: the conservative per-candidate bound the prune masks
  /// run on — a lower bound on the true partial L2², or an upper bound on
  /// the true partial IP, folded from ADC sums and per-row residual slack.
  /// `partial` then holds the raw ADC estimate (what rerank ordering uses);
  /// compaction moves `bound` in lockstep with the other SoA columns.
  std::vector<float> bound;
  std::vector<float> q_block_norm;  // per block (inner-product pruning)
  float rem_q_total = 0.0f;
};

/// Fills the chain's per-(block, list) slice table.
void BuildChainSliceTable(const ExecContext& ctx, const QueryChain& chain,
                          ChainCandidates* cand);

/// Builds the candidate SoA arrays from the (dimension-independent) row
/// layout of the chain's list slices — block 0's slices are as good as any —
/// in probe order (nearest list first) so the earliest batches tighten the
/// threshold for the rest of the chain. Skips ids already scored during
/// prewarm and, under a label filter, ids with the wrong label. Requires
/// BuildChainSliceTable to have run.
void BuildChainCandidateArrays(const ExecContext& ctx, const QueryChain& chain,
                               const std::unordered_set<int64_t>& prewarmed,
                               ChainCandidates* cand);

/// Per-block query self-products for inner-product pruning (use_norms):
/// fills q_block_norm and rem_q_total.
void ComputeQueryBlockNorms(const ExecContext& ctx, const QueryChain& chain,
                            ChainCandidates* cand);

/// \brief Replica preference order of the stage at (chain.probe_rank,
/// chain.shard, block d). Deterministic given (plan, folded health state):
/// a hash rotation of [0, R) keyed by ReplicaRouteKey spreads primaries
/// across replicas, then a stable sort demotes unhealthy replicas — nodes
/// crashed from the start (static fault-plan truth) sort last, quarantined
/// nodes (folded by the health tracker at the previous rank barrier)
/// sort after healthy ones. R = 1 yields {0} untouched. All chains of one
/// (probe_rank, shard) group share the order, so group stages agree on a
/// machine without per-member coordination.
void StageReplicaOrder(const ExecContext& ctx, const QueryChain& chain,
                       size_t block, std::vector<uint8_t>* order);

/// First replica in StageReplicaOrder whose machine is not crashed from the
/// start — the stage's primary. Falls back to the order's front when every
/// replica is dead (callers only consult the primary when some member still
/// wants the block, which implies a live replica exists). R = 1 returns 0
/// without touching the order.
size_t StagePrimaryReplica(const ExecContext& ctx, const QueryChain& chain,
                           size_t block);

/// Algorithm 1's PrewarmHeap stage for one query: scores the client-cached
/// sample of every probed list into the query's heap, seeding a sound
/// pruning threshold, and records the sampled ids so chains skip them.
/// `charge` (may be null) receives the op counts the simulated client bills
/// for this work, in billing order: the centroid assignment first, then one
/// charge per non-empty probed list.
void PrewarmQuery(const ExecContext& ctx, size_t q, TopKHeap* heap,
                  std::unordered_set<int64_t>* prewarmed,
                  const std::function<void(uint64_t)>& charge);

}  // namespace harmony

#endif  // HARMONY_CORE_EXEC_PLAN_H_
