#ifndef HARMONY_CORE_COST_MODEL_H_
#define HARMONY_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.h"
#include "index/ivf_index.h"
#include "net/cluster.h"
#include "net/network_model.h"
#include "storage/dataset.h"

namespace harmony {

/// \brief Workload summary the cost model consumes: how often each IVF list
/// is expected to be probed by the (sampled) query batch, Section 4.2.1's
/// "lightweight metrics ... computed with minimal overhead".
struct WorkloadProfile {
  size_t num_queries = 0;
  size_t dim = 0;
  size_t k = 10;
  size_t nprobe = 1;
  std::vector<double> list_probe_count;  // per IVF list
  std::vector<int64_t> list_sizes;       // per IVF list

  double TotalProbedCandidates() const;
};

/// \brief Profiles a query batch by routing (a sample of) it through
/// centroid assignment. `sample` caps how many queries are routed (0 = all).
WorkloadProfile ProfileWorkload(const IvfIndex& index,
                                const DatasetView& queries, size_t k,
                                size_t nprobe, size_t sample = 0);

/// \brief Tunables of the Section 4.2.1 cost model.
struct CostModelParams {
  /// α: weight of the imbalance factor I(π) in the overall objective.
  double alpha = 4.0;
  /// Expected fraction of candidates surviving into each successive
  /// dimension block when pruning is enabled (the paper measures ~50%
  /// surviving past the second quarter; 0.5 is the model default).
  double pruning_survival = 0.5;
  bool pruning_enabled = true;
  /// Pipeline batch granularity of the execution engine; determines how
  /// many partial-result messages a dimension chain emits.
  size_t pipeline_batch = 256;
  /// Replicas per grid block (PartitionPlan::replication). The executor
  /// spreads a block's scans across its replicas, so each replica node
  /// carries 1/R of the block's expected compute in the I(π) term.
  size_t replication = 1;
  /// Quantized block streams (docs/quantization.md): 0 models the float
  /// path bit for bit. When > 0, stage scans cost ADC ops (one table
  /// lookup per subspace instead of the block's float width) and stream
  /// code bytes, and the rank-barrier rerank re-reads each end-of-chain
  /// survivor's float rows from the block owners (dim ops + dim*4 bytes).
  /// The subspace budget is apportioned to dim blocks by width, mirroring
  /// GridQuantizer.
  size_t pq_subspaces = 0;
  NetworkParams net;
  MachineParams machine;
};

/// \brief Cost model output for one candidate plan.
struct CostEstimate {
  double total_cost = 0.0;      // C(π, Q) = Σ C_q(π) + α · I(π), seconds
  double comp_seconds = 0.0;    // Σ_q Σ_blocks c_comp
  double comm_seconds = 0.0;    // Σ_q Σ_blocks c_comm
  double imbalance = 0.0;       // I(π): stddev of per-node load (seconds)
  std::vector<double> node_load_seconds;  // Load(n, π) per machine

  std::string ToString() const;
};

/// \brief Evaluates C(π, Q) for a plan against a workload profile.
CostEstimate EstimatePlanCost(const PartitionPlan& plan,
                              const WorkloadProfile& profile,
                              const CostModelParams& params);

}  // namespace harmony

#endif  // HARMONY_CORE_COST_MODEL_H_
