#ifndef HARMONY_CORE_PARTITION_H_
#define HARMONY_CORE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/ivf_index.h"
#include "storage/dim_slice.h"
#include "util/status.h"

namespace harmony {

/// \brief A partition plan π: the grid `B_vec(π) × B_dim(π)` of Section 4.2,
/// plus the assignment of IVF lists to vector shards and of grid blocks to
/// machines.
///
/// Invariants (enforced by BuildPartitionPlan, checked by tests):
///  * every IVF list belongs to exactly one vector shard;
///  * dimension ranges are disjoint, contiguous, and cover [0, dim);
///  * every grid block (v, d) is owned by exactly one machine;
///  * with num_vec_shards * num_dim_blocks == num_machines, each machine
///    owns exactly one block (the paper's Figure 4 layout).
struct PartitionPlan {
  size_t num_machines = 0;
  size_t num_vec_shards = 0;  // B_vec
  size_t num_dim_blocks = 0;  // B_dim
  std::vector<DimRange> dim_ranges;            // size num_dim_blocks
  std::vector<std::vector<int32_t>> shard_lists;  // shard -> IVF list ids
  std::vector<int32_t> list_to_shard;             // IVF list -> shard
  std::vector<int64_t> shard_vector_count;        // vectors per shard
  /// machine_of[v * num_dim_blocks + d] = machine owning block (v, d).
  std::vector<int32_t> machine_of;
  /// Mean squared magnitude of each dimension block, estimated from the
  /// size-weighted centroids. Blocks with more energy separate candidates
  /// faster, so the executor prefers to process them early — they are where
  /// early-stop pruning earns its keep on real (spectrally decaying)
  /// embeddings.
  std::vector<double> block_energy;

  int32_t MachineOf(size_t vec_shard, size_t dim_block) const {
    return machine_of[vec_shard * num_dim_blocks + dim_block];
  }

  std::string ToString() const;
};

/// \brief How IVF lists are packed into vector shards.
enum class ShardAssignment {
  /// Greedy largest-first into the least-loaded shard (load-aware; the
  /// paper's balanced distribution).
  kGreedyBalanced,
  /// list i -> shard i % B_vec (the static distribution of Harmony-vector
  /// baselines and of Auncel's fixed partitioning).
  kRoundRobin,
};

/// \brief Builds a plan for the given grid shape over a trained index.
/// Requires `num_vec_shards * num_dim_blocks == num_machines` so the grid
/// exactly tiles the cluster (Figure 4); `num_dim_blocks` is clamped to the
/// vector dimensionality.
///
/// `list_weights` (optional, one entry per IVF list) supplies the expected
/// *load* of each list — e.g. probe frequency × list size from the workload
/// profile — so the greedy assignment balances anticipated work rather than
/// raw cardinality (the paper's load-aware distribution). When null, list
/// sizes are used.
Result<PartitionPlan> BuildPartitionPlan(
    const IvfIndex& index, size_t num_machines, size_t num_vec_shards,
    size_t num_dim_blocks, ShardAssignment assignment,
    const std::vector<double>* list_weights = nullptr);

/// \brief All grid shapes (B_vec, B_dim) with B_vec * B_dim == num_machines
/// and B_dim <= dim — the search space of the query planner.
std::vector<std::pair<size_t, size_t>> EnumerateGridShapes(size_t num_machines,
                                                           size_t dim);

}  // namespace harmony

#endif  // HARMONY_CORE_PARTITION_H_
