#ifndef HARMONY_CORE_PARTITION_H_
#define HARMONY_CORE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/ivf_index.h"
#include "storage/dim_slice.h"
#include "util/status.h"

namespace harmony {

/// \brief A partition plan π: the grid `B_vec(π) × B_dim(π)` of Section 4.2,
/// plus the assignment of IVF lists to vector shards and of grid blocks to
/// machines.
///
/// Invariants (enforced by BuildPartitionPlan, checked by tests):
///  * every IVF list belongs to exactly one vector shard;
///  * dimension ranges are disjoint, contiguous, and cover [0, dim);
///  * every grid block (v, d) is owned by exactly one machine;
///  * with num_vec_shards * num_dim_blocks == num_machines, each machine
///    owns exactly one block (the paper's Figure 4 layout).
struct PartitionPlan {
  size_t num_machines = 0;
  size_t num_vec_shards = 0;  // B_vec
  size_t num_dim_blocks = 0;  // B_dim
  std::vector<DimRange> dim_ranges;            // size num_dim_blocks
  std::vector<std::vector<int32_t>> shard_lists;  // shard -> IVF list ids
  std::vector<int32_t> list_to_shard;             // IVF list -> shard
  std::vector<int64_t> shard_vector_count;        // vectors per shard
  /// machine_of[v * num_dim_blocks + d] = machine owning block (v, d).
  std::vector<int32_t> machine_of;
  /// Replicas per grid block (R). 1 = unreplicated; `replica_of` is then
  /// empty and replica 0 of every block is its `machine_of` owner.
  size_t replication = 1;
  /// replica_of[(v * num_dim_blocks + d) * replication + r] = machine
  /// holding replica r of block (v, d). Replica 0 is always the machine_of
  /// owner; further replicas rotate across machines so each machine holds
  /// exactly R distinct blocks. Empty when replication == 1.
  std::vector<int32_t> replica_of;
  /// Mean squared magnitude of each dimension block, estimated from the
  /// size-weighted centroids. Blocks with more energy separate candidates
  /// faster, so the executor prefers to process them early — they are where
  /// early-stop pruning earns its keep on real (spectrally decaying)
  /// embeddings.
  std::vector<double> block_energy;

  int32_t MachineOf(size_t vec_shard, size_t dim_block) const {
    return machine_of[vec_shard * num_dim_blocks + dim_block];
  }

  /// Machine holding replica `r` of block (vec_shard, dim_block). Replica 0
  /// is the MachineOf owner on every plan, replicated or not.
  int32_t ReplicaOf(size_t vec_shard, size_t dim_block, size_t r) const {
    if (r == 0 || replica_of.empty()) return MachineOf(vec_shard, dim_block);
    return replica_of[(vec_shard * num_dim_blocks + dim_block) * replication +
                      r];
  }

  std::string ToString() const;
};

/// \brief How IVF lists are packed into vector shards.
enum class ShardAssignment {
  /// Greedy largest-first into the least-loaded shard (load-aware; the
  /// paper's balanced distribution).
  kGreedyBalanced,
  /// list i -> shard i % B_vec (the static distribution of Harmony-vector
  /// baselines and of Auncel's fixed partitioning).
  kRoundRobin,
};

/// \brief Builds a plan for the given grid shape over a trained index.
/// Requires `num_vec_shards * num_dim_blocks == num_machines` so the grid
/// exactly tiles the cluster (Figure 4); `num_dim_blocks` is clamped to the
/// vector dimensionality.
///
/// `list_weights` (optional, one entry per IVF list) supplies the expected
/// *load* of each list — e.g. probe frequency × list size from the workload
/// profile — so the greedy assignment balances anticipated work rather than
/// raw cardinality (the paper's load-aware distribution). When null, list
/// sizes are used.
Result<PartitionPlan> BuildPartitionPlan(
    const IvfIndex& index, size_t num_machines, size_t num_vec_shards,
    size_t num_dim_blocks, ShardAssignment assignment,
    const std::vector<double>* list_weights = nullptr);

/// \brief Replicates every grid block of `plan` onto `replication` distinct
/// machines: replica r of block (v, d) lands on
/// `(machine_of[v*B_dim+d] + r) % num_machines`, so replicas of one block
/// never collide and every machine holds exactly R distinct blocks (the
/// load-spreading analogue of the Figure 4 one-block-per-machine layout).
/// Requires 1 <= replication <= num_machines. `replication == 1` is a no-op
/// that leaves the plan bitwise unchanged.
Status ApplyReplication(PartitionPlan* plan, size_t replication);

/// \brief All grid shapes (B_vec, B_dim) with B_vec * B_dim == num_machines
/// and B_dim <= dim — the search space of the query planner.
std::vector<std::pair<size_t, size_t>> EnumerateGridShapes(size_t num_machines,
                                                           size_t dim);

}  // namespace harmony

#endif  // HARMONY_CORE_PARTITION_H_
