#include "core/chain_exec.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/logging.h"

namespace harmony {

ChainLossSchedule ComputeChainLossSchedule(const FaultInjector& faults,
                                           const PartitionPlan& plan,
                                           const QueryChain& chain,
                                           size_t b_dim,
                                           uint32_t max_retries) {
  // Drop coins and start-dead machines are pure functions of the plan, so
  // the whole loss schedule of a chain is known at dispatch — and both
  // engines, hitting the same keys, derive the same schedule.
  ChainLossSchedule loss;
  loss.attempts.assign(b_dim + 1, 1);
  for (size_t d = 0; d <= b_dim; ++d) {
    loss.attempts[d] = faults.DeliveryAttempts(
        ChainHopKey(chain.query, chain.shard, d), max_retries);
    if (d == b_dim) {
      loss.result_hop_lost = loss.attempts[d] == 0;
      continue;
    }
    // A block is statically lost when its delivery coins all came up
    // dropped, or its machine is dead from the start — the latter is
    // decided here (not via run-time detection) so both engines agree on
    // the degraded set.
    if (loss.attempts[d] == 0 ||
        faults.CrashedFromStart(
            static_cast<size_t>(plan.MachineOf(chain.shard, d)))) {
      loss.lost_mask |= uint64_t{1} << d;
    }
  }
  return loss;
}

void FaultLedger::BookStaticChainLoss(const ChainLossSchedule& loss,
                                      int32_t query, uint32_t max_retries) {
  if (loss.lost_mask == 0) return;
  const auto n_lost = static_cast<uint64_t>(std::popcount(loss.lost_mask));
  blocks_lost_.fetch_add(n_lost, std::memory_order_relaxed);
  messages_dropped_.fetch_add(n_lost * (max_retries + 1),
                              std::memory_order_relaxed);
  backend_->TagDegraded(query);
}

FaultStats FaultLedger::Snapshot() const {
  FaultStats stats;
  stats.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.blocks_lost = blocks_lost_.load(std::memory_order_relaxed);
  stats.shards_lost = shards_lost_.load(std::memory_order_relaxed);
  return stats;
}

double RetryPenaltySeconds(const NetworkModel& net, FaultLedger* ledger,
                           uint64_t bytes, uint32_t attempts) {
  double penalty = 0.0;
  for (uint32_t a = 0; a + 1 < attempts; ++a) {
    penalty += net.RetryBackoffSeconds(bytes, a);
  }
  ledger->BookDelivery(attempts);
  return penalty;
}

std::vector<size_t> BuildStaticBlockOrder(size_t b_dim, size_t chain_index,
                                          bool enable_pipeline) {
  std::vector<size_t> order(b_dim);
  std::iota(order.begin(), order.end(), size_t{0});
  if (enable_pipeline && b_dim > 1) {
    std::rotate(order.begin(), order.begin() + (chain_index % b_dim),
                order.end());
  }
  return order;
}

size_t InitialStartBlock(bool enable_pipeline, uint64_t stagger_seq,
                         size_t b_dim, uint64_t usable_blocks) {
  size_t start = enable_pipeline ? stagger_seq % b_dim : 0;
  while ((usable_blocks & (uint64_t{1} << start)) == 0) {
    start = (start + 1) % b_dim;
  }
  return start;
}

size_t NextCyclicBlock(size_t start_block, size_t processed, size_t b_dim,
                       uint64_t remaining) {
  for (size_t step = 0; step < b_dim; ++step) {
    const size_t cand = (start_block + processed + step) % b_dim;
    if ((remaining & (uint64_t{1} << cand)) != 0) return cand;
  }
  return b_dim;
}

size_t ChooseLoadAwareBlock(
    const PartitionPlan& plan, size_t shard, size_t b_dim, uint64_t remaining,
    bool faulty, const uint8_t* machine_dead,
    const std::function<double(size_t)>& machine_load) {
  if (faulty) {
    // Route around machines whose crash has been observed, unless that
    // would leave nothing (the caller then detects the loss and degrades
    // the chain).
    uint64_t alive = remaining;
    for (size_t cand = 0; cand < b_dim; ++cand) {
      if ((remaining & (uint64_t{1} << cand)) == 0) continue;
      if (machine_dead[static_cast<size_t>(plan.MachineOf(shard, cand))]) {
        alive &= ~(uint64_t{1} << cand);
      }
    }
    if (alive != 0) remaining = alive;
  }
  double min_load = -1.0;
  for (size_t cand = 0; cand < b_dim; ++cand) {
    if ((remaining & (uint64_t{1} << cand)) == 0) continue;
    const double load =
        machine_load(static_cast<size_t>(plan.MachineOf(shard, cand)));
    if (min_load < 0.0 || load < min_load) min_load = load;
  }
  const double slack = 0.10 * min_load + 1e-5;
  size_t best = b_dim;
  double best_energy = -1.0;
  for (size_t cand = 0; cand < b_dim; ++cand) {
    if ((remaining & (uint64_t{1} << cand)) == 0) continue;
    const double load =
        machine_load(static_cast<size_t>(plan.MachineOf(shard, cand)));
    if (load > min_load + slack) continue;  // Overloaded: defer.
    const double energy =
        cand < plan.block_energy.size() ? plan.block_energy[cand] : 0.0;
    if (best == b_dim || energy > best_energy) {
      best = cand;
      best_energy = energy;
    }
  }
  return best;
}

BlockScanParams MakeStageScanParams(const ExecContext& ctx,
                                    ExecBackend* backend,
                                    const QueryChain& chain,
                                    const ChainCandidates& cand, size_t d,
                                    size_t processed, float rem_q_sq) {
  const DimRange range = ctx.plan->dim_ranges[d];
  float tau;
  bool heap_full;
  backend->ReadThreshold(chain.query, &tau, &heap_full);

  BlockScanParams scan;
  scan.metric = ctx.opts->metric;
  scan.use_norms = ctx.use_norms;
  // The first scanned stage has no partials yet, so pruning would compare
  // a zero accumulator against τ; gate on prior stages having run.
  scan.prune = ctx.opts->enable_pruning && processed > 0 && heap_full;
  scan.tau = tau;
  scan.rem_q_sq = rem_q_sq;
  scan.q_slice =
      ctx.queries->Row(static_cast<size_t>(chain.query)) + range.begin;
  scan.width = range.width();
  scan.slices = cand.slices.data() + d * chain.lists.size();
  scan.use_batched = ctx.opts->use_batched_kernels;
  return scan;
}

SharedScanBiller::SharedScanBiller(const ExecContext& ctx)
    : ctx_(ctx),
      grouped_(ctx.opts->shared_scans && ctx.routing->num_groups > 0) {}

uint64_t SharedScanBiller::StageBytes(size_t chain_index,
                                      const QueryChain& chain,
                                      const ChainCandidates& cand, size_t d,
                                      size_t begin, size_t survivors,
                                      uint64_t row_bytes) {
  if (!grouped_) return static_cast<uint64_t>(survivors) * row_bytes;
  uint64_t scan_bytes = 0;
  const uint64_t g =
      static_cast<uint64_t>(ctx_.routing->chain_group[chain_index]) & 0xFFFFFF;
  for (size_t j = begin; j < begin + survivors; ++j) {
    const uint64_t row = static_cast<uint64_t>(cand.row[j]);
    const uint64_t gl =
        static_cast<uint64_t>(
            chain.lists[static_cast<size_t>(cand.list[j])]) &
        0xFFFFF;
    const uint64_t key =
        (g << 40) | (uint64_t{d} << 34) | (gl << 14) | ((row / 64) & 0x3FFF);
    uint64_t& mask = streamed_rows_[key];
    const uint64_t bit = uint64_t{1} << (row % 64);
    if ((mask & bit) == 0) {
      mask |= bit;
      scan_bytes += row_bytes;
    }
  }
  return scan_bytes;
}

std::shared_ptr<ChainExecState> ChainExecutor::PrepareChain(
    const QueryChain& chain) const {
  auto task = std::make_shared<ChainExecState>();
  task->chain = &chain;
  BuildChainSliceTable(ctx_, chain, &task->cand);
  const auto* prewarmed =
      backend_->PrewarmedIds(static_cast<size_t>(chain.query));
  BuildChainCandidateArrays(ctx_, chain, *prewarmed, &task->cand);
  if (task->cand.id.empty()) return nullptr;
  if (ctx_.use_norms) {
    ComputeQueryBlockNorms(ctx_, chain, &task->cand);
    task->rem_q_sq = task->cand.rem_q_total;
  }
  return task;
}

bool ChainExecutor::ApplyGroupMemberLoss(ChainExecState* task) const {
  if (!ctx_.faulty) return false;
  const QueryChain& chain = *task->chain;
  const ChainLossSchedule loss = ComputeChainLossSchedule(
      *ctx_.faults, *ctx_.plan, chain, ctx_.b_dim, ctx_.max_retries);
  ledger_->BookStaticChainLoss(loss, chain.query, ctx_.max_retries);
  if (static_cast<size_t>(std::popcount(loss.lost_mask)) == ctx_.b_dim ||
      loss.result_hop_lost) {
    // The whole shard is unreachable for this query (every block lost, or
    // the result hop can never be delivered): the query completes from its
    // other chains.
    if (loss.result_hop_lost) ledger_->BookLostMessage(ctx_.max_retries);
    ledger_->BookShardLost(chain.query);
    return true;
  }
  task->lost_mask = loss.lost_mask;
  return false;
}

bool ChainExecutor::BuildSoloOrder(ChainExecState* task,
                                   size_t chain_index) const {
  const QueryChain& chain = *task->chain;
  task->order = BuildStaticBlockOrder(ctx_.b_dim, chain_index,
                                      ctx_.opts->enable_pipeline);
  if (!ctx_.faulty) return false;
  const ChainLossSchedule loss = ComputeChainLossSchedule(
      *ctx_.faults, *ctx_.plan, chain, ctx_.b_dim, ctx_.max_retries);
  // Strip statically lost blocks, preserving the rotation order of the
  // survivors.
  size_t kept = 0;
  for (const size_t d : task->order) {
    if ((loss.lost_mask >> d) & 1) continue;
    task->order[kept++] = d;
  }
  task->order.resize(kept);
  ledger_->BookStaticChainLoss(loss, chain.query, ctx_.max_retries);
  if (task->order.empty() || loss.result_hop_lost) {
    if (loss.result_hop_lost) ledger_->BookLostMessage(ctx_.max_retries);
    ledger_->BookShardLost(chain.query);
    return true;
  }
  return false;
}

std::vector<size_t> ChainExecutor::MakeGroupOrder(
    size_t anchor_chain_index) const {
  return BuildStaticBlockOrder(ctx_.b_dim, anchor_chain_index,
                               ctx_.opts->enable_pipeline);
}

bool ChainExecutor::PostGroupStageFrom(std::shared_ptr<GroupExecState> group,
                                       size_t from) {
  const PartitionPlan& plan = *ctx_.plan;
  for (size_t next = from; next < group->order.size(); ++next) {
    const size_t nd = group->order[next];
    bool wanted = false;
    for (const auto& m : group->members) {
      if (!m->cand.id.empty() && ((m->lost_mask >> nd) & 1) == 0) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;
    group->pos = next;
    const size_t machine = static_cast<size_t>(
        plan.MachineOf(static_cast<size_t>(group->shard), nd));
    backend_->PostStage(machine, [this, group = std::move(group)]() mutable {
      RunGroupStage(std::move(group));
    });
    return true;
  }
  return false;
}

void ChainExecutor::PostFirstSoloHop(
    const std::shared_ptr<ChainExecState>& task) {
  const QueryChain& chain = *task->chain;
  const size_t d0 = task->order[0];
  const size_t machine = static_cast<size_t>(
      ctx_.plan->MachineOf(static_cast<size_t>(chain.shard), d0));
  const uint32_t attempts = backend_->PostHop(
      machine, ChainHopKey(chain.query, chain.shard, d0), ctx_.max_retries,
      [this, task]() mutable { RunSoloStage(std::move(task)); });
  // The first hop survives by construction (lost blocks were stripped by
  // BuildSoloOrder); book its retries.
  HARMONY_CHECK_MSG(attempts > 0, "statically delivered hop was lost");
  ledger_->BookDelivery(attempts);
}

void ChainExecutor::RunGroupStage(std::shared_ptr<GroupExecState> group) {
  const PartitionPlan& plan = *ctx_.plan;
  const size_t d = group->order[group->pos];
  const DimRange range = plan.dim_ranges[d];

  GroupScanParams params;
  params.metric = ctx_.opts->metric;
  params.use_norms = ctx_.use_norms;
  params.width = range.width();
  params.use_batched = ctx_.opts->use_batched_kernels;

  std::vector<GroupMemberScan> scans;
  std::vector<ChainExecState*> active;
  scans.reserve(group->members.size());
  active.reserve(group->members.size());
  for (const auto& member : group->members) {
    if (member->cand.id.empty()) continue;
    if ((member->lost_mask >> d) & 1) continue;
    const QueryChain& chain = *member->chain;
    if (ctx_.faulty) {
      // Members ride one shared baton, but each member's hop keeps its own
      // (statically decided) retry bill so fault totals match the unshared
      // dispatch, where every chain posts this hop itself.
      ledger_->BookDelivery(ctx_.faults->DeliveryAttempts(
          ChainHopKey(chain.query, chain.shard, d), ctx_.max_retries));
    }
    float tau;
    bool heap_full;
    backend_->ReadThreshold(chain.query, &tau, &heap_full);
    GroupMemberScan ms;
    ms.id = member->cand.id.data();
    ms.list = member->cand.list.data();
    ms.row = member->cand.row.data();
    ms.partial = member->cand.partial.data();
    ms.rem_p_sq = ctx_.use_norms ? member->cand.rem_p_sq.data() : nullptr;
    ms.count = member->cand.id.size();
    ms.slices = member->cand.slices.data() + d * chain.lists.size();
    ms.global_lists = chain.lists.data();
    ms.q_slice =
        ctx_.queries->Row(static_cast<size_t>(chain.query)) + range.begin;
    ms.prune =
        ctx_.opts->enable_pruning && member->processed > 0 && heap_full;
    ms.tau = tau;
    ms.rem_q_sq = member->rem_q_sq;
    scans.push_back(ms);
    active.push_back(member.get());
  }

  if (!scans.empty()) {
    const size_t machine = static_cast<size_t>(
        plan.MachineOf(static_cast<size_t>(group->shard), d));
    backend_->ChargeStreamedBytes(
        machine, ScanBlockGroup(params, scans.data(), scans.size()));
    for (size_t i = 0; i < active.size(); ++i) {
      ChainExecState* m = active[i];
      const size_t w = scans[i].survivors;
      m->cand.id.resize(w);
      m->cand.list.resize(w);
      m->cand.row.resize(w);
      m->cand.partial.resize(w);
      if (ctx_.use_norms) {
        m->cand.rem_p_sq.resize(w);
        m->rem_q_sq -= m->cand.q_block_norm[d];
      }
      ++m->processed;
    }
  }

  const size_t next_from = group->pos + 1;
  if (!PostGroupStageFrom(group, next_from)) {
    FinishGroup(group);
  }
}

void ChainExecutor::RunSoloStage(std::shared_ptr<ChainExecState> task) {
  const PartitionPlan& plan = *ctx_.plan;
  const QueryChain& chain = *task->chain;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t p = task->pos;
  const size_t d = task->order[p];
  const DimRange range = plan.dim_ranges[d];

  const BlockScanParams scan =
      MakeStageScanParams(ctx_, backend_, chain, task->cand, d, p,
                          task->rem_q_sq);
  BlockScanCounters counters;
  ChainCandidates& cand = task->cand;
  const size_t w = ScanBlock(
      scan, 0, cand.id.size(), cand.id.data(), cand.list.data(),
      cand.row.data(), cand.partial.data(),
      ctx_.use_norms ? cand.rem_p_sq.data() : nullptr, &counters);
  cand.id.resize(w);
  cand.list.resize(w);
  cand.row.resize(w);
  cand.partial.resize(w);
  if (ctx_.use_norms) {
    cand.rem_p_sq.resize(w);
    task->rem_q_sq -= cand.q_block_norm[d];
  }
  // Unshared scans stream every survivor's row for this chain alone.
  backend_->ChargeStreamedBytes(
      static_cast<size_t>(plan.MachineOf(shard, d)),
      static_cast<uint64_t>(w) * range.width() * sizeof(float));

  // Hand the baton to the next surviving block. Statically lost blocks were
  // already removed from `order` at dispatch, so the hop below normally
  // succeeds; the loop is the defensive failover for a hop lost anyway
  // (e.g. a plan whose crash schedule changed mid-run), which skips the
  // block and degrades the chain instead of dropping the baton.
  size_t next = p + 1;
  while (next < task->order.size() && w > 0) {
    const size_t nd = task->order[next];
    const size_t next_machine = static_cast<size_t>(plan.MachineOf(shard, nd));
    task->pos = next;
    const uint32_t attempts = backend_->PostHop(
        next_machine, ChainHopKey(chain.query, chain.shard, nd),
        ctx_.max_retries,
        [this, task]() mutable { RunSoloStage(std::move(task)); });
    if (attempts > 0) {
      ledger_->BookDelivery(attempts);
      return;
    }
    ledger_->BookDynamicHopLoss(chain.query, ctx_.max_retries);
    ++next;
  }
  FinishChain(task);
}

void ChainExecutor::MergeChainResults(const ChainExecState& task) {
  const ChainCandidates& cand = task.cand;
  backend_->WithQueryHeap(task.chain->query, [&](TopKHeap& heap) {
    for (size_t i = 0; i < cand.id.size(); ++i) {
      const float dist = ctx_.use_ip ? -cand.partial[i] : cand.partial[i];
      heap.Push(cand.id[i], dist);
    }
  });
}

void ChainExecutor::FinishChain(const std::shared_ptr<ChainExecState>& task) {
  MergeChainResults(*task);
  on_done_();
}

void ChainExecutor::FinishGroup(const std::shared_ptr<GroupExecState>& group) {
  for (const auto& member : group->members) MergeChainResults(*member);
  on_done_();  // the done count is per group baton in group mode
}

}  // namespace harmony
