#include "core/chain_exec.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "index/pq.h"
#include "index/scan_kernel.h"
#include "util/logging.h"

namespace harmony {

ChainLossSchedule ComputeChainSchedule(const ExecContext& ctx,
                                       const QueryChain& chain) {
  // Drop coins, start-dead machines, replica rotations and folded health
  // flags are all pure functions of (plan, rank barrier state), so the whole
  // routing + loss schedule of a chain is known at dispatch — and both
  // engines, hitting the same keys, derive the same schedule.
  const PartitionPlan& plan = *ctx.plan;
  const size_t b_dim = ctx.b_dim;
  const size_t shard = static_cast<size_t>(chain.shard);
  const uint32_t max_retries = ctx.max_retries;
  const uint32_t budget = max_retries + 1;
  const size_t reps = ctx.replication;
  const bool walk_replicas = ctx.opts->enable_failover && reps > 1;

  ChainLossSchedule loss;
  loss.attempts.assign(b_dim + 1, 1);
  loss.replica.assign(b_dim + 1, 0);
  loss.wasted.assign(b_dim + 1, 0);
  loss.hedge_replica.assign(b_dim + 1, 0);

  NodeHealthTracker* health = ctx.faulty ? ctx.health : nullptr;
  std::vector<uint8_t> order;
  for (size_t d = 0; d < b_dim; ++d) {
    StageReplicaOrder(ctx, chain, d, &order);
    if (!ctx.faulty) {
      // Routed but healthy (R > 1, no fault plan): every hop delivers first
      // try on the rotation-preferred replica; nothing to book or feed.
      loss.replica[d] = order[0];
      continue;
    }
    const size_t walk_len = walk_replicas ? reps : 1;
    bool delivered = false;
    uint32_t failed_replicas = 0;
    for (size_t i = 0; i < walk_len && !delivered; ++i) {
      const uint8_t r = order[i];
      const size_t machine =
          static_cast<size_t>(plan.ReplicaOf(shard, d, r));
      if (ctx.faults->CrashedFromStart(machine)) {
        // The hop times out through its whole budget against a dead node.
        loss.wasted[d] += budget;
        ++failed_replicas;
        if (health != nullptr) {
          health->RecordDead(machine);
          health->RecordAttempts(machine, budget);
          health->RecordFailures(machine, budget);
        }
        continue;
      }
      const uint32_t a = ctx.faults->DeliveryAttempts(
          ReplicaHopKey(chain.query, chain.shard, d, r), max_retries);
      if (a == 0) {
        loss.wasted[d] += budget;
        ++failed_replicas;
        if (health != nullptr) {
          health->RecordAttempts(machine, budget);
          health->RecordFailures(machine, budget);
        }
        continue;
      }
      loss.attempts[d] = a;
      loss.replica[d] = r;
      delivered = true;
      if (health != nullptr) {
        health->RecordAttempts(machine, a);
        if (a > 1) health->RecordFailures(machine, a - 1);
      }
    }
    if (!delivered) {
      loss.attempts[d] = 0;
      loss.lost_mask |= uint64_t{1} << d;
      loss.failovers += static_cast<uint32_t>(walk_len - 1);
      continue;
    }
    loss.failovers += failed_replicas;
    // Hedge decision: member-independent (group members must bill the same
    // stage identically), so it keys off the stage *primary* — not the
    // delivering replica — and only static fault-plan facts.
    if (ctx.opts->hedge_after > 0.0 && reps > 1) {
      uint8_t primary_r = order[0];
      for (const uint8_t r : order) {
        if (!ctx.faults->CrashedFromStart(
                static_cast<size_t>(plan.ReplicaOf(shard, d, r)))) {
          primary_r = r;
          break;
        }
      }
      const size_t primary_machine =
          static_cast<size_t>(plan.ReplicaOf(shard, d, primary_r));
      if (ctx.faults->DelayMultiplier(primary_machine) >=
          ctx.opts->hedge_after) {
        for (const uint8_t r : order) {
          if (r == primary_r) continue;
          if (ctx.faults->CrashedFromStart(
                  static_cast<size_t>(plan.ReplicaOf(shard, d, r)))) {
            continue;
          }
          loss.hedge_mask |= uint64_t{1} << d;
          loss.hedge_replica[d] = r;
          ++loss.hedges;
          break;
        }
      }
    }
  }

  // Final result hop (worker -> client). The client never dies, so the
  // "replicas" here are independent retransmit paths: with failover each
  // draws its own coin stream before the hop is declared lost.
  if (ctx.faulty) {
    const size_t walk_len = walk_replicas ? reps : 1;
    bool delivered = false;
    for (size_t r = 0; r < walk_len && !delivered; ++r) {
      const uint32_t a = ctx.faults->DeliveryAttempts(
          ReplicaHopKey(chain.query, chain.shard, b_dim, r), max_retries);
      if (a == 0) {
        loss.wasted[b_dim] += budget;
        continue;
      }
      loss.attempts[b_dim] = a;
      loss.replica[b_dim] = static_cast<uint8_t>(r);
      loss.failovers += static_cast<uint32_t>(r);
      delivered = true;
    }
    if (!delivered) {
      loss.attempts[b_dim] = 0;
      loss.result_hop_lost = true;
      loss.failovers += static_cast<uint32_t>(walk_len - 1);
    }
  }
  return loss;
}

void FaultLedger::BookStaticChainLoss(const ChainLossSchedule& loss,
                                      int32_t query, uint32_t max_retries) {
  // Every attempt burned on replicas that failed before the delivering one.
  // The result hop's own budget is excluded: call sites book it through
  // BookLostMessage exactly as the unreplicated engines always have.
  uint64_t wasted = 0;
  if (!loss.wasted.empty()) {
    const size_t b_dim = loss.wasted.size() - 1;
    for (size_t d = 0; d < b_dim; ++d) wasted += loss.wasted[d];
    wasted += loss.wasted[b_dim];
    if (loss.result_hop_lost) wasted -= max_retries + 1;
  }
  if (wasted > 0) {
    messages_dropped_.fetch_add(wasted, std::memory_order_relaxed);
  }
  if (loss.failovers > 0) {
    failovers_.fetch_add(loss.failovers, std::memory_order_relaxed);
  }
  if (loss.hedges > 0) {
    hedged_.fetch_add(loss.hedges, std::memory_order_relaxed);
  }
  if (loss.lost_mask == 0) return;
  const auto n_lost = static_cast<uint64_t>(std::popcount(loss.lost_mask));
  blocks_lost_.fetch_add(n_lost, std::memory_order_relaxed);
  backend_->TagDegraded(query);
}

FaultStats FaultLedger::Snapshot() const {
  FaultStats stats;
  stats.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.blocks_lost = blocks_lost_.load(std::memory_order_relaxed);
  stats.shards_lost = shards_lost_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.hedged = hedged_.load(std::memory_order_relaxed);
  return stats;
}

double RetryPenaltySeconds(const NetworkModel& net, FaultLedger* ledger,
                           uint64_t bytes, uint32_t attempts) {
  double penalty = 0.0;
  for (uint32_t a = 0; a + 1 < attempts; ++a) {
    penalty += net.RetryBackoffSeconds(bytes, a);
  }
  ledger->BookDelivery(attempts);
  return penalty;
}

std::vector<size_t> BuildStaticBlockOrder(size_t b_dim, size_t chain_index,
                                          bool enable_pipeline) {
  std::vector<size_t> order(b_dim);
  std::iota(order.begin(), order.end(), size_t{0});
  if (enable_pipeline && b_dim > 1) {
    std::rotate(order.begin(), order.begin() + (chain_index % b_dim),
                order.end());
  }
  return order;
}

size_t InitialStartBlock(bool enable_pipeline, uint64_t stagger_seq,
                         size_t b_dim, uint64_t usable_blocks) {
  size_t start = enable_pipeline ? stagger_seq % b_dim : 0;
  while ((usable_blocks & (uint64_t{1} << start)) == 0) {
    start = (start + 1) % b_dim;
  }
  return start;
}

size_t NextCyclicBlock(size_t start_block, size_t processed, size_t b_dim,
                       uint64_t remaining) {
  for (size_t step = 0; step < b_dim; ++step) {
    const size_t cand = (start_block + processed + step) % b_dim;
    if ((remaining & (uint64_t{1} << cand)) != 0) return cand;
  }
  return b_dim;
}

size_t ChooseLoadAwareBlock(
    const PartitionPlan& plan, size_t b_dim, uint64_t remaining, bool faulty,
    const uint8_t* machine_dead,
    const std::function<size_t(size_t)>& block_machine,
    const std::function<double(size_t)>& machine_load) {
  if (faulty) {
    // Route around machines whose crash has been observed, unless that
    // would leave nothing (the caller then detects the loss and degrades
    // the chain).
    uint64_t alive = remaining;
    for (size_t cand = 0; cand < b_dim; ++cand) {
      if ((remaining & (uint64_t{1} << cand)) == 0) continue;
      if (machine_dead[block_machine(cand)]) {
        alive &= ~(uint64_t{1} << cand);
      }
    }
    if (alive != 0) remaining = alive;
  }
  double min_load = -1.0;
  for (size_t cand = 0; cand < b_dim; ++cand) {
    if ((remaining & (uint64_t{1} << cand)) == 0) continue;
    const double load = machine_load(block_machine(cand));
    if (min_load < 0.0 || load < min_load) min_load = load;
  }
  const double slack = 0.10 * min_load + 1e-5;
  size_t best = b_dim;
  double best_energy = -1.0;
  for (size_t cand = 0; cand < b_dim; ++cand) {
    if ((remaining & (uint64_t{1} << cand)) == 0) continue;
    const double load = machine_load(block_machine(cand));
    if (load > min_load + slack) continue;  // Overloaded: defer.
    const double energy =
        cand < plan.block_energy.size() ? plan.block_energy[cand] : 0.0;
    if (best == b_dim || energy > best_energy) {
      best = cand;
      best_energy = energy;
    }
  }
  return best;
}

BlockScanParams MakeStageScanParams(const ExecContext& ctx,
                                    ExecBackend* backend,
                                    const QueryChain& chain,
                                    const ChainCandidates& cand, size_t d,
                                    size_t processed, float rem_q_sq) {
  const DimRange range = ctx.plan->dim_ranges[d];
  float tau;
  bool heap_full;
  backend->ReadThreshold(chain.query, &tau, &heap_full);

  BlockScanParams scan;
  scan.metric = ctx.opts->metric;
  scan.use_norms = ctx.use_norms;
  // The first scanned stage has no partials yet, so pruning would compare
  // a zero accumulator against τ; gate on prior stages having run.
  scan.prune = ctx.opts->enable_pruning && processed > 0 && heap_full;
  scan.tau = tau;
  scan.rem_q_sq = rem_q_sq;
  scan.q_slice =
      ctx.queries->Row(static_cast<size_t>(chain.query)) + range.begin;
  scan.width = range.width();
  scan.slices = cand.slices.data() + d * chain.lists.size();
  scan.use_batched = ctx.opts->use_batched_kernels;
  // Plan-recorded kernel dispatch: the tier table + tuned tile shape the
  // context resolved once for the whole batch.
  if (ctx.kernel_tune != nullptr) {
    scan.dispatch = ctx.DispatchFor(range.width());
  }
  if (ctx.use_pq) {
    const ProductQuantizer& q = ctx.opts->pq->block(d);
    scan.luts = cand.luts.data() + d * chain.lists.size();
    scan.ksub = q.codewords();
    scan.code_size = q.code_size();
    if (ctx.use_ip) {
      scan.q_band_norm =
          ctx.pq_q_norm[static_cast<size_t>(chain.query) * ctx.b_dim + d];
    }
  }
  return scan;
}

bool RerankOrderLess(const ChainCandidates& cand, bool use_ip, size_t a,
                     size_t b) {
  const float ka = use_ip ? -cand.partial[a] : cand.partial[a];
  const float kb = use_ip ? -cand.partial[b] : cand.partial[b];
  if (ka != kb) return ka < kb;
  return cand.id[a] < cand.id[b];
}

size_t RerankChainIndices(const ExecContext& ctx, const QueryChain& chain,
                          const ChainCandidates& cand, uint64_t scanned_mask,
                          const size_t* pick, size_t n_pick, bool skip_by_tau,
                          float tau, size_t dist_base, float* dist_out) {
  const ScanKernelTable& kt = ctx.kernel_tune != nullptr
                                  ? ScanKernelsFor(ctx.kernel_tune->tier)
                                  : ScanKernels();
  const bool use_ip = ctx.use_ip;
  const float* qrow = ctx.queries->Row(static_cast<size_t>(chain.query));
  const size_t num_lists = chain.lists.size();
  size_t reranked = 0;
  for (size_t j = 0; j < n_pick; ++j) {
    const size_t i = pick[j];
    if (skip_by_tau) {
      const float lb = use_ip ? -cand.bound[i] : cand.bound[i];
      if (lb > tau) continue;
    }
    // The rank barrier is where tombstones take effect: a deleted row's
    // exact distance is never computed, so its dist stays +inf (both
    // callers pre-fill) and it cannot survive the rerank into any heap.
    if (ctx.IsDeleted(cand.id[i])) continue;
    float acc = 0.0f;
    for (size_t d = 0; d < ctx.b_dim; ++d) {
      if (((scanned_mask >> d) & 1) == 0) continue;
      const DimRange r = ctx.plan->dim_ranges[d];
      const ListSlice* ls =
          cand.slices[d * num_lists + static_cast<size_t>(cand.list[i])];
      const float* row = ls->slice.Row(static_cast<size_t>(cand.row[i]));
      acc += use_ip ? kt.ip_row(qrow + r.begin, row, r.width())
                    : kt.l2_row(qrow + r.begin, row, r.width());
    }
    dist_out[i - dist_base] = use_ip ? -acc : acc;
    ++reranked;
  }
  return reranked;
}

size_t RerankChainCandidates(const ExecContext& ctx, const QueryChain& chain,
                             const ChainCandidates& cand,
                             uint64_t scanned_mask, size_t begin, size_t count,
                             bool skip_by_tau, float tau, float* dist_out) {
  const bool use_ip = ctx.use_ip;
  const float kInf = std::numeric_limits<float>::infinity();
  std::fill(dist_out, dist_out + count, kInf);

  std::vector<size_t> pick(count);
  std::iota(pick.begin(), pick.end(), begin);
  const size_t depth = ctx.opts->rerank_depth;
  if (depth > 0 && depth < count) {
    // Quantized-score order: ADC partial in distance convention, ids break
    // ties — ids are unique within a chain, so the order (hence the byte
    // bill) is deterministic.
    std::sort(pick.begin(), pick.end(), [&](size_t a, size_t b) {
      return RerankOrderLess(cand, use_ip, a, b);
    });
    pick.resize(depth);
  }
  return RerankChainIndices(ctx, chain, cand, scanned_mask, pick.data(),
                            pick.size(), skip_by_tau, tau, begin, dist_out);
}

SharedScanBiller::SharedScanBiller(const ExecContext& ctx)
    : ctx_(ctx),
      grouped_(ctx.opts->shared_scans && ctx.routing->num_groups > 0) {}

uint64_t SharedScanBiller::StageBytes(size_t chain_index,
                                      const QueryChain& chain,
                                      const ChainCandidates& cand, size_t d,
                                      size_t begin, size_t survivors,
                                      uint64_t row_bytes) {
  if (!grouped_) return static_cast<uint64_t>(survivors) * row_bytes;
  uint64_t scan_bytes = 0;
  const uint64_t g =
      static_cast<uint64_t>(ctx_.routing->chain_group[chain_index]) & 0xFFFFFF;
  for (size_t j = begin; j < begin + survivors; ++j) {
    const uint64_t row = static_cast<uint64_t>(cand.row[j]);
    const uint64_t gl =
        static_cast<uint64_t>(
            chain.lists[static_cast<size_t>(cand.list[j])]) &
        0xFFFFF;
    const uint64_t key =
        (g << 40) | (uint64_t{d} << 34) | (gl << 14) | ((row / 64) & 0x3FFF);
    uint64_t& mask = streamed_rows_[key];
    const uint64_t bit = uint64_t{1} << (row % 64);
    if ((mask & bit) == 0) {
      mask |= bit;
      scan_bytes += row_bytes;
    }
  }
  return scan_bytes;
}

namespace {

/// The replica a chain's hop into block `d` lands on: the schedule-chosen
/// one on routed runs, replica 0 (the MachineOf owner) otherwise.
size_t HopReplica(const ChainExecState& task, size_t d) {
  return task.sched.replica.empty() ? 0
                                    : static_cast<size_t>(task.sched.replica[d]);
}

}  // namespace

std::shared_ptr<ChainExecState> ChainExecutor::PrepareChain(
    const QueryChain& chain) const {
  auto task = std::make_shared<ChainExecState>();
  task->chain = &chain;
  BuildChainSliceTable(ctx_, chain, &task->cand);
  const auto* prewarmed =
      backend_->PrewarmedIds(static_cast<size_t>(chain.query));
  BuildChainCandidateArrays(ctx_, chain, *prewarmed, &task->cand);
  if (task->cand.id.empty()) return nullptr;
  if (ctx_.use_norms) {
    ComputeQueryBlockNorms(ctx_, chain, &task->cand);
    task->rem_q_sq = task->cand.rem_q_total;
  }
  return task;
}

bool ChainExecutor::ApplyGroupMemberLoss(ChainExecState* task) const {
  if (!ctx_.routed) return false;
  const QueryChain& chain = *task->chain;
  task->sched = ComputeChainSchedule(ctx_, chain);
  if (!ctx_.faulty) return false;  // Routed-but-healthy: nothing can be lost.
  const ChainLossSchedule& loss = task->sched;
  ledger_->BookStaticChainLoss(loss, chain.query, ctx_.max_retries);
  if (static_cast<size_t>(std::popcount(loss.lost_mask)) == ctx_.b_dim ||
      loss.result_hop_lost) {
    // The whole shard is unreachable for this query (every block lost, or
    // the result hop can never be delivered): the query completes from its
    // other chains.
    if (loss.result_hop_lost) ledger_->BookLostMessage(ctx_.max_retries);
    ledger_->BookShardLost(chain.query);
    return true;
  }
  task->lost_mask = loss.lost_mask;
  return false;
}

bool ChainExecutor::BuildSoloOrder(ChainExecState* task,
                                   size_t chain_index) const {
  const QueryChain& chain = *task->chain;
  task->order = BuildStaticBlockOrder(ctx_.b_dim, chain_index,
                                      ctx_.opts->enable_pipeline);
  if (!ctx_.routed) return false;
  task->sched = ComputeChainSchedule(ctx_, chain);
  if (!ctx_.faulty) return false;  // Routed-but-healthy: nothing can be lost.
  const ChainLossSchedule& loss = task->sched;
  // Strip statically lost blocks, preserving the rotation order of the
  // survivors.
  size_t kept = 0;
  for (const size_t d : task->order) {
    if ((loss.lost_mask >> d) & 1) continue;
    task->order[kept++] = d;
  }
  task->order.resize(kept);
  ledger_->BookStaticChainLoss(loss, chain.query, ctx_.max_retries);
  if (task->order.empty() || loss.result_hop_lost) {
    if (loss.result_hop_lost) ledger_->BookLostMessage(ctx_.max_retries);
    ledger_->BookShardLost(chain.query);
    return true;
  }
  return false;
}

std::vector<size_t> ChainExecutor::MakeGroupOrder(
    size_t anchor_chain_index) const {
  return BuildStaticBlockOrder(ctx_.b_dim, anchor_chain_index,
                               ctx_.opts->enable_pipeline);
}

size_t ChainExecutor::GroupStageMachine(const GroupExecState& group,
                                        size_t d) const {
  // Group members share (probe_rank, shard), hence the replica order and
  // its primary — any member anchors the same machine. The primary is never
  // start-dead while some member still wants the block (all replicas dead
  // would have put the block in every member's lost mask).
  const QueryChain& anchor = *group.members.front()->chain;
  const size_t r = StagePrimaryReplica(ctx_, anchor, d);
  return static_cast<size_t>(
      ctx_.plan->ReplicaOf(static_cast<size_t>(group.shard), d, r));
}

bool ChainExecutor::PostGroupStageFrom(std::shared_ptr<GroupExecState> group,
                                       size_t from) {
  for (size_t next = from; next < group->order.size(); ++next) {
    const size_t nd = group->order[next];
    bool wanted = false;
    for (const auto& m : group->members) {
      if (!m->cand.id.empty() && ((m->lost_mask >> nd) & 1) == 0) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;
    group->pos = next;
    const size_t machine = GroupStageMachine(*group, nd);
    backend_->PostStage(machine, [this, group = std::move(group)]() mutable {
      RunGroupStage(std::move(group));
    });
    return true;
  }
  return false;
}

void ChainExecutor::PostFirstSoloHop(
    const std::shared_ptr<ChainExecState>& task) {
  const QueryChain& chain = *task->chain;
  const size_t d0 = task->order[0];
  const size_t r0 = HopReplica(*task, d0);
  const size_t machine = static_cast<size_t>(
      ctx_.plan->ReplicaOf(static_cast<size_t>(chain.shard), d0, r0));
  const uint32_t attempts = backend_->PostHop(
      machine, ReplicaHopKey(chain.query, chain.shard, d0, r0),
      ctx_.max_retries,
      [this, task]() mutable { RunSoloStage(std::move(task)); });
  // The first hop survives by construction (lost blocks were stripped by
  // BuildSoloOrder, and the schedule's replica walk picked a live replica
  // whose coin stream delivers); book its retries.
  HARMONY_CHECK_MSG(attempts > 0, "statically delivered hop was lost");
  ledger_->BookDelivery(attempts);
}

void ChainExecutor::RunGroupStage(std::shared_ptr<GroupExecState> group) {
  const PartitionPlan& plan = *ctx_.plan;
  const size_t d = group->order[group->pos];
  const DimRange range = plan.dim_ranges[d];

  GroupScanParams params;
  params.metric = ctx_.opts->metric;
  params.use_norms = ctx_.use_norms;
  params.width = range.width();
  params.use_batched = ctx_.opts->use_batched_kernels;
  if (ctx_.kernel_tune != nullptr) {
    params.dispatch = ctx_.DispatchFor(range.width());
  }
  if (ctx_.use_pq) {
    const ProductQuantizer& q = ctx_.opts->pq->block(d);
    params.use_pq = true;
    params.ksub = q.codewords();
    params.code_size = q.code_size();
  }

  std::vector<GroupMemberScan> scans;
  std::vector<ChainExecState*> active;
  scans.reserve(group->members.size());
  active.reserve(group->members.size());
  for (const auto& member : group->members) {
    if (member->cand.id.empty()) continue;
    if ((member->lost_mask >> d) & 1) continue;
    const QueryChain& chain = *member->chain;
    if (ctx_.faulty) {
      // Members ride one shared baton, but each member's hop keeps its own
      // (statically decided) retry bill so fault totals match the unshared
      // dispatch, where every chain posts this hop itself. The schedule
      // already resolved which replica delivered and at what cost.
      ledger_->BookDelivery(member->sched.attempts[d]);
    }
    float tau;
    bool heap_full;
    backend_->ReadThreshold(chain.query, &tau, &heap_full);
    GroupMemberScan ms;
    ms.id = member->cand.id.data();
    ms.list = member->cand.list.data();
    ms.row = member->cand.row.data();
    ms.partial = member->cand.partial.data();
    ms.rem_p_sq = ctx_.use_norms ? member->cand.rem_p_sq.data() : nullptr;
    if (ctx_.use_pq) {
      ms.bound = member->cand.bound.data();
      ms.luts = member->cand.luts.data() + d * chain.lists.size();
      if (ctx_.use_ip) {
        ms.q_band_norm =
            ctx_.pq_q_norm[static_cast<size_t>(chain.query) * ctx_.b_dim + d];
      }
    }
    ms.count = member->cand.id.size();
    ms.slices = member->cand.slices.data() + d * chain.lists.size();
    ms.global_lists = chain.lists.data();
    ms.q_slice =
        ctx_.queries->Row(static_cast<size_t>(chain.query)) + range.begin;
    ms.prune =
        ctx_.opts->enable_pruning && member->processed > 0 && heap_full;
    ms.tau = tau;
    ms.rem_q_sq = member->rem_q_sq;
    scans.push_back(ms);
    active.push_back(member.get());
  }

  if (!scans.empty()) {
    const size_t machine = GroupStageMachine(*group, d);
    const uint64_t scan_bytes =
        ScanBlockGroup(params, scans.data(), scans.size());
    auto charge = [&](size_t m, uint64_t bytes) {
      if (ctx_.use_pq) {
        backend_->ChargeCompressedBytes(m, bytes);
      } else {
        backend_->ChargeStreamedBytes(m, bytes);
      }
    };
    charge(machine, scan_bytes);
    // Hedged stage: the second replica streams the same rows; the loser's
    // bytes are still billed. All active members carry the same
    // (primary-keyed) hedge bit, so reading the first one is well defined.
    const ChainLossSchedule& sched0 = active.front()->sched;
    if (((sched0.hedge_mask >> d) & 1) != 0) {
      charge(static_cast<size_t>(plan.ReplicaOf(
                 static_cast<size_t>(group->shard), d,
                 static_cast<size_t>(sched0.hedge_replica[d]))),
             scan_bytes);
    }
    for (size_t i = 0; i < active.size(); ++i) {
      ChainExecState* m = active[i];
      const size_t w = scans[i].survivors;
      m->cand.id.resize(w);
      m->cand.list.resize(w);
      m->cand.row.resize(w);
      m->cand.partial.resize(w);
      if (ctx_.use_pq) m->cand.bound.resize(w);
      if (ctx_.use_norms) {
        m->cand.rem_p_sq.resize(w);
        m->rem_q_sq -= m->cand.q_block_norm[d];
      }
      ++m->processed;
      m->scanned_mask |= uint64_t{1} << d;
    }
  }

  const size_t next_from = group->pos + 1;
  if (!PostGroupStageFrom(group, next_from)) {
    FinishGroup(group);
  }
}

void ChainExecutor::RunSoloStage(std::shared_ptr<ChainExecState> task) {
  const PartitionPlan& plan = *ctx_.plan;
  const QueryChain& chain = *task->chain;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t p = task->pos;
  const size_t d = task->order[p];
  const DimRange range = plan.dim_ranges[d];

  const BlockScanParams scan =
      MakeStageScanParams(ctx_, backend_, chain, task->cand, d, p,
                          task->rem_q_sq);
  BlockScanCounters counters;
  ChainCandidates& cand = task->cand;
  const size_t w = ScanBlock(
      scan, 0, cand.id.size(), cand.id.data(), cand.list.data(),
      cand.row.data(), cand.partial.data(),
      ctx_.use_norms ? cand.rem_p_sq.data() : nullptr,
      ctx_.use_pq ? cand.bound.data() : nullptr, &counters);
  cand.id.resize(w);
  cand.list.resize(w);
  cand.row.resize(w);
  cand.partial.resize(w);
  if (ctx_.use_pq) cand.bound.resize(w);
  if (ctx_.use_norms) {
    cand.rem_p_sq.resize(w);
    task->rem_q_sq -= cand.q_block_norm[d];
  }
  task->scanned_mask |= uint64_t{1} << d;
  // Unshared scans stream every survivor's row for this chain alone — on
  // the schedule-chosen replica of the block (replica 0 unrouted). Under PQ
  // streams the stage reads the code stream, not the float rows.
  const uint64_t row_bytes =
      ctx_.use_pq ? scan.code_size : range.width() * sizeof(float);
  const uint64_t scan_bytes = static_cast<uint64_t>(w) * row_bytes;
  auto charge = [&](size_t m, uint64_t bytes) {
    if (ctx_.use_pq) {
      backend_->ChargeCompressedBytes(m, bytes);
    } else {
      backend_->ChargeStreamedBytes(m, bytes);
    }
  };
  charge(static_cast<size_t>(plan.ReplicaOf(shard, d, HopReplica(*task, d))),
         scan_bytes);
  // Hedged stage: the second replica streams the same rows; the loser's
  // bytes are still billed.
  if (((task->sched.hedge_mask >> d) & 1) != 0) {
    charge(static_cast<size_t>(plan.ReplicaOf(
               shard, d, static_cast<size_t>(task->sched.hedge_replica[d]))),
           scan_bytes);
  }

  // Hand the baton to the next surviving block. Statically lost blocks were
  // already removed from `order` at dispatch, so the hop below normally
  // succeeds; the loop is the defensive failover for a hop lost anyway
  // (e.g. a plan whose crash schedule changed mid-run), which skips the
  // block and degrades the chain instead of dropping the baton.
  size_t next = p + 1;
  while (next < task->order.size() && w > 0) {
    const size_t nd = task->order[next];
    const size_t nr = HopReplica(*task, nd);
    const size_t next_machine =
        static_cast<size_t>(plan.ReplicaOf(shard, nd, nr));
    task->pos = next;
    const uint32_t attempts = backend_->PostHop(
        next_machine, ReplicaHopKey(chain.query, chain.shard, nd, nr),
        ctx_.max_retries,
        [this, task]() mutable { RunSoloStage(std::move(task)); });
    if (attempts > 0) {
      ledger_->BookDelivery(attempts);
      return;
    }
    ledger_->BookDynamicHopLoss(chain.query, ctx_.max_retries);
    ++next;
  }
  FinishChain(task);
}

void ChainExecutor::MergeChainResults(const ChainExecState& task) {
  const ChainCandidates& cand = task.cand;
  if (!ctx_.use_pq) {
    backend_->WithQueryHeap(task.chain->query, [&](TopKHeap& heap) {
      for (size_t i = 0; i < cand.id.size(); ++i) {
        if (ctx_.IsDeleted(cand.id[i])) continue;  // dead at the rank barrier
        const float dist = ctx_.use_ip ? -cand.partial[i] : cand.partial[i];
        heap.Push(cand.id[i], dist);
      }
    });
    return;
  }
  // Quantized streams: the partials are ADC estimates, so the rank barrier
  // reranks survivors exactly from the float slices before the merge
  // (docs/quantization.md) — the merged distances are then bit-identical to
  // the float path's.
  const QueryChain& chain = *task.chain;
  float tau;
  bool heap_full;
  backend_->ReadThreshold(chain.query, &tau, &heap_full);
  const bool skip_by_tau = ctx_.opts->enable_pruning && heap_full;
  std::vector<float> dist(cand.id.size());
  const size_t reranked =
      RerankChainCandidates(ctx_, chain, cand, task.scanned_mask, 0,
                            cand.id.size(), skip_by_tau, tau, dist.data());
  // The rerank re-reads each reranked candidate's float rows from every
  // block the chain scanned; bill those reads to the replica the block's
  // hop landed on (same attribution as the stage scans).
  if (reranked > 0) {
    const PartitionPlan& plan = *ctx_.plan;
    const size_t shard = static_cast<size_t>(chain.shard);
    for (size_t d = 0; d < ctx_.b_dim; ++d) {
      if (((task.scanned_mask >> d) & 1) == 0) continue;
      backend_->ChargeStreamedBytes(
          static_cast<size_t>(plan.ReplicaOf(shard, d, HopReplica(task, d))),
          static_cast<uint64_t>(reranked) * plan.dim_ranges[d].width() *
              sizeof(float));
    }
  }
  const float kInf = std::numeric_limits<float>::infinity();
  backend_->WithQueryHeap(chain.query, [&](TopKHeap& heap) {
    for (size_t i = 0; i < cand.id.size(); ++i) {
      if (dist[i] == kInf) continue;  // τ-skipped or outside rerank_depth
      heap.Push(cand.id[i], dist[i]);
    }
  });
}

void ChainExecutor::FinishChain(const std::shared_ptr<ChainExecState>& task) {
  MergeChainResults(*task);
  if (on_chain_done_) on_chain_done_(task->chain->query);
  on_done_();
}

void ChainExecutor::FinishGroup(const std::shared_ptr<GroupExecState>& group) {
  for (const auto& member : group->members) MergeChainResults(*member);
  if (on_chain_done_) {
    for (const auto& member : group->members) {
      on_chain_done_(member->chain->query);
    }
  }
  on_done_();  // the done count is per group baton in group mode
}

}  // namespace harmony
