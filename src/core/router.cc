#include "core/router.h"

#include <algorithm>
#include <map>

namespace harmony {

BatchRouting RouteBatch(const IvfIndex& index, const PartitionPlan& plan,
                        const DatasetView& queries, size_t nprobe,
                        size_t group_size) {
  BatchRouting routing;
  routing.probe_lists.resize(queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    routing.probe_lists[q] = index.ProbeLists(queries.Row(q), nprobe);
    // Group this query's probed lists by shard; a shard's rank is the rank
    // of the nearest probed list it contains.
    std::map<int32_t, QueryChain> by_shard;
    for (size_t rank = 0; rank < routing.probe_lists[q].size(); ++rank) {
      const int32_t list_id = routing.probe_lists[q][rank];
      const int32_t shard = plan.list_to_shard[static_cast<size_t>(list_id)];
      auto [it, inserted] = by_shard.try_emplace(shard);
      QueryChain& chain = it->second;
      if (inserted) {
        chain.query = static_cast<int32_t>(q);
        chain.shard = shard;
        chain.probe_rank = static_cast<int32_t>(rank);
      }
      chain.lists.push_back(list_id);
      chain.candidate_count +=
          static_cast<int64_t>(index.ListIds(static_cast<size_t>(list_id)).size());
    }
    for (auto& [shard, chain] : by_shard) {
      (void)shard;
      routing.max_probe_rank = std::max(
          routing.max_probe_rank, static_cast<size_t>(chain.probe_rank));
      routing.total_candidates += chain.candidate_count;
      routing.chains.push_back(std::move(chain));
    }
  }

  std::stable_sort(routing.chains.begin(), routing.chains.end(),
                   [](const QueryChain& a, const QueryChain& b) {
                     if (a.probe_rank != b.probe_rank) {
                       return a.probe_rank < b.probe_rank;
                     }
                     return a.query < b.query;
                   });

  // Query-group assignment: walk the sorted chains once and bucket them by
  // (probe_rank, shard), opening a new group whenever the shard's current
  // one is full. Dense group ids in first-appearance order keep downstream
  // bookkeeping (cost-model billing, group dispatch) index-based.
  routing.chain_group.assign(routing.chains.size(), 0);
  const size_t cap = std::max<size_t>(1, group_size);
  int32_t next_group = 0;
  std::map<int32_t, std::pair<int32_t, size_t>> open;  // shard -> (id, fill)
  int32_t open_rank = -1;
  for (size_t c = 0; c < routing.chains.size(); ++c) {
    const QueryChain& chain = routing.chains[c];
    if (chain.probe_rank != open_rank) {
      open.clear();
      open_rank = chain.probe_rank;
    }
    auto [it, inserted] = open.try_emplace(chain.shard, next_group, size_t{0});
    if (inserted || it->second.second >= cap) {
      it->second = {next_group++, 0};
    }
    routing.chain_group[c] = it->second.first;
    ++it->second.second;
  }
  routing.num_groups = static_cast<size_t>(next_group);
  return routing;
}

}  // namespace harmony
