#include "core/router.h"

#include <algorithm>
#include <map>

namespace harmony {

BatchRouting RouteBatch(const IvfIndex& index, const PartitionPlan& plan,
                        const DatasetView& queries, size_t nprobe) {
  BatchRouting routing;
  routing.probe_lists.resize(queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    routing.probe_lists[q] = index.ProbeLists(queries.Row(q), nprobe);
    // Group this query's probed lists by shard; a shard's rank is the rank
    // of the nearest probed list it contains.
    std::map<int32_t, QueryChain> by_shard;
    for (size_t rank = 0; rank < routing.probe_lists[q].size(); ++rank) {
      const int32_t list_id = routing.probe_lists[q][rank];
      const int32_t shard = plan.list_to_shard[static_cast<size_t>(list_id)];
      auto [it, inserted] = by_shard.try_emplace(shard);
      QueryChain& chain = it->second;
      if (inserted) {
        chain.query = static_cast<int32_t>(q);
        chain.shard = shard;
        chain.probe_rank = static_cast<int32_t>(rank);
      }
      chain.lists.push_back(list_id);
      chain.candidate_count +=
          static_cast<int64_t>(index.ListIds(static_cast<size_t>(list_id)).size());
    }
    for (auto& [shard, chain] : by_shard) {
      (void)shard;
      routing.max_probe_rank = std::max(
          routing.max_probe_rank, static_cast<size_t>(chain.probe_rank));
      routing.total_candidates += chain.candidate_count;
      routing.chains.push_back(std::move(chain));
    }
  }

  std::stable_sort(routing.chains.begin(), routing.chains.end(),
                   [](const QueryChain& a, const QueryChain& b) {
                     if (a.probe_rank != b.probe_rank) {
                       return a.probe_rank < b.probe_rank;
                     }
                     return a.query < b.query;
                   });
  return routing;
}

}  // namespace harmony
