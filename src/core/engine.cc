#include "core/engine.h"

#include <algorithm>
#include <vector>

#include "core/cost_model.h"
#include "core/router.h"
#include "util/logging.h"
#include "util/timer.h"

namespace harmony {

namespace {

/// Uniform prior used at build time, before any queries are seen: every
/// list equally likely to be probed.
WorkloadProfile UniformPrior(const IvfIndex& index, size_t k, size_t nprobe) {
  WorkloadProfile profile;
  profile.num_queries = 1000;
  profile.dim = index.dim();
  profile.k = k;
  profile.nprobe = nprobe;
  profile.list_sizes = index.ListSizes();
  const double per_list =
      static_cast<double>(profile.num_queries) *
      static_cast<double>(nprobe) / static_cast<double>(index.nlist());
  profile.list_probe_count.assign(index.nlist(), per_list);
  return profile;
}

}  // namespace

HarmonyEngine::HarmonyEngine(HarmonyOptions options)
    : options_(options), index_(options.ivf) {
  effective_machines_ =
      options_.mode == Mode::kSingleNode ? 1 : std::max<size_t>(1, options_.num_machines);
  if (options_.mode == Mode::kSingleNode) {
    // Client and the single worker are the same physical node: no network.
    options_.net.latency_seconds = 0.0;
    options_.net.bandwidth_bytes_per_sec = 1e18;
  }
  if (!options_.enable_pipeline) {
    // Ablation: without the pipeline there is no compute/communication
    // overlap — sends block the sender (Figure 2(b) "B" mode).
    options_.net.mode = CommMode::kBlocking;
  }
}

Status HarmonyEngine::Build(const DatasetView& base) {
  if (built_) return Status::FailedPrecondition("engine already built");
  HARMONY_RETURN_NOT_OK(index_.Train(base));
  HARMONY_RETURN_NOT_OK(index_.Add(base));
  return FinishBuild();
}

Status HarmonyEngine::BuildFromIndex(IvfIndex index) {
  if (built_) return Status::FailedPrecondition("engine already built");
  if (!index.trained() || index.num_vectors() == 0) {
    return Status::InvalidArgument("index must be trained and populated");
  }
  if (index.metric() != options_.ivf.metric) {
    return Status::InvalidArgument("index metric does not match engine");
  }
  index_ = std::move(index);
  return FinishBuild();
}

Status HarmonyEngine::FinishBuild() {
  build_stats_.train_seconds = index_.build_stats().train_seconds;
  build_stats_.add_seconds = index_.build_stats().add_seconds;

  StopWatch preassign;
  CostModelParams cost;
  cost.alpha = options_.alpha;
  cost.pruning_survival = options_.pruning_survival;
  cost.pruning_enabled = options_.enable_pruning;
  cost.pipeline_batch = options_.pipeline_batch;
  cost.replication = options_.replication_factor;
  cost.pq_subspaces = options_.use_pq_streams ? options_.pq_subspaces : 0;
  cost.net = options_.net;
  cost.machine = options_.machine;
  QueryPlanner planner(options_.mode, cost);
  const WorkloadProfile prior = UniformPrior(index_, /*k=*/10, /*nprobe=*/8);
  HARMONY_ASSIGN_OR_RETURN(
      last_choice_,
      planner.Plan(index_, effective_machines_, prior,
                   options_.enable_balanced_load, options_.force_b_vec,
                   options_.force_b_dim));
  HARMONY_RETURN_NOT_OK(Repartition(last_choice_.plan));
  prewarm_ = PrewarmCache::Build(index_, options_.prewarm_per_list);
  build_stats_.preassign_seconds = preassign.ElapsedSeconds();
  next_id_ = index_.num_vectors();
  update_log_ = UpdateLog(index_.dim());
  delta_.assign(plan_.num_vec_shards, DeltaShard());
  built_ = true;
  return Status::OK();
}

Status HarmonyEngine::TrainQuantizer(const PartitionPlan& plan) {
  quantizer_.Reset();
  if (!options_.use_pq_streams) return Status::OK();
  // Deterministic training sample: stored vectors walked in list order,
  // strided down to a cap so per-band k-means stays cheap on large bases.
  // The codebooks quantize coarse-centroid residuals (IVFADC), so the
  // sample is each row minus its list's centroid — the residual energy is
  // what the codes have to cover, which is far less than the raw rows'.
  constexpr size_t kMaxTrainRows = 65536;
  const size_t total = index_.num_vectors();
  if (total == 0) return Status::InvalidArgument("no vectors to train PQ on");
  const size_t stride = (total + kMaxTrainRows - 1) / kMaxTrainRows;
  const size_t dim = index_.dim();
  Dataset train(std::vector<float>(), dim);
  std::vector<float> residual(dim);
  size_t seen = 0;
  for (size_t l = 0; l < index_.nlist(); ++l) {
    const DatasetView vecs = index_.ListVectors(l);
    const float* centroid = index_.centroids().Row(l);
    for (size_t i = 0; i < vecs.size(); ++i, ++seen) {
      if (seen % stride != 0) continue;
      const float* row = vecs.Row(i);
      for (size_t k = 0; k < dim; ++k) residual[k] = row[k] - centroid[k];
      HARMONY_RETURN_NOT_OK(train.Append(residual.data(), dim));
    }
  }
  GridPqParams params;
  params.num_subspaces = options_.pq_subspaces;
  params.bits = options_.pq_bits;
  params.train_iters = options_.pq_train_iters;
  return quantizer_.Train(train.View(), plan.dim_ranges, params);
}

Status HarmonyEngine::Repartition(const PartitionPlan& plan) {
  const bool with_norms =
      plan.num_dim_blocks > 1 && options_.ivf.metric != Metric::kL2;
  // The quantizer's per-block subspaces follow the plan's dim ranges, so a
  // reshaped grid retrains it before the stores encode their code streams.
  HARMONY_RETURN_NOT_OK(TrainQuantizer(plan));
  HARMONY_ASSIGN_OR_RETURN(
      stores_, BuildWorkerStores(index_, plan, with_norms,
                                 quantizer_.trained() ? &quantizer_ : nullptr));
  stores_with_norms_ = with_norms;
  // Pending delta rows ride out a repartition: list→shard ownership and dim
  // ranges may both have moved, so re-bucket them from their retained
  // full-dim originals, and force the next batch to fold a fresh epoch on
  // top of the rebuilt frozen stores.
  if (pending_delta_rows() > 0) {
    RedistributeDelta(plan);
    epoch_dirty_ = true;
  } else {
    delta_.assign(plan.num_vec_shards, DeltaShard());
  }
  epoch_stores_.reset();
  plan_ = plan;
  return Status::OK();
}

size_t HarmonyEngine::pending_delta_rows() const {
  size_t rows = 0;
  for (const DeltaShard& shard : delta_) rows += shard.rows();
  return rows;
}

void HarmonyEngine::RedistributeDelta(const PartitionPlan& plan) {
  std::vector<DeltaShard> old = std::move(delta_);
  delta_.assign(plan.num_vec_shards, DeltaShard());
  for (const DeltaShard& shard : old) {
    for (size_t r = 0; r < shard.rows(); ++r) {
      const float* row = shard.full_rows.data() + r * shard.dim;
      const int32_t list = shard.lists[r];
      const size_t dest =
          static_cast<size_t>(plan.list_to_shard[static_cast<size_t>(list)]);
      delta_[dest].Append(row, shard.dim, shard.ids[r], list, plan.dim_ranges);
    }
  }
}

Status HarmonyEngine::AddVectors(const DatasetView& vectors) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (vectors.empty()) return Status::OK();
  if (vectors.dim() != index_.dim()) {
    return Status::InvalidArgument("dimension mismatch on AddVectors");
  }
  // Bulk load assigns ids densely from index_.num_vectors(); once the
  // epoch-versioned path has run (pending inserts, or a merge after
  // deletes made the id space sparse) that would collide with or reuse a
  // live id.
  if (next_id_ != index_.num_vectors() || tombstone_count_ > 0) {
    return Status::FailedPrecondition(
        "AddVectors requires a pristine id space: use InsertVectors once "
        "epoch-versioned updates have run");
  }
  const size_t first_id = index_.num_vectors();
  HARMONY_RETURN_NOT_OK(index_.Add(vectors));
  const DatasetView centroids = index_.centroids().View();
  for (size_t i = 0; i < vectors.size(); ++i) {
    const float* row = vectors.Row(i);
    const int64_t gid = static_cast<int64_t>(first_id + i);
    const int32_t list = NearestCentroid(centroids, row);
    const size_t shard =
        static_cast<size_t>(plan_.list_to_shard[static_cast<size_t>(list)]);
    for (size_t d = 0; d < plan_.num_dim_blocks; ++d) {
      for (size_t r = 0; r < plan_.replication; ++r) {
        const size_t machine =
            static_cast<size_t>(plan_.ReplicaOf(shard, d, r));
        HARMONY_RETURN_NOT_OK(stores_[machine].AppendVector(
            shard, d, list, plan_.dim_ranges[d], row, vectors.dim(), gid,
            stores_with_norms_,
            quantizer_.trained() ? &quantizer_ : nullptr,
            quantizer_.trained()
                ? index_.centroids().Row(static_cast<size_t>(list))
                : nullptr));
      }
    }
  }
  next_id_ = index_.num_vectors();
  return Status::OK();
}

Status HarmonyEngine::InsertOne(const float* row, int64_t gid) {
  const int32_t list = NearestCentroid(index_.centroids().View(), row);
  const size_t shard =
      static_cast<size_t>(plan_.list_to_shard[static_cast<size_t>(list)]);
  update_log_.AppendInsert(gid, row, index_.dim());
  delta_[shard].Append(row, index_.dim(), gid, list, plan_.dim_ranges);
  epoch_dirty_ = true;
  return Status::OK();
}

Status HarmonyEngine::InsertVectors(const DatasetView& vectors) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (vectors.empty()) return Status::OK();
  if (vectors.dim() != index_.dim()) {
    return Status::InvalidArgument("dimension mismatch on InsertVectors");
  }
  for (size_t i = 0; i < vectors.size(); ++i) {
    const int64_t gid = static_cast<int64_t>(next_id_++);
    HARMONY_RETURN_NOT_OK(InsertOne(vectors.Row(i), gid));
  }
  return Status::OK();
}

Status HarmonyEngine::DeleteVectors(const std::vector<int64_t>& ids) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  for (const int64_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= next_id_) {
      return Status::InvalidArgument("delete id out of range: " +
                                     std::to_string(id));
    }
    update_log_.AppendDelete(id);
    const size_t word = static_cast<size_t>(id) >> 6;
    if (word >= tombstones_.size()) tombstones_.resize(word + 1, 0);
    const uint64_t bit = uint64_t{1} << (static_cast<size_t>(id) & 63);
    if ((tombstones_[word] & bit) == 0) {
      tombstones_[word] |= bit;
      ++tombstone_count_;
    }
  }
  return Status::OK();
}

Status HarmonyEngine::RefreshEpoch() {
  if (!epoch_dirty_) return Status::OK();
  epoch_dirty_ = false;
  if (pending_delta_rows() == 0) {
    epoch_stores_.reset();
    return Status::OK();
  }
  // Copy-on-write fold: clone the frozen stores and append every delta
  // row's slices (norm columns and residual PQ codes included, using the
  // build-pinned codebooks). The clone is what in-flight batches keep
  // pinned while a later merge swaps generations underneath.
  auto epoch = std::make_shared<std::vector<WorkerStore>>(stores_);
  const size_t dim = index_.dim();
  for (size_t s = 0; s < delta_.size(); ++s) {
    const DeltaShard& shard = delta_[s];
    for (size_t r = 0; r < shard.rows(); ++r) {
      const float* row = shard.full_rows.data() + r * dim;
      const int32_t list = shard.lists[r];
      for (size_t d = 0; d < plan_.num_dim_blocks; ++d) {
        for (size_t rep = 0; rep < plan_.replication; ++rep) {
          const size_t machine =
              static_cast<size_t>(plan_.ReplicaOf(s, d, rep));
          HARMONY_RETURN_NOT_OK((*epoch)[machine].AppendVector(
              s, d, list, plan_.dim_ranges[d], row, dim, shard.ids[r],
              stores_with_norms_,
              quantizer_.trained() ? &quantizer_ : nullptr,
              quantizer_.trained()
                  ? index_.centroids().Row(static_cast<size_t>(list))
                  : nullptr));
        }
      }
    }
  }
  epoch_stores_ = std::move(epoch);
  return Status::OK();
}

Result<StoreSnapshot> HarmonyEngine::AcquireSnapshot() {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  HARMONY_RETURN_NOT_OK(RefreshEpoch());
  StoreSnapshot snap;
  if (epoch_stores_ != nullptr) {
    snap.stores = epoch_stores_;
  } else {
    // No pending delta: alias the frozen stores without owning them — the
    // updates-off path stays byte-identical (same payload, same addresses).
    snap.stores = std::shared_ptr<const std::vector<WorkerStore>>(
        std::shared_ptr<const std::vector<WorkerStore>>(), &stores_);
  }
  if (tombstone_count_ > 0) {
    snap.tombstones = tombstones_.data();
    snap.tombstone_words = tombstones_.size();
  }
  snap.generation = generation_;
  return snap;
}

Status HarmonyEngine::MergeUpdates() {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (pending_delta_rows() == 0 && tombstone_count_ == 0) return Status::OK();
  // Fold pending inserts into the IVF index first, then remove tombstoned
  // rows — this order makes delete-of-a-pending-insert land correctly —
  // then rebuild the grid (and PQ codes) on the current plan at a rank
  // barrier. Ids survive untouched, so the id space goes sparse after
  // deletes and is never reused.
  const size_t dim = index_.dim();
  for (const DeltaShard& shard : delta_) {
    for (size_t r = 0; r < shard.rows(); ++r) {
      HARMONY_RETURN_NOT_OK(index_.AddAssigned(
          shard.lists[r], shard.ids[r], shard.full_rows.data() + r * dim,
          dim));
    }
  }
  if (tombstone_count_ > 0) {
    index_.RemoveIds(tombstones_.data(), tombstones_.size());
  }
  delta_.assign(plan_.num_vec_shards, DeltaShard());
  tombstones_.clear();
  tombstone_count_ = 0;
  epoch_dirty_ = false;
  HARMONY_RETURN_NOT_OK(Repartition(plan_));
  prewarm_ = PrewarmCache::Build(index_, options_.prewarm_per_list);
  ++generation_;
  update_log_.MarkMerged();
  update_log_.Compact();
  return Status::OK();
}

Status HarmonyEngine::ReplayUpdates(const UpdateLog& log) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (log.dim() != index_.dim()) {
    return Status::InvalidArgument("update log dimension mismatch");
  }
  for (const UpdateRecord& rec : log.records()) {
    switch (rec.op) {
      case UpdateOp::kInsert: {
        if (rec.id != static_cast<int64_t>(next_id_)) {
          return Status::FailedPrecondition(
              "replayed insert id " + std::to_string(rec.id) +
              " does not continue this engine's id space at " +
              std::to_string(next_id_));
        }
        ++next_id_;
        HARMONY_RETURN_NOT_OK(InsertOne(rec.vec.data(), rec.id));
        break;
      }
      case UpdateOp::kDelete:
        HARMONY_RETURN_NOT_OK(DeleteVectors({rec.id}));
        break;
    }
  }
  return Status::OK();
}

ExecOptions HarmonyEngine::MakeExecOptions(size_t k, size_t nprobe) const {
  // The single engine->execution conversion point: the shared ExecTuning
  // base carries over wholesale (both structs inherit it), leaving only the
  // fields that genuinely differ between the two layers.
  ExecOptions exec;
  static_cast<ExecTuning&>(exec) = static_cast<const ExecTuning&>(options_);
  exec.metric = options_.ivf.metric;
  exec.k = k;
  exec.nprobe = nprobe;
  exec.dynamic_dim_order =
      options_.enable_pipeline && options_.enable_balanced_load;
  exec.pq = quantizer_.trained() ? &quantizer_ : nullptr;
  // Mutable-store state rides along with every batch: a null tombstone
  // pointer when no deletes are pending keeps the updates-off path
  // byte-identical to the pinned goldens.
  if (tombstone_count_ > 0) {
    exec.tombstones = tombstones_.data();
    exec.tombstone_words = tombstones_.size();
  }
  exec.store_generation = generation_;
  return exec;
}

Status HarmonyEngine::SetLabels(std::vector<int32_t> labels) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  // One label per assigned global id. IdSpan (not num_vectors) is the
  // authority once updates run: deltas widen the id space before they reach
  // the index, and merged deletes leave it sparse.
  if (labels.size() != IdSpan()) {
    return Status::InvalidArgument(
        "need exactly one label per assigned global id (" +
        std::to_string(IdSpan()) + "), got " + std::to_string(labels.size()));
  }
  labels_ = std::move(labels);
  return Status::OK();
}

Result<BatchResult> HarmonyEngine::SearchBatch(const DatasetView& queries,
                                               size_t k, size_t nprobe) {
  return SearchInternal(queries, k, nprobe, nullptr);
}

Result<BatchResult> HarmonyEngine::SearchBatchFiltered(
    const DatasetView& queries, size_t k, size_t nprobe,
    int32_t allowed_label) {
  if (labels_.empty()) {
    return Status::FailedPrecondition("SetLabels() must run before filtering");
  }
  if (labels_.size() != IdSpan()) {
    return Status::FailedPrecondition(
        "labels are stale: call SetLabels() again after adding vectors");
  }
  ExecOptions exec = MakeExecOptions(k, nprobe);
  exec.labels = &labels_;
  exec.allowed_label = allowed_label;
  return SearchInternal(queries, k, nprobe, &exec);
}

Result<BatchResult> HarmonyEngine::SearchInternal(const DatasetView& queries,
                                                  size_t k, size_t nprobe,
                                                  const ExecOptions* exec_override) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (queries.empty()) return Status::InvalidArgument("empty query batch");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }

  StopWatch plan_watch;
  // Profile the batch and let the cost model reconsider the grid shape
  // (Mode::kHarmony only; other modes are pinned and re-planning is a
  // no-op returning the same shape).
  CostModelParams cost;
  cost.alpha = options_.alpha;
  cost.pruning_survival = options_.pruning_survival;
  cost.pruning_enabled = options_.enable_pruning;
  cost.pipeline_batch = options_.pipeline_batch;
  cost.replication = options_.replication_factor;
  cost.pq_subspaces = options_.use_pq_streams ? options_.pq_subspaces : 0;
  cost.net = options_.net;
  cost.machine = options_.machine;
  QueryPlanner planner(options_.mode, cost);
  const WorkloadProfile profile =
      ProfileWorkload(index_, queries, k, nprobe, options_.profile_sample);
  HARMONY_ASSIGN_OR_RETURN(
      PlanChoice choice,
      planner.Plan(index_, effective_machines_, profile,
                   options_.enable_balanced_load, options_.force_b_vec,
                   options_.force_b_dim));
  if (choice.plan.num_vec_shards != plan_.num_vec_shards ||
      choice.plan.num_dim_blocks != plan_.num_dim_blocks ||
      choice.plan.list_to_shard != plan_.list_to_shard) {
    HARMONY_RETURN_NOT_OK(Repartition(choice.plan));
    ++repartition_count_;
  }
  last_choice_ = std::move(choice);
  return ExecuteOnCurrentPlan(queries, k, nprobe, exec_override,
                              plan_watch.ElapsedSeconds());
}

Result<BatchResult> HarmonyEngine::SearchBatchPinned(const DatasetView& queries,
                                                     size_t k, size_t nprobe) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (queries.empty()) return Status::InvalidArgument("empty query batch");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }
  return ExecuteOnCurrentPlan(queries, k, nprobe, nullptr,
                              /*plan_seconds=*/0.0);
}

Result<BatchResult> HarmonyEngine::ExecuteOnCurrentPlan(
    const DatasetView& queries, size_t k, size_t nprobe,
    const ExecOptions* exec_override, double plan_seconds) {
  // Acquired once per batch: the whole run executes one generation's stores
  // no matter when a merge lands (the shared_ptr pins the epoch payload).
  HARMONY_ASSIGN_OR_RETURN(const StoreSnapshot snap, AcquireSnapshot());
  SimCluster cluster(effective_machines_, options_.net, options_.machine);
  const ExecOptions exec =
      exec_override != nullptr ? *exec_override : MakeExecOptions(k, nprobe);
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  if (exec.faults.enabled()) cluster.SetFaultPlan(exec.faults);
  HARMONY_ASSIGN_OR_RETURN(
      PipelineOutput output,
      ExecuteSimulated(index_, plan_, *snap.stores, prewarm_, routing, queries,
                       exec, &cluster));

  BatchResult result;
  result.results = std::move(output.results);
  result.degraded = std::move(output.degraded);
  BatchStats& stats = result.stats;
  stats.faults = output.faults;
  stats.num_queries = queries.size();
  stats.makespan_seconds = cluster.Makespan();
  stats.qps = stats.makespan_seconds > 0.0
                  ? static_cast<double>(queries.size()) / stats.makespan_seconds
                  : 0.0;
  stats.plan_seconds = plan_seconds;
  stats.breakdown = cluster.Breakdown();
  stats.prune = output.prune;
  stats.memory = IndexMemory();
  stats.memory.peak_query_bytes =
      stats.memory.index_bytes_max_node + output.peak_intermediate_bytes;
  stats.node_compute_seconds.reserve(effective_machines_);
  for (size_t m = 0; m < effective_machines_; ++m) {
    stats.node_compute_seconds.push_back(cluster.worker(m).compute_seconds());
    stats.node_comm_seconds.push_back(cluster.worker(m).comm_seconds());
    stats.node_idle_seconds.push_back(cluster.worker(m).idle_seconds());
  }
  stats.client_clock_seconds = cluster.client().clock();
  stats.client_compute_seconds = cluster.client().compute_seconds();
  result.query_seconds = output.query_completion_seconds;
  std::vector<double> latencies = std::move(output.query_completion_seconds);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    stats.latency_p50_seconds = pct(0.50);
    stats.latency_p95_seconds = pct(0.95);
    stats.latency_p99_seconds = pct(0.99);
    stats.latency_max_seconds = latencies.back();
  }
  return result;
}

Result<ThreadedOutput> HarmonyEngine::SearchBatchThreaded(
    const DatasetView& queries, size_t k, size_t nprobe) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  HARMONY_ASSIGN_OR_RETURN(const StoreSnapshot snap, AcquireSnapshot());
  const ExecOptions exec = MakeExecOptions(k, nprobe);
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  return ExecuteThreaded(index_, plan_, *snap.stores, prewarm_, routing,
                         queries, exec);
}

Result<ThreadedOutput> HarmonyEngine::SearchBatchThreadedFiltered(
    const DatasetView& queries, size_t k, size_t nprobe,
    int32_t allowed_label) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (labels_.empty()) {
    return Status::FailedPrecondition("SetLabels() must run before filtering");
  }
  if (labels_.size() != IdSpan()) {
    return Status::FailedPrecondition(
        "labels are stale: call SetLabels() again after adding vectors");
  }
  HARMONY_ASSIGN_OR_RETURN(const StoreSnapshot snap, AcquireSnapshot());
  ExecOptions exec = MakeExecOptions(k, nprobe);
  exec.labels = &labels_;
  exec.allowed_label = allowed_label;
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  return ExecuteThreaded(index_, plan_, *snap.stores, prewarm_, routing,
                         queries, exec);
}

MemoryStats HarmonyEngine::IndexMemory() const {
  MemoryStats mem;
  for (const WorkerStore& store : stores_) {
    const uint64_t bytes = store.SizeBytes();
    mem.index_bytes_total += bytes;
    mem.index_bytes_max_node = std::max(mem.index_bytes_max_node, bytes);
    mem.index_code_bytes += store.CodeBytes();
  }
  mem.client_bytes = index_.centroids().SizeBytes() + prewarm_.SizeBytes() +
                     quantizer_.SizeBytes();
  for (const DeltaShard& shard : delta_) {
    mem.delta_bytes_total += shard.SizeBytes();
  }
  mem.tombstone_bytes = tombstones_.size() * sizeof(uint64_t);
  return mem;
}

}  // namespace harmony
