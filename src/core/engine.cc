#include "core/engine.h"

#include <algorithm>
#include <vector>

#include "core/cost_model.h"
#include "core/router.h"
#include "util/logging.h"
#include "util/timer.h"

namespace harmony {

namespace {

/// Uniform prior used at build time, before any queries are seen: every
/// list equally likely to be probed.
WorkloadProfile UniformPrior(const IvfIndex& index, size_t k, size_t nprobe) {
  WorkloadProfile profile;
  profile.num_queries = 1000;
  profile.dim = index.dim();
  profile.k = k;
  profile.nprobe = nprobe;
  profile.list_sizes = index.ListSizes();
  const double per_list =
      static_cast<double>(profile.num_queries) *
      static_cast<double>(nprobe) / static_cast<double>(index.nlist());
  profile.list_probe_count.assign(index.nlist(), per_list);
  return profile;
}

}  // namespace

HarmonyEngine::HarmonyEngine(HarmonyOptions options)
    : options_(options), index_(options.ivf) {
  effective_machines_ =
      options_.mode == Mode::kSingleNode ? 1 : std::max<size_t>(1, options_.num_machines);
  if (options_.mode == Mode::kSingleNode) {
    // Client and the single worker are the same physical node: no network.
    options_.net.latency_seconds = 0.0;
    options_.net.bandwidth_bytes_per_sec = 1e18;
  }
  if (!options_.enable_pipeline) {
    // Ablation: without the pipeline there is no compute/communication
    // overlap — sends block the sender (Figure 2(b) "B" mode).
    options_.net.mode = CommMode::kBlocking;
  }
}

Status HarmonyEngine::Build(const DatasetView& base) {
  if (built_) return Status::FailedPrecondition("engine already built");
  HARMONY_RETURN_NOT_OK(index_.Train(base));
  HARMONY_RETURN_NOT_OK(index_.Add(base));
  return FinishBuild();
}

Status HarmonyEngine::BuildFromIndex(IvfIndex index) {
  if (built_) return Status::FailedPrecondition("engine already built");
  if (!index.trained() || index.num_vectors() == 0) {
    return Status::InvalidArgument("index must be trained and populated");
  }
  if (index.metric() != options_.ivf.metric) {
    return Status::InvalidArgument("index metric does not match engine");
  }
  index_ = std::move(index);
  return FinishBuild();
}

Status HarmonyEngine::FinishBuild() {
  build_stats_.train_seconds = index_.build_stats().train_seconds;
  build_stats_.add_seconds = index_.build_stats().add_seconds;

  StopWatch preassign;
  CostModelParams cost;
  cost.alpha = options_.alpha;
  cost.pruning_survival = options_.pruning_survival;
  cost.pruning_enabled = options_.enable_pruning;
  cost.pipeline_batch = options_.pipeline_batch;
  cost.replication = options_.replication_factor;
  cost.pq_subspaces = options_.use_pq_streams ? options_.pq_subspaces : 0;
  cost.net = options_.net;
  cost.machine = options_.machine;
  QueryPlanner planner(options_.mode, cost);
  const WorkloadProfile prior = UniformPrior(index_, /*k=*/10, /*nprobe=*/8);
  HARMONY_ASSIGN_OR_RETURN(
      last_choice_,
      planner.Plan(index_, effective_machines_, prior,
                   options_.enable_balanced_load, options_.force_b_vec,
                   options_.force_b_dim));
  HARMONY_RETURN_NOT_OK(Repartition(last_choice_.plan));
  prewarm_ = PrewarmCache::Build(index_, options_.prewarm_per_list);
  build_stats_.preassign_seconds = preassign.ElapsedSeconds();
  built_ = true;
  return Status::OK();
}

Status HarmonyEngine::TrainQuantizer(const PartitionPlan& plan) {
  quantizer_.Reset();
  if (!options_.use_pq_streams) return Status::OK();
  // Deterministic training sample: stored vectors walked in list order,
  // strided down to a cap so per-band k-means stays cheap on large bases.
  // The codebooks quantize coarse-centroid residuals (IVFADC), so the
  // sample is each row minus its list's centroid — the residual energy is
  // what the codes have to cover, which is far less than the raw rows'.
  constexpr size_t kMaxTrainRows = 65536;
  const size_t total = index_.num_vectors();
  if (total == 0) return Status::InvalidArgument("no vectors to train PQ on");
  const size_t stride = (total + kMaxTrainRows - 1) / kMaxTrainRows;
  const size_t dim = index_.dim();
  Dataset train(std::vector<float>(), dim);
  std::vector<float> residual(dim);
  size_t seen = 0;
  for (size_t l = 0; l < index_.nlist(); ++l) {
    const DatasetView vecs = index_.ListVectors(l);
    const float* centroid = index_.centroids().Row(l);
    for (size_t i = 0; i < vecs.size(); ++i, ++seen) {
      if (seen % stride != 0) continue;
      const float* row = vecs.Row(i);
      for (size_t k = 0; k < dim; ++k) residual[k] = row[k] - centroid[k];
      HARMONY_RETURN_NOT_OK(train.Append(residual.data(), dim));
    }
  }
  GridPqParams params;
  params.num_subspaces = options_.pq_subspaces;
  params.bits = options_.pq_bits;
  params.train_iters = options_.pq_train_iters;
  return quantizer_.Train(train.View(), plan.dim_ranges, params);
}

Status HarmonyEngine::Repartition(const PartitionPlan& plan) {
  const bool with_norms =
      plan.num_dim_blocks > 1 && options_.ivf.metric != Metric::kL2;
  // The quantizer's per-block subspaces follow the plan's dim ranges, so a
  // reshaped grid retrains it before the stores encode their code streams.
  HARMONY_RETURN_NOT_OK(TrainQuantizer(plan));
  HARMONY_ASSIGN_OR_RETURN(
      stores_, BuildWorkerStores(index_, plan, with_norms,
                                 quantizer_.trained() ? &quantizer_ : nullptr));
  stores_with_norms_ = with_norms;
  plan_ = plan;
  return Status::OK();
}

Status HarmonyEngine::AddVectors(const DatasetView& vectors) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (vectors.empty()) return Status::OK();
  if (vectors.dim() != index_.dim()) {
    return Status::InvalidArgument("dimension mismatch on AddVectors");
  }
  const size_t first_id = index_.num_vectors();
  HARMONY_RETURN_NOT_OK(index_.Add(vectors));
  const DatasetView centroids = index_.centroids().View();
  for (size_t i = 0; i < vectors.size(); ++i) {
    const float* row = vectors.Row(i);
    const int64_t gid = static_cast<int64_t>(first_id + i);
    const int32_t list = NearestCentroid(centroids, row);
    const size_t shard =
        static_cast<size_t>(plan_.list_to_shard[static_cast<size_t>(list)]);
    for (size_t d = 0; d < plan_.num_dim_blocks; ++d) {
      for (size_t r = 0; r < plan_.replication; ++r) {
        const size_t machine =
            static_cast<size_t>(plan_.ReplicaOf(shard, d, r));
        HARMONY_RETURN_NOT_OK(stores_[machine].AppendVector(
            shard, d, list, plan_.dim_ranges[d], row, vectors.dim(), gid,
            stores_with_norms_,
            quantizer_.trained() ? &quantizer_ : nullptr,
            quantizer_.trained()
                ? index_.centroids().Row(static_cast<size_t>(list))
                : nullptr));
      }
    }
  }
  return Status::OK();
}

ExecOptions HarmonyEngine::MakeExecOptions(size_t k, size_t nprobe) const {
  // The single engine->execution conversion point: the shared ExecTuning
  // base carries over wholesale (both structs inherit it), leaving only the
  // fields that genuinely differ between the two layers.
  ExecOptions exec;
  static_cast<ExecTuning&>(exec) = static_cast<const ExecTuning&>(options_);
  exec.metric = options_.ivf.metric;
  exec.k = k;
  exec.nprobe = nprobe;
  exec.dynamic_dim_order =
      options_.enable_pipeline && options_.enable_balanced_load;
  exec.pq = quantizer_.trained() ? &quantizer_ : nullptr;
  return exec;
}

Status HarmonyEngine::SetLabels(std::vector<int32_t> labels) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (labels.size() != index_.num_vectors()) {
    return Status::InvalidArgument(
        "need exactly one label per stored vector (" +
        std::to_string(index_.num_vectors()) + "), got " +
        std::to_string(labels.size()));
  }
  labels_ = std::move(labels);
  return Status::OK();
}

Result<BatchResult> HarmonyEngine::SearchBatch(const DatasetView& queries,
                                               size_t k, size_t nprobe) {
  return SearchInternal(queries, k, nprobe, nullptr);
}

Result<BatchResult> HarmonyEngine::SearchBatchFiltered(
    const DatasetView& queries, size_t k, size_t nprobe,
    int32_t allowed_label) {
  if (labels_.empty()) {
    return Status::FailedPrecondition("SetLabels() must run before filtering");
  }
  if (labels_.size() != index_.num_vectors()) {
    return Status::FailedPrecondition(
        "labels are stale: call SetLabels() again after AddVectors()");
  }
  ExecOptions exec = MakeExecOptions(k, nprobe);
  exec.labels = &labels_;
  exec.allowed_label = allowed_label;
  return SearchInternal(queries, k, nprobe, &exec);
}

Result<BatchResult> HarmonyEngine::SearchInternal(const DatasetView& queries,
                                                  size_t k, size_t nprobe,
                                                  const ExecOptions* exec_override) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (queries.empty()) return Status::InvalidArgument("empty query batch");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }

  StopWatch plan_watch;
  // Profile the batch and let the cost model reconsider the grid shape
  // (Mode::kHarmony only; other modes are pinned and re-planning is a
  // no-op returning the same shape).
  CostModelParams cost;
  cost.alpha = options_.alpha;
  cost.pruning_survival = options_.pruning_survival;
  cost.pruning_enabled = options_.enable_pruning;
  cost.pipeline_batch = options_.pipeline_batch;
  cost.replication = options_.replication_factor;
  cost.pq_subspaces = options_.use_pq_streams ? options_.pq_subspaces : 0;
  cost.net = options_.net;
  cost.machine = options_.machine;
  QueryPlanner planner(options_.mode, cost);
  const WorkloadProfile profile =
      ProfileWorkload(index_, queries, k, nprobe, options_.profile_sample);
  HARMONY_ASSIGN_OR_RETURN(
      PlanChoice choice,
      planner.Plan(index_, effective_machines_, profile,
                   options_.enable_balanced_load, options_.force_b_vec,
                   options_.force_b_dim));
  if (choice.plan.num_vec_shards != plan_.num_vec_shards ||
      choice.plan.num_dim_blocks != plan_.num_dim_blocks ||
      choice.plan.list_to_shard != plan_.list_to_shard) {
    HARMONY_RETURN_NOT_OK(Repartition(choice.plan));
    ++repartition_count_;
  }
  last_choice_ = std::move(choice);
  return ExecuteOnCurrentPlan(queries, k, nprobe, exec_override,
                              plan_watch.ElapsedSeconds());
}

Result<BatchResult> HarmonyEngine::SearchBatchPinned(const DatasetView& queries,
                                                     size_t k, size_t nprobe) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (queries.empty()) return Status::InvalidArgument("empty query batch");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }
  return ExecuteOnCurrentPlan(queries, k, nprobe, nullptr,
                              /*plan_seconds=*/0.0);
}

Result<BatchResult> HarmonyEngine::ExecuteOnCurrentPlan(
    const DatasetView& queries, size_t k, size_t nprobe,
    const ExecOptions* exec_override, double plan_seconds) {
  SimCluster cluster(effective_machines_, options_.net, options_.machine);
  const ExecOptions exec =
      exec_override != nullptr ? *exec_override : MakeExecOptions(k, nprobe);
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  if (exec.faults.enabled()) cluster.SetFaultPlan(exec.faults);
  HARMONY_ASSIGN_OR_RETURN(
      PipelineOutput output,
      ExecuteSimulated(index_, plan_, stores_, prewarm_, routing, queries,
                       exec, &cluster));

  BatchResult result;
  result.results = std::move(output.results);
  result.degraded = std::move(output.degraded);
  BatchStats& stats = result.stats;
  stats.faults = output.faults;
  stats.num_queries = queries.size();
  stats.makespan_seconds = cluster.Makespan();
  stats.qps = stats.makespan_seconds > 0.0
                  ? static_cast<double>(queries.size()) / stats.makespan_seconds
                  : 0.0;
  stats.plan_seconds = plan_seconds;
  stats.breakdown = cluster.Breakdown();
  stats.prune = output.prune;
  stats.memory = IndexMemory();
  stats.memory.peak_query_bytes =
      stats.memory.index_bytes_max_node + output.peak_intermediate_bytes;
  stats.node_compute_seconds.reserve(effective_machines_);
  for (size_t m = 0; m < effective_machines_; ++m) {
    stats.node_compute_seconds.push_back(cluster.worker(m).compute_seconds());
    stats.node_comm_seconds.push_back(cluster.worker(m).comm_seconds());
    stats.node_idle_seconds.push_back(cluster.worker(m).idle_seconds());
  }
  stats.client_clock_seconds = cluster.client().clock();
  stats.client_compute_seconds = cluster.client().compute_seconds();
  result.query_seconds = output.query_completion_seconds;
  std::vector<double> latencies = std::move(output.query_completion_seconds);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    stats.latency_p50_seconds = pct(0.50);
    stats.latency_p95_seconds = pct(0.95);
    stats.latency_p99_seconds = pct(0.99);
    stats.latency_max_seconds = latencies.back();
  }
  return result;
}

Result<ThreadedOutput> HarmonyEngine::SearchBatchThreaded(
    const DatasetView& queries, size_t k, size_t nprobe) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  const ExecOptions exec = MakeExecOptions(k, nprobe);
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  return ExecuteThreaded(index_, plan_, stores_, prewarm_, routing, queries,
                         exec);
}

Result<ThreadedOutput> HarmonyEngine::SearchBatchThreadedFiltered(
    const DatasetView& queries, size_t k, size_t nprobe,
    int32_t allowed_label) {
  if (!built_) return Status::FailedPrecondition("Build() must run first");
  if (labels_.empty()) {
    return Status::FailedPrecondition("SetLabels() must run before filtering");
  }
  if (labels_.size() != index_.num_vectors()) {
    return Status::FailedPrecondition(
        "labels are stale: call SetLabels() again after AddVectors()");
  }
  ExecOptions exec = MakeExecOptions(k, nprobe);
  exec.labels = &labels_;
  exec.allowed_label = allowed_label;
  const BatchRouting routing =
      RouteBatch(index_, plan_, queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  return ExecuteThreaded(index_, plan_, stores_, prewarm_, routing, queries,
                         exec);
}

MemoryStats HarmonyEngine::IndexMemory() const {
  MemoryStats mem;
  for (const WorkerStore& store : stores_) {
    const uint64_t bytes = store.SizeBytes();
    mem.index_bytes_total += bytes;
    mem.index_bytes_max_node = std::max(mem.index_bytes_max_node, bytes);
    mem.index_code_bytes += store.CodeBytes();
  }
  mem.client_bytes = index_.centroids().SizeBytes() + prewarm_.SizeBytes() +
                     quantizer_.SizeBytes();
  return mem;
}

}  // namespace harmony
