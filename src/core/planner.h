#ifndef HARMONY_CORE_PLANNER_H_
#define HARMONY_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/partition.h"

namespace harmony {

/// \brief Distribution strategies exposed by the engine — the paper's
/// `-Mode [Harmony, Harmony-vector, Harmony-dimension]` parameter, plus the
/// single-node Faiss baseline and an Auncel-like fixed distribution.
enum class Mode {
  kHarmony,          // cost-model-selected hybrid grid
  kHarmonyVector,    // pure vector partition (B_dim = 1)
  kHarmonyDimension, // pure dimension partition (B_vec = 1)
  kSingleNode,       // one machine, no partitioning ("Faiss")
  kAuncelLike,       // vector partition with static round-robin assignment
};

const char* ModeToString(Mode mode);

/// \brief Outcome of planning: the chosen plan plus the cost estimates of
/// every candidate shape (kept for explain/debugging output).
struct PlanChoice {
  PartitionPlan plan;
  CostEstimate cost;
  std::vector<std::pair<std::pair<size_t, size_t>, CostEstimate>> candidates;

  std::string Explain() const;
};

/// \brief The fine-grained query planner (Section 4.2). For Mode::kHarmony
/// it enumerates every grid shape that tiles the cluster, scores each with
/// the cost model against the workload profile, and picks the cheapest;
/// other modes pin the shape dictated by the strategy.
class QueryPlanner {
 public:
  QueryPlanner(Mode mode, CostModelParams params)
      : mode_(mode), params_(params) {}

  Mode mode() const { return mode_; }
  const CostModelParams& params() const { return params_; }

  /// Plans a partition. `force_b_vec`/`force_b_dim` (both > 0) pin the grid
  /// shape regardless of mode; otherwise the mode decides.
  Result<PlanChoice> Plan(const IvfIndex& index, size_t num_machines,
                          const WorkloadProfile& profile,
                          bool balanced_assignment, size_t force_b_vec = 0,
                          size_t force_b_dim = 0) const;

 private:
  Mode mode_;
  CostModelParams params_;
};

}  // namespace harmony

#endif  // HARMONY_CORE_PLANNER_H_
