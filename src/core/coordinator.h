#ifndef HARMONY_CORE_COORDINATOR_H_
#define HARMONY_CORE_COORDINATOR_H_

#include <vector>

#include "core/partition.h"
#include "core/pipeline.h"
#include "core/pruning.h"
#include "core/router.h"
#include "core/worker.h"
#include "index/ivf_index.h"
#include "net/threaded_cluster.h"
#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Output of the threaded execution engine.
struct ThreadedOutput {
  std::vector<std::vector<Neighbor>> results;
  double wall_seconds = 0.0;
  /// Real per-query completion time, measured from the start of the batch to
  /// the moment the query's last chain merged its results (its in-batch
  /// latency on the real clock). -1 for a query still unfinished when a
  /// timeout salvage (ExecOptions::timeout_partial_results) cut the batch
  /// short — exactly the queries counted in faults.timed_out_queries.
  std::vector<double> query_seconds;
  /// True when the max_wall_seconds budget expired and the batch was
  /// salvaged instead of failed (ExecOptions::timeout_partial_results);
  /// `results` then hold whatever each query's heap contained at bail-out.
  bool timed_out = false;
  /// Per-query degraded flag (size num_queries, all zero on a healthy run);
  /// same semantics as PipelineOutput::degraded, and — because fault
  /// decisions are pure functions of the plan — the same flags the
  /// simulated engine produces for the same FaultPlan.
  std::vector<uint8_t> degraded;
  FaultStats faults;
  /// Row bytes streamed from the stores across all dimension stages. With
  /// ExecOptions::shared_scans the merge-walk streams each group-row tile
  /// once, so a group bills the union of its members' surviving rows per
  /// block; without, every chain bills its own survivors. The simulated
  /// engine (ClusterBreakdown::total_bytes_streamed) models the same
  /// union-of-group-rows rule, keyed by actual list rows; totals agree when
  /// per-member survivor sets per block agree (they do on healthy batched
  /// runs — the parity tests pin results and prune counters), and can drift
  /// slightly under fault-degraded or reference-kernel runs.
  uint64_t bytes_streamed = 0;
  /// Subset of bytes_streamed that was quantized code-stream data (PQ
  /// streams, docs/quantization.md); 0 with use_pq_streams off. The float
  /// rerank's re-reads bill into bytes_streamed only.
  uint64_t bytes_compressed = 0;
};

/// \brief Runs the same vector/dimension pipeline as ExecuteSimulated on a
/// real ThreadedCluster: every dimension-stage task executes on the thread
/// of the machine that owns the grid block, and partial-result batons hop
/// between machine mailboxes exactly as messages would between MPI ranks.
///
/// This engine validates that the algorithm is correctly parallelizable
/// (no data races, sound pruning under concurrent threshold reads) and
/// functionally agrees with the simulated engine. On a many-core host it is
/// also a usable real deployment of the algorithm in one process.
Result<ThreadedOutput> ExecuteThreaded(const IvfIndex& index,
                                       const PartitionPlan& plan,
                                       const std::vector<WorkerStore>& stores,
                                       const PrewarmCache& prewarm,
                                       const BatchRouting& routing,
                                       const DatasetView& queries,
                                       const ExecOptions& opts);

}  // namespace harmony

#endif  // HARMONY_CORE_COORDINATOR_H_
