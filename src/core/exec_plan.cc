#include "core/exec_plan.h"

#include "index/distance.h"

namespace harmony {

Result<ExecContext> MakeExecContext(const IvfIndex& index,
                                    const PartitionPlan& plan,
                                    const std::vector<WorkerStore>& stores,
                                    const PrewarmCache& prewarm,
                                    const BatchRouting& routing,
                                    const DatasetView& queries,
                                    const ExecOptions& opts) {
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (plan.num_dim_blocks > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  ExecContext ctx;
  ctx.index = &index;
  ctx.plan = &plan;
  ctx.stores = &stores;
  ctx.prewarm = &prewarm;
  ctx.routing = &routing;
  ctx.queries = &queries;
  ctx.opts = &opts;
  ctx.b_dim = plan.num_dim_blocks;
  ctx.dim = index.dim();
  ctx.num_queries = queries.size();
  ctx.use_ip = opts.metric != Metric::kL2;
  ctx.use_norms = ctx.use_ip && ctx.b_dim > 1;
  ctx.max_retries = static_cast<uint32_t>(opts.max_retries);
  return ctx;
}

void BuildChainSliceTable(const ExecContext& ctx, const QueryChain& chain,
                          ChainCandidates* cand) {
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t num_lists = chain.lists.size();
  cand->slices.assign(ctx.b_dim * num_lists, nullptr);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
    for (size_t li = 0; li < num_lists; ++li) {
      cand->slices[d * num_lists + li] =
          (*ctx.stores)[machine].FindListSlice(shard, d, chain.lists[li]);
    }
  }
}

void BuildChainCandidateArrays(const ExecContext& ctx, const QueryChain& chain,
                               const std::unordered_set<int64_t>& prewarmed,
                               ChainCandidates* cand) {
  const ExecOptions& opts = *ctx.opts;
  for (size_t li = 0; li < chain.lists.size(); ++li) {
    const ListSlice* ls = cand->slices[li];  // block 0 slices
    if (ls == nullptr) continue;
    for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
      const int64_t gid = ls->slice.GlobalId(r);
      if (prewarmed.count(gid) > 0) continue;
      if (opts.labels != nullptr &&
          (*opts.labels)[static_cast<size_t>(gid)] != opts.allowed_label) {
        continue;
      }
      cand->id.push_back(gid);
      cand->list.push_back(static_cast<int32_t>(li));
      cand->row.push_back(static_cast<int32_t>(r));
      cand->partial.push_back(0.0f);
      if (ctx.use_norms) cand->rem_p_sq.push_back(ls->total_norm_sq[r]);
    }
  }
}

void ComputeQueryBlockNorms(const ExecContext& ctx, const QueryChain& chain,
                            ChainCandidates* cand) {
  const float* qrow = ctx.queries->Row(static_cast<size_t>(chain.query));
  cand->q_block_norm.resize(ctx.b_dim);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const DimRange r = ctx.plan->dim_ranges[d];
    cand->q_block_norm[d] =
        PartialIp(qrow + r.begin, qrow + r.begin, r.width());
    cand->rem_q_total += cand->q_block_norm[d];
  }
}

void PrewarmQuery(const ExecContext& ctx, size_t q, TopKHeap* heap,
                  std::unordered_set<int64_t>* prewarmed,
                  const std::function<void(uint64_t)>& charge) {
  const ExecOptions& opts = *ctx.opts;
  if (charge) {
    charge(static_cast<uint64_t>(ctx.index->nlist()) *
           DistanceOpCost(ctx.dim));
  }
  for (const int32_t list_id : (*ctx.routing).probe_lists[q]) {
    const auto& ids = ctx.prewarm->ListIds(static_cast<size_t>(list_id));
    if (ids.empty()) continue;
    const DatasetView vecs =
        ctx.prewarm->ListVectors(static_cast<size_t>(list_id));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (opts.labels != nullptr &&
          (*opts.labels)[static_cast<size_t>(ids[i])] != opts.allowed_label) {
        continue;
      }
      const float d =
          Distance(opts.metric, ctx.queries->Row(q), vecs.Row(i), ctx.dim);
      heap->Push(ids[i], d);
      prewarmed->insert(ids[i]);
    }
    if (charge) {
      charge(static_cast<uint64_t>(ids.size()) * DistanceOpCost(ctx.dim));
    }
  }
}

}  // namespace harmony
