#include "core/exec_plan.h"

#include <algorithm>
#include <numeric>

#include "index/distance.h"

namespace harmony {

Result<ExecContext> MakeExecContext(const IvfIndex& index,
                                    const PartitionPlan& plan,
                                    const std::vector<WorkerStore>& stores,
                                    const PrewarmCache& prewarm,
                                    const BatchRouting& routing,
                                    const DatasetView& queries,
                                    const ExecOptions& opts) {
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (plan.num_dim_blocks > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  if (opts.faults.drop_prob < 0.0 || opts.faults.drop_prob > 1.0) {
    return Status::InvalidArgument(
        "fault plan drop_prob must lie in [0, 1]");
  }
  for (const double mult : opts.faults.delay_multiplier) {
    if (mult < 0.0) {
      return Status::InvalidArgument(
          "fault plan delay multipliers must be >= 0");
    }
  }
  if (opts.replication_factor == 0) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (opts.replication_factor > plan.num_machines) {
    return Status::InvalidArgument(
        "replication factor exceeds machine count");
  }
  if (opts.hedge_after < 0.0) {
    return Status::InvalidArgument("hedge_after must be >= 0");
  }
  if (plan.replication != opts.replication_factor) {
    return Status::InvalidArgument(
        "partition plan was not built with the requested replication factor");
  }
  ExecContext ctx;
  ctx.index = &index;
  ctx.plan = &plan;
  ctx.stores = &stores;
  ctx.prewarm = &prewarm;
  ctx.routing = &routing;
  ctx.queries = &queries;
  ctx.opts = &opts;
  ctx.b_dim = plan.num_dim_blocks;
  ctx.dim = index.dim();
  ctx.num_queries = queries.size();
  ctx.use_ip = opts.metric != Metric::kL2;
  ctx.use_norms = ctx.use_ip && ctx.b_dim > 1;
  ctx.max_retries = static_cast<uint32_t>(opts.max_retries);
  ctx.replication = plan.replication;
  ctx.routed = ctx.replication > 1;  // AttachFaults widens this when faulty.
  return ctx;
}

void StageReplicaOrder(const ExecContext& ctx, const QueryChain& chain,
                       size_t block, std::vector<uint8_t>* order) {
  const size_t reps = ctx.replication;
  order->resize(reps);
  std::iota(order->begin(), order->end(), static_cast<uint8_t>(0));
  if (reps <= 1) return;
  const uint64_t key =
      ReplicaRouteKey(chain.probe_rank, chain.shard, block);
  const size_t rot = static_cast<size_t>(key % reps);
  std::rotate(order->begin(), order->begin() + rot, order->end());
  // Health demotion. Only folded / static signals may steer routing: the
  // health tracker's quarantine flags fold at rank barriers and the fault
  // plan's start-crashes are compile-time truth, so both engines sort the
  // same order no matter how their chains interleave within a rank.
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  auto health_class = [&](uint8_t r) -> int {
    const size_t machine =
        static_cast<size_t>(plan.ReplicaOf(shard, block, r));
    if (ctx.faulty && ctx.faults->CrashedFromStart(machine)) return 2;
    if (ctx.health != nullptr && ctx.health->Quarantined(machine)) return 1;
    return 0;
  };
  std::stable_sort(order->begin(), order->end(),
                   [&](uint8_t a, uint8_t b) {
                     return health_class(a) < health_class(b);
                   });
}

size_t StagePrimaryReplica(const ExecContext& ctx, const QueryChain& chain,
                           size_t block) {
  if (ctx.replication <= 1) return 0;
  std::vector<uint8_t> order;
  StageReplicaOrder(ctx, chain, block, &order);
  if (ctx.faulty) {
    const PartitionPlan& plan = *ctx.plan;
    const size_t shard = static_cast<size_t>(chain.shard);
    for (const uint8_t r : order) {
      if (!ctx.faults->CrashedFromStart(
              static_cast<size_t>(plan.ReplicaOf(shard, block, r)))) {
        return r;
      }
    }
  }
  return order.front();
}

void BuildChainSliceTable(const ExecContext& ctx, const QueryChain& chain,
                          ChainCandidates* cand) {
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t num_lists = chain.lists.size();
  cand->slices.assign(ctx.b_dim * num_lists, nullptr);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
    for (size_t li = 0; li < num_lists; ++li) {
      cand->slices[d * num_lists + li] =
          (*ctx.stores)[machine].FindListSlice(shard, d, chain.lists[li]);
    }
  }
}

void BuildChainCandidateArrays(const ExecContext& ctx, const QueryChain& chain,
                               const std::unordered_set<int64_t>& prewarmed,
                               ChainCandidates* cand) {
  const ExecOptions& opts = *ctx.opts;
  for (size_t li = 0; li < chain.lists.size(); ++li) {
    const ListSlice* ls = cand->slices[li];  // block 0 slices
    if (ls == nullptr) continue;
    for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
      const int64_t gid = ls->slice.GlobalId(r);
      if (prewarmed.count(gid) > 0) continue;
      if (opts.labels != nullptr &&
          (*opts.labels)[static_cast<size_t>(gid)] != opts.allowed_label) {
        continue;
      }
      cand->id.push_back(gid);
      cand->list.push_back(static_cast<int32_t>(li));
      cand->row.push_back(static_cast<int32_t>(r));
      cand->partial.push_back(0.0f);
      if (ctx.use_norms) cand->rem_p_sq.push_back(ls->total_norm_sq[r]);
    }
  }
}

void ComputeQueryBlockNorms(const ExecContext& ctx, const QueryChain& chain,
                            ChainCandidates* cand) {
  const float* qrow = ctx.queries->Row(static_cast<size_t>(chain.query));
  cand->q_block_norm.resize(ctx.b_dim);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const DimRange r = ctx.plan->dim_ranges[d];
    cand->q_block_norm[d] =
        PartialIp(qrow + r.begin, qrow + r.begin, r.width());
    cand->rem_q_total += cand->q_block_norm[d];
  }
}

void PrewarmQuery(const ExecContext& ctx, size_t q, TopKHeap* heap,
                  std::unordered_set<int64_t>* prewarmed,
                  const std::function<void(uint64_t)>& charge) {
  const ExecOptions& opts = *ctx.opts;
  if (charge) {
    charge(static_cast<uint64_t>(ctx.index->nlist()) *
           DistanceOpCost(ctx.dim));
  }
  for (const int32_t list_id : (*ctx.routing).probe_lists[q]) {
    const auto& ids = ctx.prewarm->ListIds(static_cast<size_t>(list_id));
    if (ids.empty()) continue;
    const DatasetView vecs =
        ctx.prewarm->ListVectors(static_cast<size_t>(list_id));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (opts.labels != nullptr &&
          (*opts.labels)[static_cast<size_t>(ids[i])] != opts.allowed_label) {
        continue;
      }
      const float d =
          Distance(opts.metric, ctx.queries->Row(q), vecs.Row(i), ctx.dim);
      heap->Push(ids[i], d);
      prewarmed->insert(ids[i]);
    }
    if (charge) {
      charge(static_cast<uint64_t>(ids.size()) * DistanceOpCost(ctx.dim));
    }
  }
}

}  // namespace harmony
