#include "core/exec_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "index/distance.h"
#include "index/pq.h"
#include "util/logging.h"

namespace harmony {

Result<ExecContext> MakeExecContext(const IvfIndex& index,
                                    const PartitionPlan& plan,
                                    const std::vector<WorkerStore>& stores,
                                    const PrewarmCache& prewarm,
                                    const BatchRouting& routing,
                                    const DatasetView& queries,
                                    const ExecOptions& opts) {
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (plan.num_dim_blocks > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  if (opts.faults.drop_prob < 0.0 || opts.faults.drop_prob > 1.0) {
    return Status::InvalidArgument(
        "fault plan drop_prob must lie in [0, 1]");
  }
  for (const double mult : opts.faults.delay_multiplier) {
    if (mult < 0.0) {
      return Status::InvalidArgument(
          "fault plan delay multipliers must be >= 0");
    }
  }
  if (opts.replication_factor == 0) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (opts.replication_factor > plan.num_machines) {
    return Status::InvalidArgument(
        "replication factor exceeds machine count");
  }
  if (opts.hedge_after < 0.0) {
    return Status::InvalidArgument("hedge_after must be >= 0");
  }
  if (plan.replication != opts.replication_factor) {
    return Status::InvalidArgument(
        "partition plan was not built with the requested replication factor");
  }
  if (opts.kernel_tier != KernelTier::kAuto &&
      !KernelTierAvailable(opts.kernel_tier)) {
    return Status::InvalidArgument(
        std::string("requested kernel tier is not available on this CPU: ") +
        KernelTierName(opts.kernel_tier));
  }
  if (opts.kernel_tune != nullptr &&
      (opts.kernel_tune->tier == KernelTier::kAuto ||
       !KernelTierAvailable(opts.kernel_tune->tier))) {
    return Status::InvalidArgument(
        "pinned kernel tune table names an unavailable tier");
  }
  if (opts.use_pq_streams) {
    if (opts.pq == nullptr || !opts.pq->trained()) {
      return Status::InvalidArgument(
          "use_pq_streams requires a trained grid quantizer");
    }
    if (opts.pq->num_blocks() != plan.num_dim_blocks ||
        opts.pq->dim() != index.dim()) {
      return Status::InvalidArgument(
          "grid quantizer does not match the partition plan");
    }
  }
  ExecContext ctx;
  ctx.index = &index;
  ctx.plan = &plan;
  ctx.stores = &stores;
  ctx.prewarm = &prewarm;
  ctx.routing = &routing;
  ctx.queries = &queries;
  ctx.opts = &opts;
  ctx.b_dim = plan.num_dim_blocks;
  ctx.dim = index.dim();
  ctx.num_queries = queries.size();
  ctx.use_ip = opts.metric != Metric::kL2;
  ctx.use_norms = ctx.use_ip && ctx.b_dim > 1;
  ctx.max_retries = static_cast<uint32_t>(opts.max_retries);
  ctx.tombstones = opts.tombstones;
  ctx.tombstone_words = opts.tombstone_words;
  ctx.store_generation = opts.store_generation;
  ctx.replication = plan.replication;
  ctx.routed = ctx.replication > 1;  // AttachFaults widens this when faulty.
  // Record the batch's kernel dispatch once: an explicitly pinned table wins
  // (tests / reproducible replays), otherwise the process-wide tuned table
  // for the requested tier. Shapes are bit-transparent, so this choice
  // moves throughput only — but recording it in the context is what lets
  // simulated and threaded runs of one batch replay the identical kernels.
  ctx.kernel_tune = opts.kernel_tune != nullptr
                        ? opts.kernel_tune
                        : &ResolveKernelTune(opts.kernel_tier);
  if (opts.use_pq_streams) {
    ctx.use_pq = true;
    const GridQuantizer& pq = *opts.pq;
    // Per-block offsets into one (query, probe slot)'s LUT segment. Codes
    // are coarse-centroid residuals, so the table depends on the probed
    // list: L2 tables are built from the residual query q - c_l; IP tables
    // from q itself with the constant <q^(d), c_l^(d)> folded into subspace
    // 0, so the ADC sum estimates the block's true partial either way. The
    // whole build is a pure function of (quantizer, centroids, routing,
    // queries), so both engines share identical tables no matter how
    // stages interleave.
    ctx.lut_offset.resize(ctx.b_dim);
    size_t stride = 0;
    for (size_t d = 0; d < ctx.b_dim; ++d) {
      ctx.lut_offset[d] = stride;
      const ProductQuantizer& q = pq.block(d);
      stride += q.num_subspaces() * q.codewords();
    }
    ctx.lut_stride = stride;
    for (size_t qi = 0; qi < ctx.num_queries; ++qi) {
      ctx.lut_probes = std::max(ctx.lut_probes, routing.probe_lists[qi].size());
    }
    for (size_t d = 0; d < ctx.b_dim; ++d) {
      const ProductQuantizer& q = pq.block(d);
      // Per probed list: the residual subtraction plus the table fill.
      ctx.lut_build_ops +=
          static_cast<uint64_t>(ctx.lut_probes) *
          (static_cast<uint64_t>(q.codewords()) * plan.dim_ranges[d].width() +
           plan.dim_ranges[d].width());
    }
    ctx.luts.resize(ctx.num_queries * ctx.lut_probes * stride);
    if (ctx.use_ip) ctx.pq_q_norm.resize(ctx.num_queries * ctx.b_dim);
    std::vector<float> qres(ctx.dim);
    for (size_t qi = 0; qi < ctx.num_queries; ++qi) {
      const float* qrow = queries.Row(qi);
      if (ctx.use_ip) {
        for (size_t d = 0; d < ctx.b_dim; ++d) {
          const DimRange r = plan.dim_ranges[d];
          ctx.pq_q_norm[qi * ctx.b_dim + d] = std::sqrt(
              PartialIp(qrow + r.begin, qrow + r.begin, r.width()));
        }
      }
      const std::vector<int32_t>& probes = routing.probe_lists[qi];
      for (size_t s = 0; s < probes.size(); ++s) {
        const float* crow =
            index.centroids().Row(static_cast<size_t>(probes[s]));
        float* table =
            ctx.luts.data() + (qi * ctx.lut_probes + s) * stride;
        for (size_t d = 0; d < ctx.b_dim; ++d) {
          const DimRange r = plan.dim_ranges[d];
          const ProductQuantizer& q = pq.block(d);
          if (ctx.use_ip) {
            q.ComputeLookupTableIp(qrow + r.begin, table + ctx.lut_offset[d]);
            const float qc = PartialIp(qrow + r.begin, crow + r.begin,
                                       r.width());
            float* band0 = table + ctx.lut_offset[d];
            for (size_t c = 0; c < q.codewords(); ++c) band0[c] += qc;
          } else {
            for (size_t k = r.begin; k < r.end; ++k) {
              qres[k] = qrow[k] - crow[k];
            }
            q.ComputeLookupTable(qres.data() + r.begin,
                                 table + ctx.lut_offset[d]);
          }
        }
      }
    }
  }
  return ctx;
}

void StageReplicaOrder(const ExecContext& ctx, const QueryChain& chain,
                       size_t block, std::vector<uint8_t>* order) {
  const size_t reps = ctx.replication;
  order->resize(reps);
  std::iota(order->begin(), order->end(), static_cast<uint8_t>(0));
  if (reps <= 1) return;
  const uint64_t key =
      ReplicaRouteKey(chain.probe_rank, chain.shard, block);
  const size_t rot = static_cast<size_t>(key % reps);
  std::rotate(order->begin(), order->begin() + rot, order->end());
  // Health demotion. Only folded / static signals may steer routing: the
  // health tracker's quarantine flags fold at rank barriers and the fault
  // plan's start-crashes are compile-time truth, so both engines sort the
  // same order no matter how their chains interleave within a rank.
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  auto health_class = [&](uint8_t r) -> int {
    const size_t machine =
        static_cast<size_t>(plan.ReplicaOf(shard, block, r));
    if (ctx.faulty && ctx.faults->CrashedFromStart(machine)) return 2;
    if (ctx.health != nullptr && ctx.health->Quarantined(machine)) return 1;
    return 0;
  };
  std::stable_sort(order->begin(), order->end(),
                   [&](uint8_t a, uint8_t b) {
                     return health_class(a) < health_class(b);
                   });
}

size_t StagePrimaryReplica(const ExecContext& ctx, const QueryChain& chain,
                           size_t block) {
  if (ctx.replication <= 1) return 0;
  std::vector<uint8_t> order;
  StageReplicaOrder(ctx, chain, block, &order);
  if (ctx.faulty) {
    const PartitionPlan& plan = *ctx.plan;
    const size_t shard = static_cast<size_t>(chain.shard);
    for (const uint8_t r : order) {
      if (!ctx.faults->CrashedFromStart(
              static_cast<size_t>(plan.ReplicaOf(shard, block, r)))) {
        return r;
      }
    }
  }
  return order.front();
}

void BuildChainSliceTable(const ExecContext& ctx, const QueryChain& chain,
                          ChainCandidates* cand) {
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t num_lists = chain.lists.size();
  cand->slices.assign(ctx.b_dim * num_lists, nullptr);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
    for (size_t li = 0; li < num_lists; ++li) {
      cand->slices[d * num_lists + li] =
          (*ctx.stores)[machine].FindListSlice(shard, d, chain.lists[li]);
    }
  }
  if (ctx.use_pq) {
    // Residual codes: resolve each chain list's ADC table — the table of
    // (query, probe slot, block), with the slot found in the query's probe
    // order. Laid out in lockstep with `slices` so stages index both the
    // same way.
    const std::vector<int32_t>& probes =
        ctx.routing->probe_lists[static_cast<size_t>(chain.query)];
    cand->luts.assign(ctx.b_dim * num_lists, nullptr);
    for (size_t li = 0; li < num_lists; ++li) {
      size_t slot = probes.size();
      for (size_t s = 0; s < probes.size(); ++s) {
        if (probes[s] == chain.lists[li]) {
          slot = s;
          break;
        }
      }
      HARMONY_CHECK_MSG(slot < probes.size(),
                        "chain list missing from the query's probe set");
      const float* table =
          ctx.luts.data() +
          (static_cast<size_t>(chain.query) * ctx.lut_probes + slot) *
              ctx.lut_stride;
      for (size_t d = 0; d < ctx.b_dim; ++d) {
        cand->luts[d * num_lists + li] = table + ctx.lut_offset[d];
      }
    }
  }
}

void BuildChainCandidateArrays(const ExecContext& ctx, const QueryChain& chain,
                               const std::unordered_set<int64_t>& prewarmed,
                               ChainCandidates* cand) {
  const ExecOptions& opts = *ctx.opts;
  for (size_t li = 0; li < chain.lists.size(); ++li) {
    const ListSlice* ls = cand->slices[li];  // block 0 slices
    if (ls == nullptr) continue;
    for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
      const int64_t gid = ls->slice.GlobalId(r);
      if (prewarmed.count(gid) > 0) continue;
      // Rows inserted after the label column was set have no label and can
      // never match the predicate.
      if (opts.labels != nullptr &&
          (static_cast<size_t>(gid) >= opts.labels->size() ||
           (*opts.labels)[static_cast<size_t>(gid)] != opts.allowed_label)) {
        continue;
      }
      cand->id.push_back(gid);
      cand->list.push_back(static_cast<int32_t>(li));
      cand->row.push_back(static_cast<int32_t>(r));
      cand->partial.push_back(0.0f);
      if (ctx.use_norms) cand->rem_p_sq.push_back(ls->total_norm_sq[r]);
      if (ctx.use_pq) cand->bound.push_back(0.0f);
    }
  }
}

void ComputeQueryBlockNorms(const ExecContext& ctx, const QueryChain& chain,
                            ChainCandidates* cand) {
  const float* qrow = ctx.queries->Row(static_cast<size_t>(chain.query));
  cand->q_block_norm.resize(ctx.b_dim);
  for (size_t d = 0; d < ctx.b_dim; ++d) {
    const DimRange r = ctx.plan->dim_ranges[d];
    cand->q_block_norm[d] =
        PartialIp(qrow + r.begin, qrow + r.begin, r.width());
    cand->rem_q_total += cand->q_block_norm[d];
  }
}

void PrewarmQuery(const ExecContext& ctx, size_t q, TopKHeap* heap,
                  std::unordered_set<int64_t>* prewarmed,
                  const std::function<void(uint64_t)>& charge) {
  const ExecOptions& opts = *ctx.opts;
  if (charge) {
    charge(static_cast<uint64_t>(ctx.index->nlist()) *
           DistanceOpCost(ctx.dim));
    // The query's ADC lookup tables were materialized at context build; the
    // work is billed here, per query, where Algorithm 1's per-query prep
    // happens.
    if (ctx.use_pq) charge(ctx.lut_build_ops);
  }
  for (const int32_t list_id : (*ctx.routing).probe_lists[q]) {
    const auto& ids = ctx.prewarm->ListIds(static_cast<size_t>(list_id));
    if (ids.empty()) continue;
    const DatasetView vecs =
        ctx.prewarm->ListVectors(static_cast<size_t>(list_id));
    for (size_t i = 0; i < ids.size(); ++i) {
      if (opts.labels != nullptr &&
          (static_cast<size_t>(ids[i]) >= opts.labels->size() ||
           (*opts.labels)[static_cast<size_t>(ids[i])] != opts.allowed_label)) {
        continue;
      }
      // Tombstoned rows stay out of the heap (a dead row must never surface
      // in results) but are still recorded as prewarmed so chains skip them
      // identically in both engines; the scan charge below is unchanged —
      // the cached sample was scored either way.
      if (ctx.IsDeleted(ids[i])) {
        prewarmed->insert(ids[i]);
        continue;
      }
      const float d =
          Distance(opts.metric, ctx.queries->Row(q), vecs.Row(i), ctx.dim);
      heap->Push(ids[i], d);
      prewarmed->insert(ids[i]);
    }
    if (charge) {
      charge(static_cast<uint64_t>(ids.size()) * DistanceOpCost(ctx.dim));
    }
  }
}

}  // namespace harmony
