#include "core/partition.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace harmony {

std::string PartitionPlan::ToString() const {
  std::ostringstream os;
  os << "plan{machines=" << num_machines << " B_vec=" << num_vec_shards
     << " B_dim=" << num_dim_blocks << " shard_sizes=[";
  for (size_t s = 0; s < shard_vector_count.size(); ++s) {
    if (s > 0) os << ",";
    os << shard_vector_count[s];
  }
  os << "]";
  if (replication > 1) os << " R=" << replication;
  os << "}";
  return os.str();
}

Status ApplyReplication(PartitionPlan* plan, size_t replication) {
  if (replication == 0) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (replication > plan->num_machines) {
    return Status::InvalidArgument(
        "replication factor exceeds machine count");
  }
  plan->replication = replication;
  plan->replica_of.clear();
  if (replication == 1) return Status::OK();
  const size_t blocks = plan->machine_of.size();
  plan->replica_of.resize(blocks * replication);
  for (size_t b = 0; b < blocks; ++b) {
    for (size_t r = 0; r < replication; ++r) {
      plan->replica_of[b * replication + r] = static_cast<int32_t>(
          (static_cast<size_t>(plan->machine_of[b]) + r) %
          plan->num_machines);
    }
  }
  return Status::OK();
}

Result<PartitionPlan> BuildPartitionPlan(const IvfIndex& index,
                                         size_t num_machines,
                                         size_t num_vec_shards,
                                         size_t num_dim_blocks,
                                         ShardAssignment assignment,
                                         const std::vector<double>* list_weights) {
  if (!index.trained()) {
    return Status::FailedPrecondition("index must be trained before planning");
  }
  if (num_machines == 0 || num_vec_shards == 0 || num_dim_blocks == 0) {
    return Status::InvalidArgument("plan dimensions must be > 0");
  }
  num_dim_blocks = std::min(num_dim_blocks, index.dim());
  if (num_vec_shards * num_dim_blocks != num_machines) {
    return Status::InvalidArgument(
        "grid must tile the cluster exactly: B_vec*B_dim != machines");
  }
  if (num_vec_shards > index.nlist()) {
    return Status::InvalidArgument(
        "more vector shards than IVF lists; decrease B_vec or increase nlist");
  }

  PartitionPlan plan;
  plan.num_machines = num_machines;
  plan.num_vec_shards = num_vec_shards;
  plan.num_dim_blocks = num_dim_blocks;
  plan.dim_ranges = EvenDimBlocks(index.dim(), num_dim_blocks);
  plan.shard_lists.assign(num_vec_shards, {});
  plan.list_to_shard.assign(index.nlist(), -1);
  plan.shard_vector_count.assign(num_vec_shards, 0);

  const std::vector<int64_t> sizes = index.ListSizes();
  if (assignment == ShardAssignment::kRoundRobin) {
    for (size_t l = 0; l < index.nlist(); ++l) {
      const size_t s = l % num_vec_shards;
      plan.shard_lists[s].push_back(static_cast<int32_t>(l));
      plan.list_to_shard[l] = static_cast<int32_t>(s);
      plan.shard_vector_count[s] += sizes[l];
    }
  } else {
    // Greedy bin packing: heaviest list first into the currently lightest
    // shard. Classic LPT; keeps the max/min shard load ratio tight. Weights
    // default to list sizes; a workload profile makes them probe-aware.
    if (list_weights != nullptr && list_weights->size() != index.nlist()) {
      return Status::InvalidArgument("list_weights size mismatch");
    }
    auto weight = [&](size_t l) {
      return list_weights != nullptr ? (*list_weights)[l]
                                     : static_cast<double>(sizes[l]);
    };
    std::vector<size_t> order(index.nlist());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (weight(a) != weight(b)) return weight(a) > weight(b);
      return a < b;  // Deterministic tie-break.
    });
    std::vector<double> shard_load(num_vec_shards, 0.0);
    for (const size_t l : order) {
      size_t lightest = 0;
      for (size_t s = 1; s < num_vec_shards; ++s) {
        if (shard_load[s] < shard_load[lightest]) lightest = s;
      }
      plan.shard_lists[lightest].push_back(static_cast<int32_t>(l));
      plan.list_to_shard[l] = static_cast<int32_t>(lightest);
      plan.shard_vector_count[lightest] += sizes[l];
      shard_load[lightest] += weight(l);
    }
    // Keep list ids sorted within each shard for deterministic iteration.
    for (auto& lists : plan.shard_lists) std::sort(lists.begin(), lists.end());
  }

  // Per-block energy from size-weighted centroids (cheap stand-in for the
  // data's per-dimension second moment).
  plan.block_energy.assign(num_dim_blocks, 0.0);
  const DatasetView centroids = index.centroids().View();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double weight = static_cast<double>(sizes[c]);
    const float* row = centroids.Row(c);
    for (size_t d = 0; d < num_dim_blocks; ++d) {
      double e = 0.0;
      for (size_t j = plan.dim_ranges[d].begin; j < plan.dim_ranges[d].end;
           ++j) {
        e += double{row[j]} * row[j];
      }
      plan.block_energy[d] += weight * e;
    }
  }

  // Block -> machine: row-major over the grid, exactly one block per machine
  // when the grid tiles the cluster (Figure 4: V1D1->M1, V1D2->M2, ...).
  plan.machine_of.resize(num_vec_shards * num_dim_blocks);
  for (size_t v = 0; v < num_vec_shards; ++v) {
    for (size_t d = 0; d < num_dim_blocks; ++d) {
      plan.machine_of[v * num_dim_blocks + d] =
          static_cast<int32_t>((v * num_dim_blocks + d) % num_machines);
    }
  }
  return plan;
}

std::vector<std::pair<size_t, size_t>> EnumerateGridShapes(size_t num_machines,
                                                           size_t dim) {
  std::vector<std::pair<size_t, size_t>> shapes;
  for (size_t b_vec = 1; b_vec <= num_machines; ++b_vec) {
    if (num_machines % b_vec != 0) continue;
    const size_t b_dim = num_machines / b_vec;
    if (b_dim > dim) continue;
    shapes.emplace_back(b_vec, b_dim);
  }
  return shapes;
}

}  // namespace harmony
