#include "core/pipeline.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "core/block_scan.h"
#include "util/logging.h"

namespace harmony {

namespace {

constexpr uint64_t kMsgHeaderBytes = 16;

/// Bytes carried per surviving candidate between dimension stages: global
/// id (4-byte local encoding) + accumulated partial; inner-product pruning
/// additionally carries the remaining-norm term.
uint64_t BytesPerCandidate(bool with_norms) {
  return with_norms ? 12 : 8;
}

/// Everything one chain of the current vector-pipeline rank needs while its
/// batches stream through the dimension stages.
struct ChainRun {
  const QueryChain* chain = nullptr;
  size_t shard = 0;
  std::vector<double> slice_arrival;  // per dimension block
  // Candidate arrays; pipeline batches own disjoint ranges and compact
  // survivors in place within their range.
  std::vector<int64_t> id;
  std::vector<int32_t> list;
  std::vector<int32_t> row;
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
  // slices[d * lists + li]: the slice of chain list li in block d, on the
  // machine owning grid block (shard, d).
  std::vector<const ListSlice*> slices;
  std::vector<float> q_block_norm;  // per block (inner-product pruning)
  float rem_q_total = 0.0f;
  std::vector<uint64_t> machine_bytes;  // peak in-flight accounting
  // --- Fault bookkeeping (all unused on a healthy run).
  // Delivery attempts per hop key (index b_dim = final result hop);
  // 0 = permanently lost past the retry budget.
  std::vector<uint32_t> attempts;
  uint64_t lost_mask = 0;    // dimension blocks lost for this chain
  bool contributed = false;  // any batch's results reached the client
};

/// One pipeline batch flowing through the dimension stages — the unit of
/// the discrete-event schedule.
struct BatchTask {
  double ready = 0.0;   // time its input (slice + partials) is available
  uint64_t seq = 0;     // deterministic tie-break
  size_t run = 0;       // index into the rank's ChainRun array
  size_t begin = 0;     // candidate range start
  size_t survivors = 0; // current surviving candidates in the range
  uint64_t queued_ops = 0;  // cost estimate charged to the target queue
  uint64_t remaining = 0;  // bitmask of unprocessed dimension blocks
  size_t processed = 0;    // pipeline position (blocks already done)
  size_t next_block = 0;   // block to execute when popped
  size_t start_block = 0;  // rotation anchor (static stagger)
  int32_t last_machine = -1;  // machine of the last computed block
  float rem_q_sq = 0.0f;
  // Completion time of the last executed stage; only read on the lane path
  // (threads_per_node > 1), where the node's serial clock no longer tracks
  // compute.
  double compute_done = 0.0;
};

}  // namespace

Result<PipelineOutput> ExecuteSimulated(const IvfIndex& index,
                                        const PartitionPlan& plan,
                                        const std::vector<WorkerStore>& stores,
                                        const PrewarmCache& prewarm,
                                        const BatchRouting& routing,
                                        const DatasetView& queries,
                                        const ExecOptions& opts,
                                        SimCluster* cluster) {
  if (cluster->num_workers() != plan.num_machines) {
    return Status::InvalidArgument("cluster size does not match plan");
  }
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  const size_t b_dim = plan.num_dim_blocks;
  if (b_dim > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  const size_t dim = index.dim();
  const size_t num_queries = queries.size();
  const bool use_ip = opts.metric != Metric::kL2;
  // Remaining-norm tracking is only materialized when inner-product pruning
  // can actually fire (more than one dimension block).
  const bool use_norms = use_ip && b_dim > 1;
  const size_t batch_size = std::max<size_t>(1, opts.pipeline_batch);

  PipelineOutput out;
  out.prune.Resize(b_dim);
  out.degraded.assign(num_queries, 0);

  // Fault layer: every branch below is gated on `faulty`, so a run with the
  // default FaultPlan is byte-identical (results and virtual clocks) to the
  // pre-fault-layer engine.
  const FaultInjector& faults = cluster->faults();
  const bool faulty = faults.enabled();
  const uint32_t max_retries = static_cast<uint32_t>(opts.max_retries);
  // Machines whose crash has been *observed* (a baton ran into the dead
  // node): the load-aware block chooser routes around them from then on —
  // per-chain failure detection, no oracle.
  std::vector<uint8_t> machine_dead(plan.num_machines, 0);

  // Intra-node parallelism: threads_per_node > 1 switches every worker to
  // lane-scheduled compute (SimNode::ChargeComputeAt). At 1 the workers
  // keep the historical single-clock path and every charge below is
  // bit-identical to it. Configured unconditionally so a reused cluster
  // drops stale lanes.
  for (size_t m = 0; m < plan.num_machines; ++m) {
    cluster->worker(m).ConfigureLanes(opts.threads_per_node);
  }

  // Shared-scan byte accounting (never touches a clock): with grouping on,
  // each (query group, dim block, IVF list, 64-row span) entry holds a
  // bitmask of list rows the group has already billed; a survivor bills its
  // row only if no co-probing member billed it first. The group total is
  // therefore the *union* of member rows — the quantity the threaded
  // engine's ScanBlockGroup merge-walk streams once for the whole group —
  // and, row for row, at most what the per-query path bills, so grouped
  // runs always report fewer-or-equal streamed bytes.
  std::unordered_map<uint64_t, uint64_t> streamed_rows;

  std::vector<QueryState> states;
  states.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) states.emplace_back(opts.k);

  SimNode& client = cluster->client();

  // --- Stage 0: centroid assignment + prewarm (Algorithm 1, PrewarmHeap).
  // The client scores its cached sample of each probed list, seeding every
  // query's heap with a sound threshold.
  for (size_t q = 0; q < num_queries; ++q) {
    client.ChargeCompute(
        static_cast<uint64_t>(index.nlist()) * DistanceOpCost(dim));
    QueryState& state = states[q];
    for (const int32_t list_id : routing.probe_lists[q]) {
      const auto& ids = prewarm.ListIds(static_cast<size_t>(list_id));
      if (ids.empty()) continue;
      const DatasetView vecs =
          prewarm.ListVectors(static_cast<size_t>(list_id));
      for (size_t i = 0; i < ids.size(); ++i) {
        if (opts.labels != nullptr &&
            (*opts.labels)[static_cast<size_t>(ids[i])] !=
                opts.allowed_label) {
          continue;
        }
        const float d =
            Distance(opts.metric, queries.Row(q), vecs.Row(i), dim);
        state.heap.Push(ids[i], d);
        state.prewarmed_ids.insert(ids[i]);
      }
      client.ChargeCompute(static_cast<uint64_t>(ids.size()) *
                           DistanceOpCost(dim));
    }
    state.ready_time = client.clock();
  }

  // Per-(machine, vector-stage) in-flight intermediate bytes, for the peak
  // query-memory table: chains of the same probe rank are concurrent, and
  // within a chain one pipeline batch is in flight per machine.
  std::vector<std::vector<uint64_t>> stage_bytes(
      plan.num_machines,
      std::vector<uint64_t>(routing.max_probe_rank + 1, 0));

  const double client_ops_per_sec = client.ops_per_sec();
  uint64_t total_merge_ops = 0;
  double last_merge_done = 0.0;
  uint64_t chain_seq = 0;

  // --- Vector pipeline, one probe rank at a time (Figure 5(a)): the client
  // dispatches every chain of the rank, then the rank's pipeline batches
  // execute as a discrete-event schedule over the machines' virtual clocks.
  // Later ranks inherit every earlier rank's tightened thresholds.
  size_t rank_begin = 0;
  while (rank_begin < routing.chains.size()) {
    size_t rank_end = rank_begin;
    const int32_t rank = routing.chains[rank_begin].probe_rank;
    while (rank_end < routing.chains.size() &&
           routing.chains[rank_end].probe_rank == rank) {
      ++rank_end;
    }

    // Queries whose previous rank finished early dispatch first; only
    // per-query causality is enforced across ranks.
    std::vector<size_t> rank_order(rank_end - rank_begin);
    std::iota(rank_order.begin(), rank_order.end(), rank_begin);
    std::stable_sort(rank_order.begin(), rank_order.end(),
                     [&](size_t a, size_t b) {
                       const double ra =
                           states[static_cast<size_t>(routing.chains[a].query)]
                               .ready_time;
                       const double rb =
                           states[static_cast<size_t>(routing.chains[b].query)]
                               .ready_time;
                       return ra < rb;
                     });

    // ---- Pass A: client dispatch + chain materialization.
    std::vector<ChainRun> runs;
    runs.reserve(rank_order.size());
    for (const size_t c : rank_order) {
      const QueryChain& chain = routing.chains[c];
      QueryState& state = states[static_cast<size_t>(chain.query)];
      const size_t shard = static_cast<size_t>(chain.shard);

      ChainRun run;
      run.chain = &chain;
      run.shard = shard;
      run.machine_bytes.assign(plan.num_machines, 0);
      const float* qrow = queries.Row(static_cast<size_t>(chain.query));

      client.WaitUntil(state.ready_time);
      if (use_norms) {
        run.q_block_norm.resize(b_dim);
        for (size_t d = 0; d < b_dim; ++d) {
          const DimRange r = plan.dim_ranges[d];
          run.q_block_norm[d] =
              PartialIp(qrow + r.begin, qrow + r.begin, r.width());
          run.rem_q_total += run.q_block_norm[d];
        }
        client.ChargeCompute(DistanceOpCost(dim));
      }
      run.slice_arrival.resize(b_dim);
      for (size_t d = 0; d < b_dim; ++d) {
        const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
        const uint64_t bytes =
            plan.dim_ranges[d].width() * sizeof(float) + kMsgHeaderBytes;
        run.slice_arrival[d] =
            cluster->Transfer(&client, &cluster->worker(machine), bytes);
      }

      // Per-block slice lookups, hoisted out of the event loop.
      run.slices.assign(b_dim * chain.lists.size(), nullptr);
      for (size_t d = 0; d < b_dim; ++d) {
        const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
        for (size_t li = 0; li < chain.lists.size(); ++li) {
          run.slices[d * chain.lists.size() + li] =
              stores[machine].FindListSlice(shard, d, chain.lists[li]);
        }
      }

      // Candidate set, in probe order (nearest list first) so the earliest
      // batches tighten the threshold for the rest of the chain.
      for (size_t li = 0; li < chain.lists.size(); ++li) {
        const ListSlice* ls = run.slices[li];  // block 0 slices
        if (ls == nullptr) continue;
        for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
          const int64_t gid = ls->slice.GlobalId(r);
          if (state.prewarmed_ids.count(gid) > 0) continue;
          if (opts.labels != nullptr &&
              (*opts.labels)[static_cast<size_t>(gid)] != opts.allowed_label) {
            continue;
          }
          run.id.push_back(gid);
          run.list.push_back(static_cast<int32_t>(li));
          run.row.push_back(static_cast<int32_t>(r));
          run.partial.push_back(0.0f);
          if (use_norms) {
            run.rem_p_sq.push_back(ls->total_norm_sq[r]);
          }
        }
      }
      out.prune.total_candidates += run.id.size();

      if (faulty) {
        // Per-hop delivery outcomes are pure functions of the plan seed and
        // the chain's identity, so they can be fixed here once; the same
        // keys give the threaded engine the same loss schedule.
        run.attempts.assign(b_dim + 1, 1);
        for (size_t d = 0; d <= b_dim; ++d) {
          run.attempts[d] = faults.DeliveryAttempts(
              ChainHopKey(chain.query, chain.shard, d), max_retries);
          if (d == b_dim) continue;
          // A block is statically lost when its delivery coins all came up
          // dropped, or its machine is dead from the start — the latter is
          // handled statically (not via pop-time detection) so the sim and
          // threaded engines agree on the degraded set.
          if (run.attempts[d] == 0 ||
              faults.CrashedFromStart(
                  static_cast<size_t>(plan.MachineOf(chain.shard, d)))) {
            run.lost_mask |= uint64_t{1} << d;
          }
        }
        if (run.lost_mask != 0 && !run.id.empty()) {
          out.faults.blocks_lost +=
              static_cast<uint64_t>(std::popcount(run.lost_mask));
          out.faults.messages_dropped +=
              static_cast<uint64_t>(std::popcount(run.lost_mask)) *
              (max_retries + 1);
          out.degraded[static_cast<size_t>(chain.query)] = 1;
        }
      }
      runs.push_back(std::move(run));
    }

    // ---- Pass B: discrete-event schedule of the rank's pipeline batches.
    // Each machine owns a pending min-heap (by readiness) plus per-position
    // "available" FIFO buckets of tasks whose inputs have arrived. A free
    // machine always executes the *deepest-position* available task
    // (depth-first draining): a worker that just received stage-p partials
    // processes them before the pile of stage-0 work queued behind them.
    // This is what lets completed batches refine the pruning threshold
    // while sibling batches are still queued — with plain FIFO, every
    // stage-0 task of a dispatched batch would run against the cold prewarm
    // threshold.
    struct ReadyLater {
      bool operator()(const BatchTask& a, const BatchTask& b) const {
        if (a.ready != b.ready) return a.ready > b.ready;
        return a.seq > b.seq;
      }
    };
    struct MachineQueue {
      std::priority_queue<BatchTask, std::vector<BatchTask>, ReadyLater>
          pending;
      std::vector<std::deque<BatchTask>> available;  // per pipeline position
      size_t available_count = 0;

      void Promote(double now) {
        while (!pending.empty() && pending.top().ready <= now) {
          const BatchTask& t = pending.top();
          available[t.processed].push_back(t);
          ++available_count;
          pending.pop();
        }
      }
      BatchTask PopDeepest() {
        for (size_t p = available.size(); p-- > 0;) {
          if (!available[p].empty()) {
            BatchTask t = available[p].front();
            available[p].pop_front();
            --available_count;
            return t;
          }
        }
        HARMONY_CHECK_MSG(false, "PopDeepest on empty queue");
        return BatchTask{};
      }
    };
    std::vector<MachineQueue> machine_queues(plan.num_machines);
    for (auto& mq : machine_queues) mq.available.resize(b_dim);
    // Estimated ops sitting in each machine's queue; the load metric below
    // is executed busy time *plus* queued work, so seeding thousands of
    // batches up front still spreads them.
    std::vector<uint64_t> queued_ops(plan.num_machines, 0);
    size_t outstanding = 0;
    uint64_t seq = 0;

    // Dynamic block choice (Section 4.3, "Load Balancing Strategies"),
    // balancing two forces:
    //  * pruning power — high-energy blocks separate candidates fastest, so
    //    processing them early is what lets later stages skip work (on
    //    spectrally decaying data a low-energy-first order prunes nothing);
    //  * load — blocks of currently overloaded machines are deferred to
    //    late positions where pruning has already removed most candidates.
    // Among the remaining blocks whose machine is within a slack of the
    // least-busy one, pick the highest-energy block; a machine that falls
    // far behind is simply skipped until it catches up.
    auto machine_load = [&](size_t machine) {
      const SimNode& worker = cluster->worker(machine);
      return worker.compute_seconds() + worker.comm_seconds() +
             static_cast<double>(queued_ops[machine]) / worker.ops_per_sec();
    };
    auto choose_block = [&](const ChainRun& run, uint64_t remaining) {
      if (faulty) {
        // Route around machines whose crash has been observed, unless that
        // would leave nothing (the caller then detects the loss and
        // degrades the chain).
        uint64_t alive = remaining;
        for (size_t cand = 0; cand < b_dim; ++cand) {
          if ((remaining & (uint64_t{1} << cand)) == 0) continue;
          if (machine_dead[static_cast<size_t>(
                  plan.MachineOf(run.shard, cand))]) {
            alive &= ~(uint64_t{1} << cand);
          }
        }
        if (alive != 0) remaining = alive;
      }
      double min_load = -1.0;
      for (size_t cand = 0; cand < b_dim; ++cand) {
        if ((remaining & (uint64_t{1} << cand)) == 0) continue;
        const double load = machine_load(
            static_cast<size_t>(plan.MachineOf(run.shard, cand)));
        if (min_load < 0.0 || load < min_load) min_load = load;
      }
      const double slack = 0.10 * min_load + 1e-5;
      size_t best = b_dim;
      double best_energy = -1.0;
      for (size_t cand = 0; cand < b_dim; ++cand) {
        if ((remaining & (uint64_t{1} << cand)) == 0) continue;
        const double load = machine_load(
            static_cast<size_t>(plan.MachineOf(run.shard, cand)));
        if (load > min_load + slack) continue;  // Overloaded: defer.
        const double energy =
            cand < plan.block_energy.size() ? plan.block_energy[cand] : 0.0;
        if (best == b_dim || energy > best_energy) {
          best = cand;
          best_energy = energy;
        }
      }
      return best;
    };

    // One failed delivery attempt costs the message's critical path one ack
    // timeout per resend (exponential backoff); counted into the run stats.
    auto retry_penalty = [&](uint64_t bytes, uint32_t attempts_used) {
      double penalty = 0.0;
      for (uint32_t a = 0; a + 1 < attempts_used; ++a) {
        penalty += cluster->network().RetryBackoffSeconds(bytes, a);
      }
      if (attempts_used > 1) {
        out.faults.retries += attempts_used - 1;
        out.faults.messages_dropped += attempts_used - 1;
      }
      return penalty;
    };

    // Last stage of a batch: local top-K selection at the last machine that
    // computed a block, result hop to the client, client-side merge. Also
    // the landing point of degraded batches that ran out of alive blocks.
    auto finalize_batch = [&](BatchTask& task, ChainRun& run) {
      QueryState& state = states[static_cast<size_t>(run.chain->query)];
      if (task.processed == 0 || task.last_machine < 0) {
        // Every block was lost before the first stage could run: the batch
        // contributes nothing and the client hears nothing.
        return;
      }
      SimNode& node = cluster->worker(static_cast<size_t>(task.last_machine));
      // Lane path: the result send and selection pass happen after the
      // stage's lane-scheduled compute finished, not after the serial clock
      // (which no longer tracks compute).
      if (node.has_lanes()) node.WaitUntil(task.compute_done);
      TopKHeap local(opts.k);
      double result_arrival;
      uint64_t result_bytes = kMsgHeaderBytes;
      if (task.survivors > 0) {
        const float tau_final = state.heap.threshold();
        for (size_t i = task.begin; i < task.begin + task.survivors; ++i) {
          const float dist = use_ip ? -run.partial[i] : run.partial[i];
          if (dist < tau_final || !state.heap.full()) {
            local.Push(run.id[i], dist);
          }
        }
        node.ChargeCompute(task.survivors);  // Selection pass.
        result_bytes = local.size() * 8 + kMsgHeaderBytes;
        result_arrival = cluster->Transfer(&node, &client, result_bytes);
      } else {
        // Everything pruned; notify the client with an empty message.
        result_arrival = cluster->Transfer(&node, &client, result_bytes);
      }
      if (faulty && run.attempts[b_dim] == 0) {
        // The result message and every resend of it died in flight: the
        // worker paid for the send but the client never merges.
        out.faults.messages_dropped += max_retries + 1;
        return;
      }
      if (faulty && run.attempts[b_dim] > 1) {
        result_arrival += retry_penalty(result_bytes, run.attempts[b_dim]);
      }
      run.contributed = true;

      // Client merge: merges of different queries proceed concurrently on
      // the (many-core) client; only per-query ordering is enforced, so a
      // straggling batch never blocks other queries' progress.
      const double merge_ready = std::max(result_arrival, state.ready_time);
      const uint64_t merge_ops = local.size() + 1;
      const double merge_done =
          merge_ready + static_cast<double>(merge_ops) / client_ops_per_sec;
      total_merge_ops += merge_ops;
      state.ready_time = merge_done;
      last_merge_done = std::max(last_merge_done, merge_done);
      for (const Neighbor& n : local.SortedResults()) {
        state.heap.Push(n.id, n.distance);
      }
    };

    // The hop into task.next_block was lost (dead machine): remove the
    // block from the chain, book the loss, and route the baton to the next
    // surviving block — or finalize from wherever it last computed.
    auto fail_over = [&](BatchTask task, double detect_time) {
      ChainRun& run = runs[task.run];
      const size_t d = task.next_block;
      if ((run.lost_mask & (uint64_t{1} << d)) == 0) {
        run.lost_mask |= uint64_t{1} << d;
        ++out.faults.blocks_lost;
      }
      if (!run.id.empty()) {
        out.degraded[static_cast<size_t>(run.chain->query)] = 1;
      }
      task.remaining &= ~run.lost_mask;
      if (task.remaining != 0) {
        size_t next = b_dim;
        if (opts.enable_pipeline && opts.dynamic_dim_order) {
          next = choose_block(run, task.remaining);
        } else {
          for (size_t step = 0; step < b_dim; ++step) {
            const size_t cand =
                (task.start_block + task.processed + step) % b_dim;
            if ((task.remaining & (uint64_t{1} << cand)) != 0) {
              next = cand;
              break;
            }
          }
        }
        HARMONY_CHECK(next < b_dim);
        const uint64_t bytes =
            task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
        task.next_block = next;
        task.ready = std::max(detect_time, run.slice_arrival[next]);
        if (run.attempts[next] > 1) {
          task.ready += retry_penalty(bytes, run.attempts[next]);
        }
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[next].width();
        const size_t next_machine =
            static_cast<size_t>(plan.MachineOf(run.shard, next));
        queued_ops[next_machine] += task.queued_ops;
        machine_queues[next_machine].pending.push(task);
        ++outstanding;
        return;
      }
      finalize_batch(task, run);
    };

    // Seed every chain's pipeline batches.
    for (size_t r = 0; r < runs.size(); ++r, ++chain_seq) {
      const ChainRun& run = runs[r];
      const size_t total = run.id.size();
      const uint64_t all_blocks =
          b_dim == 64 ? ~uint64_t{0} : ((uint64_t{1} << b_dim) - 1);
      const uint64_t usable_blocks = all_blocks & ~run.lost_mask;
      if (total == 0 || usable_blocks == 0) {
        // Nothing to scan (all candidates prewarmed), or every dimension
        // block of the shard is lost: still sequence the query so later
        // ranks may proceed. A fully lost shard degrades the query; the
        // rank-end sweep books it as shards_lost.
        QueryState& state = states[static_cast<size_t>(run.chain->query)];
        state.ready_time = std::max(state.ready_time, client.clock());
        if (total > 0) {
          out.degraded[static_cast<size_t>(run.chain->query)] = 1;
        }
        continue;
      }
      size_t batch_idx = 0;
      for (size_t begin = 0; begin < total; begin += batch_size, ++batch_idx) {
        BatchTask task;
        task.run = r;
        task.begin = begin;
        task.survivors = std::min(batch_size, total - begin);
        task.remaining = usable_blocks;
        task.processed = 0;
        // Static stagger: consecutive batches/chains start on different
        // machines; the dynamic choice refines later blocks as busy
        // counters evolve.
        task.start_block =
            opts.enable_pipeline ? (chain_seq + batch_idx) % b_dim : 0;
        while ((task.remaining & (uint64_t{1} << task.start_block)) == 0) {
          task.start_block = (task.start_block + 1) % b_dim;
        }
        if (opts.enable_pipeline && opts.dynamic_dim_order && b_dim > 1) {
          const size_t chosen = choose_block(run, task.remaining);
          if (chosen < b_dim) task.start_block = chosen;
        }
        task.next_block = task.start_block;
        task.rem_q_sq = run.rem_q_total;
        task.ready = run.slice_arrival[task.next_block];
        if (faulty && run.attempts[task.next_block] > 1) {
          task.ready += retry_penalty(
              plan.dim_ranges[task.next_block].width() * sizeof(float) +
                  kMsgHeaderBytes,
              run.attempts[task.next_block]);
        }
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[task.next_block].width();
        const size_t seed_machine = static_cast<size_t>(
            plan.MachineOf(run.shard, task.next_block));
        queued_ops[seed_machine] += task.queued_ops;
        machine_queues[seed_machine].pending.push(task);
        ++outstanding;
      }
    }

    while (outstanding > 0) {
      // Pick the machine that can start work earliest: its clock if it has
      // available work, else the arrival of its next pending input.
      size_t exec_machine = plan.num_machines;
      double exec_start = 0.0;
      for (size_t m = 0; m < plan.num_machines; ++m) {
        MachineQueue& mq = machine_queues[m];
        // next_free() == clock() without lanes; with lanes it is the
        // least-loaded lane, letting a node take overlapping work.
        mq.Promote(cluster->worker(m).next_free());
        double start;
        if (mq.available_count > 0) {
          start = cluster->worker(m).next_free();
        } else if (!mq.pending.empty()) {
          start =
              std::max(cluster->worker(m).next_free(), mq.pending.top().ready);
        } else {
          continue;
        }
        if (exec_machine == plan.num_machines || start < exec_start) {
          exec_machine = m;
          exec_start = start;
        }
      }
      HARMONY_CHECK(exec_machine < plan.num_machines);
      MachineQueue& mq = machine_queues[exec_machine];
      mq.Promote(exec_start);
      BatchTask task = mq.PopDeepest();
      --outstanding;
      queued_ops[exec_machine] -= std::min(queued_ops[exec_machine],
                                           task.queued_ops);
      ChainRun& run = runs[task.run];
      const QueryChain& chain = *run.chain;
      QueryState& state = states[static_cast<size_t>(chain.query)];
      const float* qrow = queries.Row(static_cast<size_t>(chain.query));
      const size_t d = task.next_block;
      const DimRange range = plan.dim_ranges[d];
      const size_t machine = static_cast<size_t>(plan.MachineOf(run.shard, d));
      SimNode& node = cluster->worker(machine);
      if (faulty) {
        const double hop_start =
            std::max({node.next_free(), task.ready, run.slice_arrival[d]});
        if (hop_start >= faults.CrashTime(machine)) {
          // The target died before this baton could execute: the sender
          // burns its full retry budget discovering that, then routes
          // around the dead machine.
          machine_dead[machine] = 1;
          const uint64_t bytes =
              task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
          const double detect =
              hop_start +
              cluster->network().RetryBackoffSeconds(bytes, max_retries);
          out.faults.messages_dropped += max_retries + 1;
          fail_over(task, detect);
          continue;
        }
      }
      const double scan_ready = std::max(task.ready, run.slice_arrival[d]);
      if (!node.has_lanes()) node.WaitUntil(scan_ready);

      BlockScanParams scan;
      scan.metric = opts.metric;
      scan.use_norms = use_norms;
      scan.prune =
          opts.enable_pruning && task.processed > 0 && state.heap.full();
      scan.tau = state.heap.threshold();
      scan.rem_q_sq = task.rem_q_sq;
      scan.q_slice = qrow + range.begin;
      scan.width = range.width();
      scan.slices = run.slices.data() + d * chain.lists.size();
      scan.use_batched = opts.use_batched_kernels;

      BlockScanCounters counters;
      const size_t w = ScanBlock(
          scan, task.begin, task.survivors, run.id.data(), run.list.data(),
          run.row.data(), run.partial.data(),
          use_norms ? run.rem_p_sq.data() : nullptr, &counters);
      out.prune.dropped_after[task.processed > 0 ? task.processed - 1 : 0] +=
          counters.dropped;
      if (node.has_lanes()) {
        task.compute_done = node.ChargeComputeAt(scan_ready, counters.ops);
        // Batons and result sends leave via the node's serial (NIC) clock;
        // advance it to this stage's completion so they depart after it.
        node.WaitUntil(task.compute_done);
      } else {
        node.ChargeCompute(counters.ops);
        task.compute_done = node.clock();
      }

      // Streamed-bytes accounting (counters only — scheduling above never
      // reads it). Each survivor streamed its row; with shared scans a row
      // a co-probing chain of the same group already billed bills zero, so
      // the group total is the union of member rows. Keys use the actual
      // list-row index (run.row), not the post-compaction batch position,
      // so co-probing members agree on units regardless of how differently
      // their candidate arrays compacted. Keys are packed lossily (masked
      // fields); a collision only under-bills, deterministically.
      {
        uint64_t scan_bytes = 0;
        const uint64_t row_bytes = range.width() * sizeof(float);
        if (opts.shared_scans && routing.num_groups > 0) {
          const size_t chain_idx =
              static_cast<size_t>(run.chain - routing.chains.data());
          const uint64_t g =
              static_cast<uint64_t>(routing.chain_group[chain_idx]) & 0xFFFFFF;
          for (size_t j = task.begin; j < task.begin + w; ++j) {
            const uint64_t row = static_cast<uint64_t>(run.row[j]);
            const uint64_t gl =
                static_cast<uint64_t>(
                    chain.lists[static_cast<size_t>(run.list[j])]) &
                0xFFFFF;
            const uint64_t key = (g << 40) | (uint64_t{d} << 34) | (gl << 14) |
                                 ((row / 64) & 0x3FFF);
            uint64_t& mask = streamed_rows[key];
            const uint64_t bit = uint64_t{1} << (row % 64);
            if ((mask & bit) == 0) {
              mask |= bit;
              scan_bytes += row_bytes;
            }
          }
        } else {
          scan_bytes = static_cast<uint64_t>(w) * row_bytes;
        }
        node.ChargeStreamedBytes(scan_bytes);
      }
      if (use_norms) task.rem_q_sq -= run.q_block_norm[d];
      task.remaining &= ~(uint64_t{1} << d);
      ++task.processed;
      task.survivors = w;
      task.last_machine = static_cast<int32_t>(machine);
      if (faulty) {
        // Another batch of this chain may have discovered crash-lost blocks
        // in the meantime; don't hop into a known-dead block.
        task.remaining &= ~run.lost_mask;
      }

      run.machine_bytes[machine] = std::max(
          run.machine_bytes[machine],
          w * BytesPerCandidate(use_norms) + range.width() * sizeof(float));

      if (task.survivors > 0 && task.remaining != 0) {
        // Choose the next block: with load-aware dynamic ordering, the
        // least-busy remaining machine goes next — equivalently, blocks of
        // currently overloaded machines are deferred to late positions
        // where pruning has removed most candidates (Section 4.3, "Load
        // Balancing Strategies").
        size_t next = b_dim;  // sentinel
        if (opts.enable_pipeline && opts.dynamic_dim_order) {
          next = choose_block(run, task.remaining);
        } else {
          // Cyclic order from the stagger anchor.
          for (size_t step = 0; step < b_dim; ++step) {
            const size_t cand =
                (task.start_block + task.processed + step) % b_dim;
            if ((task.remaining & (uint64_t{1} << cand)) != 0) {
              next = cand;
              break;
            }
          }
        }
        HARMONY_CHECK(next < b_dim);
        task.next_block = next;
        const size_t next_machine =
            static_cast<size_t>(plan.MachineOf(run.shard, next));
        const uint64_t bytes =
            task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
        double arrival =
            cluster->Transfer(&node, &cluster->worker(next_machine), bytes);
        if (faulty && run.attempts[next] > 1) {
          arrival += retry_penalty(bytes, run.attempts[next]);
        }
        task.ready = std::max(arrival, run.slice_arrival[next]);
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[next].width();
        queued_ops[next_machine] += task.queued_ops;
        machine_queues[next_machine].pending.push(task);
        ++outstanding;
        continue;
      }

      // Final stage of this batch: local top-K selection before shipping —
      // only candidates that can still enter the query's top-K travel to
      // the client (vector-partitioned chains therefore return at most K
      // results, matching the paper's low vector-mode communication).
      finalize_batch(task, run);
    }

    // Any chain that got candidates but never landed a result at the client
    // lost its whole vector shard for this query.
    if (faulty) {
      for (const ChainRun& run : runs) {
        if (run.id.empty() || run.contributed) continue;
        ++out.faults.shards_lost;
        out.degraded[static_cast<size_t>(run.chain->query)] = 1;
      }
    }

    for (const ChainRun& run : runs) {
      for (size_t m = 0; m < plan.num_machines; ++m) {
        stage_bytes[m][static_cast<size_t>(run.chain->probe_rank)] +=
            run.machine_bytes[m];
      }
    }
    rank_begin = rank_end;
  }

  // Account the (parallel) merge work on the client and advance its clock
  // to the last merge completion so the makespan covers result assembly.
  client.ChargeCompute(total_merge_ops);
  client.WaitUntil(last_merge_done);

  // --- Collect results, per-query latencies and the peak-memory figure.
  out.results.resize(num_queries);
  out.query_completion_seconds.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    out.results[q] = states[q].heap.SortedResults();
    out.query_completion_seconds[q] = states[q].ready_time;
  }
  for (size_t m = 0; m < plan.num_machines; ++m) {
    for (const uint64_t bytes : stage_bytes[m]) {
      out.peak_intermediate_bytes =
          std::max(out.peak_intermediate_bytes, bytes);
    }
  }
  for (const uint8_t flag : out.degraded) {
    if (flag != 0) ++out.faults.degraded_queries;
  }
  return out;
}

}  // namespace harmony
