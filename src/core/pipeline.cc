#include "core/pipeline.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "core/chain_exec.h"
#include "index/distance.h"
#include "util/logging.h"

namespace harmony {

namespace {

constexpr uint64_t kMsgHeaderBytes = 16;

/// Bytes carried per surviving candidate between dimension stages: global
/// id (4-byte local encoding) + accumulated partial; inner-product pruning
/// additionally carries the remaining-norm term.
uint64_t BytesPerCandidate(bool with_norms) {
  return with_norms ? 12 : 8;
}

/// One pipeline batch flowing through the dimension stages — the unit of
/// the discrete-event schedule.
struct BatchTask {
  double ready = 0.0;   // time its input (slice + partials) is available
  uint64_t seq = 0;     // deterministic tie-break
  size_t run = 0;       // index into the rank's ChainRun array
  size_t begin = 0;     // candidate range start
  size_t survivors = 0; // current surviving candidates in the range
  uint64_t queued_ops = 0;  // cost estimate charged to the target queue
  uint64_t remaining = 0;  // bitmask of unprocessed dimension blocks
  size_t processed = 0;    // pipeline position (blocks already done)
  size_t next_block = 0;   // block to execute when popped
  size_t start_block = 0;  // rotation anchor (static stagger)
  int32_t last_machine = -1;  // machine of the last computed block
  // Dimension blocks this batch actually scanned (PQ streams rerank exactly
  // these at the rank barrier; mirrors ChainExecState::scanned_mask).
  uint64_t scanned_mask = 0;
  float rem_q_sq = 0.0f;
  // Completion time of the last executed stage; only read on the lane path
  // (threads_per_node > 1), where the node's serial clock no longer tracks
  // compute.
  double compute_done = 0.0;
};

/// Everything one chain of the current vector-pipeline rank needs while its
/// batches stream through the dimension stages. The candidate arrays, slice
/// table and loss schedule are the shared execution-core structures
/// (core/exec_plan.h, core/chain_exec.h); the arrival times and peak-bytes
/// tracking are simulator-only.
struct ChainRun {
  const QueryChain* chain = nullptr;
  size_t shard = 0;
  std::vector<double> slice_arrival;  // per dimension block
  // Candidate arrays + slice table; pipeline batches own disjoint ranges
  // and compact survivors in place within their range.
  ChainCandidates cand;
  // Static per-hop fault schedule (empty/zero on a healthy run).
  ChainLossSchedule loss;
  std::vector<uint64_t> machine_bytes;  // peak in-flight accounting
  bool contributed = false;  // any batch's results reached the client
  // Quantized streams: the chain's rank barrier. Batches that finish their
  // stages park here until the chain's last batch arrives; the exact float
  // rerank's depth cap is then applied chain-wide (the threaded engine's
  // per-chain policy), not per pipeline batch.
  size_t open_batches = 0;
  std::vector<BatchTask> finals;
};

/// The SimCluster execution substrate: single-threaded over virtual clocks,
/// so heap access is direct, degraded flags are plain bytes, and streamed
/// bytes bill per-worker. The discrete-event loop below orders stages by
/// virtual time itself, so PostStage/PostHop execute the stage inline (the
/// only time-free reading of "post" a virtual-clock substrate has); the
/// loop uses the backend for state access and accounting, not scheduling.
class SimBackend : public ExecBackend {
 public:
  SimBackend(std::vector<QueryState>* states, std::vector<uint8_t>* degraded,
             SimCluster* cluster)
      : states_(states), degraded_(degraded), cluster_(cluster) {}

  void ReadThreshold(int32_t query, float* tau, bool* heap_full) override {
    QueryState& state = (*states_)[static_cast<size_t>(query)];
    *tau = state.heap.threshold();
    *heap_full = state.heap.full();
  }
  const std::unordered_set<int64_t>* PrewarmedIds(size_t query) override {
    return &(*states_)[query].prewarmed_ids;
  }
  void WithQueryHeap(int32_t query,
                     const std::function<void(TopKHeap&)>& fn) override {
    fn((*states_)[static_cast<size_t>(query)].heap);
  }
  void TagDegraded(int32_t query) override {
    (*degraded_)[static_cast<size_t>(query)] = 1;
  }
  void ChargeStreamedBytes(size_t machine, uint64_t bytes) override {
    cluster_->ChargeStreamedBytes(machine, bytes);
  }
  void ChargeCompressedBytes(size_t machine, uint64_t bytes) override {
    cluster_->ChargeCompressedBytes(machine, bytes);
  }
  void PostStage(size_t /*machine*/, std::function<void()> stage) override {
    stage();
  }
  uint32_t PostHop(size_t /*machine*/, uint64_t msg_key, uint32_t max_retries,
                   std::function<void()> stage) override {
    const FaultInjector& faults = cluster_->faults();
    if (faults.enabled()) {
      const uint32_t attempts = faults.DeliveryAttempts(msg_key, max_retries);
      if (attempts == 0) return 0;
      stage();
      return attempts;
    }
    stage();
    return 1;
  }

 private:
  std::vector<QueryState>* states_;
  std::vector<uint8_t>* degraded_;
  SimCluster* cluster_;
};

}  // namespace

Result<PipelineOutput> ExecuteSimulated(const IvfIndex& index,
                                        const PartitionPlan& plan,
                                        const std::vector<WorkerStore>& stores,
                                        const PrewarmCache& prewarm,
                                        const BatchRouting& routing,
                                        const DatasetView& queries,
                                        const ExecOptions& opts,
                                        SimCluster* cluster) {
  if (cluster->num_workers() != plan.num_machines) {
    return Status::InvalidArgument("cluster size does not match plan");
  }
  HARMONY_ASSIGN_OR_RETURN(
      ExecContext ctx, MakeExecContext(index, plan, stores, prewarm, routing,
                                       queries, opts));
  ctx.AttachFaults(&cluster->faults());
  const size_t b_dim = ctx.b_dim;
  const size_t num_queries = ctx.num_queries;
  const bool use_ip = ctx.use_ip;
  const bool use_norms = ctx.use_norms;
  const size_t batch_size = std::max<size_t>(1, opts.pipeline_batch);

  PipelineOutput out;
  out.prune.Resize(b_dim);
  out.degraded.assign(num_queries, 0);

  // Fault layer: every branch below is gated on `faulty`, so a run with the
  // default FaultPlan is byte-identical (results and virtual clocks) to the
  // pre-fault-layer engine. All fault *booking* flows through the shared
  // FaultLedger (core/chain_exec.cc), same as the threaded engine.
  const FaultInjector& faults = cluster->faults();
  const bool faulty = ctx.faulty;
  const uint32_t max_retries = ctx.max_retries;
  // Machines whose crash has been *observed* (a baton ran into the dead
  // node): the load-aware block chooser routes around them from then on —
  // per-chain failure detection, no oracle.
  std::vector<uint8_t> machine_dead(plan.num_machines, 0);

  // Replica routing (R > 1, or any fault plan): each chain hop lands on the
  // schedule-chosen replica of its block. With R = 1 every helper below
  // degenerates to MachineOf / the legacy slice-arrival layout, bit for bit.
  const bool routed = ctx.routed;
  const size_t reps = std::max<size_t>(1, ctx.replication);
  NodeHealthTracker health(plan.num_machines);
  ctx.AttachHealth(&health);
  auto hop_replica = [](const ChainRun& run, size_t d) -> size_t {
    return run.loss.replica.empty()
               ? 0
               : static_cast<size_t>(run.loss.replica[d]);
  };
  auto block_machine_of = [&](const ChainRun& run, size_t d) -> size_t {
    return static_cast<size_t>(
        plan.ReplicaOf(run.shard, d, hop_replica(run, d)));
  };
  // Query slices are broadcast to every replica of a block; a hop reads the
  // arrival at the replica it actually lands on.
  auto slice_at = [&](const ChainRun& run, size_t d) -> double {
    return run.slice_arrival[d * reps + hop_replica(run, d)];
  };

  // Intra-node parallelism: threads_per_node > 1 switches every worker to
  // lane-scheduled compute (SimNode::ChargeComputeAt). At 1 the workers
  // keep the historical single-clock path and every charge below is
  // bit-identical to it. Configured unconditionally so a reused cluster
  // drops stale lanes.
  for (size_t m = 0; m < plan.num_machines; ++m) {
    cluster->worker(m).ConfigureLanes(opts.threads_per_node);
  }

  std::vector<QueryState> states;
  states.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) states.emplace_back(opts.k);

  SimBackend backend(&states, &out.degraded, cluster);
  FaultLedger ledger(&backend);
  SharedScanBiller biller(ctx);

  SimNode& client = cluster->client();

  // --- Stage 0: centroid assignment + prewarm (Algorithm 1, PrewarmHeap).
  // The client scores its cached sample of each probed list, seeding every
  // query's heap with a sound threshold; ops bill in PrewarmQuery's stated
  // order.
  for (size_t q = 0; q < num_queries; ++q) {
    QueryState& state = states[q];
    PrewarmQuery(ctx, q, &state.heap, &state.prewarmed_ids,
                 [&](uint64_t ops) { client.ChargeCompute(ops); });
    state.ready_time = client.clock();
  }

  // Per-(machine, vector-stage) in-flight intermediate bytes, for the peak
  // query-memory table: chains of the same probe rank are concurrent, and
  // within a chain one pipeline batch is in flight per machine.
  std::vector<std::vector<uint64_t>> stage_bytes(
      plan.num_machines,
      std::vector<uint64_t>(routing.max_probe_rank + 1, 0));

  const double client_ops_per_sec = client.ops_per_sec();
  uint64_t total_merge_ops = 0;
  double last_merge_done = 0.0;
  uint64_t chain_seq = 0;

  // --- Vector pipeline, one probe rank at a time (Figure 5(a)): the client
  // dispatches every chain of the rank, then the rank's pipeline batches
  // execute as a discrete-event schedule over the machines' virtual clocks.
  // Later ranks inherit every earlier rank's tightened thresholds.
  size_t rank_begin = 0;
  while (rank_begin < routing.chains.size()) {
    size_t rank_end = rank_begin;
    const int32_t rank = routing.chains[rank_begin].probe_rank;
    while (rank_end < routing.chains.size() &&
           routing.chains[rank_end].probe_rank == rank) {
      ++rank_end;
    }

    // Queries whose previous rank finished early dispatch first; only
    // per-query causality is enforced across ranks.
    std::vector<size_t> rank_order(rank_end - rank_begin);
    std::iota(rank_order.begin(), rank_order.end(), rank_begin);
    std::stable_sort(rank_order.begin(), rank_order.end(),
                     [&](size_t a, size_t b) {
                       const double ra =
                           states[static_cast<size_t>(routing.chains[a].query)]
                               .ready_time;
                       const double rb =
                           states[static_cast<size_t>(routing.chains[b].query)]
                               .ready_time;
                       return ra < rb;
                     });

    // ---- Pass A: client dispatch + chain materialization (candidate build
    // and loss schedule via the shared execution core; the query-slice
    // transfers and their virtual-time arrivals are simulator glue).
    std::vector<ChainRun> runs;
    runs.reserve(rank_order.size());
    for (const size_t c : rank_order) {
      const QueryChain& chain = routing.chains[c];
      QueryState& state = states[static_cast<size_t>(chain.query)];
      const size_t shard = static_cast<size_t>(chain.shard);

      ChainRun run;
      run.chain = &chain;
      run.shard = shard;
      run.machine_bytes.assign(plan.num_machines, 0);

      client.WaitUntil(state.ready_time);
      if (use_norms) {
        ComputeQueryBlockNorms(ctx, chain, &run.cand);
        client.ChargeCompute(DistanceOpCost(ctx.dim));
      }
      run.slice_arrival.resize(b_dim * reps);
      for (size_t d = 0; d < b_dim; ++d) {
        const uint64_t bytes =
            plan.dim_ranges[d].width() * sizeof(float) + kMsgHeaderBytes;
        for (size_t rr = 0; rr < reps; ++rr) {
          const size_t machine =
              static_cast<size_t>(plan.ReplicaOf(shard, d, rr));
          run.slice_arrival[d * reps + rr] =
              cluster->Transfer(&client, &cluster->worker(machine), bytes);
        }
      }

      BuildChainSliceTable(ctx, chain, &run.cand);
      BuildChainCandidateArrays(ctx, chain, state.prewarmed_ids, &run.cand);
      out.prune.total_candidates += run.cand.id.size();

      if (routed && !run.cand.id.empty()) {
        // Schedule whenever replica routing is active (the walk picks each
        // hop's replica even on a healthy replicated run); book only under
        // faults. Chains with nothing to scan skip the schedule entirely so
        // the health tracker sees exactly the chains the threaded engine
        // feeds it (PrepareChain returns null for those before its schedule
        // runs).
        run.loss = ComputeChainSchedule(ctx, chain);
        if (faulty) {
          ledger.BookStaticChainLoss(run.loss, chain.query, max_retries);
        }
      }
      runs.push_back(std::move(run));
    }

    // ---- Pass B: discrete-event schedule of the rank's pipeline batches.
    // Each machine owns a pending min-heap (by readiness) plus per-position
    // "available" FIFO buckets of tasks whose inputs have arrived. A free
    // machine always executes the *deepest-position* available task
    // (depth-first draining): a worker that just received stage-p partials
    // processes them before the pile of stage-0 work queued behind them.
    // This is what lets completed batches refine the pruning threshold
    // while sibling batches are still queued — with plain FIFO, every
    // stage-0 task of a dispatched batch would run against the cold prewarm
    // threshold.
    struct ReadyLater {
      bool operator()(const BatchTask& a, const BatchTask& b) const {
        if (a.ready != b.ready) return a.ready > b.ready;
        return a.seq > b.seq;
      }
    };
    struct MachineQueue {
      std::priority_queue<BatchTask, std::vector<BatchTask>, ReadyLater>
          pending;
      std::vector<std::deque<BatchTask>> available;  // per pipeline position
      size_t available_count = 0;

      void Promote(double now) {
        while (!pending.empty() && pending.top().ready <= now) {
          const BatchTask& t = pending.top();
          available[t.processed].push_back(t);
          ++available_count;
          pending.pop();
        }
      }
      BatchTask PopDeepest() {
        for (size_t p = available.size(); p-- > 0;) {
          if (!available[p].empty()) {
            BatchTask t = available[p].front();
            available[p].pop_front();
            --available_count;
            return t;
          }
        }
        HARMONY_CHECK_MSG(false, "PopDeepest on empty queue");
        return BatchTask{};
      }
    };
    std::vector<MachineQueue> machine_queues(plan.num_machines);
    for (auto& mq : machine_queues) mq.available.resize(b_dim);
    // Estimated ops sitting in each machine's queue; the load metric below
    // is executed busy time *plus* queued work, so seeding thousands of
    // batches up front still spreads them.
    std::vector<uint64_t> queued_ops(plan.num_machines, 0);
    size_t outstanding = 0;
    uint64_t seq = 0;

    // The load metric fed to the shared load-aware block chooser
    // (ChooseLoadAwareBlock): executed busy time plus queued work.
    const std::function<double(size_t)> machine_load = [&](size_t machine) {
      const SimNode& worker = cluster->worker(machine);
      return worker.compute_seconds() + worker.comm_seconds() +
             static_cast<double>(queued_ops[machine]) / worker.ops_per_sec();
    };
    auto choose_block = [&](const ChainRun& run, uint64_t remaining) {
      return ChooseLoadAwareBlock(
          plan, b_dim, remaining, faulty, machine_dead.data(),
          [&](size_t cand) { return block_machine_of(run, cand); },
          machine_load);
    };

    // Critical-path cost of a message's failed delivery attempts; the
    // resends book on the shared ledger.
    auto retry_penalty = [&](uint64_t bytes, uint32_t attempts_used) {
      return RetryPenaltySeconds(cluster->network(), &ledger, bytes,
                                 attempts_used);
    };

    // Last stage of a batch: local top-K selection at the last machine that
    // computed a block, result hop to the client, client-side merge. Under
    // PQ streams the caller supplies the batch's exact-rerank distances
    // (computed at the chain's rank barrier below); `rerank` is unused on
    // the float path.
    auto deliver_batch = [&](BatchTask& task, ChainRun& run,
                             const std::vector<float>& rerank,
                             size_t reranked) {
      QueryState& state = states[static_cast<size_t>(run.chain->query)];
      SimNode& node = cluster->worker(static_cast<size_t>(task.last_machine));
      // Lane path: the result send and selection pass happen after the
      // stage's lane-scheduled compute finished, not after the serial clock
      // (which no longer tracks compute).
      if (node.has_lanes()) node.WaitUntil(task.compute_done);
      TopKHeap local(opts.k);
      double result_arrival;
      uint64_t result_bytes = kMsgHeaderBytes;
      if (task.survivors > 0) {
        const float tau_final = state.heap.threshold();
        if (ctx.use_pq && reranked > 0) {
          uint64_t rerank_ops = 0;
          for (size_t rd = 0; rd < b_dim; ++rd) {
            if (((task.scanned_mask >> rd) & 1) == 0) continue;
            const size_t width = plan.dim_ranges[rd].width();
            // The float rows are re-read on the machines that hold them.
            backend.ChargeStreamedBytes(
                block_machine_of(run, rd),
                static_cast<uint64_t>(reranked) * width * sizeof(float));
            rerank_ops += static_cast<uint64_t>(reranked) *
                          DistanceOpCost(width);
          }
          node.ChargeCompute(rerank_ops);
        }
        const float kInf = std::numeric_limits<float>::infinity();
        for (size_t i = task.begin; i < task.begin + task.survivors; ++i) {
          const float dist =
              ctx.use_pq
                  ? rerank[i - task.begin]
                  : (use_ip ? -run.cand.partial[i] : run.cand.partial[i]);
          if (ctx.use_pq && dist == kInf) continue;  // τ-skip / depth cap
          // Non-PQ rank barrier: drop tombstoned rows here (the PQ path
          // already dropped them in the rerank — their dist stayed +inf).
          if (!ctx.use_pq && ctx.IsDeleted(run.cand.id[i])) continue;
          if (dist < tau_final || !state.heap.full()) {
            local.Push(run.cand.id[i], dist);
          }
        }
        node.ChargeCompute(task.survivors);  // Selection pass.
        result_bytes = local.size() * 8 + kMsgHeaderBytes;
        result_arrival = cluster->Transfer(&node, &client, result_bytes);
      } else {
        // Everything pruned; notify the client with an empty message.
        result_arrival = cluster->Transfer(&node, &client, result_bytes);
      }
      if (faulty && run.loss.attempts[b_dim] == 0) {
        // The result message and every resend of it died in flight: the
        // worker paid for the send but the client never merges.
        ledger.BookLostMessage(max_retries);
        return;
      }
      if (faulty && run.loss.attempts[b_dim] > 1) {
        result_arrival +=
            retry_penalty(result_bytes, run.loss.attempts[b_dim]);
      }
      run.contributed = true;

      // Client merge: merges of different queries proceed concurrently on
      // the (many-core) client; only per-query ordering is enforced, so a
      // straggling batch never blocks other queries' progress.
      const double merge_ready = std::max(result_arrival, state.ready_time);
      const uint64_t merge_ops = local.size() + 1;
      const double merge_done =
          merge_ready + static_cast<double>(merge_ops) / client_ops_per_sec;
      total_merge_ops += merge_ops;
      state.ready_time = merge_done;
      last_merge_done = std::max(last_merge_done, merge_done);
      for (const Neighbor& n : local.SortedResults()) {
        state.heap.Push(n.id, n.distance);
      }
    };

    // Rank barrier of one chain under PQ streams: the exact rerank's depth
    // cap is chosen chain-wide over every batch's ADC survivors — the same
    // per-chain policy the threaded engine applies in MergeChainResults —
    // then each batch reranks its own picks over exactly the blocks it
    // scanned (fault-divergent masks stay per batch) before selecting and
    // shipping its results in deterministic completion order.
    auto finalize_chain = [&](ChainRun& run) {
      QueryState& state = states[static_cast<size_t>(run.chain->query)];
      std::vector<std::pair<size_t, size_t>> picked;  // (candidate, batch)
      for (size_t b = 0; b < run.finals.size(); ++b) {
        const BatchTask& t = run.finals[b];
        for (size_t i = t.begin; i < t.begin + t.survivors; ++i) {
          picked.emplace_back(i, b);
        }
      }
      if (opts.rerank_depth > 0 && opts.rerank_depth < picked.size()) {
        std::sort(picked.begin(), picked.end(),
                  [&](const std::pair<size_t, size_t>& a,
                      const std::pair<size_t, size_t>& b) {
                    return RerankOrderLess(run.cand, use_ip, a.first, b.first);
                  });
        picked.resize(opts.rerank_depth);
      }
      std::vector<size_t> pick;
      std::vector<float> rerank;
      for (size_t b = 0; b < run.finals.size(); ++b) {
        BatchTask& t = run.finals[b];
        pick.clear();
        for (const auto& pc : picked) {
          if (pc.second == b) pick.push_back(pc.first);
        }
        std::sort(pick.begin(), pick.end());
        rerank.assign(t.survivors, std::numeric_limits<float>::infinity());
        size_t reranked = 0;
        if (!pick.empty()) {
          const bool skip_by_tau = opts.enable_pruning && state.heap.full();
          reranked = RerankChainIndices(
              ctx, *run.chain, run.cand, t.scanned_mask, pick.data(),
              pick.size(), skip_by_tau, state.heap.threshold(), t.begin,
              rerank.data());
        }
        deliver_batch(t, run, rerank, reranked);
      }
      run.finals.clear();
    };

    // Landing point of every finished (or fully degraded) batch.
    auto finalize_batch = [&](BatchTask& task, ChainRun& run) {
      const bool dead = task.processed == 0 || task.last_machine < 0;
      if (!ctx.use_pq) {
        // Every block was lost before the first stage could run: the batch
        // contributes nothing and the client hears nothing.
        if (dead) return;
        deliver_batch(task, run, std::vector<float>(), 0);
        return;
      }
      // Quantized streams: park the batch at the chain's rank barrier; the
      // chain delivers once its last batch lands.
      if (!dead) run.finals.push_back(task);
      HARMONY_CHECK(run.open_batches > 0);
      if (--run.open_batches == 0) finalize_chain(run);
    };

    // The hop into task.next_block was lost (dead machine): remove the
    // block from the chain, book the loss, and route the baton to the next
    // surviving block — or finalize from wherever it last computed.
    auto fail_over = [&](BatchTask task, double detect_time) {
      ChainRun& run = runs[task.run];
      const size_t d = task.next_block;
      const bool first_loss = (run.loss.lost_mask & (uint64_t{1} << d)) == 0;
      run.loss.lost_mask |= uint64_t{1} << d;
      ledger.BookObservedBlockLoss(run.chain->query, first_loss,
                                   !run.cand.id.empty());
      task.remaining &= ~run.loss.lost_mask;
      if (task.remaining != 0) {
        size_t next = b_dim;
        if (opts.enable_pipeline && opts.dynamic_dim_order) {
          next = choose_block(run, task.remaining);
        } else {
          next = NextCyclicBlock(task.start_block, task.processed, b_dim,
                                 task.remaining);
        }
        HARMONY_CHECK(next < b_dim);
        const uint64_t bytes =
            task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
        task.next_block = next;
        task.ready = std::max(detect_time, slice_at(run, next));
        if (run.loss.attempts[next] > 1) {
          task.ready += retry_penalty(bytes, run.loss.attempts[next]);
        }
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[next].width();
        const size_t next_machine = block_machine_of(run, next);
        queued_ops[next_machine] += task.queued_ops;
        machine_queues[next_machine].pending.push(task);
        ++outstanding;
        return;
      }
      finalize_batch(task, run);
    };

    // Mid-run crash failover: the hop's target died under the baton. Try
    // the surviving replicas further down the stage's preference order
    // before giving the block up; re-pointing the chain's schedule means
    // sibling batches of the same chain reroute when they pop. Returns
    // false when no surviving replica's coin stream delivers (the caller
    // then degrades via fail_over, as an unreplicated run would).
    auto reroute_replica = [&](BatchTask task, ChainRun& run,
                               double detect_time) -> bool {
      const size_t d = task.next_block;
      std::vector<uint8_t> order;
      StageReplicaOrder(ctx, *run.chain, d, &order);
      const size_t cur = hop_replica(run, d);
      size_t pos = 0;
      while (pos < order.size() && order[pos] != cur) ++pos;
      for (size_t i = pos + 1; i < order.size(); ++i) {
        const size_t r2 = order[i];
        const size_t m2 =
            static_cast<size_t>(plan.ReplicaOf(run.shard, d, r2));
        if (machine_dead[m2] || faults.CrashedFromStart(m2)) continue;
        const uint32_t att = faults.DeliveryAttempts(
            ReplicaHopKey(run.chain->query, run.chain->shard, d, r2),
            max_retries);
        if (att == 0) {
          ledger.BookLostMessage(max_retries);
          continue;
        }
        run.loss.replica[d] = static_cast<uint8_t>(r2);
        run.loss.attempts[d] = att;
        ledger.BookFailover();
        const uint64_t bytes =
            task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
        task.ready = std::max(detect_time, slice_at(run, d));
        if (att > 1) task.ready += retry_penalty(bytes, att);
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[d].width();
        queued_ops[m2] += task.queued_ops;
        machine_queues[m2].pending.push(task);
        ++outstanding;
        return true;
      }
      return false;
    };

    // Seed every chain's pipeline batches.
    for (size_t r = 0; r < runs.size(); ++r, ++chain_seq) {
      ChainRun& run = runs[r];
      const size_t total = run.cand.id.size();
      const uint64_t all_blocks =
          b_dim == 64 ? ~uint64_t{0} : ((uint64_t{1} << b_dim) - 1);
      const uint64_t usable_blocks = all_blocks & ~run.loss.lost_mask;
      if (total == 0 || usable_blocks == 0) {
        // Nothing to scan (all candidates prewarmed), or every dimension
        // block of the shard is lost: still sequence the query so later
        // ranks may proceed. A fully lost shard degrades the query; the
        // rank-end sweep books it as shards_lost.
        QueryState& state = states[static_cast<size_t>(run.chain->query)];
        state.ready_time = std::max(state.ready_time, client.clock());
        if (total > 0) ledger.TagDegraded(run.chain->query);
        continue;
      }
      size_t batch_idx = 0;
      for (size_t begin = 0; begin < total; begin += batch_size, ++batch_idx) {
        BatchTask task;
        task.run = r;
        task.begin = begin;
        task.survivors = std::min(batch_size, total - begin);
        task.remaining = usable_blocks;
        task.processed = 0;
        // Static stagger: consecutive batches/chains start on different
        // machines; the dynamic choice refines later blocks as busy
        // counters evolve.
        task.start_block = InitialStartBlock(
            opts.enable_pipeline, chain_seq + batch_idx, b_dim, usable_blocks);
        if (opts.enable_pipeline && opts.dynamic_dim_order && b_dim > 1) {
          const size_t chosen = choose_block(run, task.remaining);
          if (chosen < b_dim) task.start_block = chosen;
        }
        task.next_block = task.start_block;
        task.rem_q_sq = run.cand.rem_q_total;
        task.ready = slice_at(run, task.next_block);
        if (faulty && run.loss.attempts[task.next_block] > 1) {
          task.ready += retry_penalty(
              plan.dim_ranges[task.next_block].width() * sizeof(float) +
                  kMsgHeaderBytes,
              run.loss.attempts[task.next_block]);
        }
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[task.next_block].width();
        const size_t seed_machine = block_machine_of(run, task.next_block);
        queued_ops[seed_machine] += task.queued_ops;
        machine_queues[seed_machine].pending.push(task);
        if (ctx.use_pq) ++run.open_batches;
        ++outstanding;
      }
    }

    while (outstanding > 0) {
      // Pick the machine that can start work earliest: its clock if it has
      // available work, else the arrival of its next pending input.
      size_t exec_machine = plan.num_machines;
      double exec_start = 0.0;
      for (size_t m = 0; m < plan.num_machines; ++m) {
        MachineQueue& mq = machine_queues[m];
        // next_free() == clock() without lanes; with lanes it is the
        // least-loaded lane, letting a node take overlapping work.
        mq.Promote(cluster->worker(m).next_free());
        double start;
        if (mq.available_count > 0) {
          start = cluster->worker(m).next_free();
        } else if (!mq.pending.empty()) {
          start =
              std::max(cluster->worker(m).next_free(), mq.pending.top().ready);
        } else {
          continue;
        }
        if (exec_machine == plan.num_machines || start < exec_start) {
          exec_machine = m;
          exec_start = start;
        }
      }
      HARMONY_CHECK(exec_machine < plan.num_machines);
      MachineQueue& mq = machine_queues[exec_machine];
      mq.Promote(exec_start);
      BatchTask task = mq.PopDeepest();
      --outstanding;
      queued_ops[exec_machine] -= std::min(queued_ops[exec_machine],
                                           task.queued_ops);
      ChainRun& run = runs[task.run];
      const QueryChain& chain = *run.chain;
      const size_t d = task.next_block;
      const DimRange range = plan.dim_ranges[d];
      const size_t machine = block_machine_of(run, d);
      SimNode& node = cluster->worker(machine);
      if (faulty) {
        const double hop_start =
            std::max({node.next_free(), task.ready, slice_at(run, d)});
        if (hop_start >= faults.CrashTime(machine)) {
          // The target died before this baton could execute: the sender
          // burns its full retry budget discovering that, then fails over
          // to a surviving replica of the same block — or, with none left
          // (or failover off), routes around the dead machine block-wise.
          machine_dead[machine] = 1;
          health.RecordDead(machine);
          const uint64_t bytes =
              task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
          const double detect =
              hop_start +
              cluster->network().RetryBackoffSeconds(bytes, max_retries);
          ledger.BookLostMessage(max_retries);
          if (routed && reps > 1 && opts.enable_failover &&
              reroute_replica(task, run, detect)) {
            continue;
          }
          fail_over(task, detect);
          continue;
        }
      }
      const double scan_ready = std::max(task.ready, slice_at(run, d));
      if (!node.has_lanes()) node.WaitUntil(scan_ready);

      const BlockScanParams scan = MakeStageScanParams(
          ctx, &backend, chain, run.cand, d, task.processed, task.rem_q_sq);

      BlockScanCounters counters;
      const size_t w = ScanBlock(
          scan, task.begin, task.survivors, run.cand.id.data(),
          run.cand.list.data(), run.cand.row.data(), run.cand.partial.data(),
          use_norms ? run.cand.rem_p_sq.data() : nullptr,
          ctx.use_pq ? run.cand.bound.data() : nullptr, &counters);
      task.scanned_mask |= uint64_t{1} << d;
      out.prune.dropped_after[task.processed > 0 ? task.processed - 1 : 0] +=
          counters.dropped;
      if (node.has_lanes()) {
        task.compute_done = node.ChargeComputeAt(scan_ready, counters.ops);
        // Batons and result sends leave via the node's serial (NIC) clock;
        // advance it to this stage's completion so they depart after it.
        node.WaitUntil(task.compute_done);
      } else {
        node.ChargeCompute(counters.ops);
        task.compute_done = node.clock();
      }

      // Hedged stage: the straggling primary's scan was also dispatched to
      // a second replica, which performs the identical work on its own
      // clock; the stage completes at the earlier of the two and the baton
      // departs from the winner. Ties go to the primary. The loser's ops
      // and bytes are still billed — hedging buys latency with work.
      size_t stage_machine = machine;
      const bool hedged = faulty && ((run.loss.hedge_mask >> d) & 1) != 0;
      size_t hedge_machine = machine;
      if (hedged) {
        const size_t hr = static_cast<size_t>(run.loss.hedge_replica[d]);
        hedge_machine = static_cast<size_t>(plan.ReplicaOf(run.shard, d, hr));
        SimNode& hnode = cluster->worker(hedge_machine);
        const double hedge_ready =
            std::max(task.ready, run.slice_arrival[d * reps + hr]);
        double hedge_done;
        if (hnode.has_lanes()) {
          hedge_done = hnode.ChargeComputeAt(hedge_ready, counters.ops);
        } else {
          hnode.WaitUntil(hedge_ready);
          hnode.ChargeCompute(counters.ops);
          hedge_done = hnode.clock();
        }
        if (hedge_done < task.compute_done) {
          task.compute_done = hedge_done;
          stage_machine = hedge_machine;
        }
      }

      // Streamed-bytes accounting (counters only — scheduling above never
      // reads it): per-survivor rows ungrouped, group-union billing with
      // shared scans on (SharedScanBiller). A hedged stage bills the same
      // rows again on the hedge replica.
      {
        const size_t chain_idx =
            static_cast<size_t>(run.chain - routing.chains.data());
        const uint64_t row_bytes =
            ctx.use_pq ? scan.code_size : range.width() * sizeof(float);
        const uint64_t scan_bytes = biller.StageBytes(
            chain_idx, chain, run.cand, d, task.begin, w, row_bytes);
        if (ctx.use_pq) {
          backend.ChargeCompressedBytes(machine, scan_bytes);
          if (hedged) backend.ChargeCompressedBytes(hedge_machine, scan_bytes);
        } else {
          backend.ChargeStreamedBytes(machine, scan_bytes);
          if (hedged) backend.ChargeStreamedBytes(hedge_machine, scan_bytes);
        }
      }
      if (use_norms) task.rem_q_sq -= run.cand.q_block_norm[d];
      task.remaining &= ~(uint64_t{1} << d);
      ++task.processed;
      task.survivors = w;
      task.last_machine = static_cast<int32_t>(stage_machine);
      if (faulty) {
        // Another batch of this chain may have discovered crash-lost blocks
        // in the meantime; don't hop into a known-dead block.
        task.remaining &= ~run.loss.lost_mask;
      }

      const uint64_t stage_footprint =
          w * BytesPerCandidate(use_norms) + range.width() * sizeof(float);
      run.machine_bytes[machine] =
          std::max(run.machine_bytes[machine], stage_footprint);
      if (hedged) {
        // The hedge replica held the same candidates and slice.
        run.machine_bytes[hedge_machine] =
            std::max(run.machine_bytes[hedge_machine], stage_footprint);
      }

      if (task.survivors > 0 && task.remaining != 0) {
        // Choose the next block: with load-aware dynamic ordering, the
        // least-busy remaining machine goes next — equivalently, blocks of
        // currently overloaded machines are deferred to late positions
        // where pruning has removed most candidates (Section 4.3, "Load
        // Balancing Strategies").
        size_t next = b_dim;  // sentinel
        if (opts.enable_pipeline && opts.dynamic_dim_order) {
          next = choose_block(run, task.remaining);
        } else {
          // Cyclic order from the stagger anchor.
          next = NextCyclicBlock(task.start_block, task.processed, b_dim,
                                 task.remaining);
        }
        HARMONY_CHECK(next < b_dim);
        task.next_block = next;
        const size_t next_machine = block_machine_of(run, next);
        const uint64_t bytes =
            task.survivors * BytesPerCandidate(use_norms) + kMsgHeaderBytes;
        // The baton departs from the stage winner (the hedge replica when
        // it beat the primary); on the lane path its serial (NIC) clock
        // must first catch up to the stage completion.
        SimNode& from = cluster->worker(static_cast<size_t>(task.last_machine));
        if (from.has_lanes()) from.WaitUntil(task.compute_done);
        double arrival =
            cluster->Transfer(&from, &cluster->worker(next_machine), bytes);
        if (faulty && run.loss.attempts[next] > 1) {
          arrival += retry_penalty(bytes, run.loss.attempts[next]);
        }
        task.ready = std::max(arrival, slice_at(run, next));
        task.seq = seq++;
        task.queued_ops = static_cast<uint64_t>(task.survivors) *
                          plan.dim_ranges[next].width();
        queued_ops[next_machine] += task.queued_ops;
        machine_queues[next_machine].pending.push(task);
        ++outstanding;
        continue;
      }

      // Final stage of this batch: local top-K selection before shipping —
      // only candidates that can still enter the query's top-K travel to
      // the client (vector-partitioned chains therefore return at most K
      // results, matching the paper's low vector-mode communication).
      finalize_batch(task, run);
    }

    // Any chain that got candidates but never landed a result at the client
    // lost its whole vector shard for this query.
    if (faulty) {
      for (const ChainRun& run : runs) {
        if (run.cand.id.empty() || run.contributed) continue;
        ledger.BookShardLost(run.chain->query);
      }
    }

    for (const ChainRun& run : runs) {
      for (size_t m = 0; m < plan.num_machines; ++m) {
        stage_bytes[m][static_cast<size_t>(run.chain->probe_rank)] +=
            run.machine_bytes[m];
      }
    }
    // Rank barrier: fold this rank's health observations so the next rank's
    // replica selection reads the same epoch state as the threaded engine.
    health.FoldEpoch();
    rank_begin = rank_end;
  }

  // Account the (parallel) merge work on the client and advance its clock
  // to the last merge completion so the makespan covers result assembly.
  client.ChargeCompute(total_merge_ops);
  client.WaitUntil(last_merge_done);

  // --- Collect results, per-query latencies and the peak-memory figure.
  out.faults = ledger.Snapshot();
  out.results.resize(num_queries);
  out.query_completion_seconds.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    out.results[q] = states[q].heap.SortedResults();
    out.query_completion_seconds[q] = states[q].ready_time;
  }
  for (size_t m = 0; m < plan.num_machines; ++m) {
    for (const uint64_t bytes : stage_bytes[m]) {
      out.peak_intermediate_bytes =
          std::max(out.peak_intermediate_bytes, bytes);
    }
  }
  for (const uint8_t flag : out.degraded) {
    if (flag != 0) ++out.faults.degraded_queries;
  }
  return out;
}

}  // namespace harmony
