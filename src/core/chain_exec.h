#ifndef HARMONY_CORE_CHAIN_EXEC_H_
#define HARMONY_CORE_CHAIN_EXEC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/block_scan.h"
#include "core/exec_plan.h"
#include "core/stats.h"
#include "net/network_model.h"
#include "util/topk.h"

namespace harmony {

/// \brief What the shared chain/group lifecycle needs from an execution
/// substrate. Two implementations: the SimCluster virtual-clock backend
/// (core/pipeline.cc) and the ThreadedCluster thread-pool backend
/// (core/coordinator.cc).
///
/// The threaded backend is push-driven: the lifecycle posts each stage
/// continuation into the owning node's mailbox (PostStage / PostHop). The
/// simulated backend is pull-driven — its discrete-event scheduler orders
/// stages by virtual time, so stage continuations carry explicit readiness
/// instead of posts; its PostStage/PostHop therefore execute the stage
/// inline on the caller (the only time-free reading of "post" a
/// virtual-clock substrate has).
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  /// Reads `query`'s current pruning threshold τ and heap fullness under
  /// the backend's synchronization (a mutex on the threaded cluster, direct
  /// access on the single-threaded simulator).
  virtual void ReadThreshold(int32_t query, float* tau, bool* heap_full) = 0;
  /// The ids prewarm already scored for `query` (candidate builds skip
  /// them). Stable for the whole batch: prewarm runs before any dispatch.
  virtual const std::unordered_set<int64_t>* PrewarmedIds(size_t query) = 0;
  /// Runs `fn` with exclusive access to `query`'s result heap (merges).
  virtual void WithQueryHeap(int32_t query,
                             const std::function<void(TopKHeap&)>& fn) = 0;
  /// Marks `query` degraded: its results were computed from an incomplete
  /// pipeline. Called by the FaultLedger, never by engine glue.
  virtual void TagDegraded(int32_t query) = 0;
  /// Bills `bytes` of row data streamed from memory by a scan on `machine`.
  virtual void ChargeStreamedBytes(size_t machine, uint64_t bytes) = 0;
  /// Bills `bytes` of quantized code-stream data streamed by a PQ-stream
  /// scan on `machine`: counted in the streamed total *and* in the separate
  /// compressed tally, so breakdowns can report how much of the traffic the
  /// codes carried (the rerank's float re-reads bill through
  /// ChargeStreamedBytes as ordinary row data).
  virtual void ChargeCompressedBytes(size_t machine, uint64_t bytes) = 0;
  /// Schedules a stage continuation on `machine`.
  virtual void PostStage(size_t machine, std::function<void()> stage) = 0;
  /// Fault-checked delivery of a chain hop onto `machine`: consults the
  /// fault plan via `msg_key` and returns the attempts used (1 = delivered
  /// first try, up to max_retries+1), or 0 when the message is permanently
  /// lost — `stage` is then discarded and the caller owns the failover.
  virtual uint32_t PostHop(size_t machine, uint64_t msg_key,
                           uint32_t max_retries,
                           std::function<void()> stage) = 0;
};

/// \brief The static routing + loss schedule of one chain: a pure function
/// of the fault plan (drop coins keyed by ReplicaHopKey, start-dead
/// machines), the replica rotation and the folded health state, so both
/// engines derive the identical schedule regardless of event or thread
/// ordering.
///
/// With replication, each hop walks the stage's replica preference order
/// (StageReplicaOrder): replicas that are dead or whose coin stream
/// exhausts the retry budget burn their budget into `wasted` and — with
/// failover enabled — the walk moves on; the first replica that delivers
/// records its attempts and index. A hop is lost only when every walked
/// replica failed. At R = 1 the walk degenerates to the historical
/// single-replica schedule, field for field.
struct ChainLossSchedule {
  /// Delivery attempts on the delivering replica per hop (index b_dim =
  /// final result hop); 0 = permanently lost past the retry budget.
  std::vector<uint32_t> attempts;
  /// Replica index that delivered each hop (0 on unreplicated plans; the
  /// value is meaningless for lost hops).
  std::vector<uint8_t> replica;
  /// Delivery attempts burned on replicas that failed before the delivering
  /// one (start-dead replicas and exhausted coin streams each burn
  /// max_retries + 1). Index b_dim counts the result hop's failed replicas
  /// *plus* the delivering/last one when the hop is lost.
  std::vector<uint32_t> wasted;
  uint64_t lost_mask = 0;  ///< Dimension blocks lost for this chain.
  bool result_hop_lost = false;
  /// Hops that failed over: replicas skipped before delivery, summed.
  uint32_t failovers = 0;
  /// Hedged hops: bit d set when stage d dispatches to a second replica
  /// because its primary is a straggler (hedge_after). Only delivered block
  /// hops hedge.
  uint64_t hedge_mask = 0;
  std::vector<uint8_t> hedge_replica;  ///< Per hop; valid where the bit is set.
  uint32_t hedges = 0;                 ///< popcount(hedge_mask).
};

/// Derives the chain's schedule from the context (fault oracle, replica
/// layout, folded health) and feeds the health tracker one observation per
/// walked replica (attempts / failures / deaths). Without faults the
/// schedule is all-delivered with the rotation-chosen replica per hop and
/// the health tracker is not touched. Call exactly once per chain per rank
/// in each engine — the health feed is part of the schedule contract.
ChainLossSchedule ComputeChainSchedule(const ExecContext& ctx,
                                       const QueryChain& chain);

/// \brief Single home of FaultStats accounting and degraded tagging: every
/// retry booking, lost-message charge, block/shard loss and degraded flag
/// in both engines flows through these methods (the grep-able invariant
/// that fault semantics cannot drift between engines). Thread-safe; the
/// simulator uses it single-threaded with identical arithmetic.
class FaultLedger {
 public:
  explicit FaultLedger(ExecBackend* backend) : backend_(backend) {}

  /// Books the resends of a delivered message (attempts > 1).
  void BookDelivery(uint32_t attempts) {
    if (attempts > 1) {
      retries_.fetch_add(attempts - 1, std::memory_order_relaxed);
      messages_dropped_.fetch_add(attempts - 1, std::memory_order_relaxed);
    }
  }
  /// Books a message whose every attempt died in flight.
  void BookLostMessage(uint32_t max_retries) {
    messages_dropped_.fetch_add(max_retries + 1, std::memory_order_relaxed);
  }
  /// Books a chain's static schedule once at dispatch: every replica-walk
  /// attempt wasted on failed replicas, each lost block, the chain's
  /// failovers and hedges; the query degrades iff a block was lost. The
  /// result hop's own budget is NOT booked here (call sites book it via
  /// BookLostMessage, as they always have) — only the surplus its failed
  /// replicas burned. At R = 1 this reproduces the historical
  /// lost-blocks-times-budget arithmetic bit for bit. Callers guard on the
  /// chain having candidates.
  void BookStaticChainLoss(const ChainLossSchedule& loss, int32_t query,
                           uint32_t max_retries);
  /// Books a hop rerouted to a surviving replica after its target failed
  /// mid-run (simulated engine; static failovers book via the schedule).
  void BookFailover() { failovers_.fetch_add(1, std::memory_order_relaxed); }
  /// Books a block loss observed mid-run (a baton ran into a crashed
  /// machine): counted once per (chain, block), degrading the query only
  /// when it had candidates.
  void BookObservedBlockLoss(int32_t query, bool first_loss, bool degrade) {
    if (first_loss) blocks_lost_.fetch_add(1, std::memory_order_relaxed);
    if (degrade) backend_->TagDegraded(query);
  }
  /// Books a baton hop lost past the retry budget mid-run (threaded solo
  /// path): the block is lost and the query degrades.
  void BookDynamicHopLoss(int32_t query, uint32_t max_retries) {
    BookLostMessage(max_retries);
    blocks_lost_.fetch_add(1, std::memory_order_relaxed);
    backend_->TagDegraded(query);
  }
  /// Books a whole vector shard lost for `query` (no chain result reached
  /// the client).
  void BookShardLost(int32_t query) {
    shards_lost_.fetch_add(1, std::memory_order_relaxed);
    backend_->TagDegraded(query);
  }
  /// Degrades `query` without a counter (e.g. a chain whose usable blocks
  /// were all statically lost still runs the query on its other shards).
  void TagDegraded(int32_t query) { backend_->TagDegraded(query); }

  /// The accumulated counters; degraded_queries is left to the engine glue
  /// (counted from its per-query flags after the batch completes).
  FaultStats Snapshot() const;

 private:
  ExecBackend* backend_;
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> blocks_lost_{0};
  std::atomic<uint64_t> shards_lost_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> hedged_{0};
};

/// Time one message's failed delivery attempts cost its critical path (one
/// ack timeout per resend, exponential backoff); books the resends on the
/// ledger. Returns 0 for first-try deliveries.
double RetryPenaltySeconds(const NetworkModel& net, FaultLedger* ledger,
                           uint64_t bytes, uint32_t attempts);

// --- Stage ordering (the paper's static stagger + Section 4.3 load-aware
// dynamic ordering), shared verbatim by both engines.

/// The static pipeline order of chain `chain_index`: blocks 0..B-1 rotated
/// by the chain's stagger anchor; the identity when the pipeline is off or
/// there is a single block.
std::vector<size_t> BuildStaticBlockOrder(size_t b_dim, size_t chain_index,
                                          bool enable_pipeline);

/// The stagger anchor of a pipeline batch, advanced past unusable blocks:
/// consecutive batches/chains start on different machines.
size_t InitialStartBlock(bool enable_pipeline, uint64_t stagger_seq,
                         size_t b_dim, uint64_t usable_blocks);

/// The next block in cyclic order from the stagger anchor; b_dim when
/// `remaining` has no usable block.
size_t NextCyclicBlock(size_t start_block, size_t processed, size_t b_dim,
                       uint64_t remaining);

/// Load-aware dynamic block choice: among the remaining blocks whose
/// machine is within a slack of the least-busy one, pick the
/// highest-energy block (pruning power); blocks of overloaded machines are
/// deferred to late positions where pruning has removed most candidates.
/// Under faults, machines whose crash has been observed are routed around
/// unless that would leave nothing. `block_machine` maps a block to the
/// machine that would run it (the schedule-chosen replica; MachineOf on
/// unreplicated plans); `machine_load` is the substrate's load metric
/// (executed busy time plus queued work on the simulator).
size_t ChooseLoadAwareBlock(const PartitionPlan& plan, size_t b_dim,
                            uint64_t remaining, bool faulty,
                            const uint8_t* machine_dead,
                            const std::function<size_t(size_t)>& block_machine,
                            const std::function<double(size_t)>& machine_load);

/// Fills the per-stage scan parameters for candidates of `chain` entering
/// block `d`: reads τ through the backend and gates pruning on the stage
/// having prior partials (`processed > 0`) and a full heap.
BlockScanParams MakeStageScanParams(const ExecContext& ctx,
                                    ExecBackend* backend,
                                    const QueryChain& chain,
                                    const ChainCandidates& cand, size_t d,
                                    size_t processed, float rem_q_sq);

/// \brief Exact float rerank of one chain's quantized survivors at the rank
/// barrier (docs/quantization.md), shared by both engines so their rerank
/// arithmetic is a single function. For candidates [begin, begin + count) it
/// accumulates the exact partial distance over the blocks set in
/// `scanned_mask` — ascending d, one row-kernel call per block, the same
/// accumulation sequence the float path performs stage by stage with the
/// pipeline off — and writes the heap-convention distance (negated IP) into
/// `dist_out[i - begin]`. Candidates not reranked get +infinity:
///  * Depth cap: when ExecOptions::rerank_depth is in (0, count), only the
///    best `rerank_depth` candidates by quantized score (ADC partial in
///    distance convention, ties by ascending id) are reranked — a recall /
///    cost knob that intentionally forfeits exactness (and bitwise parity
///    with the float path).
///  * τ-skip (`skip_by_tau`, callers gate it on enable_pruning && heap_full):
///    a candidate whose accumulated `bound` already proves it cannot beat
///    `tau` is skipped — sound because the L2 bound lower-bounds and the IP
///    bound upper-bounds the exact reranked value.
/// Returns the number of candidates actually reranked (what rerank byte/op
/// billing charges for).
size_t RerankChainCandidates(const ExecContext& ctx, const QueryChain& chain,
                             const ChainCandidates& cand,
                             uint64_t scanned_mask, size_t begin, size_t count,
                             bool skip_by_tau, float tau, float* dist_out);

/// \brief Rerank order: candidate `a` precedes `b` by quantized score (ADC
/// partial in distance convention — negated for IP — with ascending-id tie
/// break). Ids are unique within a chain, so the order is a pure function of
/// the candidate arrays; the depth cap in both engines picks by it.
bool RerankOrderLess(const ChainCandidates& cand, bool use_ip, size_t a,
                     size_t b);

/// \brief Explicit-pick core of RerankChainCandidates: reranks exactly the
/// candidates listed in `pick` (absolute indices into the SoA arrays),
/// subject to the same τ-skip, and writes each reranked distance to
/// `dist_out[idx - dist_base]`. The caller pre-fills `dist_out` with
/// +infinity and owns the pick policy — RerankChainCandidates derives its
/// pick from the depth cap over one contiguous range; the simulator derives
/// a chain-wide pick spanning its pipeline batches (each batch then reranks
/// its own picks over the blocks it actually scanned). Returns the number
/// reranked.
size_t RerankChainIndices(const ExecContext& ctx, const QueryChain& chain,
                          const ChainCandidates& cand, uint64_t scanned_mask,
                          const size_t* pick, size_t n_pick, bool skip_by_tau,
                          float tau, size_t dist_base, float* dist_out);

/// \brief The simulator's shared-scan byte accounting (never touches a
/// clock): with grouping on, each (query group, dim block, IVF list, 64-row
/// span) entry holds a bitmask of list rows the group has already billed; a
/// survivor bills its row only if no co-probing member billed it first. The
/// group total is therefore the *union* of member rows — the quantity the
/// threaded engine's ScanBlockGroup merge-walk streams once for the whole
/// group — and, row for row, at most what the per-query path bills. Keys
/// use the actual list-row index, not the post-compaction batch position,
/// so co-probing members agree on units regardless of how differently
/// their candidate arrays compacted. Keys are packed lossily (masked
/// fields); a collision only under-bills, deterministically.
class SharedScanBiller {
 public:
  explicit SharedScanBiller(const ExecContext& ctx);

  /// Bytes one stage streamed: survivors x row bytes ungrouped, the
  /// group-union increment with shared scans on. `begin`/`survivors` bound
  /// the stage's compacted candidate range.
  uint64_t StageBytes(size_t chain_index, const QueryChain& chain,
                      const ChainCandidates& cand, size_t d, size_t begin,
                      size_t survivors, uint64_t row_bytes);

 private:
  const ExecContext& ctx_;
  bool grouped_ = false;
  std::unordered_map<uint64_t, uint64_t> streamed_rows_;
};

// --- The chain/group lifecycle state machine (push-driven engines).

/// One chain's baton, passed machine-to-machine along its dimension stages.
/// The candidate set is built before dispatch (the client holds the routing
/// tables and can read every store in-process), so a chain whose first hop
/// is lost never half-executes.
struct ChainExecState {
  const QueryChain* chain = nullptr;
  std::vector<size_t> order;  ///< Surviving dimension blocks, pipeline order.
  size_t pos = 0;             ///< Current pipeline position.
  ChainCandidates cand;
  float rem_q_sq = 0.0f;
  /// Group-dispatch only: statically lost blocks are kept in the shared
  /// group order and skipped per member via this mask instead of being
  /// stripped (other members may still want them).
  uint64_t lost_mask = 0;
  /// Stages this member actually scanned; gates pruning exactly as the solo
  /// path's `pos > 0` does (the first scanned stage has no partials yet).
  size_t processed = 0;
  /// Dimension blocks this chain actually scanned (bit d set after block d's
  /// stage ran). PQ streams rerank exactly these blocks from the float
  /// slices — a pure function of the (deterministic) loss schedule, so both
  /// engines rerank identical block sets.
  uint64_t scanned_mask = 0;
  /// The chain's routing + loss schedule; empty vectors on unrouted runs
  /// (R = 1 with no faults), where every hop lands on replica 0.
  ChainLossSchedule sched;
};

/// The shared baton of one query group: chains that co-probe `shard` at the
/// same probe rank (BatchRouting::chain_group). The group walks one shared
/// block order and each stage runs as a single ScanBlockGroup on the owning
/// machine, streaming every row tile once for all members.
struct GroupExecState {
  int32_t shard = 0;
  std::vector<size_t> order;  ///< All b_dim blocks, shared pipeline order.
  size_t pos = 0;             ///< Current pipeline position.
  std::vector<std::shared_ptr<ChainExecState>> members;
};

/// \brief Drives chain and group lifecycles — candidate build, static loss
/// application, stage execution, baton/group hops, fault booking, result
/// merge — over an ExecBackend. The threaded engine is a thin shell around
/// this class; the simulated engine shares the per-stage pieces (loss
/// schedules, ordering, booking, scan parameters, billing) but schedules
/// stages from its own virtual-time event loop.
class ChainExecutor {
 public:
  /// `on_done` fires once per finished chain (solo) or group baton.
  ChainExecutor(const ExecContext& ctx, ExecBackend* backend,
                FaultLedger* ledger, std::function<void()> on_done)
      : ctx_(ctx),
        backend_(backend),
        ledger_(ledger),
        on_done_(std::move(on_done)) {}

  /// Optional per-query completion feed: fires once for every chain that
  /// reaches its end of life through the executor (after its results have
  /// merged), carrying the chain's query id. The engine glue counts chains
  /// per query against this feed to stamp per-query completion times —
  /// chains it skips itself (nothing to scan, unreachable) it books
  /// directly, so the sum is exact. Set before any dispatch.
  void set_on_chain_done(std::function<void(int32_t)> fn) {
    on_chain_done_ = std::move(fn);
  }

  /// Builds the chain's slice table, candidate arrays and (for IP with
  /// multiple blocks) norm columns. Returns null when the chain has nothing
  /// to scan (no posts needed). Shared by the solo and group dispatch paths
  /// so both modes scan exactly the same candidates.
  std::shared_ptr<ChainExecState> PrepareChain(const QueryChain& chain) const;

  /// Group-mode static loss: books the chain's lost blocks and sets its
  /// skip mask. Returns true when the chain is unreachable (every block
  /// lost, or the result hop can never be delivered) — booked as a lost
  /// shard; the caller skips the chain. No-op without faults.
  bool ApplyGroupMemberLoss(ChainExecState* task) const;

  /// Solo-mode order build: the chain's static stagger rotation, with
  /// statically lost blocks stripped (and booked). Returns true when the
  /// chain is unreachable — booked as a lost shard; the caller skips it.
  bool BuildSoloOrder(ChainExecState* task, size_t chain_index) const;

  /// The shared block order of a group, anchored at its first member's
  /// stagger — the rotation that chain would have used solo; later members
  /// inherit it, which is what lets the whole group ride one baton.
  std::vector<size_t> MakeGroupOrder(size_t anchor_chain_index) const;

  /// Posts the group's next stage at or after position `from`, skipping
  /// blocks no member still wants (statically lost for every member, or the
  /// members that wanted them ran out of candidates). Returns false when no
  /// stage remains. The baton is a plain PostStage: per-member hop delivery
  /// was decided statically at dispatch (lost_mask) and its retries are
  /// billed per member inside the stage, so the shared baton itself never
  /// drops.
  bool PostGroupStageFrom(std::shared_ptr<GroupExecState> group, size_t from);

  /// Posts the chain's first baton hop. The hop survives by construction
  /// (lost blocks were stripped by BuildSoloOrder); its retries are booked.
  void PostFirstSoloHop(const std::shared_ptr<ChainExecState>& task);

 private:
  /// Machine a group stage runs on: the stage primary's replica of block
  /// `d`. MachineOf on unreplicated plans; member-independent (the whole
  /// group shares one (probe_rank, shard) replica order).
  size_t GroupStageMachine(const GroupExecState& group, size_t d) const;

  void RunSoloStage(std::shared_ptr<ChainExecState> task);
  void RunGroupStage(std::shared_ptr<GroupExecState> group);
  void MergeChainResults(const ChainExecState& task);
  void FinishChain(const std::shared_ptr<ChainExecState>& task);
  void FinishGroup(const std::shared_ptr<GroupExecState>& group);

  const ExecContext& ctx_;
  ExecBackend* backend_;
  FaultLedger* ledger_;
  std::function<void()> on_done_;
  std::function<void(int32_t)> on_chain_done_;
};

}  // namespace harmony

#endif  // HARMONY_CORE_CHAIN_EXEC_H_
