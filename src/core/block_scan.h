#ifndef HARMONY_CORE_BLOCK_SCAN_H_
#define HARMONY_CORE_BLOCK_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "core/worker.h"
#include "index/distance.h"

namespace harmony {

/// \brief One dimension-block scan stage over a chain's candidate arrays,
/// shared by the simulated (core/pipeline.cc) and threaded
/// (core/coordinator.cc) engines.
///
/// The candidate set is a struct-of-arrays (id/list/row/partial[/rem_p_sq])
/// built in list-major order: candidates of the same IVF list are adjacent
/// with ascending local rows, and in-place compaction preserves that order.
/// The batched path exploits it by splitting survivors into runs of
/// consecutive rows of one list slice and handing each run to the batched
/// kernels (index/scan_kernel.h), which stream the rows contiguously. A
/// vectorized prune pass evaluates the CanPrune bounds into a survivor mask
/// before any row data is touched.
///
/// The reference path is the historical per-candidate loop (single-row
/// kernels, scalar prune, interleaved compaction). Both paths are bitwise
/// identical in results and op counts; ExecOptions::use_batched_kernels
/// selects between them and the regression tests assert the identity.
struct BlockScanParams {
  Metric metric = Metric::kL2;
  /// Carry and update the remaining-norm column (IP/cosine with > 1 block).
  bool use_norms = false;
  /// Evaluate the CanPrune bound this stage (threshold already tightened).
  bool prune = false;
  float tau = 0.0f;
  /// Remaining query norm of the *unprocessed* blocks (IP pruning bound).
  float rem_q_sq = 0.0f;
  /// Query slice of this dimension block.
  const float* q_slice = nullptr;
  size_t width = 0;
  /// Per chain-list slice table for this block, indexed by the candidates'
  /// `list` values; entries may be null only for lists with no candidates.
  const ListSlice* const* slices = nullptr;
  /// Batched kernel path (true) vs historical per-candidate reference.
  bool use_batched = true;
};

struct BlockScanCounters {
  uint64_t ops = 0;      ///< Scalar op charge (survivors x width).
  uint64_t dropped = 0;  ///< Candidates pruned before touching row data.
};

/// Scans candidates [begin, begin+count) of the SoA arrays in place,
/// compacting survivors to [begin, begin+w) with their accumulated
/// partials, and returns w. `rem_p_sq` may be null when
/// `params.use_norms` is false.
size_t ScanBlock(const BlockScanParams& params, size_t begin, size_t count,
                 int64_t* id, int32_t* list, int32_t* row, float* partial,
                 float* rem_p_sq, BlockScanCounters* counters);

/// Stage-wide parameters shared by every member of a query-group scan.
struct GroupScanParams {
  Metric metric = Metric::kL2;
  bool use_norms = false;
  size_t width = 0;
  /// Batched kernel path (true) vs historical per-candidate reference.
  bool use_batched = true;
};

/// One member of a query-group shared scan: the member's candidate arrays
/// (same list-major SoA layout and in-place compaction as ScanBlock) plus
/// its per-query prune state. `list` values are member-local probe indices;
/// `global_lists[li]` maps them to batch-wide IVF list ids, which is how
/// co-probing members are matched onto the same slice. `slices` is indexed
/// by the local values; co-probing members resolve to the *same* ListSlice.
struct GroupMemberScan {
  int64_t* id = nullptr;
  int32_t* list = nullptr;
  int32_t* row = nullptr;
  float* partial = nullptr;
  float* rem_p_sq = nullptr;  ///< May be null when !use_norms.
  size_t count = 0;
  const ListSlice* const* slices = nullptr;
  const int32_t* global_lists = nullptr;
  const float* q_slice = nullptr;
  bool prune = false;
  float tau = 0.0f;
  float rem_q_sq = 0.0f;
  /// Outputs: survivor count (arrays compacted to [0, survivors)) and the
  /// member's op/prune charges, identical to a solo ScanBlock of the same
  /// candidates.
  size_t survivors = 0;
  BlockScanCounters counters;
};

/// Shared scan of one dimension block across a query group. Per member the
/// arithmetic is bit-identical to a solo ScanBlock (prune-compact with the
/// member's own tau, then per-(query,row) accumulation in the frozen kernel
/// order); what the group shares is the *row streaming*: survivors of
/// co-probing members are merge-walked per IVF list into row-aligned tiles,
/// and each tile's rows are streamed from memory once for all members that
/// want them (query-tiled group kernels) instead of once per member.
/// Returns the bytes of row data streamed (each tile counted once).
uint64_t ScanBlockGroup(const GroupScanParams& params,
                        GroupMemberScan* members, size_t num_members);

}  // namespace harmony

#endif  // HARMONY_CORE_BLOCK_SCAN_H_
