#ifndef HARMONY_CORE_BLOCK_SCAN_H_
#define HARMONY_CORE_BLOCK_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "core/worker.h"
#include "index/distance.h"
#include "index/kernel_tune.h"

namespace harmony {

/// \brief One dimension-block scan stage over a chain's candidate arrays,
/// shared by the simulated (core/pipeline.cc) and threaded
/// (core/coordinator.cc) engines.
///
/// The candidate set is a struct-of-arrays (id/list/row/partial[/rem_p_sq])
/// built in list-major order: candidates of the same IVF list are adjacent
/// with ascending local rows, and in-place compaction preserves that order.
/// The batched path exploits it by splitting survivors into runs of
/// consecutive rows of one list slice and handing each run to the batched
/// kernels (index/scan_kernel.h), which stream the rows contiguously. A
/// vectorized prune pass evaluates the CanPrune bounds into a survivor mask
/// before any row data is touched.
///
/// The reference path is the historical per-candidate loop (single-row
/// kernels, scalar prune, interleaved compaction). Both paths are bitwise
/// identical in results and op counts; ExecOptions::use_batched_kernels
/// selects between them and the regression tests assert the identity.
struct BlockScanParams {
  Metric metric = Metric::kL2;
  /// Carry and update the remaining-norm column (IP/cosine with > 1 block).
  bool use_norms = false;
  /// Evaluate the CanPrune bound this stage (threshold already tightened).
  bool prune = false;
  float tau = 0.0f;
  /// Remaining query norm of the *unprocessed* blocks (IP pruning bound).
  float rem_q_sq = 0.0f;
  /// Query slice of this dimension block.
  const float* q_slice = nullptr;
  size_t width = 0;
  /// Per chain-list slice table for this block, indexed by the candidates'
  /// `list` values; entries may be null only for lists with no candidates.
  const ListSlice* const* slices = nullptr;
  /// Batched kernel path (true) vs historical per-candidate reference.
  bool use_batched = true;
  /// Quantized streams (docs/quantization.md), active when `luts` is
  /// non-null: the stage walks the slices' PQ code streams through the ADC
  /// kernel instead of float rows. Codes are coarse-centroid residuals, so
  /// the ADC table is per probed list: `luts[li]` is the table of (query,
  /// chain list li, this block), indexed like `slices`. `partial`
  /// accumulates the raw ADC estimate; the separate `bound` column
  /// accumulates the conservative prune bound (L2:
  /// (max(0, sqrt(adc) - err))², a lower bound on the true partial; IP:
  /// adc + ||q^(d)|| * err, an upper bound), and the prune masks test
  /// `bound` in place of `partial`.
  const float* const* luts = nullptr;  ///< Per chain-list ADC tables.
  size_t ksub = 0;               ///< Codewords per subspace (LUT row length).
  size_t code_size = 0;          ///< Bytes per code row (M_d).
  float q_band_norm = 0.0f;      ///< IP only: ||q^(d)||.
  /// Resolved kernel dispatch of the batch (ExecContext::DispatchFor): the
  /// tier table plus the tuned tile shape the shaped kernels run with. A
  /// null table (the default) selects the process-wide ScanKernels() table
  /// through the unshaped entries — the historical behavior. Shapes are
  /// bit-transparent, so this field moves throughput only.
  KernelDispatch dispatch;
};

struct BlockScanCounters {
  uint64_t ops = 0;      ///< Scalar op charge (survivors x width).
  uint64_t dropped = 0;  ///< Candidates pruned before touching row data.
};

/// Scans candidates [begin, begin+count) of the SoA arrays in place,
/// compacting survivors to [begin, begin+w) with their accumulated
/// partials, and returns w. `rem_p_sq` may be null when
/// `params.use_norms` is false; `bound` may be null when the stage is not
/// a PQ stream (params.lut == nullptr).
size_t ScanBlock(const BlockScanParams& params, size_t begin, size_t count,
                 int64_t* id, int32_t* list, int32_t* row, float* partial,
                 float* rem_p_sq, float* bound, BlockScanCounters* counters);

/// Stage-wide parameters shared by every member of a query-group scan.
struct GroupScanParams {
  Metric metric = Metric::kL2;
  bool use_norms = false;
  size_t width = 0;
  /// Batched kernel path (true) vs historical per-candidate reference.
  bool use_batched = true;
  /// Quantized streams: on when the members carry per-query LUTs. All
  /// members scan the same dimension block, so the code geometry is shared.
  bool use_pq = false;
  size_t ksub = 0;
  size_t code_size = 0;
  /// Resolved kernel dispatch (see BlockScanParams::dispatch). Null table =
  /// historical unshaped ScanKernels() path.
  KernelDispatch dispatch;
};

/// One member of a query-group shared scan: the member's candidate arrays
/// (same list-major SoA layout and in-place compaction as ScanBlock) plus
/// its per-query prune state. `list` values are member-local probe indices;
/// `global_lists[li]` maps them to batch-wide IVF list ids, which is how
/// co-probing members are matched onto the same slice. `slices` is indexed
/// by the local values; co-probing members resolve to the *same* ListSlice.
struct GroupMemberScan {
  int64_t* id = nullptr;
  int32_t* list = nullptr;
  int32_t* row = nullptr;
  float* partial = nullptr;
  float* rem_p_sq = nullptr;  ///< May be null when !use_norms.
  float* bound = nullptr;     ///< PQ prune-bound column; null when !use_pq.
  /// This member's per-local-list ADC tables (residual codes); null when
  /// !use_pq. Indexed by the member's `list` values, like `slices`.
  const float* const* luts = nullptr;
  float q_band_norm = 0.0f;    ///< IP only: ||q^(d)||.
  size_t count = 0;
  const ListSlice* const* slices = nullptr;
  const int32_t* global_lists = nullptr;
  const float* q_slice = nullptr;
  bool prune = false;
  float tau = 0.0f;
  float rem_q_sq = 0.0f;
  /// Outputs: survivor count (arrays compacted to [0, survivors)) and the
  /// member's op/prune charges, identical to a solo ScanBlock of the same
  /// candidates.
  size_t survivors = 0;
  BlockScanCounters counters;
};

/// Shared scan of one dimension block across a query group. Per member the
/// arithmetic is bit-identical to a solo ScanBlock (prune-compact with the
/// member's own tau, then per-(query,row) accumulation in the frozen kernel
/// order); what the group shares is the *row streaming*: survivors of
/// co-probing members are merge-walked per IVF list into row-aligned tiles,
/// and each tile's rows are streamed from memory once for all members that
/// want them (query-tiled group kernels) instead of once per member.
/// Returns the bytes of row data streamed, each tile counted once — float
/// row bytes normally, code-stream bytes under PQ streams.
uint64_t ScanBlockGroup(const GroupScanParams& params,
                        GroupMemberScan* members, size_t num_members);

}  // namespace harmony

#endif  // HARMONY_CORE_BLOCK_SCAN_H_
