#ifndef HARMONY_CORE_STATS_H_
#define HARMONY_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "util/topk.h"

namespace harmony {

/// \brief Per-dimension-slice pruning counters (Figure 2(a) / Table 3).
///
/// A candidate that computes pipeline positions 0..p and is then pruned
/// increments `dropped_after[p]`; the pruning ratio at position j is the
/// fraction of candidates that never computed slice j. With a fixed
/// dimension order, position j is physical slice j.
struct PruneStats {
  std::vector<uint64_t> dropped_after;  // size = num positions
  uint64_t total_candidates = 0;

  void Resize(size_t positions) { dropped_after.assign(positions, 0); }

  /// Fraction of candidates whose slice-`position` computation was skipped.
  double PruneRatioAt(size_t position) const;

  /// Mean of PruneRatioAt over all positions (Table 3's last column).
  double AveragePruneRatio() const;

  void Merge(const PruneStats& other);
};

/// \brief Index build timing, split into the paper's Figure 10 stages.
struct BuildStats {
  double train_seconds = 0.0;      // k-means ("Train")
  double add_seconds = 0.0;        // list assignment ("Add")
  double preassign_seconds = 0.0;  // distributing blocks ("Pre-assign")
};

/// \brief Memory accounting (Tables 4 and 5).
struct MemoryStats {
  /// Stored index bytes summed over machines (base blocks + ids + norms).
  uint64_t index_bytes_total = 0;
  /// Largest per-machine stored index footprint.
  uint64_t index_bytes_max_node = 0;
  /// Client-side bytes (centroids + prewarm cache + PQ codebooks).
  uint64_t client_bytes = 0;
  /// Quantized code-stream bytes stored across machines (PQ codes plus the
  /// per-row residual slack floats) — a subset of index_bytes_total; 0
  /// without use_pq_streams. Table 4's compressed column.
  uint64_t index_code_bytes = 0;
  /// Peak per-machine bytes during query execution (stored blocks plus the
  /// widest concurrent set of in-flight intermediates).
  uint64_t peak_query_bytes = 0;
  /// Pending delta-shard buffers (full rows + dim-sliced mirrors + id/list
  /// columns) awaiting the next merge; 0 between merges with no updates.
  uint64_t delta_bytes_total = 0;
  /// Live tombstone bitset over the global id space; 0 with no pending
  /// deletes (the bitset is dropped at each merge).
  uint64_t tombstone_bytes = 0;
};

/// \brief Degraded-mode accounting for a fault-injected run. All zeros on
/// the healthy path.
struct FaultStats {
  /// Delivery attempts that the fault plan dropped (including the attempts
  /// of messages that were eventually delivered after retries).
  uint64_t messages_dropped = 0;
  /// Successful resends: messages that needed more than one attempt.
  uint64_t retries = 0;
  /// (chain, dimension-block) units lost past the retry budget: those
  /// candidates completed with the block's distance contribution missing.
  uint64_t blocks_lost = 0;
  /// Chains whose every dimension block (or final result hop) was lost —
  /// the whole vector shard contributed nothing to that query.
  uint64_t shards_lost = 0;
  /// Hops rerouted to a surviving replica after their preferred replica
  /// failed (dead node or exhausted retry budget). Zero at R = 1.
  uint64_t failovers = 0;
  /// Stages dispatched to a second replica because the primary was a
  /// straggler (hedge_after). Zero with hedging off or at R = 1.
  uint64_t hedged = 0;
  /// Queries whose result set was computed from an incomplete pipeline.
  size_t degraded_queries = 0;
  /// Queries still in flight when the max_wall_seconds budget expired and
  /// ExecOptions::timeout_partial_results salvaged the batch: their result
  /// sets hold whatever had merged by the bail-out. Zero on every run that
  /// finished inside the budget. The serving layer's ServingStats counts its
  /// timeouts from per-query completion times; this counter is the engine's
  /// side of the same book, so the two can be cross-checked.
  size_t timed_out_queries = 0;
  /// recall@K over the degraded queries only; filled by callers that hold
  /// ground truth (CLI, benchmarks) — the engine itself reports -1.
  double degraded_recall = -1.0;

  bool any() const {
    return messages_dropped > 0 || retries > 0 || blocks_lost > 0 ||
           shards_lost > 0 || failovers > 0 || hedged > 0 ||
           degraded_queries > 0 || timed_out_queries > 0;
  }
  std::string ToString() const;
};

/// \brief Everything measured for one executed batch.
struct BatchStats {
  size_t num_queries = 0;
  double makespan_seconds = 0.0;
  double qps = 0.0;
  double plan_seconds = 0.0;  // cost-model + routing time (client, virtual)
  ClusterBreakdown breakdown;
  PruneStats prune;
  MemoryStats memory;
  FaultStats faults;
  /// Per-node virtual accounting, for imbalance and utilization reporting.
  std::vector<double> node_compute_seconds;
  std::vector<double> node_comm_seconds;
  std::vector<double> node_idle_seconds;
  double client_clock_seconds = 0.0;
  double client_compute_seconds = 0.0;
  /// Per-query virtual latency summary (all queries arrive at t=0).
  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;

  std::string ToString() const;
};

/// \brief Results plus stats for one batch.
struct BatchResult {
  std::vector<std::vector<Neighbor>> results;
  /// Per-query degraded flag: results[q] was computed from an incomplete
  /// pipeline (lost shard/block past the retry budget). All zeros on a
  /// healthy run.
  std::vector<uint8_t> degraded;
  /// Per-query virtual completion time (all queries arrive at t=0, so this
  /// is the query's simulated latency). The percentiles in `stats` are
  /// computed from exactly these values; the serving layer adds each
  /// query's dispatch time to get its end-to-end latency.
  std::vector<double> query_seconds;
  BatchStats stats;
};

/// \brief recall@K restricted to flagged (degraded) queries; -1 when no
/// query is flagged. Lets benchmarks fill FaultStats::degraded_recall.
double RecallOverFlagged(const std::vector<std::vector<Neighbor>>& results,
                         const std::vector<uint8_t>& flagged,
                         const std::vector<std::vector<Neighbor>>& ground_truth,
                         size_t k);

}  // namespace harmony

#endif  // HARMONY_CORE_STATS_H_
