#include "core/coordinator.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>

#include "core/block_scan.h"
#include "util/logging.h"
#include "util/timer.h"

namespace harmony {

namespace {

/// Mutable per-query state shared across threads; the mutex guards the heap
/// (pruning threshold reads and result merges).
struct SharedQueryState {
  explicit SharedQueryState(size_t k) : heap(k) {}
  std::mutex mu;
  TopKHeap heap;
  std::unordered_set<int64_t> prewarmed_ids;
  /// Set (never cleared) when any of the query's chains lost a block or a
  /// whole shard; read after the final barrier.
  std::atomic<bool> degraded{false};
};

/// The baton passed machine-to-machine along one chain's dimension stages.
/// The candidate set is built on the client before dispatch (the client
/// holds the routing tables and, in this in-process deployment, can read
/// every store), so a chain whose first hop is lost never half-executes.
struct ChainTask {
  const QueryChain* chain = nullptr;
  std::vector<size_t> order;  // surviving dimension blocks, pipeline order
  size_t pos = 0;             // current pipeline position
  std::vector<int64_t> id;
  std::vector<int32_t> list;
  std::vector<int32_t> row;
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
  float rem_q_sq = 0.0f;
  std::vector<float> q_block_norm;
  /// slices[d * lists + li]: the slice of chain list li in block d, on the
  /// machine owning grid block (shard, d). Built once per chain at dispatch
  /// (the client can read every store in this in-process deployment), so
  /// stages pay neither the lookup nor a per-stage allocation.
  std::vector<const ListSlice*> slices;
};

struct BatchContext {
  const IvfIndex* index = nullptr;
  const PartitionPlan* plan = nullptr;
  const std::vector<WorkerStore>* stores = nullptr;
  const DatasetView* queries = nullptr;
  const ExecOptions* opts = nullptr;
  bool use_ip = false;
  bool use_norms = false;
  ThreadedCluster* cluster = nullptr;
  std::vector<std::unique_ptr<SharedQueryState>> states;

  // Fault accounting; workers touch only the atomics.
  std::atomic<uint64_t> messages_dropped{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> blocks_lost{0};
  uint64_t shards_lost = 0;  // client thread only

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chains_remaining = 0;

  void ChainDone() {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--chains_remaining == 0) done_cv.notify_all();
  }
};

void RunStage(BatchContext* ctx, std::shared_ptr<ChainTask> task);

void FinishChain(BatchContext* ctx, const std::shared_ptr<ChainTask>& task) {
  SharedQueryState& state =
      *ctx->states[static_cast<size_t>(task->chain->query)];
  {
    std::lock_guard<std::mutex> lock(state.mu);
    for (size_t i = 0; i < task->id.size(); ++i) {
      const float dist = ctx->use_ip ? -task->partial[i] : task->partial[i];
      state.heap.Push(task->id[i], dist);
    }
  }
  ctx->ChainDone();
}

void RunStage(BatchContext* ctx, std::shared_ptr<ChainTask> task) {
  const PartitionPlan& plan = *ctx->plan;
  const QueryChain& chain = *task->chain;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t p = task->pos;
  const size_t d = task->order[p];
  const DimRange range = plan.dim_ranges[d];
  SharedQueryState& state = *ctx->states[static_cast<size_t>(chain.query)];
  const float* qrow = ctx->queries->Row(static_cast<size_t>(chain.query));
  const float* q_slice = qrow + range.begin;

  float tau;
  bool heap_full;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    tau = state.heap.threshold();
    heap_full = state.heap.full();
  }

  BlockScanParams scan;
  scan.metric = ctx->opts->metric;
  scan.use_norms = ctx->use_norms;
  scan.prune = ctx->opts->enable_pruning && p > 0 && heap_full;
  scan.tau = tau;
  scan.rem_q_sq = task->rem_q_sq;
  scan.q_slice = q_slice;
  scan.width = range.width();
  scan.slices = task->slices.data() + d * chain.lists.size();
  scan.use_batched = ctx->opts->use_batched_kernels;

  BlockScanCounters counters;
  const size_t w = ScanBlock(
      scan, 0, task->id.size(), task->id.data(), task->list.data(),
      task->row.data(), task->partial.data(),
      ctx->use_norms ? task->rem_p_sq.data() : nullptr, &counters);
  task->id.resize(w);
  task->list.resize(w);
  task->row.resize(w);
  task->partial.resize(w);
  if (ctx->use_norms) {
    task->rem_p_sq.resize(w);
    task->rem_q_sq -= task->q_block_norm[d];
  }

  // Hand the baton to the next surviving block. Statically lost blocks were
  // already removed from `order` at dispatch, so the PostMessage below
  // normally succeeds; the loop is the defensive failover for a hop lost
  // anyway (e.g. a plan whose crash schedule changed mid-run), which skips
  // the block and degrades the chain instead of dropping the baton.
  const uint32_t max_retries = static_cast<uint32_t>(ctx->opts->max_retries);
  size_t next = p + 1;
  while (next < task->order.size() && w > 0) {
    const size_t nd = task->order[next];
    const size_t next_machine =
        static_cast<size_t>(plan.MachineOf(shard, nd));
    task->pos = next;
    const uint32_t attempts = ctx->cluster->PostMessage(
        next_machine, ChainHopKey(chain.query, chain.shard, nd), max_retries,
        [ctx, task]() mutable { RunStage(ctx, task); });
    if (attempts > 0) {
      if (attempts > 1) {
        ctx->retries.fetch_add(attempts - 1, std::memory_order_relaxed);
        ctx->messages_dropped.fetch_add(attempts - 1,
                                        std::memory_order_relaxed);
      }
      return;
    }
    ctx->messages_dropped.fetch_add(max_retries + 1,
                                    std::memory_order_relaxed);
    ctx->blocks_lost.fetch_add(1, std::memory_order_relaxed);
    state.degraded.store(true, std::memory_order_relaxed);
    ++next;
  }
  FinishChain(ctx, task);
}

}  // namespace

Result<ThreadedOutput> ExecuteThreaded(const IvfIndex& index,
                                       const PartitionPlan& plan,
                                       const std::vector<WorkerStore>& stores,
                                       const PrewarmCache& prewarm,
                                       const BatchRouting& routing,
                                       const DatasetView& queries,
                                       const ExecOptions& opts) {
  if (stores.size() != plan.num_machines) {
    return Status::InvalidArgument("store count does not match plan");
  }
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  StopWatch watch;
  const size_t b_dim = plan.num_dim_blocks;
  if (b_dim > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  const size_t dim = index.dim();

  BatchContext ctx;
  ctx.index = &index;
  ctx.plan = &plan;
  ctx.stores = &stores;
  ctx.queries = &queries;
  ctx.opts = &opts;
  ctx.use_ip = opts.metric != Metric::kL2;
  ctx.use_norms = ctx.use_ip && b_dim > 1;
  ctx.states.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ctx.states.push_back(std::make_unique<SharedQueryState>(opts.k));
  }

  // Prewarm on the client (caller) thread.
  for (size_t q = 0; q < queries.size(); ++q) {
    SharedQueryState& state = *ctx.states[q];
    for (const int32_t list_id : routing.probe_lists[q]) {
      const auto& ids = prewarm.ListIds(static_cast<size_t>(list_id));
      const DatasetView vecs = prewarm.ListVectors(static_cast<size_t>(list_id));
      for (size_t i = 0; i < ids.size(); ++i) {
        if (opts.labels != nullptr &&
            (*opts.labels)[static_cast<size_t>(ids[i])] !=
                opts.allowed_label) {
          continue;
        }
        state.heap.Push(ids[i],
                        Distance(opts.metric, queries.Row(q), vecs.Row(i), dim));
        state.prewarmed_ids.insert(ids[i]);
      }
    }
  }

  // NOTE: `cluster` is declared after `ctx` on purpose — its destructor
  // joins the worker threads, so any task still referencing ctx finishes
  // before ctx is destroyed, including on the timeout early-return below.
  ThreadedCluster cluster(plan.num_machines, opts.faults);
  ctx.cluster = &cluster;
  const FaultInjector& faults = cluster.faults();
  const bool faulty = faults.enabled();
  const uint32_t max_retries = static_cast<uint32_t>(opts.max_retries);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.max_wall_seconds > 0.0 ? opts.max_wall_seconds : 0.0));

  // Vector pipeline: dispatch chains rank by rank with a barrier, so later
  // ranks inherit tightened thresholds — the Figure 5(a) staging.
  size_t begin = 0;
  size_t chain_index = 0;
  while (begin < routing.chains.size()) {
    size_t end = begin;
    const int32_t rank = routing.chains[begin].probe_rank;
    while (end < routing.chains.size() &&
           routing.chains[end].probe_rank == rank) {
      ++end;
    }
    if (opts.max_wall_seconds > 0.0 &&
        std::chrono::steady_clock::now() >= deadline) {
      // Budget already spent: don't start another rank.
      return Status::Timeout("threaded batch exceeded max_wall_seconds");
    }

    // Prepare the rank's chains on the client: candidate build, block
    // order, and the (static, pure-function-of-the-plan) loss schedule.
    std::vector<std::shared_ptr<ChainTask>> dispatch;
    dispatch.reserve(end - begin);
    for (size_t c = begin; c < end; ++c, ++chain_index) {
      auto task = std::make_shared<ChainTask>();
      task->chain = &routing.chains[c];
      const size_t shard = static_cast<size_t>(task->chain->shard);
      SharedQueryState& state =
          *ctx.states[static_cast<size_t>(task->chain->query)];

      task->order.resize(b_dim);
      std::iota(task->order.begin(), task->order.end(), 0);
      if (opts.enable_pipeline && b_dim > 1) {
        std::rotate(task->order.begin(),
                    task->order.begin() + (chain_index % b_dim),
                    task->order.end());
      }

      // Per-(block, list) slice lookups, hoisted out of the stages: built
      // once per chain instead of once per stage, and FindListSlice's keyed
      // block index makes each lookup O(1).
      const size_t num_lists = task->chain->lists.size();
      task->slices.assign(b_dim * num_lists, nullptr);
      for (size_t d = 0; d < b_dim; ++d) {
        const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
        for (size_t li = 0; li < num_lists; ++li) {
          task->slices[d * num_lists + li] =
              stores[machine].FindListSlice(shard, d, task->chain->lists[li]);
        }
      }

      // Candidate set from the (dimension-independent) row layout of the
      // chain's list slices; block 0's slices are as good as any.
      for (size_t li = 0; li < num_lists; ++li) {
        const ListSlice* ls = task->slices[li];
        if (ls == nullptr) continue;
        for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
          const int64_t gid = ls->slice.GlobalId(r);
          if (state.prewarmed_ids.count(gid) > 0) continue;
          if (opts.labels != nullptr &&
              (*opts.labels)[static_cast<size_t>(gid)] !=
                  opts.allowed_label) {
            continue;
          }
          task->id.push_back(gid);
          task->list.push_back(static_cast<int32_t>(li));
          task->row.push_back(static_cast<int32_t>(r));
          task->partial.push_back(0.0f);
          if (ctx.use_norms) task->rem_p_sq.push_back(ls->total_norm_sq[r]);
        }
      }
      if (task->id.empty()) continue;  // Nothing to scan; no posts needed.

      if (ctx.use_norms) {
        const float* qrow =
            queries.Row(static_cast<size_t>(task->chain->query));
        task->q_block_norm.resize(b_dim);
        for (size_t d = 0; d < b_dim; ++d) {
          const DimRange r = plan.dim_ranges[d];
          task->q_block_norm[d] =
              PartialIp(qrow + r.begin, qrow + r.begin, r.width());
          task->rem_q_sq += task->q_block_norm[d];
        }
      }

      if (faulty) {
        // Drop coins and start-dead machines are pure functions of the
        // plan, so the whole loss schedule of this chain is known here —
        // the same schedule ExecuteSimulated derives from the same keys.
        size_t kept = 0;
        uint64_t lost = 0;
        for (const size_t d : task->order) {
          const size_t m = static_cast<size_t>(plan.MachineOf(shard, d));
          if (faults.CrashedFromStart(m) ||
              faults.DeliveryAttempts(
                  ChainHopKey(task->chain->query, task->chain->shard, d),
                  max_retries) == 0) {
            lost |= uint64_t{1} << d;
            continue;
          }
          task->order[kept++] = d;
        }
        task->order.resize(kept);
        if (lost != 0) {
          const auto n_lost =
              static_cast<uint64_t>(std::popcount(lost));
          ctx.blocks_lost.fetch_add(n_lost, std::memory_order_relaxed);
          ctx.messages_dropped.fetch_add(n_lost * (max_retries + 1),
                                         std::memory_order_relaxed);
          state.degraded.store(true, std::memory_order_relaxed);
        }
        const bool result_hop_lost =
            faults.DeliveryAttempts(
                ChainHopKey(task->chain->query, task->chain->shard, b_dim),
                max_retries) == 0;
        if (task->order.empty() || result_hop_lost) {
          // The whole shard is unreachable for this query (every block
          // lost, or the result hop can never be delivered): the query
          // completes from its other chains.
          if (result_hop_lost) {
            ctx.messages_dropped.fetch_add(max_retries + 1,
                                           std::memory_order_relaxed);
          }
          ++ctx.shards_lost;
          state.degraded.store(true, std::memory_order_relaxed);
          continue;
        }
      }
      dispatch.push_back(std::move(task));
    }

    {
      std::lock_guard<std::mutex> lock(ctx.done_mu);
      ctx.chains_remaining = dispatch.size();
    }
    for (auto& task : dispatch) {
      const size_t shard = static_cast<size_t>(task->chain->shard);
      const size_t d0 = task->order[0];
      const size_t first_machine =
          static_cast<size_t>(plan.MachineOf(shard, d0));
      const uint32_t attempts = cluster.PostMessage(
          first_machine,
          ChainHopKey(task->chain->query, task->chain->shard, d0),
          max_retries, [ctx_ptr = &ctx, task]() mutable {
            RunStage(ctx_ptr, task);
          });
      // The first hop survives by construction (lost blocks were stripped
      // above); book its retries.
      HARMONY_CHECK_MSG(attempts > 0, "statically delivered hop was lost");
      if (attempts > 1) {
        ctx.retries.fetch_add(attempts - 1, std::memory_order_relaxed);
        ctx.messages_dropped.fetch_add(attempts - 1,
                                       std::memory_order_relaxed);
      }
    }
    if (!dispatch.empty()) {
      std::unique_lock<std::mutex> lock(ctx.done_mu);
      if (opts.max_wall_seconds > 0.0) {
        if (!ctx.done_cv.wait_until(lock, deadline, [&ctx] {
              return ctx.chains_remaining == 0;
            })) {
          return Status::Timeout(
              "threaded batch exceeded max_wall_seconds; a baton was "
              "lost or the cluster is wedged");
        }
      } else {
        ctx.done_cv.wait(lock, [&ctx] { return ctx.chains_remaining == 0; });
      }
    }
    begin = end;
  }

  ThreadedOutput out;
  out.results.resize(queries.size());
  out.degraded.assign(queries.size(), 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    out.results[q] = ctx.states[q]->heap.SortedResults();
    if (ctx.states[q]->degraded.load(std::memory_order_relaxed)) {
      out.degraded[q] = 1;
      ++out.faults.degraded_queries;
    }
  }
  out.faults.messages_dropped =
      ctx.messages_dropped.load(std::memory_order_relaxed);
  out.faults.retries = ctx.retries.load(std::memory_order_relaxed);
  out.faults.blocks_lost = ctx.blocks_lost.load(std::memory_order_relaxed);
  out.faults.shards_lost = ctx.shards_lost;
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace harmony
