#include "core/coordinator.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <unordered_map>

#include "core/block_scan.h"
#include "util/logging.h"
#include "util/timer.h"

namespace harmony {

namespace {

/// Mutable per-query state shared across threads; the mutex guards the heap
/// (pruning threshold reads and result merges).
struct SharedQueryState {
  explicit SharedQueryState(size_t k) : heap(k) {}
  std::mutex mu;
  TopKHeap heap;
  std::unordered_set<int64_t> prewarmed_ids;
  /// Set (never cleared) when any of the query's chains lost a block or a
  /// whole shard; read after the final barrier.
  std::atomic<bool> degraded{false};
};

/// The baton passed machine-to-machine along one chain's dimension stages.
/// The candidate set is built on the client before dispatch (the client
/// holds the routing tables and, in this in-process deployment, can read
/// every store), so a chain whose first hop is lost never half-executes.
struct ChainTask {
  const QueryChain* chain = nullptr;
  std::vector<size_t> order;  // surviving dimension blocks, pipeline order
  size_t pos = 0;             // current pipeline position
  std::vector<int64_t> id;
  std::vector<int32_t> list;
  std::vector<int32_t> row;
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
  float rem_q_sq = 0.0f;
  std::vector<float> q_block_norm;
  /// slices[d * lists + li]: the slice of chain list li in block d, on the
  /// machine owning grid block (shard, d). Built once per chain at dispatch
  /// (the client can read every store in this in-process deployment), so
  /// stages pay neither the lookup nor a per-stage allocation.
  std::vector<const ListSlice*> slices;
  /// --- Group-dispatch state (ExecOptions::shared_scans); unused on the
  /// solo path. Statically lost blocks are kept in the shared group order
  /// and skipped per member via this mask instead of being stripped.
  uint64_t lost_mask = 0;
  /// Stages this member actually scanned; gates pruning exactly as the solo
  /// path's `pos > 0` does (the first scanned stage has no partials yet).
  size_t processed = 0;
};

/// The shared baton of one query group: chains that co-probe `shard` at the
/// same probe rank (BatchRouting::chain_group). The group walks one shared
/// block order and each stage runs as a single ScanBlockGroup on the owning
/// machine, streaming every row tile once for all members.
struct GroupTask {
  int32_t shard = 0;
  std::vector<size_t> order;  // all b_dim blocks, shared pipeline order
  size_t pos = 0;             // current pipeline position
  std::vector<std::shared_ptr<ChainTask>> members;
};

struct BatchContext {
  const IvfIndex* index = nullptr;
  const PartitionPlan* plan = nullptr;
  const std::vector<WorkerStore>* stores = nullptr;
  const DatasetView* queries = nullptr;
  const ExecOptions* opts = nullptr;
  bool use_ip = false;
  bool use_norms = false;
  ThreadedCluster* cluster = nullptr;
  std::vector<std::unique_ptr<SharedQueryState>> states;

  // Fault accounting; workers touch only the atomics.
  std::atomic<uint64_t> messages_dropped{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> blocks_lost{0};
  uint64_t shards_lost = 0;  // client thread only

  std::atomic<uint64_t> bytes_streamed{0};

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chains_remaining = 0;

  void ChainDone() {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--chains_remaining == 0) done_cv.notify_all();
  }
};

void RunStage(BatchContext* ctx, std::shared_ptr<ChainTask> task);
void RunGroupStage(BatchContext* ctx, std::shared_ptr<GroupTask> group);

/// Builds the chain's slice table, candidate SoA arrays and (for IP with
/// multiple blocks) norm columns on the client thread. Returns false when
/// the chain has nothing to scan. Shared by the solo and group dispatch
/// paths so both modes scan exactly the same candidates.
bool BuildChainCandidates(BatchContext* ctx, const QueryChain& chain,
                          ChainTask* task) {
  const PartitionPlan& plan = *ctx->plan;
  const std::vector<WorkerStore>& stores = *ctx->stores;
  const ExecOptions& opts = *ctx->opts;
  const size_t b_dim = plan.num_dim_blocks;
  const size_t shard = static_cast<size_t>(chain.shard);
  SharedQueryState& state = *ctx->states[static_cast<size_t>(chain.query)];
  task->chain = &chain;

  // Per-(block, list) slice lookups, hoisted out of the stages: built once
  // per chain instead of once per stage, and FindListSlice's keyed block
  // index makes each lookup O(1).
  const size_t num_lists = chain.lists.size();
  task->slices.assign(b_dim * num_lists, nullptr);
  for (size_t d = 0; d < b_dim; ++d) {
    const size_t machine = static_cast<size_t>(plan.MachineOf(shard, d));
    for (size_t li = 0; li < num_lists; ++li) {
      task->slices[d * num_lists + li] =
          stores[machine].FindListSlice(shard, d, chain.lists[li]);
    }
  }

  // Candidate set from the (dimension-independent) row layout of the
  // chain's list slices; block 0's slices are as good as any.
  for (size_t li = 0; li < num_lists; ++li) {
    const ListSlice* ls = task->slices[li];
    if (ls == nullptr) continue;
    for (size_t r = 0; r < ls->slice.num_rows(); ++r) {
      const int64_t gid = ls->slice.GlobalId(r);
      if (state.prewarmed_ids.count(gid) > 0) continue;
      if (opts.labels != nullptr &&
          (*opts.labels)[static_cast<size_t>(gid)] != opts.allowed_label) {
        continue;
      }
      task->id.push_back(gid);
      task->list.push_back(static_cast<int32_t>(li));
      task->row.push_back(static_cast<int32_t>(r));
      task->partial.push_back(0.0f);
      if (ctx->use_norms) task->rem_p_sq.push_back(ls->total_norm_sq[r]);
    }
  }
  if (task->id.empty()) return false;

  if (ctx->use_norms) {
    const float* qrow = ctx->queries->Row(static_cast<size_t>(chain.query));
    task->q_block_norm.resize(b_dim);
    for (size_t d = 0; d < b_dim; ++d) {
      const DimRange r = plan.dim_ranges[d];
      task->q_block_norm[d] =
          PartialIp(qrow + r.begin, qrow + r.begin, r.width());
      task->rem_q_sq += task->q_block_norm[d];
    }
  }
  return true;
}

void MergeChainResults(BatchContext* ctx, const ChainTask& task) {
  SharedQueryState& state =
      *ctx->states[static_cast<size_t>(task.chain->query)];
  std::lock_guard<std::mutex> lock(state.mu);
  for (size_t i = 0; i < task.id.size(); ++i) {
    const float dist = ctx->use_ip ? -task.partial[i] : task.partial[i];
    state.heap.Push(task.id[i], dist);
  }
}

void FinishChain(BatchContext* ctx, const std::shared_ptr<ChainTask>& task) {
  MergeChainResults(ctx, *task);
  ctx->ChainDone();
}

void FinishGroup(BatchContext* ctx, const std::shared_ptr<GroupTask>& group) {
  for (const auto& member : group->members) MergeChainResults(ctx, *member);
  ctx->ChainDone();  // chains_remaining counts groups in group mode
}

/// Posts the group's next stage at or after position `from`, skipping
/// blocks no member still wants (statically lost for every member, or the
/// members that wanted them ran out of candidates). Returns false when no
/// stage remains. The baton is a plain Post: per-member hop delivery was
/// decided statically at dispatch (lost_mask) and its retries are billed
/// per member inside RunGroupStage, so the shared baton itself never drops.
bool PostGroupStageFrom(BatchContext* ctx, std::shared_ptr<GroupTask> group,
                        size_t from) {
  const PartitionPlan& plan = *ctx->plan;
  for (size_t next = from; next < group->order.size(); ++next) {
    const size_t nd = group->order[next];
    bool wanted = false;
    for (const auto& m : group->members) {
      if (!m->id.empty() && ((m->lost_mask >> nd) & 1) == 0) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;
    group->pos = next;
    const size_t machine = static_cast<size_t>(
        plan.MachineOf(static_cast<size_t>(group->shard), nd));
    ctx->cluster->Post(machine, [ctx, group = std::move(group)]() mutable {
      RunGroupStage(ctx, group);
    });
    return true;
  }
  return false;
}

void RunGroupStage(BatchContext* ctx, std::shared_ptr<GroupTask> group) {
  const PartitionPlan& plan = *ctx->plan;
  const size_t d = group->order[group->pos];
  const DimRange range = plan.dim_ranges[d];
  const FaultInjector& faults = ctx->cluster->faults();
  const bool faulty = faults.enabled();
  const uint32_t max_retries = static_cast<uint32_t>(ctx->opts->max_retries);

  GroupScanParams params;
  params.metric = ctx->opts->metric;
  params.use_norms = ctx->use_norms;
  params.width = range.width();
  params.use_batched = ctx->opts->use_batched_kernels;

  std::vector<GroupMemberScan> scans;
  std::vector<ChainTask*> active;
  scans.reserve(group->members.size());
  active.reserve(group->members.size());
  for (const auto& member : group->members) {
    if (member->id.empty()) continue;
    if ((member->lost_mask >> d) & 1) continue;
    const QueryChain& chain = *member->chain;
    if (faulty) {
      // Members ride one shared baton, but each member's hop keeps its own
      // (statically decided) retry bill so fault totals match the unshared
      // dispatch, where every chain posts this hop itself.
      const uint32_t attempts = faults.DeliveryAttempts(
          ChainHopKey(chain.query, chain.shard, d), max_retries);
      if (attempts > 1) {
        ctx->retries.fetch_add(attempts - 1, std::memory_order_relaxed);
        ctx->messages_dropped.fetch_add(attempts - 1,
                                        std::memory_order_relaxed);
      }
    }
    SharedQueryState& state = *ctx->states[static_cast<size_t>(chain.query)];
    float tau;
    bool heap_full;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      tau = state.heap.threshold();
      heap_full = state.heap.full();
    }
    GroupMemberScan ms;
    ms.id = member->id.data();
    ms.list = member->list.data();
    ms.row = member->row.data();
    ms.partial = member->partial.data();
    ms.rem_p_sq = ctx->use_norms ? member->rem_p_sq.data() : nullptr;
    ms.count = member->id.size();
    ms.slices = member->slices.data() + d * chain.lists.size();
    ms.global_lists = chain.lists.data();
    ms.q_slice =
        ctx->queries->Row(static_cast<size_t>(chain.query)) + range.begin;
    ms.prune =
        ctx->opts->enable_pruning && member->processed > 0 && heap_full;
    ms.tau = tau;
    ms.rem_q_sq = member->rem_q_sq;
    scans.push_back(ms);
    active.push_back(member.get());
  }

  if (!scans.empty()) {
    ctx->bytes_streamed.fetch_add(
        ScanBlockGroup(params, scans.data(), scans.size()),
        std::memory_order_relaxed);
    for (size_t i = 0; i < active.size(); ++i) {
      ChainTask* m = active[i];
      const size_t w = scans[i].survivors;
      m->id.resize(w);
      m->list.resize(w);
      m->row.resize(w);
      m->partial.resize(w);
      if (ctx->use_norms) {
        m->rem_p_sq.resize(w);
        m->rem_q_sq -= m->q_block_norm[d];
      }
      ++m->processed;
    }
  }

  const size_t next_from = group->pos + 1;
  if (!PostGroupStageFrom(ctx, group, next_from)) {
    FinishGroup(ctx, group);
  }
}

void RunStage(BatchContext* ctx, std::shared_ptr<ChainTask> task) {
  const PartitionPlan& plan = *ctx->plan;
  const QueryChain& chain = *task->chain;
  const size_t shard = static_cast<size_t>(chain.shard);
  const size_t p = task->pos;
  const size_t d = task->order[p];
  const DimRange range = plan.dim_ranges[d];
  SharedQueryState& state = *ctx->states[static_cast<size_t>(chain.query)];
  const float* qrow = ctx->queries->Row(static_cast<size_t>(chain.query));
  const float* q_slice = qrow + range.begin;

  float tau;
  bool heap_full;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    tau = state.heap.threshold();
    heap_full = state.heap.full();
  }

  BlockScanParams scan;
  scan.metric = ctx->opts->metric;
  scan.use_norms = ctx->use_norms;
  scan.prune = ctx->opts->enable_pruning && p > 0 && heap_full;
  scan.tau = tau;
  scan.rem_q_sq = task->rem_q_sq;
  scan.q_slice = q_slice;
  scan.width = range.width();
  scan.slices = task->slices.data() + d * chain.lists.size();
  scan.use_batched = ctx->opts->use_batched_kernels;

  BlockScanCounters counters;
  const size_t w = ScanBlock(
      scan, 0, task->id.size(), task->id.data(), task->list.data(),
      task->row.data(), task->partial.data(),
      ctx->use_norms ? task->rem_p_sq.data() : nullptr, &counters);
  task->id.resize(w);
  task->list.resize(w);
  task->row.resize(w);
  task->partial.resize(w);
  if (ctx->use_norms) {
    task->rem_p_sq.resize(w);
    task->rem_q_sq -= task->q_block_norm[d];
  }
  // Unshared scans stream every survivor's row for this chain alone.
  ctx->bytes_streamed.fetch_add(
      static_cast<uint64_t>(w) * range.width() * sizeof(float),
      std::memory_order_relaxed);

  // Hand the baton to the next surviving block. Statically lost blocks were
  // already removed from `order` at dispatch, so the PostMessage below
  // normally succeeds; the loop is the defensive failover for a hop lost
  // anyway (e.g. a plan whose crash schedule changed mid-run), which skips
  // the block and degrades the chain instead of dropping the baton.
  const uint32_t max_retries = static_cast<uint32_t>(ctx->opts->max_retries);
  size_t next = p + 1;
  while (next < task->order.size() && w > 0) {
    const size_t nd = task->order[next];
    const size_t next_machine =
        static_cast<size_t>(plan.MachineOf(shard, nd));
    task->pos = next;
    const uint32_t attempts = ctx->cluster->PostMessage(
        next_machine, ChainHopKey(chain.query, chain.shard, nd), max_retries,
        [ctx, task]() mutable { RunStage(ctx, task); });
    if (attempts > 0) {
      if (attempts > 1) {
        ctx->retries.fetch_add(attempts - 1, std::memory_order_relaxed);
        ctx->messages_dropped.fetch_add(attempts - 1,
                                        std::memory_order_relaxed);
      }
      return;
    }
    ctx->messages_dropped.fetch_add(max_retries + 1,
                                    std::memory_order_relaxed);
    ctx->blocks_lost.fetch_add(1, std::memory_order_relaxed);
    state.degraded.store(true, std::memory_order_relaxed);
    ++next;
  }
  FinishChain(ctx, task);
}

}  // namespace

Result<ThreadedOutput> ExecuteThreaded(const IvfIndex& index,
                                       const PartitionPlan& plan,
                                       const std::vector<WorkerStore>& stores,
                                       const PrewarmCache& prewarm,
                                       const BatchRouting& routing,
                                       const DatasetView& queries,
                                       const ExecOptions& opts) {
  if (stores.size() != plan.num_machines) {
    return Status::InvalidArgument("store count does not match plan");
  }
  if (queries.dim() != index.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  StopWatch watch;
  const size_t b_dim = plan.num_dim_blocks;
  if (b_dim > 64) {
    return Status::NotSupported("more than 64 dimension blocks");
  }
  const size_t dim = index.dim();

  BatchContext ctx;
  ctx.index = &index;
  ctx.plan = &plan;
  ctx.stores = &stores;
  ctx.queries = &queries;
  ctx.opts = &opts;
  ctx.use_ip = opts.metric != Metric::kL2;
  ctx.use_norms = ctx.use_ip && b_dim > 1;
  ctx.states.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ctx.states.push_back(std::make_unique<SharedQueryState>(opts.k));
  }

  // Prewarm on the client (caller) thread.
  for (size_t q = 0; q < queries.size(); ++q) {
    SharedQueryState& state = *ctx.states[q];
    for (const int32_t list_id : routing.probe_lists[q]) {
      const auto& ids = prewarm.ListIds(static_cast<size_t>(list_id));
      const DatasetView vecs = prewarm.ListVectors(static_cast<size_t>(list_id));
      for (size_t i = 0; i < ids.size(); ++i) {
        if (opts.labels != nullptr &&
            (*opts.labels)[static_cast<size_t>(ids[i])] !=
                opts.allowed_label) {
          continue;
        }
        state.heap.Push(ids[i],
                        Distance(opts.metric, queries.Row(q), vecs.Row(i), dim));
        state.prewarmed_ids.insert(ids[i]);
      }
    }
  }

  // NOTE: `cluster` is declared after `ctx` on purpose — its destructor
  // joins the worker threads, so any task still referencing ctx finishes
  // before ctx is destroyed, including on the timeout early-return below.
  ThreadedCluster cluster(plan.num_machines, opts.faults,
                          opts.threads_per_node);
  ctx.cluster = &cluster;
  const FaultInjector& faults = cluster.faults();
  const bool faulty = faults.enabled();
  const uint32_t max_retries = static_cast<uint32_t>(opts.max_retries);

  // Shared scans need the routing's query-group table (RouteBatch with
  // group_size > 1); without it every group would be a singleton anyway, so
  // fall back to the solo dispatch path.
  const bool group_mode = opts.shared_scans && routing.num_groups > 0 &&
                          routing.chain_group.size() == routing.chains.size();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.max_wall_seconds > 0.0 ? opts.max_wall_seconds : 0.0));

  // Vector pipeline: dispatch chains rank by rank with a barrier, so later
  // ranks inherit tightened thresholds — the Figure 5(a) staging.
  size_t begin = 0;
  size_t chain_index = 0;
  while (begin < routing.chains.size()) {
    size_t end = begin;
    const int32_t rank = routing.chains[begin].probe_rank;
    while (end < routing.chains.size() &&
           routing.chains[end].probe_rank == rank) {
      ++end;
    }
    if (opts.max_wall_seconds > 0.0 &&
        std::chrono::steady_clock::now() >= deadline) {
      // Budget already spent: don't start another rank.
      return Status::Timeout("threaded batch exceeded max_wall_seconds");
    }

    // Prepare the rank's chains on the client: candidate build, block
    // order / group assembly, and the (static, pure-function-of-the-plan)
    // loss schedule.
    std::vector<std::shared_ptr<ChainTask>> dispatch;
    std::vector<std::shared_ptr<GroupTask>> group_dispatch;
    std::unordered_map<int32_t, size_t> group_slot;  // group id -> index
    dispatch.reserve(end - begin);
    for (size_t c = begin; c < end; ++c, ++chain_index) {
      const QueryChain& chain = routing.chains[c];
      const size_t shard = static_cast<size_t>(chain.shard);
      SharedQueryState& state = *ctx.states[static_cast<size_t>(chain.query)];
      auto task = std::make_shared<ChainTask>();
      if (!BuildChainCandidates(&ctx, chain, task.get())) {
        continue;  // Nothing to scan; no posts needed.
      }

      if (group_mode) {
        // The shared group order keeps every block; this member's
        // statically lost blocks become a skip mask instead of being
        // stripped from the order (other members may still want them).
        if (faulty) {
          uint64_t lost = 0;
          for (size_t d = 0; d < b_dim; ++d) {
            const size_t m = static_cast<size_t>(plan.MachineOf(shard, d));
            if (faults.CrashedFromStart(m) ||
                faults.DeliveryAttempts(
                    ChainHopKey(chain.query, chain.shard, d),
                    max_retries) == 0) {
              lost |= uint64_t{1} << d;
            }
          }
          if (lost != 0) {
            const auto n_lost = static_cast<uint64_t>(std::popcount(lost));
            ctx.blocks_lost.fetch_add(n_lost, std::memory_order_relaxed);
            ctx.messages_dropped.fetch_add(n_lost * (max_retries + 1),
                                           std::memory_order_relaxed);
            state.degraded.store(true, std::memory_order_relaxed);
          }
          const bool result_hop_lost =
              faults.DeliveryAttempts(
                  ChainHopKey(chain.query, chain.shard, b_dim),
                  max_retries) == 0;
          if (static_cast<size_t>(std::popcount(lost)) == b_dim ||
              result_hop_lost) {
            if (result_hop_lost) {
              ctx.messages_dropped.fetch_add(max_retries + 1,
                                             std::memory_order_relaxed);
            }
            ++ctx.shards_lost;
            state.degraded.store(true, std::memory_order_relaxed);
            continue;
          }
          task->lost_mask = lost;
        }
        const int32_t gid = routing.chain_group[c];
        const auto [slot, inserted] =
            group_slot.try_emplace(gid, group_dispatch.size());
        if (inserted) {
          auto group = std::make_shared<GroupTask>();
          group->shard = chain.shard;
          group->order.resize(b_dim);
          std::iota(group->order.begin(), group->order.end(), 0);
          if (opts.enable_pipeline && b_dim > 1) {
            // Anchored at the first member's stagger — the rotation this
            // chain would have used solo; later members inherit it, which
            // is what lets the whole group ride one baton.
            std::rotate(group->order.begin(),
                        group->order.begin() + (chain_index % b_dim),
                        group->order.end());
          }
          group_dispatch.push_back(std::move(group));
        }
        group_dispatch[slot->second]->members.push_back(std::move(task));
        continue;
      }

      task->order.resize(b_dim);
      std::iota(task->order.begin(), task->order.end(), 0);
      if (opts.enable_pipeline && b_dim > 1) {
        std::rotate(task->order.begin(),
                    task->order.begin() + (chain_index % b_dim),
                    task->order.end());
      }

      if (faulty) {
        // Drop coins and start-dead machines are pure functions of the
        // plan, so the whole loss schedule of this chain is known here —
        // the same schedule ExecuteSimulated derives from the same keys.
        size_t kept = 0;
        uint64_t lost = 0;
        for (const size_t d : task->order) {
          const size_t m = static_cast<size_t>(plan.MachineOf(shard, d));
          if (faults.CrashedFromStart(m) ||
              faults.DeliveryAttempts(
                  ChainHopKey(task->chain->query, task->chain->shard, d),
                  max_retries) == 0) {
            lost |= uint64_t{1} << d;
            continue;
          }
          task->order[kept++] = d;
        }
        task->order.resize(kept);
        if (lost != 0) {
          const auto n_lost =
              static_cast<uint64_t>(std::popcount(lost));
          ctx.blocks_lost.fetch_add(n_lost, std::memory_order_relaxed);
          ctx.messages_dropped.fetch_add(n_lost * (max_retries + 1),
                                         std::memory_order_relaxed);
          state.degraded.store(true, std::memory_order_relaxed);
        }
        const bool result_hop_lost =
            faults.DeliveryAttempts(
                ChainHopKey(task->chain->query, task->chain->shard, b_dim),
                max_retries) == 0;
        if (task->order.empty() || result_hop_lost) {
          // The whole shard is unreachable for this query (every block
          // lost, or the result hop can never be delivered): the query
          // completes from its other chains.
          if (result_hop_lost) {
            ctx.messages_dropped.fetch_add(max_retries + 1,
                                           std::memory_order_relaxed);
          }
          ++ctx.shards_lost;
          state.degraded.store(true, std::memory_order_relaxed);
          continue;
        }
      }
      dispatch.push_back(std::move(task));
    }

    {
      std::lock_guard<std::mutex> lock(ctx.done_mu);
      // In group mode the done count is per group (one baton each).
      ctx.chains_remaining = group_mode ? group_dispatch.size()
                                        : dispatch.size();
    }
    for (auto& group : group_dispatch) {
      // Every member kept at least one block, so a runnable stage exists.
      const bool posted = PostGroupStageFrom(&ctx, group, 0);
      HARMONY_CHECK_MSG(posted, "query group with no runnable stage");
    }
    for (auto& task : dispatch) {
      const size_t shard = static_cast<size_t>(task->chain->shard);
      const size_t d0 = task->order[0];
      const size_t first_machine =
          static_cast<size_t>(plan.MachineOf(shard, d0));
      const uint32_t attempts = cluster.PostMessage(
          first_machine,
          ChainHopKey(task->chain->query, task->chain->shard, d0),
          max_retries, [ctx_ptr = &ctx, task]() mutable {
            RunStage(ctx_ptr, task);
          });
      // The first hop survives by construction (lost blocks were stripped
      // above); book its retries.
      HARMONY_CHECK_MSG(attempts > 0, "statically delivered hop was lost");
      if (attempts > 1) {
        ctx.retries.fetch_add(attempts - 1, std::memory_order_relaxed);
        ctx.messages_dropped.fetch_add(attempts - 1,
                                       std::memory_order_relaxed);
      }
    }
    if (!dispatch.empty() || !group_dispatch.empty()) {
      std::unique_lock<std::mutex> lock(ctx.done_mu);
      if (opts.max_wall_seconds > 0.0) {
        if (!ctx.done_cv.wait_until(lock, deadline, [&ctx] {
              return ctx.chains_remaining == 0;
            })) {
          return Status::Timeout(
              "threaded batch exceeded max_wall_seconds; a baton was "
              "lost or the cluster is wedged");
        }
      } else {
        ctx.done_cv.wait(lock, [&ctx] { return ctx.chains_remaining == 0; });
      }
    }
    begin = end;
  }

  ThreadedOutput out;
  out.results.resize(queries.size());
  out.degraded.assign(queries.size(), 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    out.results[q] = ctx.states[q]->heap.SortedResults();
    if (ctx.states[q]->degraded.load(std::memory_order_relaxed)) {
      out.degraded[q] = 1;
      ++out.faults.degraded_queries;
    }
  }
  out.faults.messages_dropped =
      ctx.messages_dropped.load(std::memory_order_relaxed);
  out.faults.retries = ctx.retries.load(std::memory_order_relaxed);
  out.faults.blocks_lost = ctx.blocks_lost.load(std::memory_order_relaxed);
  out.faults.shards_lost = ctx.shards_lost;
  out.bytes_streamed = ctx.bytes_streamed.load(std::memory_order_relaxed);
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace harmony
