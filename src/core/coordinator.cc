#include "core/coordinator.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/chain_exec.h"
#include "util/logging.h"
#include "util/timer.h"

namespace harmony {

namespace {

/// Mutable per-query state shared across threads; the mutex guards the heap
/// (pruning threshold reads and result merges).
struct SharedQueryState {
  explicit SharedQueryState(size_t k) : heap(k) {}
  std::mutex mu;
  TopKHeap heap;
  std::unordered_set<int64_t> prewarmed_ids;
  /// Set (never cleared) when any of the query's chains lost a block or a
  /// whole shard; read after the final barrier.
  std::atomic<bool> degraded{false};
  /// Chains of this query not yet finished (counted over the whole batch at
  /// dispatch-preparation time; chains the client skips are decremented by
  /// the client, executed chains by the worker that merges them last).
  std::atomic<int64_t> chains_left{0};
  /// Real completion stamp (seconds since batch start), written exactly once
  /// when chains_left hits zero; -1 while in flight. Atomic so the timeout
  /// salvage path can read it while workers still run.
  std::atomic<double> done_seconds{-1.0};
};

/// The ThreadedCluster execution substrate: stages are continuations posted
/// into per-node thread pools, heap access is mutex-guarded, degraded flags
/// are atomics, and streamed bytes accumulate on the cluster (real threads
/// have no per-machine virtual clock to bill).
class ThreadedBackend : public ExecBackend {
 public:
  explicit ThreadedBackend(
      std::vector<std::unique_ptr<SharedQueryState>>* states)
      : states_(states) {}

  /// The cluster is constructed after the backend (its destructor must join
  /// worker threads while the backend is still alive).
  void set_cluster(ThreadedCluster* cluster) { cluster_ = cluster; }

  void ReadThreshold(int32_t query, float* tau, bool* heap_full) override {
    SharedQueryState& state = *(*states_)[static_cast<size_t>(query)];
    std::lock_guard<std::mutex> lock(state.mu);
    *tau = state.heap.threshold();
    *heap_full = state.heap.full();
  }
  const std::unordered_set<int64_t>* PrewarmedIds(size_t query) override {
    return &(*states_)[query]->prewarmed_ids;
  }
  void WithQueryHeap(int32_t query,
                     const std::function<void(TopKHeap&)>& fn) override {
    SharedQueryState& state = *(*states_)[static_cast<size_t>(query)];
    std::lock_guard<std::mutex> lock(state.mu);
    fn(state.heap);
  }
  void TagDegraded(int32_t query) override {
    (*states_)[static_cast<size_t>(query)]->degraded.store(
        true, std::memory_order_relaxed);
  }
  void ChargeStreamedBytes(size_t /*machine*/, uint64_t bytes) override {
    cluster_->ChargeStreamedBytes(bytes);
  }
  void ChargeCompressedBytes(size_t /*machine*/, uint64_t bytes) override {
    cluster_->ChargeCompressedBytes(bytes);
  }
  void PostStage(size_t machine, std::function<void()> stage) override {
    cluster_->Post(machine, std::move(stage));
  }
  uint32_t PostHop(size_t machine, uint64_t msg_key, uint32_t max_retries,
                   std::function<void()> stage) override {
    return cluster_->PostMessage(machine, msg_key, max_retries,
                                 std::move(stage));
  }

 private:
  std::vector<std::unique_ptr<SharedQueryState>>* states_;
  ThreadedCluster* cluster_ = nullptr;
};

}  // namespace

Result<ThreadedOutput> ExecuteThreaded(const IvfIndex& index,
                                       const PartitionPlan& plan,
                                       const std::vector<WorkerStore>& stores,
                                       const PrewarmCache& prewarm,
                                       const BatchRouting& routing,
                                       const DatasetView& queries,
                                       const ExecOptions& opts) {
  if (stores.size() != plan.num_machines) {
    return Status::InvalidArgument("store count does not match plan");
  }
  StopWatch watch;
  HARMONY_ASSIGN_OR_RETURN(
      ExecContext ctx, MakeExecContext(index, plan, stores, prewarm, routing,
                                       queries, opts));
  const size_t b_dim = ctx.b_dim;

  std::vector<std::unique_ptr<SharedQueryState>> states;
  states.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    states.push_back(std::make_unique<SharedQueryState>(opts.k));
  }
  // Per-query chain budget: every routed chain is either executed through
  // the ChainExecutor (which then reports it via on_chain_done) or skipped
  // on the client (decremented inline below); either way the count reaches
  // zero exactly when the query's last chain is accounted for.
  for (const QueryChain& chain : routing.chains) {
    states[static_cast<size_t>(chain.query)]->chains_left.fetch_add(
        1, std::memory_order_relaxed);
  }
  ThreadedBackend backend(&states);

  // Node-health tracker: fed by the chain schedules on the client thread,
  // folded at each rank barrier so replica selection sees the same
  // quarantine flags in both engines. Declared before `cluster` (below) so
  // any worker still draining outlives nothing it touches.
  NodeHealthTracker health(plan.num_machines);
  ctx.AttachHealth(&health);

  // Prewarm on the client (caller) thread; real threads bill no virtual
  // ops, so the charge hook stays null.
  for (size_t q = 0; q < queries.size(); ++q) {
    SharedQueryState& state = *states[q];
    PrewarmQuery(ctx, q, &state.heap, &state.prewarmed_ids, {});
  }

  // Batch-completion tracker; `remaining` counts chains (solo dispatch) or
  // group batons (group dispatch).
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chains_remaining = 0;
  FaultLedger ledger(&backend);
  ChainExecutor executor(ctx, &backend, &ledger, [&] {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--chains_remaining == 0) done_cv.notify_all();
  });
  // Per-query completion stamp: the last accounted chain of a query writes
  // the query's real latency. `watch` is read concurrently from worker
  // threads; StopWatch only subtracts a const time_point, which is safe.
  const auto note_chain_done = [&states, &watch](int32_t query) {
    SharedQueryState& state = *states[static_cast<size_t>(query)];
    if (state.chains_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      state.done_seconds.store(watch.ElapsedSeconds(),
                               std::memory_order_release);
    }
  };
  executor.set_on_chain_done(note_chain_done);
  // Queries the router gave no chain at all complete at t=0 (prewarm only).
  for (size_t q = 0; q < queries.size(); ++q) {
    if (states[q]->chains_left.load(std::memory_order_relaxed) == 0) {
      states[q]->done_seconds.store(watch.ElapsedSeconds(),
                                    std::memory_order_relaxed);
    }
  }

  // NOTE: `cluster` is declared after every object its worker tasks touch
  // (ctx, states, backend, ledger, executor, the done tracker) on purpose —
  // its destructor joins the worker threads, so any task still running
  // finishes before those objects are destroyed, including on the timeout
  // early-returns below.
  ThreadedCluster cluster(plan.num_machines, opts.faults,
                          opts.threads_per_node);
  backend.set_cluster(&cluster);
  ctx.AttachFaults(&cluster.faults());

  // Builds the batch output. On the normal path every chain has finished and
  // nothing races; on the timeout-salvage path workers may still be running,
  // so every heap read goes through its state mutex and the completion
  // stamps/degraded flags are atomics — the snapshot is coherent per query.
  // Queries still in flight keep query_seconds = -1, are tagged degraded
  // (their heaps hold a partial merge) and counted as timed out.
  const auto assemble = [&](bool timed_out) -> ThreadedOutput {
    ThreadedOutput out;
    out.timed_out = timed_out;
    out.results.resize(queries.size());
    out.degraded.assign(queries.size(), 0);
    out.query_seconds.assign(queries.size(), -1.0);
    out.faults = ledger.Snapshot();
    for (size_t q = 0; q < queries.size(); ++q) {
      SharedQueryState& state = *states[q];
      {
        std::lock_guard<std::mutex> lock(state.mu);
        out.results[q] = state.heap.SortedResults();
      }
      out.query_seconds[q] =
          state.done_seconds.load(std::memory_order_acquire);
      if (state.degraded.load(std::memory_order_relaxed)) {
        out.degraded[q] = 1;
        ++out.faults.degraded_queries;
      }
      if (out.query_seconds[q] < 0.0) {
        ++out.faults.timed_out_queries;
        if (out.degraded[q] == 0) {
          out.degraded[q] = 1;
          ++out.faults.degraded_queries;
        }
      }
    }
    out.bytes_streamed = cluster.bytes_streamed();
    out.bytes_compressed = cluster.bytes_streamed_compressed();
    out.wall_seconds = watch.ElapsedSeconds();
    return out;
  };

  // Shared scans need the routing's query-group table (RouteBatch with
  // group_size > 1); without it every group would be a singleton anyway, so
  // fall back to the solo dispatch path.
  const bool group_mode = opts.shared_scans && routing.num_groups > 0 &&
                          routing.chain_group.size() == routing.chains.size();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.max_wall_seconds > 0.0 ? opts.max_wall_seconds : 0.0));

  // Vector pipeline: dispatch chains rank by rank with a barrier, so later
  // ranks inherit tightened thresholds — the Figure 5(a) staging.
  size_t begin = 0;
  size_t chain_index = 0;
  while (begin < routing.chains.size()) {
    size_t end = begin;
    const int32_t rank = routing.chains[begin].probe_rank;
    while (end < routing.chains.size() &&
           routing.chains[end].probe_rank == rank) {
      ++end;
    }
    if (opts.max_wall_seconds > 0.0 &&
        std::chrono::steady_clock::now() >= deadline) {
      // Budget already spent: don't start another rank.
      if (opts.timeout_partial_results) return assemble(/*timed_out=*/true);
      return Status::Timeout("threaded batch exceeded max_wall_seconds");
    }

    // Prepare the rank's chains on the client: candidate build, block
    // order / group assembly, and the (static, pure-function-of-the-plan)
    // loss schedule — all shared lifecycle code in core/chain_exec.cc.
    std::vector<std::shared_ptr<ChainExecState>> dispatch;
    std::vector<std::shared_ptr<GroupExecState>> group_dispatch;
    std::unordered_map<int32_t, size_t> group_slot;  // group id -> index
    dispatch.reserve(end - begin);
    for (size_t c = begin; c < end; ++c, ++chain_index) {
      const QueryChain& chain = routing.chains[c];
      std::shared_ptr<ChainExecState> task = executor.PrepareChain(chain);
      if (task == nullptr) {
        // Nothing to scan; no posts needed.
        note_chain_done(chain.query);
        continue;
      }

      if (group_mode) {
        if (executor.ApplyGroupMemberLoss(task.get())) {
          note_chain_done(chain.query);
          continue;
        }
        const int32_t gid = routing.chain_group[c];
        const auto [slot, inserted] =
            group_slot.try_emplace(gid, group_dispatch.size());
        if (inserted) {
          auto group = std::make_shared<GroupExecState>();
          group->shard = chain.shard;
          group->order = executor.MakeGroupOrder(chain_index);
          group_dispatch.push_back(std::move(group));
        }
        group_dispatch[slot->second]->members.push_back(std::move(task));
        continue;
      }

      if (executor.BuildSoloOrder(task.get(), chain_index)) {
        note_chain_done(chain.query);
        continue;
      }
      dispatch.push_back(std::move(task));
    }

    {
      std::lock_guard<std::mutex> lock(done_mu);
      // In group mode the done count is per group (one baton each).
      chains_remaining = group_mode ? group_dispatch.size() : dispatch.size();
    }
    for (auto& group : group_dispatch) {
      // Every member kept at least one block, so a runnable stage exists.
      const bool posted = executor.PostGroupStageFrom(group, 0);
      HARMONY_CHECK_MSG(posted, "query group with no runnable stage");
    }
    for (auto& task : dispatch) {
      executor.PostFirstSoloHop(task);
    }
    if (!dispatch.empty() || !group_dispatch.empty()) {
      std::unique_lock<std::mutex> lock(done_mu);
      if (opts.max_wall_seconds > 0.0) {
        if (!done_cv.wait_until(lock, deadline,
                                [&] { return chains_remaining == 0; })) {
          lock.unlock();
          if (opts.timeout_partial_results) return assemble(/*timed_out=*/true);
          return Status::Timeout(
              "threaded batch exceeded max_wall_seconds; a baton was "
              "lost or the cluster is wedged");
        }
      } else {
        done_cv.wait(lock, [&] { return chains_remaining == 0; });
      }
    }
    // Rank barrier: fold this rank's health observations so the next rank's
    // replica selection (client thread) reads a fixed epoch state.
    health.FoldEpoch();
    begin = end;
  }

  return assemble(/*timed_out=*/false);
}

}  // namespace harmony
