#ifndef HARMONY_CORE_EXEC_OPTIONS_H_
#define HARMONY_CORE_EXEC_OPTIONS_H_

#include <cstddef>

#include "index/kernel_tune.h"
#include "net/fault.h"

namespace harmony {

/// \brief Execution knobs shared verbatim between the engine facade
/// (HarmonyOptions) and the execution core (ExecOptions).
///
/// Both structs inherit this one, so every shared field exists exactly once
/// and flows through a single conversion point
/// (HarmonyEngine::MakeExecOptions) instead of being hand-mirrored field by
/// field in two places.
struct ExecTuning {
  /// Dimension-level early stop (Algorithm 1 lines 8-11).
  bool enable_pruning = true;
  /// Staggered dimension-block ordering + asynchronous execution; when off,
  /// every chain walks blocks 0..B-1 in physical order and the engine uses
  /// blocking communication.
  bool enable_pipeline = true;
  /// Client-cached sample vectors per IVF list for heap prewarming.
  size_t prewarm_per_list = 4;
  /// Candidates per pipeline batch. Each batch streams through the chain's
  /// dimension stages independently and its completed distances tighten the
  /// query's threshold before the next batch is checked — the granularity
  /// at which Algorithm 1's UpdatePruning refines τ.
  size_t pipeline_batch = 256;
  /// Query-group shared scans: chains that co-probe a shard at the same
  /// pipeline stage (BatchRouting::chain_group) stream each dimension
  /// block's rows once per group instead of once per query. In the threaded
  /// engine this picks the group dispatch path; in the simulated engine
  /// execution is unchanged (per-query accumulation order and tie-breaking
  /// are preserved, so results are byte-identical on/off) and only the
  /// bytes-streamed cost accounting switches to group-shared billing.
  bool shared_scans = true;
  /// Query-group size cap (chains per group); must match the group_size the
  /// routing was built with. 1 degenerates to per-query scans.
  size_t query_group_size = 4;
  /// Intra-node parallel execution: worker threads per node in the threaded
  /// engine, and compute lanes per simulated node (SimNode::ChargeComputeAt)
  /// in the simulator. 1 keeps both engines on their historical serial
  /// per-node path, bit-for-bit.
  size_t threads_per_node = 1;
  /// Fault injection + degraded-mode knobs (docs/failure_model.md). The
  /// simulated engine reads the fault plan from its SimCluster; `faults`
  /// here is what ExecuteThreaded builds its ThreadedCluster from. The
  /// default plan injects nothing and keeps both engines byte-identical to
  /// a fault-free build.
  FaultPlan faults;
  /// Resends of a lost message before its target block is declared lost and
  /// the query completes degraded.
  size_t max_retries = 2;
  /// Replicas per grid block (R). Each (vec_shard, dim_block) block is
  /// materialized on R distinct machines (PartitionPlan::ReplicaOf); the
  /// executor picks a primary per stage and — with enable_failover — retries
  /// a surviving replica when a hop exhausts its budget or its target is
  /// crashed, instead of degrading. 1 reproduces the unreplicated engines
  /// byte-for-byte.
  size_t replication_factor = 1;
  /// Hedged requests: when > 0 and R > 1, a stage whose primary replica's
  /// straggler factor (FaultPlan::delay_multiplier) is at least this
  /// multiple of nominal also dispatches to a second replica; the first
  /// response wins, the loser's bytes/ops are still billed. 0 disables.
  double hedge_after = 0.0;
  /// Fail over lost hops to surviving replicas (no effect at R = 1). Off,
  /// a lost hop degrades the query exactly as in the unreplicated engines.
  bool enable_failover = true;
  /// Hard wall-clock bail-out for the threaded coordinator: when > 0, a
  /// batch that fails to finish within this budget (e.g. a lost baton)
  /// returns Status kTimeout instead of blocking forever. 0 disables.
  double max_wall_seconds = 0.0;
  /// Quantized block streams: scan PQ code streams with per-query ADC
  /// lookup tables instead of float rows, prune on a conservative ADC bound,
  /// and exact-rerank the survivors from the float blocks at the rank
  /// barrier (docs/quantization.md). Requires the engine to have trained a
  /// GridQuantizer (HarmonyOptions::pq_subspaces > 0). Off reproduces the
  /// float path bit for bit.
  bool use_pq_streams = false;
  /// Rerank depth cap with use_pq_streams: 0 reranks every surviving
  /// candidate (exact — final results match the float path bitwise when the
  /// pipeline is off); > 0 reranks only the `rerank_depth` best survivors
  /// by quantized partial sum (cheaper, approximate).
  size_t rerank_depth = 0;
  /// When the max_wall_seconds budget expires, salvage the batch instead of
  /// failing it: ExecuteThreaded returns a valid ThreadedOutput whose
  /// `timed_out` flag is set, with whatever each query's heap held at the
  /// bail-out, real completion times for the queries that did finish
  /// (ThreadedOutput::query_seconds), and the unfinished queries tagged
  /// degraded and counted in FaultStats::timed_out_queries. Off keeps the
  /// historical Status kTimeout error return.
  bool timeout_partial_results = false;
  /// Kernel dispatch tier (docs/kernels.md, "dispatch tiers and
  /// autotuning"). kAuto resolves to the best tier the CPU supports at
  /// context-build time; an explicit tier pins it (and MakeExecContext
  /// rejects a tier the CPU lacks). Every tier above the portable cutover
  /// widths is bitwise-identical per (query, row) within its family, so
  /// this knob moves throughput, never results.
  KernelTier kernel_tier = KernelTier::kAuto;
  /// Optional pinned tune table (borrowed pointer; must outlive the batch).
  /// Null resolves the process-wide table for `kernel_tier` — measured once
  /// at first use, or the HARMONY_KERNEL_TUNE profile when set. Tests pin a
  /// table here to make the recorded shape independent of machine noise.
  const KernelTuneTable* kernel_tune = nullptr;
};

}  // namespace harmony

#endif  // HARMONY_CORE_EXEC_OPTIONS_H_
