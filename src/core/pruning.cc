#include "core/pruning.h"

#include <algorithm>

namespace harmony {

PrewarmCache PrewarmCache::Build(const IvfIndex& index, size_t per_list) {
  PrewarmCache cache;
  cache.per_list_ = per_list;
  cache.ids_.resize(index.nlist());
  cache.vectors_.resize(index.nlist());
  if (per_list == 0) return cache;
  for (size_t l = 0; l < index.nlist(); ++l) {
    const auto& ids = index.ListIds(l);
    const DatasetView vectors = index.ListVectors(l);
    const size_t take = std::min(per_list, ids.size());
    cache.vectors_[l] = Dataset(take, index.dim());
    for (size_t i = 0; i < take; ++i) {
      cache.ids_[l].push_back(ids[i]);
      const float* src = vectors.Row(i);
      std::copy(src, src + index.dim(), cache.vectors_[l].MutableRow(i));
    }
  }
  return cache;
}

size_t PrewarmCache::SizeBytes() const {
  size_t bytes = 0;
  for (size_t l = 0; l < vectors_.size(); ++l) {
    bytes += vectors_[l].SizeBytes() + ids_[l].size() * sizeof(int64_t);
  }
  return bytes;
}

}  // namespace harmony
