#ifndef HARMONY_CORE_PRUNING_H_
#define HARMONY_CORE_PRUNING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "index/distance.h"
#include "index/ivf_index.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Client-resident sample of full-dimension base vectors per IVF
/// list, used by Algorithm 1's PrewarmHeap stage: scoring a few real
/// candidates up front seeds every query's top-K heap with a *sound*
/// pruning threshold (any K true distances upper-bound the final K-th best
/// distance). The cache is part of the client's small space overhead.
class PrewarmCache {
 public:
  PrewarmCache() = default;

  /// Caches up to `per_list` vectors (the first ones by insertion order) of
  /// every list.
  static PrewarmCache Build(const IvfIndex& index, size_t per_list);

  size_t per_list() const { return per_list_; }

  /// Cached global ids for `list_id` (may be fewer than per_list()).
  const std::vector<int64_t>& ListIds(size_t list_id) const {
    return ids_[list_id];
  }
  /// Cached full-dimension vectors for `list_id`, row-aligned with ListIds.
  DatasetView ListVectors(size_t list_id) const {
    return vectors_[list_id].View();
  }

  size_t SizeBytes() const;

 private:
  size_t per_list_ = 0;
  std::vector<std::vector<int64_t>> ids_;
  std::vector<Dataset> vectors_;
};

/// \brief Per-query state shared across all of the query's chains: the
/// top-K heap (whose K-th distance is the pruning threshold τ) and the set
/// of ids already scored during prewarm (so chains skip them and the result
/// list stays duplicate-free).
struct QueryState {
  explicit QueryState(size_t k) : heap(k) {}

  TopKHeap heap;
  std::unordered_set<int64_t> prewarmed_ids;
  /// Virtual time of the last update to this query's heap; used to sequence
  /// the query's chains (vector pipeline causality).
  double ready_time = 0.0;
};

/// \brief Sound early-stop test given the accumulated partial state.
///
/// For L2, the partial squared distance is a monotone lower bound of the
/// full distance (Section 3.1), so `partial > tau` prunes. For inner
/// product / cosine, the unprocessed blocks' contribution is bounded by
/// Cauchy–Schwarz: ip_rest <= sqrt(rem_p_sq * rem_q_sq), giving the lower
/// bound `-(partial_ip + sqrt(...))` on the final (negated) distance.
inline bool CanPrune(Metric metric, float partial, float rem_p_sq,
                     float rem_q_sq, float tau) {
  if (metric == Metric::kL2) return partial > tau;
  const float rest =
      std::sqrt(std::max(0.0f, rem_p_sq) * std::max(0.0f, rem_q_sq));
  return -(partial + rest) > tau;
}

}  // namespace harmony

#endif  // HARMONY_CORE_PRUNING_H_
