#include "core/planner.h"

#include <limits>
#include <sstream>

namespace harmony {

const char* ModeToString(Mode mode) {
  switch (mode) {
    case Mode::kHarmony:
      return "harmony";
    case Mode::kHarmonyVector:
      return "harmony-vector";
    case Mode::kHarmonyDimension:
      return "harmony-dimension";
    case Mode::kSingleNode:
      return "single-node";
    case Mode::kAuncelLike:
      return "auncel-like";
  }
  return "?";
}

std::string PlanChoice::Explain() const {
  std::ostringstream os;
  os << "chosen " << plan.ToString() << " " << cost.ToString() << "\n";
  for (const auto& [shape, est] : candidates) {
    os << "  candidate B_vec=" << shape.first << " B_dim=" << shape.second
       << " -> " << est.ToString() << "\n";
  }
  return os.str();
}

Result<PlanChoice> QueryPlanner::Plan(const IvfIndex& index,
                                      size_t num_machines,
                                      const WorkloadProfile& profile,
                                      bool balanced_assignment,
                                      size_t force_b_vec,
                                      size_t force_b_dim) const {
  if (num_machines == 0) {
    return Status::InvalidArgument("num_machines must be > 0");
  }
  const ShardAssignment assignment =
      (mode_ == Mode::kAuncelLike || !balanced_assignment)
          ? ShardAssignment::kRoundRobin
          : ShardAssignment::kGreedyBalanced;

  // Expected per-list load for the load-aware greedy assignment: probe
  // frequency x candidate count (plus a floor so never-probed lists still
  // spread by size). Only Harmony itself is workload-adaptive; the pinned
  // baseline strategies distribute statically by list size, like the
  // traditional systems they model (Section 6.1).
  const bool workload_aware = mode_ == Mode::kHarmony && balanced_assignment;
  std::vector<double> weights(index.nlist(), 0.0);
  for (size_t l = 0; l < index.nlist(); ++l) {
    const double size = static_cast<double>(
        l < profile.list_sizes.size() ? profile.list_sizes[l] : 1);
    if (!workload_aware) {
      weights[l] = size;
      continue;
    }
    const double probes =
        l < profile.list_probe_count.size() ? profile.list_probe_count[l] : 0.0;
    weights[l] = 0.01 * size + probes * size;
  }

  auto pinned = [&](size_t b_vec,
                    size_t b_dim) -> Result<PlanChoice> {
    HARMONY_ASSIGN_OR_RETURN(
        PartitionPlan plan,
        BuildPartitionPlan(index, num_machines, b_vec, b_dim, assignment,
                           &weights));
    HARMONY_RETURN_NOT_OK(ApplyReplication(&plan, params_.replication));
    PlanChoice choice;
    choice.cost = EstimatePlanCost(plan, profile, params_);
    choice.plan = std::move(plan);
    return choice;
  };

  if (force_b_vec > 0 && force_b_dim > 0) {
    return pinned(force_b_vec, force_b_dim);
  }

  switch (mode_) {
    case Mode::kSingleNode:
      if (num_machines != 1) {
        return Status::InvalidArgument("single-node mode requires 1 machine");
      }
      return pinned(1, 1);
    case Mode::kHarmonyVector:
    case Mode::kAuncelLike:
      return pinned(num_machines, 1);
    case Mode::kHarmonyDimension:
      return pinned(1, std::min(num_machines, index.dim()));
    case Mode::kHarmony:
      break;
  }

  // Mode::kHarmony: enumerate every exact tiling and keep the cheapest.
  const auto shapes = EnumerateGridShapes(num_machines, index.dim());
  if (shapes.empty()) {
    return Status::Internal("no feasible grid shapes");
  }
  PlanChoice best;
  double best_cost = std::numeric_limits<double>::max();
  bool found = false;
  std::vector<std::pair<std::pair<size_t, size_t>, CostEstimate>> candidates;
  for (const auto& [b_vec, b_dim] : shapes) {
    Result<PartitionPlan> plan_result =
        BuildPartitionPlan(index, num_machines, b_vec, b_dim, assignment,
                           &weights);
    if (!plan_result.ok()) continue;  // e.g. B_vec > nlist
    PartitionPlan plan = std::move(plan_result).value();
    HARMONY_RETURN_NOT_OK(ApplyReplication(&plan, params_.replication));
    const CostEstimate est = EstimatePlanCost(plan, profile, params_);
    candidates.push_back({{b_vec, b_dim}, est});
    if (est.total_cost < best_cost) {
      best_cost = est.total_cost;
      best.plan = std::move(plan);
      best.cost = est;
      found = true;
    }
  }
  if (!found) {
    return Status::Internal("planner could not build any feasible plan");
  }
  best.candidates = std::move(candidates);
  return best;
}

}  // namespace harmony
