#ifndef HARMONY_CORE_ENGINE_H_
#define HARMONY_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/exec_options.h"
#include "core/partition.h"
#include "core/pipeline.h"
#include "core/planner.h"
#include "core/pruning.h"
#include "core/stats.h"
#include "core/worker.h"
#include "index/ivf_index.h"
#include "index/pq.h"
#include "net/cluster.h"
#include "storage/dataset.h"
#include "storage/update_log.h"
#include "util/status.h"

namespace harmony {

/// \brief Engine configuration — the public surface of the paper's
/// `-NMachine`, `-Pruning_Configuration`, `-Indexing_Parameters`, `-α`,
/// and `-Mode` parameters (Section 5).
///
/// The execution knobs shared with the execution core (pruning, pipeline,
/// prewarm, batching, shared scans, intra-node parallelism, faults) live in
/// the ExecTuning base (core/exec_options.h) — one definition, forwarded to
/// ExecOptions wholesale by HarmonyEngine::MakeExecOptions. The fields
/// below exist only at the engine/planner layer.
struct HarmonyOptions : ExecTuning {
  Mode mode = Mode::kHarmony;
  size_t num_machines = 4;   // -NMachine
  IvfParams ivf;             // -Indexing_Parameters (nlist, metric, ...)
  NetworkParams net;
  MachineParams machine;
  double alpha = 4.0;        // -α: imbalance weight of the cost model
  /// Load-aware dynamic dimension ordering (with enable_pipeline, the
  /// Figure 9 "balanced load" ablation toggle).
  bool enable_balanced_load = true;
  /// Cost-model survival estimate for pruned stages (see CostModelParams).
  double pruning_survival = 0.5;
  /// Queries sampled when profiling a batch for the cost model (0 = all).
  size_t profile_sample = 64;
  /// Pins the grid shape (both must be > 0 and multiply to num_machines),
  /// bypassing the cost model's shape search. Used by ablation studies that
  /// must hold the partitioning fixed while toggling features.
  size_t force_b_vec = 0;
  size_t force_b_dim = 0;
  /// Grid-quantizer shape for PQ streams (docs/quantization.md); only read
  /// when the inherited ExecTuning::use_pq_streams is on. `pq_subspaces`
  /// is the subspace budget across the full dimension (apportioned to the
  /// plan's dim blocks by width), `pq_bits` the codeword width (1..8).
  size_t pq_subspaces = 16;
  size_t pq_bits = 8;
  size_t pq_train_iters = 25;
};

/// \brief The Harmony distributed ANNS engine (public API facade).
///
/// Lifecycle: construct -> Build(base) -> SearchBatch(...) any number of
/// times. Build trains the shared IVF clustering and pre-assigns grid
/// blocks to machines; SearchBatch profiles the batch, (re)plans the
/// partition grid when the cost model prefers a different shape, routes
/// queries, and executes the pruning pipeline on the simulated cluster.
class HarmonyEngine {
 public:
  explicit HarmonyEngine(HarmonyOptions options);

  const HarmonyOptions& options() const { return options_; }
  const IvfIndex& index() const { return index_; }
  bool built() const { return built_; }
  /// The currently-materialized partition plan (valid after Build()).
  const PartitionPlan& plan() const { return plan_; }
  const BuildStats& build_stats() const { return build_stats_; }
  /// Explanation of the last planning decision (candidate costs).
  const PlanChoice& last_plan_choice() const { return last_choice_; }
  /// Number of times SearchBatch re-materialized worker stores because the
  /// cost model switched grid shapes.
  size_t repartition_count() const { return repartition_count_; }

  /// Trains the clustering, adds the base vectors, and distributes grid
  /// blocks to machines using a uniform workload prior.
  Status Build(const DatasetView& base);

  /// Like Build() but adopts an already-trained-and-populated index instead
  /// of training one. This is how the evaluation gives every strategy the
  /// *same* clustering (Section 6.1) without retraining per engine; the
  /// index's IvfParams must match this engine's metric.
  Status BuildFromIndex(IvfIndex index);

  /// Inserts new vectors into a built engine: each is assigned to its
  /// nearest IVF list and its dimension slices are appended to the owning
  /// machines' grid blocks in place — no re-partitioning, mirroring how a
  /// deployment absorbs online writes between re-balancing epochs. This is
  /// the legacy bulk-load path and requires a pristine id space: once
  /// epoch-versioned updates have run (InsertVectors / a merge after
  /// deletes), it refuses rather than risk reusing a global id.
  Status AddVectors(const DatasetView& vectors);

  /// Epoch-versioned insert (docs/mutability.md): each vector is appended
  /// to the durable update log and buffered in its vector shard's
  /// DeltaShard; the next batch folds the delta into a fresh store epoch
  /// that both engines execute against. Frozen blocks and pinned goldens
  /// are untouched until MergeUpdates() rebuilds them.
  Status InsertVectors(const DatasetView& vectors);

  /// Epoch-versioned delete: logs a tombstone per id and sets its bit in
  /// the live bitset. Tombstoned rows keep being scanned (and billed) until
  /// the next merge, but are filtered at the rank barrier — they never
  /// survive exact rerank into a result heap. Deleting an id twice is a
  /// no-op; ids outside [0, IdSpan()) are rejected.
  Status DeleteVectors(const std::vector<int64_t>& ids);

  /// Rank-barrier merge: folds every pending insert into the IVF index,
  /// physically removes tombstoned rows, rebuilds the grid blocks (and
  /// re-trains PQ codes) on the current plan, refreshes the prewarm cache,
  /// bumps the store generation, and advances the update log's head marker.
  /// In-flight chains keep their pinned snapshot; new batches see the new
  /// generation.
  Status MergeUpdates();

  /// Recovery path: replays `log`'s retained records (ascending seq) into
  /// this freshly built engine. Insert records must carry the exact next
  /// global id — the log was written by a sequential assigner — so a replayed
  /// engine reproduces the original's id space bit-for-bit.
  Status ReplayUpdates(const UpdateLog& log);

  /// Acquires the store view the next batch would execute against: the
  /// current epoch's worker stores (delta folded in) plus the tombstone
  /// bitset and generation. Folds a dirty delta first, so acquiring is what
  /// materializes a new epoch.
  Result<StoreSnapshot> AcquireSnapshot();

  /// One past the largest global id ever assigned (dense after Build, then
  /// advanced by inserts; deletes never shrink it — ids are not reused).
  size_t IdSpan() const { return next_id_; }

  /// Store generation: 0 after Build, +1 per MergeUpdates().
  uint64_t generation() const { return generation_; }

  /// The engine's durable update log (head/tail markers, pending records).
  const UpdateLog& update_log() const { return update_log_; }

  /// Pending (unmerged) delta rows across all vector shards.
  size_t pending_delta_rows() const;

  /// Live tombstones (set bits) awaiting the next merge.
  size_t tombstone_count() const { return tombstone_count_; }

  /// Whether `id` is currently tombstoned (always false after a merge —
  /// the row is physically gone and the bitset cleared). Out-of-range ids
  /// report false.
  bool IsDeleted(int64_t id) const {
    if (id < 0) return false;
    const size_t word = static_cast<size_t>(id) >> 6;
    if (word >= tombstones_.size()) return false;
    return (tombstones_[word] >> (static_cast<size_t>(id) & 63)) & 1u;
  }

  /// Attaches one int32 metadata label per stored vector (e.g. a tenant,
  /// category, or shard-group id). Must be called after Build()/AddVectors
  /// with exactly index().num_vectors() entries; enables filtered search.
  Status SetLabels(std::vector<int32_t> labels);

  /// Replaces the engine's fault plan for subsequent SearchBatch* calls —
  /// the CLI/bench hook for sweeping drop rates without rebuilding.
  void SetFaultPlan(FaultPlan faults) { options_.faults = std::move(faults); }

  /// Replaces the parallelism knobs for subsequent SearchBatch* calls — the
  /// bench hook for sweeping threads-per-node and group size without
  /// rebuilding the index (same pattern as SetFaultPlan).
  void SetParallelism(size_t threads_per_node, size_t query_group_size,
                      bool shared_scans) {
    options_.threads_per_node = threads_per_node;
    options_.query_group_size = query_group_size;
    options_.shared_scans = shared_scans;
  }

  /// Executes one query batch on the simulated cluster and returns exact
  /// (pruning-safe) approximate-search results plus full instrumentation.
  Result<BatchResult> SearchBatch(const DatasetView& queries, size_t k,
                                  size_t nprobe);

  /// Like SearchBatch but skips the per-batch cost-model re-plan and runs on
  /// the currently-materialized partition plan, mirroring how
  /// SearchBatchThreaded already behaves. This is the serving-path entry
  /// point: a continuous frontend dispatches many tiny groups (<=
  /// kMaxQueryGroup queries), and profiling + re-planning per group would
  /// both dominate latency and let a 4-query sample repartition the whole
  /// grid. Re-balancing epochs belong to an offline SearchBatch call.
  Result<BatchResult> SearchBatchPinned(const DatasetView& queries, size_t k,
                                        size_t nprobe);

  /// Like SearchBatch but only vectors whose label equals `allowed_label`
  /// qualify — the predicate is pushed down into the first dimension stage
  /// on each machine, so filtered-out vectors cost one label test instead
  /// of a distance computation. Requires SetLabels().
  Result<BatchResult> SearchBatchFiltered(const DatasetView& queries, size_t k,
                                          size_t nprobe,
                                          int32_t allowed_label);

  /// Executes the same pipeline on real threads (functional validation /
  /// actual in-process deployment). Uses the current plan without
  /// re-planning.
  Result<ThreadedOutput> SearchBatchThreaded(const DatasetView& queries,
                                             size_t k, size_t nprobe);

  /// Filtered search on the threaded engine: the SearchBatchFiltered
  /// predicate push-down combined with real-thread execution (and, under a
  /// fault plan, degraded mode). Requires SetLabels().
  Result<ThreadedOutput> SearchBatchThreadedFiltered(const DatasetView& queries,
                                                     size_t k, size_t nprobe,
                                                     int32_t allowed_label);

  /// Index storage accounting (Table 4): stored bytes per machine etc.
  MemoryStats IndexMemory() const;

  /// The engine's grid quantizer; trained() only when use_pq_streams is on
  /// and the current plan's stores carry code streams.
  const GridQuantizer& quantizer() const { return quantizer_; }

  /// The exact ExecOptions SearchBatchThreaded would execute with — the
  /// socket backend builds its remote batches from the same tuning so its
  /// results are bit-comparable to the in-process engines.
  ExecOptions BuildExecOptions(size_t k, size_t nprobe) const {
    return MakeExecOptions(k, nprobe);
  }

  /// Client-side prewarm cache (shared by every execution backend).
  const PrewarmCache& prewarm_cache() const { return prewarm_; }

 private:
  Status FinishBuild();
  Status Repartition(const PartitionPlan& plan);
  /// Folds the pending delta rows into a fresh copy-on-write epoch of the
  /// worker stores (shared_ptr so in-flight batches pin their generation
  /// while a merge swaps underneath). No-op when the delta is clean; a
  /// delta that emptied (all rows merged) drops the epoch so execution
  /// falls back to the frozen stores byte-identically.
  Status RefreshEpoch();
  /// The store vector batches execute against: the materialized epoch when
  /// one exists, otherwise the frozen stores.
  const std::vector<WorkerStore>& ActiveStores() const {
    return epoch_stores_ != nullptr ? *epoch_stores_ : stores_;
  }
  /// Re-buckets pending delta rows after a plan change: list→shard
  /// ownership and dim ranges may both have moved, so rows are re-appended
  /// from their retained full-dim originals.
  void RedistributeDelta(const PartitionPlan& plan);
  Status InsertOne(const float* row, int64_t gid);
  /// (Re)trains the grid quantizer for `plan`'s dim ranges on a
  /// deterministic sample of the stored vectors; clears it when
  /// use_pq_streams is off. Runs before worker stores materialize so they
  /// can encode code streams.
  Status TrainQuantizer(const PartitionPlan& plan);
  ExecOptions MakeExecOptions(size_t k, size_t nprobe) const;
  Result<BatchResult> SearchInternal(const DatasetView& queries, size_t k,
                                     size_t nprobe, const ExecOptions* exec);
  /// The execution half of SearchInternal: routes and runs `queries` on the
  /// simulated cluster using the current plan, no re-planning.
  Result<BatchResult> ExecuteOnCurrentPlan(const DatasetView& queries,
                                           size_t k, size_t nprobe,
                                           const ExecOptions* exec,
                                           double plan_seconds);

  HarmonyOptions options_;
  size_t effective_machines_ = 1;
  IvfIndex index_;
  PartitionPlan plan_;
  std::vector<WorkerStore> stores_;
  bool stores_with_norms_ = false;
  GridQuantizer quantizer_;
  std::vector<int32_t> labels_;
  PrewarmCache prewarm_;
  PlanChoice last_choice_;
  BuildStats build_stats_;
  size_t repartition_count_ = 0;
  bool built_ = false;

  // Epoch-versioned mutable-store state (docs/mutability.md).
  UpdateLog update_log_;
  std::vector<DeltaShard> delta_;        // one per vector shard
  std::vector<uint64_t> tombstones_;     // bitset over [0, next_id_)
  size_t tombstone_count_ = 0;
  uint64_t generation_ = 0;
  /// Materialized epoch: frozen stores + delta rows folded in. Null when no
  /// delta is pending (execution reads stores_ directly — the updates-off
  /// byte-identity path). shared_ptr pins the payload for in-flight chains.
  std::shared_ptr<std::vector<WorkerStore>> epoch_stores_;
  bool epoch_dirty_ = false;
  size_t next_id_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_CORE_ENGINE_H_
