#include "core/stats.h"

#include <algorithm>
#include <sstream>

#include "workload/ground_truth.h"

namespace harmony {

std::string FaultStats::ToString() const {
  std::ostringstream os;
  os << "faults{dropped=" << messages_dropped << " retries=" << retries
     << " blocks_lost=" << blocks_lost << " shards_lost=" << shards_lost
     << " failovers=" << failovers << " hedged=" << hedged
     << " degraded_queries=" << degraded_queries;
  if (timed_out_queries > 0) os << " timed_out_queries=" << timed_out_queries;
  if (degraded_recall >= 0.0) os << " degraded_recall=" << degraded_recall;
  os << "}";
  return os.str();
}

double RecallOverFlagged(const std::vector<std::vector<Neighbor>>& results,
                         const std::vector<uint8_t>& flagged,
                         const std::vector<std::vector<Neighbor>>& ground_truth,
                         size_t k) {
  double total = 0.0;
  size_t n = 0;
  const size_t limit = std::min({results.size(), flagged.size(),
                                 ground_truth.size()});
  for (size_t q = 0; q < limit; ++q) {
    if (flagged[q] == 0) continue;
    total += RecallAtK(results[q], ground_truth[q], k);
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : -1.0;
}

double PruneStats::PruneRatioAt(size_t position) const {
  if (total_candidates == 0 || position >= dropped_after.size()) return 0.0;
  uint64_t skipped = 0;
  for (size_t p = 0; p < position; ++p) skipped += dropped_after[p];
  return static_cast<double>(skipped) / static_cast<double>(total_candidates);
}

double PruneStats::AveragePruneRatio() const {
  if (dropped_after.empty()) return 0.0;
  double total = 0.0;
  for (size_t j = 0; j < dropped_after.size(); ++j) total += PruneRatioAt(j);
  return total / static_cast<double>(dropped_after.size());
}

void PruneStats::Merge(const PruneStats& other) {
  if (dropped_after.size() < other.dropped_after.size()) {
    dropped_after.resize(other.dropped_after.size(), 0);
  }
  for (size_t p = 0; p < other.dropped_after.size(); ++p) {
    dropped_after[p] += other.dropped_after[p];
  }
  total_candidates += other.total_candidates;
}

std::string BatchStats::ToString() const {
  std::ostringstream os;
  os << "batch{q=" << num_queries << " qps=" << qps
     << " makespan=" << makespan_seconds * 1e3 << "ms "
     << breakdown.ToString() << " avg_prune=" << prune.AveragePruneRatio();
  if (faults.any()) os << " " << faults.ToString();
  os << "}";
  return os.str();
}

}  // namespace harmony
