#ifndef HARMONY_CORE_WORKER_H_
#define HARMONY_CORE_WORKER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/partition.h"
#include "index/ivf_index.h"
#include "storage/dim_slice.h"
#include "util/status.h"

namespace harmony {

class GridQuantizer;

/// \brief One IVF list's slice inside a grid block: the list's vectors
/// restricted to the block's dimension range, plus per-row squared norms of
/// the slice. The norms are the "intermediate results" the paper attributes
/// its ~2% dimension-partition space overhead to; Harmony uses them to make
/// inner-product/cosine pruning sound (Cauchy–Schwarz bound on the
/// remaining blocks' contribution).
struct ListSlice {
  DimSlicedMatrix slice;
  std::vector<float> block_norm_sq;  // per local row, ||p^(k)||²
  std::vector<float> total_norm_sq;  // per local row, ||p||² (full vector)
  /// Quantized block stream (docs/quantization.md): row r's PQ code is
  /// `codes[r * code_size .. r * code_size + code_size)`, encoding the row's
  /// coarse-centroid residual (p - c_list, IVFADC style) under the engine's
  /// GridQuantizer block for this dim range. Empty when the store was built
  /// without a quantizer; the float slice always remains (rerank reads
  /// exact rows from it).
  std::vector<uint8_t> codes;
  /// Per-row quantization slack ||r^(k) - decode(code_r)||, where r = p - c
  /// is the row's coarse-centroid residual (IVFADC encoding); this is what
  /// keeps ADC prune bounds conservative.
  std::vector<float> code_err;
  size_t code_size = 0;  ///< Bytes per code row; 0 when codes are absent.

  size_t SizeBytes() const {
    return slice.SizeBytes() +
           (block_norm_sq.size() + total_norm_sq.size() + code_err.size()) *
               sizeof(float) +
           codes.size();
  }
  /// Bytes of the quantized stream alone (codes + per-row slack floats).
  size_t CodeBytes() const {
    return codes.size() + code_err.size() * sizeof(float);
  }
};

/// \brief Everything one machine stores: the grid blocks (vector shard ×
/// dimension block) assigned to it by the partition plan.
class WorkerStore {
 public:
  struct Block {
    size_t vec_shard = 0;
    size_t dim_block = 0;
    DimRange range;
    std::unordered_map<int32_t, ListSlice> lists;  // IVF list id -> slice
  };

  int machine_id() const { return machine_id_; }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The slice of `list_id` within grid block (vec_shard, dim_block), or
  /// nullptr if this machine does not hold it.
  const ListSlice* FindListSlice(size_t vec_shard, size_t dim_block,
                                 int32_t list_id) const;

  /// Appends one vector's slice to the block (vec_shard, dim_block) for
  /// `list_id`, creating the list slice if this is the list's first row on
  /// this machine. `full_vector` is the complete vector; the store copies
  /// only its own column range (plus norms when `with_norms`, plus a PQ code
  /// row and its residual when `pq` is a trained quantizer — `centroid` must
  /// then be the list's full-dim coarse centroid, since code streams are
  /// IVFADC residual-encoded). The caller is responsible for this machine
  /// actually owning the block.
  Status AppendVector(size_t vec_shard, size_t dim_block, int32_t list_id,
                      DimRange range, const float* full_vector,
                      size_t full_dim, int64_t global_id, bool with_norms,
                      const GridQuantizer* pq = nullptr,
                      const float* centroid = nullptr);

  size_t SizeBytes() const;

  /// Bytes of quantized code streams stored on this machine (PQ codes +
  /// per-row residual slack) — a subset of SizeBytes(); 0 when the store was
  /// built without a quantizer.
  size_t CodeBytes() const;

 private:
  friend Result<std::vector<WorkerStore>> BuildWorkerStores(
      const IvfIndex& index, const PartitionPlan& plan, bool with_norms,
      const GridQuantizer* pq);

  static uint64_t BlockKey(size_t vec_shard, size_t dim_block) {
    return (static_cast<uint64_t>(vec_shard) << 32) |
           static_cast<uint64_t>(dim_block);
  }

  /// Registers blocks_[index] in the keyed lookup; called whenever a block
  /// is appended.
  void IndexBlock(size_t index);

  int machine_id_ = -1;
  std::vector<Block> blocks_;
  /// (vec_shard, dim_block) -> index into blocks_; FindListSlice and
  /// AppendVector are O(1) instead of a linear scan over the machine's
  /// grid blocks.
  std::unordered_map<uint64_t, size_t> block_index_;
};

/// \brief Uncompacted update buffer of one vector shard (docs/mutability.md):
/// rows inserted since the last merge, held in the same dim-sliced layout as
/// the shard's frozen grid blocks — `block_rows[d]` is the row-major buffer
/// of every delta row's columns in dimension block d — plus the full-dim
/// originals the next epoch fold and merge consume (slicing is a column
/// copy, so the full rows are the durable source of truth and survive a
/// re-slice when the plan's dim ranges change).
struct DeltaShard {
  std::vector<float> full_rows;  ///< Row-major, full dimension.
  std::vector<int64_t> ids;      ///< Global id per delta row.
  std::vector<int32_t> lists;    ///< Owning IVF list per delta row.
  /// Per dim block: the delta rows' columns restricted to the block's range,
  /// in the same append order as `ids` (the frozen blocks' slice layout).
  std::vector<std::vector<float>> block_rows;
  size_t dim = 0;

  size_t rows() const { return ids.size(); }

  /// Appends one full row, slicing it across `ranges` in place.
  void Append(const float* row, size_t full_dim, int64_t id, int32_t list,
              const std::vector<DimRange>& ranges);

  /// Rebuilds the dim-sliced mirrors from the retained full rows — called
  /// when a repartition changes the plan's dim ranges under pending deltas.
  void Reslice(const std::vector<DimRange>& ranges);

  void Clear();

  /// Buffered bytes: full rows + sliced mirrors + id/list columns.
  size_t SizeBytes() const;
};

/// \brief The store view one batch executes against, acquired once at plan
/// time: a generation's worker stores (frozen blocks with the generation's
/// delta rows folded in) plus the live tombstone bitset. Both engines replay
/// the identical generation because they share this one snapshot; the
/// shared_ptr pins the store payload for in-flight chains while a merge
/// swaps the engine's current generation underneath.
struct StoreSnapshot {
  std::shared_ptr<const std::vector<WorkerStore>> stores;
  const uint64_t* tombstones = nullptr;  ///< Bitset over global ids; may be null.
  size_t tombstone_words = 0;
  uint64_t generation = 0;
};

/// \brief Materializes per-machine storage for a plan: every grid block is
/// copied (sliced) to exactly one machine — the paper's "Pre-assign" build
/// stage. Total stored payload is NB × D floats with no duplication.
/// `with_norms` materializes the per-row norm columns needed for sound
/// inner-product pruning (only useful when the plan has > 1 dimension
/// block and the metric is IP/cosine). A trained `pq` additionally encodes
/// every block row into its quantized code stream (ListSlice::codes) with
/// per-row residual slack, enabling `use_pq_streams` execution.
Result<std::vector<WorkerStore>> BuildWorkerStores(
    const IvfIndex& index, const PartitionPlan& plan, bool with_norms,
    const GridQuantizer* pq = nullptr);

}  // namespace harmony

#endif  // HARMONY_CORE_WORKER_H_
