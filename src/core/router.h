#ifndef HARMONY_CORE_ROUTER_H_
#define HARMONY_CORE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "index/ivf_index.h"
#include "storage/dataset.h"

namespace harmony {

/// \brief One (query, vector shard) unit of work: the query must scan the
/// listed IVF lists, whose slices are spread across the shard's row of grid
/// blocks. Chains are the scheduling unit of both execution engines.
struct QueryChain {
  int32_t query = -1;
  int32_t shard = -1;
  /// Vector-pipeline stage: 0 for the shard holding the query's nearest
  /// probed list, 1 for the next, ... Chains run in ascending rank so later
  /// chains inherit tighter pruning thresholds (Figure 5(a)).
  int32_t probe_rank = 0;
  std::vector<int32_t> lists;
  int64_t candidate_count = 0;
};

/// \brief Routing of a whole batch (Section 4.2.2, Figure 4(b)): queries →
/// probed centroids → vector shards → chains.
struct BatchRouting {
  std::vector<std::vector<int32_t>> probe_lists;  // per query, by distance
  std::vector<QueryChain> chains;                 // sorted by (rank, query)
  size_t max_probe_rank = 0;
  int64_t total_candidates = 0;
  /// Query-group id per chain (dense, in order of first appearance). Chains
  /// of one group share (probe_rank, shard) — they co-probe the same
  /// shard's lists at the same pipeline stage, which is what makes their
  /// block scans shareable. Group size is capped by RouteBatch's
  /// `group_size`; with group_size <= 1 every chain is its own group.
  std::vector<int32_t> chain_group;
  size_t num_groups = 0;
};

/// \brief Routes every query: probes `nprobe` lists, groups them by vector
/// shard, and emits chains ordered by (probe_rank, query id). `group_size`
/// caps how many co-probing chains share a query group (shared scans); the
/// chain order itself never depends on it.
BatchRouting RouteBatch(const IvfIndex& index, const PartitionPlan& plan,
                        const DatasetView& queries, size_t nprobe,
                        size_t group_size = 1);

}  // namespace harmony

#endif  // HARMONY_CORE_ROUTER_H_
