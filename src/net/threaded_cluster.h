#ifndef HARMONY_NET_THREADED_CLUSTER_H_
#define HARMONY_NET_THREADED_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fault.h"
#include "util/threadpool.h"

namespace harmony {

/// \brief Real-thread cluster: one worker pool per node, each draining a
/// FIFO mailbox of tasks.
///
/// This is the functional twin of SimCluster: the execution engine can run
/// its per-node work as real concurrent tasks (validating that the
/// algorithm is correctly parallelizable and race-free) while SimCluster
/// provides deterministic cost accounting.
///
/// Ordering: tasks posted to a node *start* in FIFO order. With the default
/// one thread per node they also run one at a time, matching the ordering
/// guarantees an MPI rank would see. With `threads_per_node > 1`
/// (HarmonyOptions::threads_per_node) tasks of one node overlap; per-chain
/// ordering is then the caller's job — the coordinator preserves it
/// structurally, posting each chain's next hop only after the current stage
/// returns (baton passing), so no two stages of one chain are ever in
/// flight together.
class ThreadedCluster {
 public:
  explicit ThreadedCluster(size_t num_workers, FaultPlan faults = FaultPlan(),
                           size_t threads_per_node = 1);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  size_t num_workers() const { return nodes_.size(); }
  size_t threads_per_node() const { return threads_per_node_; }
  const FaultInjector& faults() const { return faults_; }

  /// Enqueues a task on worker `node`'s mailbox. Tasks on the same node
  /// start in FIFO order; with one thread per node they also complete in
  /// FIFO order.
  void Post(size_t node, std::function<void()> task);

  /// Fault-injected delivery at the mailbox boundary: consults the fault
  /// plan for node crashes and per-attempt message drops keyed by
  /// `msg_key`, so the loss schedule is a pure function of the plan (never
  /// of thread timing). Returns the attempts used (1 = delivered first
  /// try, up to max_retries+1), or 0 when the message is lost — the node is
  /// dead or every attempt dropped — in which case `task` is discarded and
  /// the caller owns the failover.
  uint32_t PostMessage(size_t node, uint64_t msg_key, uint32_t max_retries,
                       std::function<void()> task);

  /// Blocks until every mailbox is empty and every node is idle. Tasks may
  /// Post further tasks (batons); Barrier waits for those too.
  void Barrier();

  /// Books `bytes` of local row data streamed from memory by block scans.
  /// Pure accounting, cluster-wide: real threads have no per-machine virtual
  /// clock, so the counter is one atomic (the twin of SimNode's per-node
  /// ChargeStreamedBytes).
  void ChargeStreamedBytes(uint64_t bytes) {
    bytes_streamed_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t bytes_streamed() const {
    return bytes_streamed_.load(std::memory_order_relaxed);
  }

  /// Books quantized code-stream bytes (PQ streams): counted in the
  /// streamed total and the separate compressed tally, mirroring
  /// SimNode::ChargeCompressedBytes.
  void ChargeCompressedBytes(uint64_t bytes) {
    bytes_streamed_.fetch_add(bytes, std::memory_order_relaxed);
    bytes_compressed_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t bytes_streamed_compressed() const {
    return bytes_compressed_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector faults_;
  size_t threads_per_node_ = 1;
  std::vector<std::unique_ptr<ThreadPool>> nodes_;
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::atomic<int64_t> outstanding_{0};
  std::atomic<uint64_t> bytes_streamed_{0};
  std::atomic<uint64_t> bytes_compressed_{0};
};

}  // namespace harmony

#endif  // HARMONY_NET_THREADED_CLUSTER_H_
