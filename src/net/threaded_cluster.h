#ifndef HARMONY_NET_THREADED_CLUSTER_H_
#define HARMONY_NET_THREADED_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fault.h"

namespace harmony {

/// \brief Real-thread cluster: one dedicated thread per worker node, each
/// draining a FIFO mailbox of tasks.
///
/// This is the functional twin of SimCluster: the execution engine can run
/// its per-node work as real concurrent tasks (validating that the
/// algorithm is correctly parallelizable and race-free) while SimCluster
/// provides deterministic cost accounting. Per-node FIFO ordering matches
/// the ordering guarantees an MPI rank would see.
class ThreadedCluster {
 public:
  explicit ThreadedCluster(size_t num_workers, FaultPlan faults = FaultPlan());
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  size_t num_workers() const { return nodes_.size(); }
  const FaultInjector& faults() const { return faults_; }

  /// Enqueues a task on worker `node`'s mailbox. Tasks on the same node run
  /// in FIFO order on that node's thread.
  void Post(size_t node, std::function<void()> task);

  /// Fault-injected delivery at the mailbox boundary: consults the fault
  /// plan for node crashes and per-attempt message drops keyed by
  /// `msg_key`, so the loss schedule is a pure function of the plan (never
  /// of thread timing). Returns the attempts used (1 = delivered first
  /// try, up to max_retries+1), or 0 when the message is lost — the node is
  /// dead or every attempt dropped — in which case `task` is discarded and
  /// the caller owns the failover.
  uint32_t PostMessage(size_t node, uint64_t msg_key, uint32_t max_retries,
                       std::function<void()> task);

  /// Blocks until every mailbox is empty and every node is idle.
  void Barrier();

 private:
  struct Node {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> mailbox;
    bool busy = false;
    std::thread thread;
  };

  void NodeLoop(Node* node);

  FaultInjector faults_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> stop_{false};
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::atomic<int64_t> outstanding_{0};
};

}  // namespace harmony

#endif  // HARMONY_NET_THREADED_CLUSTER_H_
