#include "net/socket_proto.h"

#include <cstring>

namespace harmony {
namespace {

/// Bounds-checked word cursor over a decoded message payload — the
/// update_log.cc decode discipline applied to RPC bodies: every read is
/// range-checked first and failure is a Status, never UB.
class WordReader {
 public:
  WordReader(const uint32_t* words, size_t size) : words_(words), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  Result<uint32_t> U32(const char* what) {
    if (pos_ >= size_) return Truncated(what);
    return words_[pos_++];
  }

  Result<uint64_t> U64(const char* what) {
    if (size_ - pos_ < 2) return Truncated(what);
    const uint64_t lo = words_[pos_];
    const uint64_t hi = words_[pos_ + 1];
    pos_ += 2;
    return lo | (hi << 32);
  }

  Result<float> F32(const char* what) {
    if (pos_ >= size_) return Truncated(what);
    float f;
    std::memcpy(&f, &words_[pos_++], sizeof(f));
    return f;
  }

  /// Copies `n` raw words into `out` (element size 4).
  Status Span32(void* out, size_t n, const char* what) {
    if (remaining() < n) return Truncated(what);
    std::memcpy(out, words_ + pos_, n * sizeof(uint32_t));
    pos_ += n;
    return Status::OK();
  }

  /// Copies `n` 64-bit values (2 words each, lo/hi) into `out`.
  Status Span64(void* out, size_t n, const char* what) {
    if (remaining() < 2 * n) return Truncated(what);
    std::memcpy(out, words_ + pos_, n * sizeof(uint64_t));
    pos_ += 2 * n;
    return Status::OK();
  }

  /// Rejects trailing garbage: a well-formed message is consumed exactly.
  Status ExpectEnd(const char* what) const {
    if (pos_ != size_) {
      return Status::IoError(std::string(what) + ": " +
                             std::to_string(size_ - pos_) +
                             " trailing payload words");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::IoError(std::string("truncated message: missing ") + what);
  }

  const uint32_t* words_;
  size_t size_;
  size_t pos_ = 0;
};

void PutU32(uint32_t v, std::vector<uint32_t>* out) { out->push_back(v); }

void PutU64(uint64_t v, std::vector<uint32_t>* out) {
  out->push_back(static_cast<uint32_t>(v));
  out->push_back(static_cast<uint32_t>(v >> 32));
}

void PutF32(float v, std::vector<uint32_t>* out) {
  uint32_t w;
  std::memcpy(&w, &v, sizeof(w));
  out->push_back(w);
}

void PutSpan32(const void* data, size_t n, std::vector<uint32_t>* out) {
  const size_t base = out->size();
  out->resize(base + n);
  std::memcpy(out->data() + base, data, n * sizeof(uint32_t));
}

void PutSpan64(const void* data, size_t n, std::vector<uint32_t>* out) {
  const size_t base = out->size();
  out->resize(base + 2 * n);
  std::memcpy(out->data() + base, data, n * sizeof(uint64_t));
}

Status CheckField(const char* name, uint64_t expected, uint64_t got) {
  if (expected == got) return Status::OK();
  return Status::FailedPrecondition(
      std::string("handshake mismatch on ") + name + ": expected " +
      std::to_string(expected) + ", peer has " + std::to_string(got));
}

}  // namespace

void EncodeHello(const WorkerHello& hello, std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(11);
  PutU32(hello.version, out);
  PutU32(hello.worker_id, out);
  PutU32(hello.num_workers, out);
  PutU32(hello.num_machines, out);
  PutU32(hello.replication, out);
  PutU32(hello.b_dim, out);
  PutU32(hello.dim, out);
  PutU64(hello.generation, out);
  PutU64(hello.digest, out);
}

Result<WorkerHello> DecodeHello(const std::vector<uint32_t>& payload) {
  WordReader r(payload.data(), payload.size());
  WorkerHello h;
  HARMONY_ASSIGN_OR_RETURN(h.version, r.U32("hello version"));
  HARMONY_ASSIGN_OR_RETURN(h.worker_id, r.U32("hello worker_id"));
  HARMONY_ASSIGN_OR_RETURN(h.num_workers, r.U32("hello num_workers"));
  HARMONY_ASSIGN_OR_RETURN(h.num_machines, r.U32("hello num_machines"));
  HARMONY_ASSIGN_OR_RETURN(h.replication, r.U32("hello replication"));
  HARMONY_ASSIGN_OR_RETURN(h.b_dim, r.U32("hello b_dim"));
  HARMONY_ASSIGN_OR_RETURN(h.dim, r.U32("hello dim"));
  HARMONY_ASSIGN_OR_RETURN(h.generation, r.U64("hello generation"));
  HARMONY_ASSIGN_OR_RETURN(h.digest, r.U64("hello digest"));
  HARMONY_RETURN_NOT_OK(r.ExpectEnd("hello"));
  return h;
}

Status CheckHelloMatch(const WorkerHello& expected, const WorkerHello& got) {
  HARMONY_RETURN_NOT_OK(CheckField("version", expected.version, got.version));
  HARMONY_RETURN_NOT_OK(
      CheckField("worker_id", expected.worker_id, got.worker_id));
  HARMONY_RETURN_NOT_OK(
      CheckField("num_workers", expected.num_workers, got.num_workers));
  HARMONY_RETURN_NOT_OK(
      CheckField("num_machines", expected.num_machines, got.num_machines));
  HARMONY_RETURN_NOT_OK(
      CheckField("replication", expected.replication, got.replication));
  HARMONY_RETURN_NOT_OK(CheckField("b_dim", expected.b_dim, got.b_dim));
  HARMONY_RETURN_NOT_OK(CheckField("dim", expected.dim, got.dim));
  HARMONY_RETURN_NOT_OK(
      CheckField("store generation", expected.generation, got.generation));
  HARMONY_RETURN_NOT_OK(
      CheckField("store digest", expected.digest, got.digest));
  return Status::OK();
}

void EncodeStageScanRequest(const StageScanRequest& req,
                            std::vector<uint32_t>* out) {
  out->clear();
  const size_t count = req.id.size();
  out->reserve(9 + req.q_slice.size() + req.lists.size() +
               count * (5 + (req.use_norms ? 1 : 0)));
  PutU32(req.machine, out);
  PutU32(req.vec_shard, out);
  PutU32(req.dim_block, out);
  PutU32(req.metric, out);
  const uint32_t flags = (req.prune ? 1u : 0u) | (req.use_norms ? 2u : 0u) |
                         (req.use_batched ? 4u : 0u);
  PutU32(flags, out);
  PutF32(req.tau, out);
  PutF32(req.rem_q_sq, out);
  PutU32(req.width, out);
  PutU32(static_cast<uint32_t>(req.lists.size()), out);
  PutU32(static_cast<uint32_t>(count), out);
  PutSpan32(req.q_slice.data(), req.q_slice.size(), out);
  PutSpan32(req.lists.data(), req.lists.size(), out);
  PutSpan64(req.id.data(), count, out);
  PutSpan32(req.list.data(), count, out);
  PutSpan32(req.row.data(), count, out);
  PutSpan32(req.partial.data(), count, out);
  if (req.use_norms) PutSpan32(req.rem_p_sq.data(), count, out);
}

Result<StageScanRequest> DecodeStageScanRequest(
    const std::vector<uint32_t>& payload) {
  WordReader r(payload.data(), payload.size());
  StageScanRequest req;
  HARMONY_ASSIGN_OR_RETURN(req.machine, r.U32("scan machine"));
  HARMONY_ASSIGN_OR_RETURN(req.vec_shard, r.U32("scan vec_shard"));
  HARMONY_ASSIGN_OR_RETURN(req.dim_block, r.U32("scan dim_block"));
  HARMONY_ASSIGN_OR_RETURN(req.metric, r.U32("scan metric"));
  HARMONY_ASSIGN_OR_RETURN(const uint32_t flags, r.U32("scan flags"));
  req.prune = (flags & 1u) != 0;
  req.use_norms = (flags & 2u) != 0;
  req.use_batched = (flags & 4u) != 0;
  if ((flags & ~7u) != 0) {
    return Status::IoError("scan request: unknown flag bits " +
                           std::to_string(flags));
  }
  HARMONY_ASSIGN_OR_RETURN(req.tau, r.F32("scan tau"));
  HARMONY_ASSIGN_OR_RETURN(req.rem_q_sq, r.F32("scan rem_q_sq"));
  HARMONY_ASSIGN_OR_RETURN(req.width, r.U32("scan width"));
  HARMONY_ASSIGN_OR_RETURN(const uint32_t num_lists, r.U32("scan num_lists"));
  HARMONY_ASSIGN_OR_RETURN(const uint32_t count, r.U32("scan count"));
  if (req.width == 0 || req.width > kMaxScanWidth) {
    return Status::IoError("scan request: width " + std::to_string(req.width) +
                           " out of range");
  }
  if (num_lists > kMaxScanLists) {
    return Status::IoError("scan request: " + std::to_string(num_lists) +
                           " lists exceeds cap");
  }
  if (count > kMaxScanCandidates) {
    return Status::IoError("scan request: " + std::to_string(count) +
                           " candidates exceeds cap");
  }
  req.q_slice.resize(req.width);
  HARMONY_RETURN_NOT_OK(r.Span32(req.q_slice.data(), req.width, "q_slice"));
  req.lists.resize(num_lists);
  HARMONY_RETURN_NOT_OK(r.Span32(req.lists.data(), num_lists, "list ids"));
  req.id.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span64(req.id.data(), count, "candidate ids"));
  req.list.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span32(req.list.data(), count, "candidate lists"));
  req.row.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span32(req.row.data(), count, "candidate rows"));
  req.partial.resize(count);
  HARMONY_RETURN_NOT_OK(
      r.Span32(req.partial.data(), count, "candidate partials"));
  if (req.use_norms) {
    req.rem_p_sq.resize(count);
    HARMONY_RETURN_NOT_OK(
        r.Span32(req.rem_p_sq.data(), count, "candidate norms"));
  }
  HARMONY_RETURN_NOT_OK(r.ExpectEnd("scan request"));
  return req;
}

void EncodeStageScanResult(const StageScanResult& res,
                           std::vector<uint32_t>* out) {
  out->clear();
  const size_t count = res.id.size();
  out->reserve(6 + count * (5 + (res.has_norms ? 1 : 0)));
  PutU32(static_cast<uint32_t>(count), out);
  PutU32(res.has_norms ? 1u : 0u, out);
  PutU64(res.ops, out);
  PutU64(res.dropped, out);
  PutSpan64(res.id.data(), count, out);
  PutSpan32(res.list.data(), count, out);
  PutSpan32(res.row.data(), count, out);
  PutSpan32(res.partial.data(), count, out);
  if (res.has_norms) PutSpan32(res.rem_p_sq.data(), count, out);
}

Result<StageScanResult> DecodeStageScanResult(
    const std::vector<uint32_t>& payload) {
  WordReader r(payload.data(), payload.size());
  StageScanResult res;
  HARMONY_ASSIGN_OR_RETURN(const uint32_t count, r.U32("result count"));
  HARMONY_ASSIGN_OR_RETURN(const uint32_t norms, r.U32("result norms flag"));
  if (norms > 1) {
    return Status::IoError("scan result: bad norms flag " +
                           std::to_string(norms));
  }
  res.has_norms = norms == 1;
  if (count > kMaxScanCandidates) {
    return Status::IoError("scan result: " + std::to_string(count) +
                           " survivors exceeds cap");
  }
  HARMONY_ASSIGN_OR_RETURN(res.ops, r.U64("result ops"));
  HARMONY_ASSIGN_OR_RETURN(res.dropped, r.U64("result dropped"));
  res.id.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span64(res.id.data(), count, "survivor ids"));
  res.list.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span32(res.list.data(), count, "survivor lists"));
  res.row.resize(count);
  HARMONY_RETURN_NOT_OK(r.Span32(res.row.data(), count, "survivor rows"));
  res.partial.resize(count);
  HARMONY_RETURN_NOT_OK(
      r.Span32(res.partial.data(), count, "survivor partials"));
  if (res.has_norms) {
    res.rem_p_sq.resize(count);
    HARMONY_RETURN_NOT_OK(
        r.Span32(res.rem_p_sq.data(), count, "survivor norms"));
  }
  HARMONY_RETURN_NOT_OK(r.ExpectEnd("scan result"));
  return res;
}

void EncodeErrorStatus(const Status& status, std::vector<uint32_t>* out) {
  out->clear();
  const std::string& msg = status.message();
  const size_t msg_words = (msg.size() + 3) / 4;
  out->reserve(2 + msg_words);
  PutU32(static_cast<uint32_t>(status.code()), out);
  PutU32(static_cast<uint32_t>(msg.size()), out);
  const size_t base = out->size();
  out->resize(base + msg_words, 0);
  std::memcpy(out->data() + base, msg.data(), msg.size());
}

Status DecodeErrorStatus(const std::vector<uint32_t>& payload) {
  WordReader r(payload.data(), payload.size());
  HARMONY_ASSIGN_OR_RETURN(const uint32_t code, r.U32("error code"));
  HARMONY_ASSIGN_OR_RETURN(const uint32_t msg_len, r.U32("error length"));
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::IoError("error message carries invalid status code " +
                           std::to_string(code));
  }
  const size_t msg_words = (static_cast<size_t>(msg_len) + 3) / 4;
  if (r.remaining() < msg_words) {
    return Status::IoError("truncated error message body");
  }
  std::vector<uint32_t> body(msg_words);
  HARMONY_RETURN_NOT_OK(r.Span32(body.data(), msg_words, "error body"));
  HARMONY_RETURN_NOT_OK(r.ExpectEnd("error message"));
  std::string msg(msg_len, '\0');
  std::memcpy(msg.data(), body.data(), msg_len);
  return Status(static_cast<StatusCode>(code), std::move(msg));
}

}  // namespace harmony
