#include "net/health.h"

#include <sstream>

namespace harmony {

NodeHealthTracker::NodeHealthTracker(size_t num_nodes)
    : num_nodes_(num_nodes), nodes_(new Node[num_nodes]) {}

void NodeHealthTracker::FoldEpoch() {
  for (size_t n = 0; n < num_nodes_; ++n) {
    Node& node = nodes_[n];
    const uint64_t attempts =
        node.attempts.exchange(0, std::memory_order_relaxed);
    const uint64_t failures =
        node.failures.exchange(0, std::memory_order_relaxed);
    const double rate =
        attempts != 0
            ? static_cast<double>(failures) / static_cast<double>(attempts)
            : 0.0;
    node.failure_ewma = (1.0 - kAlpha) * node.failure_ewma + kAlpha * rate;
    node.penalty_ewma =
        (1.0 - kAlpha) * node.penalty_ewma +
        kAlpha * static_cast<double>(failures);
    node.quarantined = node.dead.load(std::memory_order_relaxed) != 0 ||
                       node.failure_ewma >= kQuarantineThreshold;
  }
}

std::string NodeHealthTracker::ToString() const {
  std::ostringstream os;
  os << "health{";
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (n > 0) os << " ";
    os << n << ":" << (KnownDead(n) ? "dead" : Quarantined(n) ? "quar" : "ok")
       << "/" << FailureEwma(n);
  }
  os << "}";
  return os.str();
}

}  // namespace harmony
