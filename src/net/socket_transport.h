#ifndef HARMONY_NET_SOCKET_TRANSPORT_H_
#define HARMONY_NET_SOCKET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/socket_fault.h"
#include "serve/msg_queue.h"
#include "util/status.h"

namespace harmony {

/// \brief A parsed transport endpoint: `unix:/path/to.sock` (AF_UNIX
/// stream) or `tcp:host:port` (AF_INET loopback-class deployments; host is
/// a dotted-quad, port 0 lets the listener pick). The two families behave
/// identically above the fd.
struct SocketAddr {
  bool is_unix = true;
  std::string path;  ///< AF_UNIX socket path.
  std::string host;  ///< AF_INET dotted-quad.
  uint16_t port = 0;

  std::string ToString() const;
};

Result<SocketAddr> ParseSocketAddr(const std::string& spec);

/// \brief One reassembled transport message: an opcode plus its payload
/// words, possibly carried by several wire frames (chunked + FIN-flagged).
struct WireMessage {
  uint16_t op = 0;
  std::vector<uint32_t> payload;
};

/// \brief Length-framed, checksummed, sequenced byte channel over a
/// connected stream socket — the wire form of the serving mailbox frames
/// (serve/msg_queue.h), now crossing a process boundary.
///
/// Wire layout per frame (host byte order; same-host ABI, documented in
/// docs/serving.md):
///   [0..7]   FrameHeader word — marker 0xAA55 | tenant (channel id) |
///            seq (per-direction, free-running mod 2^16) | length (payload
///            words, >= 2)
///   [8..11]  payload word 0: opcode | flags << 16 (bit 0 = FIN: last
///            frame of the message)
///   [12..15] payload word 1: CRC-32 over every payload word except this one
///   [16.. ]  payload words 2..length-1: message chunk
///
/// Robustness contract: every decode step is bounds-checked and returns
/// Status (bad marker, oversized length, CRC mismatch, out-of-sequence,
/// tenant mismatch, truncation at any byte) — a corrupt, torn, or hostile
/// stream can never crash or hang the process. All socket operations run
/// under a per-operation deadline (poll + remaining-time accounting); a
/// peer that stops responding yields kTimeout. An attached
/// SocketFaultInjector makes failures deterministic (seeded torn writes,
/// short reads, stalls, resets keyed per frame counter).
///
/// Not thread-safe: one channel belongs to one thread (the frontend's RPC
/// loop is strictly serial per connection; idempotent scans make
/// reconnect-and-retransmit safe).
class SocketChannel {
 public:
  SocketChannel() = default;
  /// Wraps a connected stream fd. `tenant` is the channel id stamped into
  /// every sent frame; with `adopt_tenant` (the accepting side) the first
  /// received frame's tenant is adopted instead and enforced afterwards.
  SocketChannel(int fd, uint16_t tenant, bool adopt_tenant = false);
  ~SocketChannel();

  SocketChannel(SocketChannel&& other) noexcept { *this = std::move(other); }
  SocketChannel& operator=(SocketChannel&& other) noexcept;
  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  bool valid() const { return fd_ >= 0; }
  void Close();

  uint16_t tenant() const { return tenant_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }

  /// Per-operation deadline for Send/Recv (each call gets the full budget).
  void set_deadline_millis(int64_t ms) { deadline_ms_ = ms; }
  int64_t deadline_millis() const { return deadline_ms_; }

  /// Attaches a deterministic fault shim (borrowed; may be null). Faults
  /// fire keyed on this channel's frame counters.
  void set_fault_injector(const SocketFaultInjector* shim) { shim_ = shim; }

  /// Sends one message, chunked across as many frames as needed.
  Status Send(uint16_t op, const uint32_t* payload, size_t words);
  Status Send(uint16_t op, const std::vector<uint32_t>& payload) {
    return Send(op, payload.data(), payload.size());
  }

  /// Receives and reassembles one message. kUnavailable on a clean peer
  /// hangup at a frame boundary; kIoError on any mid-frame truncation or
  /// corruption; kTimeout when the deadline expires.
  Result<WireMessage> Recv();

  /// Words of message payload one frame can carry (header length cap minus
  /// the opcode and CRC words).
  static constexpr size_t kMaxChunkWords = FrameHeader::kMaxPayloadWords - 2;
  /// Reassembled-message cap: a corrupt stream cannot make us allocate
  /// unboundedly (64M words = 256 MB).
  static constexpr size_t kMaxMessageWords = size_t{1} << 26;

 private:
  Status SendFrame(uint16_t op, bool fin, const uint32_t* chunk, size_t words,
                   int64_t deadline_at);
  Status WriteAll(const uint8_t* data, size_t size, int64_t deadline_at);
  Status ReadAll(uint8_t* data, size_t size, int64_t deadline_at,
                 size_t read_cap, bool* clean_eof);

  int fd_ = -1;
  uint16_t tenant_ = 0;
  bool adopt_tenant_ = false;
  bool tenant_locked_ = false;
  uint16_t send_seq_ = 0;
  uint16_t recv_seq_ = 0;
  int64_t deadline_ms_ = 5000;
  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  const SocketFaultInjector* shim_ = nullptr;
};

/// \brief A bound, listening server socket (AF_UNIX or AF_INET).
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();
  SocketListener(SocketListener&& other) noexcept { *this = std::move(other); }
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens. An existing AF_UNIX path is unlinked first (a
  /// restarted worker re-binds the address its peers already know); TCP
  /// binds with SO_REUSEADDR and port 0 resolves to the kernel's pick
  /// (readable from addr()).
  static Result<SocketListener> Listen(const SocketAddr& addr);

  bool valid() const { return fd_ >= 0; }
  void Close();
  /// The bound address (TCP: with the resolved port).
  const SocketAddr& addr() const { return addr_; }

  /// Accepts one connection; kTimeout if none arrives within the deadline
  /// (deadline_ms < 0 blocks). Returns the connected fd.
  Result<int> AcceptFd(int64_t deadline_ms);

 private:
  int fd_ = -1;
  SocketAddr addr_;
};

/// Connects a stream socket to `addr` within `deadline_ms`.
Result<int> ConnectFd(const SocketAddr& addr, int64_t deadline_ms);

/// Connects with seeded-backoff retry: up to `max_attempts` ConnectFd
/// tries, sleeping BackoffDelayMicros(backoff_seed, attempt) between
/// failures — the reconnect primitive the frontend and tests share.
Result<SocketChannel> ConnectChannel(const SocketAddr& addr, uint16_t tenant,
                                     int64_t deadline_ms,
                                     uint32_t max_attempts,
                                     uint64_t backoff_seed);

/// A connected AF_UNIX channel pair (socketpair) for in-process transport
/// tests: first = client end (stamps `tenant`), second = server end
/// (adopts it).
Result<std::pair<SocketChannel, SocketChannel>> MakeChannelPair(
    uint16_t tenant);

/// CRC-32 (IEEE, reflected) over `size` bytes, seeded by `init` so chunks
/// can chain. The frame checksum uses this.
uint32_t Crc32(const void* data, size_t size, uint32_t init = 0);

}  // namespace harmony

#endif  // HARMONY_NET_SOCKET_TRANSPORT_H_
