#ifndef HARMONY_NET_SOCKET_FAULT_H_
#define HARMONY_NET_SOCKET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace harmony {

/// \brief Deterministic connection-layer fault plan for the socket
/// transport — the `net/fault.h` seeded-coin pattern applied one layer
/// down, at the byte stream instead of the modeled message. Every fault
/// fires from a SplitMix64 coin keyed on (seed, channel, direction,
/// operation counter), so a failing run replays bit-for-bit: same torn
/// write on the same frame, same stall before the same read, every time.
///
/// All probabilities default to 0 (the shim is transparent); a plan with
/// every knob at 0 and kill_after_frames == 0 reports !enabled() and the
/// transport skips the coin flips entirely, keeping the fault-free path
/// byte-identical to a build without the shim.
struct SocketFaultPlan {
  uint64_t seed = 0;
  /// Probability a Send tears mid-frame: only a seeded prefix of the bytes
  /// reaches the wire, then the connection is hard-closed. The peer sees a
  /// truncated frame (bounds-checked decode rejects it); the sender sees
  /// IoError and owns the reconnect.
  double torn_write_prob = 0.0;
  /// Probability a read is fragmented: the shim caps each recv() at a
  /// seeded small byte count, exercising the reassembly loop. Never fails
  /// the operation — short reads are legal TCP behavior.
  double short_read_prob = 0.0;
  /// Probability an operation stalls `stall_micros` before touching the
  /// socket (deadline-pressure; a stall past the deadline is a timeout).
  double stall_prob = 0.0;
  uint64_t stall_micros = 0;
  /// Probability the connection is reset (hard close) before the
  /// operation: the local side gets IoError, the peer ECONNRESET/EOF.
  double reset_prob = 0.0;
  /// Worker-side crash switch: after this many frames sent, the serve loop
  /// dies (process mode: _exit; thread mode: hangs up and stops serving).
  /// 0 = never. This is the deterministic "mid-frame kill" of the issue —
  /// it fires at a frame boundary chosen by count, not by chance.
  uint64_t kill_after_frames = 0;

  bool enabled() const {
    return torn_write_prob > 0.0 || short_read_prob > 0.0 || stall_prob > 0.0 ||
           reset_prob > 0.0 || kill_after_frames > 0;
  }

  /// Probabilities must be in [0, 1] (same validation contract as
  /// FaultPlan's engine-side checks).
  Status Validate() const;

  std::string ToString() const;
};

/// \brief Per-channel coin oracle over a SocketFaultPlan. One injector per
/// channel endpoint; `channel` salts the stream so two connections under
/// the same plan fail independently but reproducibly.
class SocketFaultInjector {
 public:
  SocketFaultInjector() = default;
  SocketFaultInjector(const SocketFaultPlan& plan, uint64_t channel)
      : plan_(plan), channel_(channel) {}

  const SocketFaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Coin for send op `op_index` on this channel: tear the write after
  /// `*torn_bytes` of `frame_bytes`? (torn_bytes in [1, frame_bytes)).
  bool TearWrite(uint64_t op_index, size_t frame_bytes, size_t* torn_bytes) const;
  /// Coin for read op `op_index`: cap this recv at `*cap_bytes` (in
  /// [1, 16])?
  bool ShortRead(uint64_t op_index, size_t* cap_bytes) const;
  /// Coin: stall before this operation? (Duration is plan().stall_micros.)
  bool Stall(uint64_t op_index) const;
  /// Coin: reset the connection before this operation?
  bool Reset(uint64_t op_index) const;

 private:
  SocketFaultPlan plan_;
  uint64_t channel_ = 0;
};

/// \brief Pure, capped exponential backoff with deterministic jitter: the
/// delay before retry `attempt` (0-based) is a function of (seed, attempt)
/// only — no clocks, no global RNG — so a replayed failure schedules the
/// identical retry timeline. Property-tested: deterministic, capped at
/// kBackoffCapMicros, and never below half the exponential base.
constexpr uint64_t kBackoffBaseMicros = 200;
constexpr uint64_t kBackoffCapMicros = 50000;
uint64_t BackoffDelayMicros(uint64_t seed, uint32_t attempt);

}  // namespace harmony

#endif  // HARMONY_NET_SOCKET_FAULT_H_
