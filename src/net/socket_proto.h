#ifndef HARMONY_NET_SOCKET_PROTO_H_
#define HARMONY_NET_SOCKET_PROTO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace harmony {

/// \brief Opcodes of the frontend <-> worker RPC protocol carried by
/// SocketChannel messages. Request/response pairing is strict: the frontend
/// sends one request and reads exactly one reply per call (the channel is
/// serial), so a worker reply is always kOpStageResult/kOpHelloAck/kOpPong
/// for the matching request, or kOpError carrying a Status.
enum WireOp : uint16_t {
  kOpHello = 1,       ///< Handshake: WorkerHello of the connecting frontend.
  kOpHelloAck = 2,    ///< Handshake reply: WorkerHello of the worker.
  kOpStageScan = 3,   ///< One chain dimension-stage scan request.
  kOpStageResult = 4, ///< Compacted survivors of a stage scan.
  kOpPing = 5,        ///< Liveness probe (empty payload).
  kOpPong = 6,        ///< Liveness reply (empty payload).
  kOpShutdown = 7,    ///< Worker should stop serving (no reply).
  kOpError = 8,       ///< Encoded Status (application-level failure).
};

/// Protocol revision; bumped on any wire-incompatible change. Checked by
/// the handshake before anything else.
constexpr uint32_t kWireVersion = 1;

/// \brief Everything the handshake pins so a frontend and a worker agree
/// they execute against bit-identical state: the grid shape, the store
/// generation and a content digest over the worker stores + tombstones. A
/// worker restarted without replaying its update log produces a different
/// digest and is rejected with kFailedPrecondition — the crash-restart
/// recovery contract (replay first, then rejoin) is enforced on the wire.
struct WorkerHello {
  uint32_t version = kWireVersion;
  uint32_t worker_id = 0;     ///< Index of this worker in the worker list.
  uint32_t num_workers = 0;   ///< Worker-process count (machine -> worker map).
  uint32_t num_machines = 0;  ///< PartitionPlan::num_machines.
  uint32_t replication = 1;   ///< PartitionPlan::replication.
  uint32_t b_dim = 0;         ///< Dimension blocks of the plan.
  uint32_t dim = 0;           ///< Full vector dimension.
  uint64_t generation = 0;    ///< Engine store generation.
  uint64_t digest = 0;        ///< ComputeStoreDigest over stores+tombstones.
};

void EncodeHello(const WorkerHello& hello, std::vector<uint32_t>* out);
Result<WorkerHello> DecodeHello(const std::vector<uint32_t>& payload);

/// Field-by-field handshake check; kFailedPrecondition naming the first
/// mismatched field. Both ends run it (the worker against the frontend's
/// hello, the frontend against the ack).
Status CheckHelloMatch(const WorkerHello& expected, const WorkerHello& got);

/// \brief One dimension-stage scan shipped to a worker: the scalar scan
/// parameters MakeStageScanParams derived on the frontend plus the chain's
/// compacted candidate SoA. The worker resolves list slices from its own
/// (bit-identical) stores, runs ScanBlock, and returns the survivors.
struct StageScanRequest {
  uint32_t machine = 0;    ///< Grid machine whose store holds the block.
  uint32_t vec_shard = 0;  ///< Chain's vector shard.
  uint32_t dim_block = 0;  ///< Dimension block (stage) to scan.
  uint32_t metric = 0;     ///< Metric enum value.
  bool prune = false;      ///< Stage-gated pruning switch.
  bool use_norms = false;  ///< IP norm columns present (rem_p_sq shipped).
  bool use_batched = false;
  float tau = 0.0f;
  float rem_q_sq = 0.0f;
  uint32_t width = 0;  ///< Block width; q_slice has this many floats.
  std::vector<float> q_slice;
  std::vector<int32_t> lists;  ///< Global IVF list ids probed by the chain.
  // Candidate SoA (all sized `count`; rem_p_sq only when use_norms).
  std::vector<int64_t> id;
  std::vector<int32_t> list;  ///< Index into `lists` per candidate.
  std::vector<int32_t> row;   ///< Row within the list's slice.
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
};

/// Decode-time caps: a corrupt or hostile request cannot make the worker
/// allocate unboundedly (checked before any resize).
constexpr uint32_t kMaxScanWidth = 1u << 20;
constexpr uint32_t kMaxScanLists = 1u << 20;
constexpr uint32_t kMaxScanCandidates = 1u << 26;

void EncodeStageScanRequest(const StageScanRequest& req,
                            std::vector<uint32_t>* out);
Result<StageScanRequest> DecodeStageScanRequest(
    const std::vector<uint32_t>& payload);

/// \brief A stage scan's compacted survivors (the in-place compaction
/// ScanBlock performed, shipped back), plus the scan counters for stats.
struct StageScanResult {
  uint64_t ops = 0;
  uint64_t dropped = 0;
  bool has_norms = false;
  std::vector<int64_t> id;
  std::vector<int32_t> list;
  std::vector<int32_t> row;
  std::vector<float> partial;
  std::vector<float> rem_p_sq;
};

void EncodeStageScanResult(const StageScanResult& res,
                           std::vector<uint32_t>* out);
Result<StageScanResult> DecodeStageScanResult(
    const std::vector<uint32_t>& payload);

/// kOpError payload: the Status code word plus its message bytes, so a
/// worker-side rejection surfaces on the frontend with its original code
/// and text.
void EncodeErrorStatus(const Status& status, std::vector<uint32_t>* out);
Status DecodeErrorStatus(const std::vector<uint32_t>& payload);

}  // namespace harmony

#endif  // HARMONY_NET_SOCKET_PROTO_H_
