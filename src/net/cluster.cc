#include "net/cluster.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace harmony {

std::string ClusterBreakdown::ToString() const {
  std::ostringstream os;
  os << "makespan=" << makespan_seconds * 1e3 << "ms"
     << " comp=" << compute_seconds * 1e3 << "ms"
     << " comm=" << comm_seconds * 1e3 << "ms"
     << " other=" << other_seconds * 1e3 << "ms"
     << " msgs=" << total_messages << " bytes=" << total_bytes
     << " streamed=" << total_bytes_streamed
     << " compressed=" << total_bytes_compressed;
  return os.str();
}

SimCluster::SimCluster(size_t num_workers, NetworkParams net,
                       MachineParams machine)
    : net_(net), client_(-1, machine) {
  HARMONY_CHECK_MSG(num_workers > 0, "cluster needs at least one worker");
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back(static_cast<int>(i), machine);
  }
}

void SimCluster::SetFaultPlan(const FaultPlan& plan) {
  faults_ = FaultInjector(plan);
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i].set_slowdown(faults_.DelayMultiplier(i));
  }
}

double SimCluster::Transfer(SimNode* src, SimNode* dst, uint64_t bytes) {
  HARMONY_CHECK(src != nullptr && dst != nullptr);
  src->BookSend(bytes);
  const double busy = net_.SenderBusySeconds(bytes);
  src->BookCommSeconds(busy);
  if (net_.mode() == CommMode::kBlocking) {
    // Sender held the line for the whole transfer; payload arrives when the
    // sender finishes.
    return src->clock();
  }
  // Non-blocking: transfer continues in the background after injection.
  const double remaining = net_.TransferSeconds(bytes) - busy;
  return src->clock() + std::max(0.0, remaining);
}

void SimCluster::ResetClocks() {
  client_.Reset();
  for (SimNode& w : workers_) w.Reset();
}

double SimCluster::Makespan() const {
  double m = client_.done_time();
  for (const SimNode& w : workers_) m = std::max(m, w.done_time());
  return m;
}

ClusterBreakdown SimCluster::Breakdown() const {
  ClusterBreakdown b;
  b.makespan_seconds = Makespan();
  double comp = 0.0, comm = 0.0;
  for (const SimNode& w : workers_) {
    comp += w.compute_seconds();
    comm += w.comm_seconds();
    b.total_bytes += w.bytes_sent();
    b.total_messages += w.messages_sent();
    b.total_ops += w.ops_executed();
    b.total_bytes_streamed += w.bytes_streamed();
    b.total_bytes_compressed += w.bytes_streamed_compressed();
  }
  b.total_bytes += client_.bytes_sent();
  b.total_messages += client_.messages_sent();
  b.total_ops += client_.ops_executed();
  const double n = static_cast<double>(workers_.size());
  b.compute_seconds = comp / n;
  b.comm_seconds = comm / n;
  b.other_seconds =
      std::max(0.0, b.makespan_seconds - b.compute_seconds - b.comm_seconds);
  return b;
}

}  // namespace harmony
