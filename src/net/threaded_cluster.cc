#include "net/threaded_cluster.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace harmony {

ThreadedCluster::ThreadedCluster(size_t num_workers, FaultPlan faults,
                                 size_t threads_per_node)
    : faults_(std::move(faults)),
      threads_per_node_(std::max<size_t>(1, threads_per_node)) {
  HARMONY_CHECK_MSG(num_workers > 0, "cluster needs at least one worker");
  nodes_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    nodes_.push_back(std::make_unique<ThreadPool>(threads_per_node_));
  }
}

ThreadedCluster::~ThreadedCluster() {
  // Wait for in-flight task trees first: a running task may still Post to
  // any node. Then join the pools explicitly, *before* member destruction:
  // Barrier() returns as soon as outstanding_ hits zero, which the last
  // Post wrapper reaches before its lock(barrier_mu_)/notify_all tail, and
  // barrier_mu_/barrier_cv_/outstanding_ (declared after nodes_) would be
  // destroyed first — joining here keeps every worker out of those
  // primitives while they die.
  Barrier();
  nodes_.clear();
}

void ThreadedCluster::Post(size_t node, std::function<void()> task) {
  HARMONY_CHECK(node < nodes_.size());
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  nodes_[node]->Submit([this, task = std::move(task)] {
    task();
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      barrier_cv_.notify_all();
    }
  });
}

uint32_t ThreadedCluster::PostMessage(size_t node, uint64_t msg_key,
                                      uint32_t max_retries,
                                      std::function<void()> task) {
  HARMONY_CHECK(node < nodes_.size());
  if (faults_.enabled()) {
    if (faults_.CrashedFromStart(node)) return 0;
    const uint32_t attempts = faults_.DeliveryAttempts(msg_key, max_retries);
    if (attempts == 0) return 0;
    Post(node, std::move(task));
    return attempts;
  }
  Post(node, std::move(task));
  return 1;
}

void ThreadedCluster::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace harmony
