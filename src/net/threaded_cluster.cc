#include "net/threaded_cluster.h"

#include "util/logging.h"

namespace harmony {

ThreadedCluster::ThreadedCluster(size_t num_workers, FaultPlan faults)
    : faults_(std::move(faults)) {
  HARMONY_CHECK_MSG(num_workers > 0, "cluster needs at least one worker");
  nodes_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
  for (auto& node : nodes_) {
    Node* n = node.get();
    n->thread = std::thread([this, n] { NodeLoop(n); });
  }
}

ThreadedCluster::~ThreadedCluster() {
  Barrier();
  stop_.store(true);
  for (auto& node : nodes_) {
    {
      std::lock_guard<std::mutex> lock(node->mu);
    }
    node->cv.notify_all();
  }
  for (auto& node : nodes_) node->thread.join();
}

void ThreadedCluster::Post(size_t node, std::function<void()> task) {
  HARMONY_CHECK(node < nodes_.size());
  Node* n = nodes_[node].get();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(n->mu);
    n->mailbox.push_back(std::move(task));
  }
  n->cv.notify_one();
}

uint32_t ThreadedCluster::PostMessage(size_t node, uint64_t msg_key,
                                      uint32_t max_retries,
                                      std::function<void()> task) {
  HARMONY_CHECK(node < nodes_.size());
  if (faults_.enabled()) {
    if (faults_.CrashedFromStart(node)) return 0;
    const uint32_t attempts = faults_.DeliveryAttempts(msg_key, max_retries);
    if (attempts == 0) return 0;
    Post(node, std::move(task));
    return attempts;
  }
  Post(node, std::move(task));
  return 1;
}

void ThreadedCluster::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadedCluster::NodeLoop(Node* node) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(node->mu);
      node->cv.wait(lock, [this, node] {
        return stop_.load() || !node->mailbox.empty();
      });
      if (node->mailbox.empty()) {
        if (stop_.load()) return;
        continue;
      }
      task = std::move(node->mailbox.front());
      node->mailbox.pop_front();
      node->busy = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(node->mu);
      node->busy = false;
    }
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      barrier_cv_.notify_all();
    }
  }
}

}  // namespace harmony
