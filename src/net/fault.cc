#include "net/fault.h"

#include <algorithm>
#include <sstream>

namespace harmony {

namespace {

/// SplitMix64 finalizer: the same mixer Rng uses for seeding, applied here
/// as a stateless hash so fault coins depend only on (seed, key, attempt).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultPlan::enabled() const {
  if (drop_prob > 0.0 || !crashes.empty()) return true;
  for (const double m : delay_multiplier) {
    if (m > 0.0 && m != 1.0) return true;
  }
  return false;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "faults{seed=" << seed << " drop_prob=" << drop_prob;
  if (!crashes.empty()) {
    os << " crashes=[";
    for (size_t i = 0; i < crashes.size(); ++i) {
      if (i > 0) os << ",";
      os << crashes[i].node << "@" << crashes[i].at_seconds;
    }
    os << "]";
  }
  if (!delay_multiplier.empty()) {
    os << " stragglers=[";
    for (size_t i = 0; i < delay_multiplier.size(); ++i) {
      if (i > 0) os << ",";
      os << delay_multiplier[i];
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  enabled_ = plan_.enabled();
  drop_threshold_ = std::clamp(plan_.drop_prob, 0.0, 1.0);
  for (const NodeCrash& crash : plan_.crashes) {
    if (crash.node < 0) continue;
    const size_t node = static_cast<size_t>(crash.node);
    if (crash_time_.size() <= node) {
      crash_time_.resize(node + 1, std::numeric_limits<double>::infinity());
    }
    crash_time_[node] = std::min(crash_time_[node], crash.at_seconds);
  }
}

bool FaultInjector::DropsAttempt(uint64_t key, uint32_t attempt) const {
  if (drop_threshold_ <= 0.0) return false;
  if (drop_threshold_ >= 1.0) return true;
  const uint64_t h = Mix64(Mix64(plan_.seed ^ 0x5FA7D1CEull) ^
                           Mix64(key + 0x9E3779B97F4A7C15ULL * attempt));
  // Top 53 bits -> uniform double in [0, 1), same mapping as Rng.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < drop_threshold_;
}

uint32_t FaultInjector::DeliveryAttempts(uint64_t key,
                                         uint32_t max_retries) const {
  for (uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (!DropsAttempt(key, attempt)) return attempt + 1;
  }
  return 0;
}

uint64_t ChainHopKey(int32_t query, int32_t shard, size_t block) {
  uint64_t key = static_cast<uint64_t>(static_cast<uint32_t>(query));
  key = (key << 20) ^ static_cast<uint64_t>(static_cast<uint32_t>(shard));
  key = (key << 12) ^ static_cast<uint64_t>(block);
  return Mix64(key);
}

uint64_t ReplicaHopKey(int32_t query, int32_t shard, size_t block, size_t r) {
  const uint64_t base = ChainHopKey(query, shard, block);
  if (r == 0) return base;  // Replica 0 flips the historical coins.
  return Mix64(base ^ (0xD6E8FEB86659FD93ULL * static_cast<uint64_t>(r)));
}

uint64_t ReplicaRouteKey(size_t probe_rank, int32_t shard, size_t block) {
  uint64_t key = static_cast<uint64_t>(probe_rank);
  key = (key << 24) ^ static_cast<uint64_t>(static_cast<uint32_t>(shard));
  key = (key << 16) ^ static_cast<uint64_t>(block);
  return Mix64(key ^ 0xA24BAED4963EE407ULL);
}

}  // namespace harmony
