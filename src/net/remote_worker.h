#ifndef HARMONY_NET_REMOTE_WORKER_H_
#define HARMONY_NET_REMOTE_WORKER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/worker.h"
#include "net/socket_fault.h"
#include "net/socket_proto.h"
#include "net/socket_transport.h"
#include "util/status.h"

namespace harmony {

/// Content digest over a snapshot's worker stores + tombstone bitset: FNV-1a
/// over the grid layout (machines, blocks, ranges), every list's sorted id /
/// row count, the float bits of all slice rows and norm columns, and the
/// tombstone words. Two engines built from the same deterministic spec —
/// including one rebuilt after a crash and replayed from the update log —
/// produce the same digest; any divergence (missed replay, different data,
/// drifted pending delta) changes it. Quadratic in nothing: one pass over
/// the stored floats.
uint64_t ComputeStoreDigest(const std::vector<WorkerStore>& stores,
                            const uint64_t* tombstones, size_t tombstone_words);

/// The handshake identity of `engine` as worker `worker_id` of
/// `num_workers`: grid shape, generation and store digest (acquires a
/// snapshot to fold any dirty delta first).
Result<WorkerHello> MakeEngineHello(HarmonyEngine* engine, uint32_t worker_id,
                                    uint32_t num_workers);

struct SocketWorkerOptions {
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  /// Accept/receive poll granularity: how often the serve loop re-checks
  /// its stop flag while idle.
  int64_t poll_ms = 200;
  /// Deterministic connection-layer fault plan applied to every accepted
  /// channel (the worker-side shim; channel salt 2 * worker_id + 1 keeps
  /// its coin stream disjoint from the frontend's).
  SocketFaultPlan faults;
  /// How kill_after_frames fires: true exits the process (_exit, the
  /// multi-process crash test), false hangs up and stops serving (the
  /// in-process thread-worker tests).
  bool kill_is_exit = false;
};

/// \brief A worker process's serve loop: accepts connections on a listener
/// and answers the RPC protocol (hello handshake, stage scans, pings)
/// against its own engine's store snapshot. One connection is served at a
/// time (the frontend's RPC stream is serial); a hung-up or torn connection
/// never stops the loop — the worker goes back to accepting, which is what
/// makes frontend reconnect-after-failure work.
class SocketWorker {
 public:
  static constexpr int kKillExitCode = 137;

  SocketWorker(HarmonyEngine* engine, SocketWorkerOptions opts);

  /// Acquires the snapshot and computes the handshake identity. Call once
  /// before Serve; re-call after engine mutations to serve the new epoch.
  Status Init();

  const WorkerHello& hello() const { return hello_; }
  uint64_t requests_served() const { return requests_served_; }
  bool shutdown_received() const { return shutdown_; }
  bool killed() const { return killed_; }

  /// Accept-and-serve until `stop` (may be null), a kOpShutdown, or the
  /// fault plan's kill fires. Returns OK on clean stop/shutdown;
  /// kUnavailable when the kill switch ended serving (thread mode).
  Status Serve(SocketListener* listener, const std::atomic<bool>* stop);

  /// Serves one connection until the peer hangs up (OK), a transport error
  /// tears it (the error), shutdown (OK), or the kill switch fires.
  Status ServeChannel(SocketChannel* ch, const std::atomic<bool>* stop);

 private:
  Result<std::vector<uint32_t>> HandleStageScan(
      const std::vector<uint32_t>& payload) const;
  /// True when the fault plan's kill threshold is crossed; in process mode
  /// this call never returns.
  bool KillSwitchFired(const SocketChannel& ch);

  HarmonyEngine* engine_;
  SocketWorkerOptions opts_;
  StoreSnapshot snap_;
  WorkerHello hello_;
  SocketFaultInjector shim_;
  uint64_t frames_before_channel_ = 0;
  uint64_t requests_served_ = 0;
  bool shutdown_ = false;
  bool killed_ = false;
  bool init_done_ = false;
};

}  // namespace harmony

#endif  // HARMONY_NET_REMOTE_WORKER_H_
