#ifndef HARMONY_NET_CLUSTER_H_
#define HARMONY_NET_CLUSTER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/network_model.h"
#include "util/status.h"

namespace harmony {

/// \brief Per-machine performance parameters of the simulated cluster.
/// `ops_per_sec` is the effective rate of one fused distance operation per
/// vector component. The default is deliberately calibrated so that the
/// repo's *scaled-down* dataset stand-ins (tens of thousands of vectors
/// instead of millions) reproduce the paper testbed's compute-to-network
/// ratio: scaling the data down 50x while keeping a 100 Gb/s network would
/// otherwise make per-message latency dominate in a way the paper's
/// million-vector workloads never see. The absolute value only scales the
/// time axis, never the comparative shape.
struct MachineParams {
  double ops_per_sec = 4.0e8;
};

/// \brief One node's virtual clock and accounting counters.
///
/// The simulator executes all computation for real (results are needed for
/// recall and pruning decisions) but *charges the cost* of each action to
/// these clocks, which is what every throughput/latency figure reads.
class SimNode {
 public:
  SimNode() = default;
  SimNode(int id, MachineParams machine) : id_(id), machine_(machine) {}

  int id() const { return id_; }
  double ops_per_sec() const { return machine_.ops_per_sec; }
  double clock() const { return clock_; }
  double compute_seconds() const { return compute_seconds_; }
  double comm_seconds() const { return comm_seconds_; }
  double idle_seconds() const { return idle_seconds_; }
  uint64_t ops_executed() const { return ops_executed_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_streamed() const { return bytes_streamed_; }
  uint64_t bytes_streamed_compressed() const {
    return bytes_streamed_compressed_;
  }

  /// Straggler factor from the fault plan: every compute charge is scaled
  /// by it. 1.0 (the default) multiplies exactly, so a fault-free run is
  /// bit-identical to one without the fault layer.
  double slowdown() const { return slowdown_; }
  void set_slowdown(double factor) { slowdown_ = factor > 0.0 ? factor : 1.0; }

  /// Charges `ops` scalar operations of local compute.
  void ChargeCompute(uint64_t ops) {
    const double secs =
        static_cast<double>(ops) / machine_.ops_per_sec * slowdown_;
    clock_ += secs;
    compute_seconds_ += secs;
    ops_executed_ += ops;
  }

  /// Charges fixed-seconds local work (e.g. heap maintenance, planning).
  void ChargeSeconds(double secs) {
    clock_ += secs * slowdown_;
    compute_seconds_ += secs * slowdown_;
  }

  /// Advances the clock to `t`, booking the gap as idle (waiting on a
  /// message or a pipeline dependency). No-op if already past `t`.
  void WaitUntil(double t) {
    if (clock_ < t) {
      idle_seconds_ += t - clock_;
      clock_ = t;
    }
  }

  void BookCommSeconds(double secs) {
    clock_ += secs;
    comm_seconds_ += secs;
  }

  void BookSend(uint64_t bytes) {
    bytes_sent_ += bytes;
    ++messages_sent_;
  }

  /// Books `bytes` of local row data streamed from memory by block scans.
  /// Pure accounting: never touches a clock, so enabling/disabling it (or
  /// changing how callers bill it) cannot perturb the simulated schedule.
  void ChargeStreamedBytes(uint64_t bytes) { bytes_streamed_ += bytes; }

  /// Books `bytes` of quantized code-stream data (PQ streams,
  /// docs/quantization.md): counted in the streamed total *and* the
  /// compressed tally. Pure accounting, like ChargeStreamedBytes.
  void ChargeCompressedBytes(uint64_t bytes) {
    bytes_streamed_ += bytes;
    bytes_streamed_compressed_ += bytes;
  }

  /// Switches the node to `lanes` parallel compute lanes (intra-node worker
  /// threads, `ExecOptions::threads_per_node`). With lanes <= 1 the node
  /// stays on the single-clock path and every charge is bit-identical to
  /// the historical behavior; callers must then use ChargeCompute/WaitUntil,
  /// not ChargeComputeAt.
  void ConfigureLanes(size_t lanes) {
    lanes_.clear();
    if (lanes > 1) lanes_.assign(lanes, clock_);
  }
  bool has_lanes() const { return !lanes_.empty(); }

  /// Lane-scheduled compute: places `ops` on the earliest-free lane, no
  /// earlier than `ready`, and returns the completion time. `clock_` is left
  /// alone — with lanes it tracks only serialized work (sends); Makespan and
  /// next_free() fold the lanes back in.
  double ChargeComputeAt(double ready, uint64_t ops) {
    size_t lane = 0;
    for (size_t i = 1; i < lanes_.size(); ++i) {
      if (lanes_[i] < lanes_[lane]) lane = i;
    }
    const double start = std::max(lanes_[lane], ready);
    const double secs =
        static_cast<double>(ops) / machine_.ops_per_sec * slowdown_;
    lanes_[lane] = start + secs;
    compute_seconds_ += secs;
    ops_executed_ += ops;
    return lanes_[lane];
  }

  /// Earliest time this node can start new compute: the least-loaded lane,
  /// or the single clock when lanes are off. What the engine's
  /// machine-selection heuristics should compare.
  double next_free() const {
    if (lanes_.empty()) return clock_;
    double t = lanes_[0];
    for (const double lane : lanes_) t = std::min(t, lane);
    return t;
  }

  /// Time at which all of this node's charged work (serialized and laned)
  /// has finished.
  double done_time() const {
    double t = clock_;
    for (const double lane : lanes_) t = std::max(t, lane);
    return t;
  }

  void Reset() {
    clock_ = compute_seconds_ = comm_seconds_ = idle_seconds_ = 0.0;
    ops_executed_ = bytes_sent_ = messages_sent_ = bytes_streamed_ = 0;
    bytes_streamed_compressed_ = 0;
    for (double& lane : lanes_) lane = 0.0;
  }

 private:
  int id_ = -1;
  MachineParams machine_;
  double slowdown_ = 1.0;
  double clock_ = 0.0;
  double compute_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
  uint64_t ops_executed_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_streamed_ = 0;
  uint64_t bytes_streamed_compressed_ = 0;
  std::vector<double> lanes_;  ///< Per-lane completion times; empty = 1 lane.
};

/// \brief Aggregated cluster accounting used by the time-breakdown figures.
struct ClusterBreakdown {
  double makespan_seconds = 0.0;
  double compute_seconds = 0.0;  // mean across workers
  double comm_seconds = 0.0;     // mean across workers
  double other_seconds = 0.0;    // makespan - compute - comm (idle/skew)
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t total_ops = 0;
  /// Row bytes streamed from memory by block scans (shared scans bill each
  /// group-shared tile once; see ExecOptions::shared_scans).
  uint64_t total_bytes_streamed = 0;
  /// Subset of total_bytes_streamed that was quantized code-stream data
  /// (PQ streams; 0 with use_pq_streams off).
  uint64_t total_bytes_compressed = 0;

  std::string ToString() const;
};

/// \brief Deterministic simulated cluster: one client node plus N workers.
///
/// Plays the role the 20-node testbed plays in the paper. Transfers update
/// virtual clocks according to the NetworkModel; computation is charged via
/// SimNode::ChargeCompute by the execution engine.
class SimCluster {
 public:
  SimCluster(size_t num_workers, NetworkParams net = NetworkParams(),
             MachineParams machine = MachineParams());

  size_t num_workers() const { return workers_.size(); }
  const NetworkModel& network() const { return net_; }

  /// Installs a fault plan: worker straggler factors are applied to the
  /// virtual clocks immediately; drop/crash decisions are served through
  /// `faults()` to the execution engine. A default plan disables all of it.
  void SetFaultPlan(const FaultPlan& plan);
  const FaultInjector& faults() const { return faults_; }

  SimNode& worker(size_t i) { return workers_[i]; }
  const SimNode& worker(size_t i) const { return workers_[i]; }
  SimNode& client() { return client_; }
  const SimNode& client() const { return client_; }

  /// Simulates sending `bytes` from `src` to `dst` and returns the virtual
  /// time at which the payload is available at `dst`. The receiver's clock
  /// is NOT advanced — callers decide when the receiver consumes the
  /// message (enabling the non-blocking overlap the paper exploits).
  double Transfer(SimNode* src, SimNode* dst, uint64_t bytes);

  /// Books streamed row bytes on worker `i` (SimNode::ChargeStreamedBytes):
  /// the per-machine form of the accounting hook the execution core's
  /// ExecBackend interface exposes. Pure accounting; never touches a clock.
  void ChargeStreamedBytes(size_t i, uint64_t bytes) {
    workers_[i].ChargeStreamedBytes(bytes);
  }

  /// Books quantized code-stream bytes on worker `i` (counted in the
  /// streamed total and the compressed tally). Pure accounting.
  void ChargeCompressedBytes(size_t i, uint64_t bytes) {
    workers_[i].ChargeCompressedBytes(bytes);
  }

  /// Restarts all clocks/counters (e.g. between benchmark repetitions).
  void ResetClocks();

  /// Virtual time at which every node has finished all charged work.
  double Makespan() const;

  /// Aggregates per-node accounting into the figure-8-style breakdown.
  ClusterBreakdown Breakdown() const;

 private:
  NetworkModel net_;
  FaultInjector faults_;
  SimNode client_;
  std::vector<SimNode> workers_;
};

}  // namespace harmony

#endif  // HARMONY_NET_CLUSTER_H_
