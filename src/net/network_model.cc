#include "net/network_model.h"

namespace harmony {

const char* CommModeToString(CommMode mode) {
  switch (mode) {
    case CommMode::kBlocking:
      return "blocking";
    case CommMode::kNonBlocking:
      return "non-blocking";
  }
  return "?";
}

}  // namespace harmony
