#ifndef HARMONY_NET_FAULT_H_
#define HARMONY_NET_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace harmony {

/// \brief One scheduled node failure. `at_seconds` is virtual time on the
/// simulated cluster; values <= 0 mean the node is dead from the start,
/// which is the only crash shape the real-thread cluster (no virtual clock)
/// can reproduce deterministically.
struct NodeCrash {
  int node = -1;
  double at_seconds = 0.0;
};

/// \brief Seeded description of everything that can go wrong in a run.
///
/// A default-constructed plan injects nothing: every fault branch in the
/// execution engines is gated on `enabled()`, so the no-fault path stays
/// byte-identical (results *and* virtual-clock timings) to a build without
/// the fault layer.
///
/// All fault decisions derived from a plan are pure functions of
/// (seed, message key, attempt) — never of scheduling order — so the same
/// plan yields the same fault schedule on the simulated cluster, on the
/// real-thread cluster, and across repeated runs.
struct FaultPlan {
  /// Seed for the per-message drop coins. Two plans with different seeds
  /// drop disjoint (pseudo-random) message sets at the same drop_prob.
  uint64_t seed = 0;
  /// Probability that one delivery attempt of a message is lost.
  double drop_prob = 0.0;
  /// Per-worker compute slowdown ("straggler" factor); empty means 1.0 for
  /// every node. Charged to virtual clocks on the simulated cluster; the
  /// real-thread cluster has no cost model and ignores it.
  std::vector<double> delay_multiplier;
  /// Scheduled node failures (see NodeCrash).
  std::vector<NodeCrash> crashes;

  bool enabled() const;
  std::string ToString() const;
};

/// \brief Deterministic fault oracle over a FaultPlan.
///
/// Both clusters own one of these; the execution engines consult it at
/// message boundaries (simulated transfers, mailbox posts) using stable
/// semantic keys (see ChainHopKey), which is what makes the simulated and
/// threaded engines agree on which messages die.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  /// Virtual time at which `node` dies; +infinity if it never does.
  double CrashTime(size_t node) const {
    return node < crash_time_.size()
               ? crash_time_[node]
               : std::numeric_limits<double>::infinity();
  }
  /// True when `node` is dead for the whole run (at_seconds <= 0).
  bool CrashedFromStart(size_t node) const { return CrashTime(node) <= 0.0; }

  /// Straggler factor for `node` (1.0 when unspecified).
  double DelayMultiplier(size_t node) const {
    return node < plan_.delay_multiplier.size() && plan_.delay_multiplier[node] > 0.0
               ? plan_.delay_multiplier[node]
               : 1.0;
  }

  /// Pure coin: is delivery attempt `attempt` of message `key` dropped?
  bool DropsAttempt(uint64_t key, uint32_t attempt) const;

  /// Attempts needed to deliver message `key` given a budget of
  /// `max_retries` resends: 1..max_retries+1 = delivered on that attempt;
  /// 0 = every attempt dropped (the message is permanently lost).
  uint32_t DeliveryAttempts(uint64_t key, uint32_t max_retries) const;

 private:
  FaultPlan plan_;
  bool enabled_ = false;
  double drop_threshold_ = 0.0;        // drop_prob mapped to u64 space
  std::vector<double> crash_time_;     // per node, +inf if never
};

/// \brief Stable key for the delivery of chain (query, shard)'s baton into
/// dimension block `block`. Pass `block == num_dim_blocks` for the final
/// worker-to-client result hop. Both execution engines key their fault
/// consults this way, so fault schedules agree across engines regardless of
/// thread or event ordering.
uint64_t ChainHopKey(int32_t query, int32_t shard, size_t block);

/// \brief Stable key for the delivery of chain (query, shard)'s baton into
/// dimension block `block` at replica `r`. Replica 0 IS ChainHopKey —
/// unreplicated plans flip exactly the historical coins — and each further
/// replica draws an independent coin stream, so a hop that dies on the
/// primary can survive on a failover replica.
uint64_t ReplicaHopKey(int32_t query, int32_t shard, size_t block, size_t r);

/// \brief Stable key seeding the replica *preference rotation* of stage
/// (probe_rank, shard, block): hashes the stage identity (not the fault
/// seed) so load spreads across replicas deterministically even on a
/// healthy cluster.
uint64_t ReplicaRouteKey(size_t probe_rank, int32_t shard, size_t block);

}  // namespace harmony

#endif  // HARMONY_NET_FAULT_H_
