#ifndef HARMONY_NET_NETWORK_MODEL_H_
#define HARMONY_NET_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace harmony {

/// \brief Communication modes evaluated in the paper's Figure 2(b):
/// blocking sends occupy the sender for the whole transfer; non-blocking
/// sends (MPI_Isend/Irecv in the paper's implementation) only pay an
/// injection overhead on the sender and overlap the transfer with compute.
enum class CommMode { kBlocking, kNonBlocking };

const char* CommModeToString(CommMode mode);

/// \brief Link parameters of the simulated interconnect. Defaults model the
/// paper's testbed: 100 Gb/s links with microsecond-scale message latency.
struct NetworkParams {
  double bandwidth_bytes_per_sec = 12.5e9;  // 100 Gb/s
  double latency_seconds = 1e-6;            // per-message overhead (aggregated non-blocking sends)
  CommMode mode = CommMode::kNonBlocking;
  /// Ack-timeout multiple of the end-to-end transfer time: how long a
  /// sender waits before declaring a delivery attempt lost and resending
  /// (fault-injected runs only; the healthy path never consults it).
  double retry_timeout_factor = 4.0;
};

/// \brief Computes transfer times under a NetworkParams configuration.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params = NetworkParams())
      : params_(params) {}

  const NetworkParams& params() const { return params_; }
  CommMode mode() const { return params_.mode; }

  /// End-to-end seconds for one `bytes`-sized message.
  double TransferSeconds(size_t bytes) const {
    return params_.latency_seconds +
           static_cast<double>(bytes) / params_.bandwidth_bytes_per_sec;
  }

  /// Seconds the *sender* is busy for one message: the full transfer in
  /// blocking mode, just the injection latency in non-blocking mode.
  double SenderBusySeconds(size_t bytes) const {
    return params_.mode == CommMode::kBlocking ? TransferSeconds(bytes)
                                               : params_.latency_seconds;
  }

  /// Seconds one failed delivery attempt costs the message's critical path:
  /// the sender waits out the ack timeout, doubling it per attempt
  /// (bounded exponential backoff), then resends.
  double RetryBackoffSeconds(size_t bytes, uint32_t attempt) const {
    const uint32_t exp = attempt < 20 ? attempt : 20;
    return params_.retry_timeout_factor * TransferSeconds(bytes) *
           static_cast<double>(uint64_t{1} << exp);
  }

 private:
  NetworkParams params_;
};

}  // namespace harmony

#endif  // HARMONY_NET_NETWORK_MODEL_H_
