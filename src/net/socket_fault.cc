#include "net/socket_fault.h"

#include <algorithm>
#include <sstream>

namespace harmony {
namespace {

// SplitMix64 finalizer — the same mixer net/fault.cc keys its message coins
// with, reproduced here because that copy is TU-local by design (each fault
// layer owns its stream; sharing state would couple their schedules).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double CoinDouble(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Stream salts keep the four fault kinds' coins independent per op.
constexpr uint64_t kSaltTear = 0x7453ULL;   // 't'<<8|'s'
constexpr uint64_t kSaltShort = 0x7368ULL;  // 's'<<8|'h'
constexpr uint64_t kSaltStall = 0x7374ULL;  // 's'<<8|'t'
constexpr uint64_t kSaltReset = 0x7273ULL;  // 'r'<<8|'s'

uint64_t OpHash(uint64_t seed, uint64_t channel, uint64_t salt,
                uint64_t op_index) {
  return Mix64(seed ^ Mix64(channel ^ Mix64(salt ^ op_index)));
}

}  // namespace

Status SocketFaultPlan::Validate() const {
  const auto bad = [](double p) { return p < 0.0 || p > 1.0; };
  if (bad(torn_write_prob) || bad(short_read_prob) || bad(stall_prob) ||
      bad(reset_prob)) {
    return Status::InvalidArgument(
        "socket fault probabilities must be in [0, 1]");
  }
  return Status::OK();
}

std::string SocketFaultPlan::ToString() const {
  std::ostringstream os;
  os << "SocketFaultPlan{seed=" << seed << " tear=" << torn_write_prob
     << " short=" << short_read_prob << " stall=" << stall_prob << "/"
     << stall_micros << "us reset=" << reset_prob
     << " kill_after=" << kill_after_frames << "}";
  return os.str();
}

bool SocketFaultInjector::TearWrite(uint64_t op_index, size_t frame_bytes,
                                    size_t* torn_bytes) const {
  if (plan_.torn_write_prob <= 0.0 || frame_bytes < 2) return false;
  const uint64_t h = OpHash(plan_.seed, channel_, kSaltTear, op_index);
  if (CoinDouble(h) >= plan_.torn_write_prob) return false;
  // A second mix picks the tear point in [1, frame_bytes) so a replay tears
  // the identical byte.
  *torn_bytes = 1 + static_cast<size_t>(Mix64(h) % (frame_bytes - 1));
  return true;
}

bool SocketFaultInjector::ShortRead(uint64_t op_index, size_t* cap_bytes) const {
  if (plan_.short_read_prob <= 0.0) return false;
  const uint64_t h = OpHash(plan_.seed, channel_, kSaltShort, op_index);
  if (CoinDouble(h) >= plan_.short_read_prob) return false;
  *cap_bytes = 1 + static_cast<size_t>(Mix64(h) % 16);
  return true;
}

bool SocketFaultInjector::Stall(uint64_t op_index) const {
  if (plan_.stall_prob <= 0.0 || plan_.stall_micros == 0) return false;
  const uint64_t h = OpHash(plan_.seed, channel_, kSaltStall, op_index);
  return CoinDouble(h) < plan_.stall_prob;
}

bool SocketFaultInjector::Reset(uint64_t op_index) const {
  if (plan_.reset_prob <= 0.0) return false;
  const uint64_t h = OpHash(plan_.seed, channel_, kSaltReset, op_index);
  return CoinDouble(h) < plan_.reset_prob;
}

uint64_t BackoffDelayMicros(uint64_t seed, uint32_t attempt) {
  const uint32_t shift = std::min<uint32_t>(attempt, 8);
  const uint64_t exp =
      std::min<uint64_t>(kBackoffCapMicros, kBackoffBaseMicros << shift);
  // Deterministic jitter in [exp/2, exp]: a pure function of (seed, attempt),
  // never of the clock.
  const uint64_t h = Mix64(seed ^ (0xB0FFULL * (attempt + 1)));
  return exp / 2 + h % (exp / 2 + 1);
}

}  // namespace harmony
