#include "net/remote_worker.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "core/block_scan.h"
#include "core/partition.h"

namespace harmony {
namespace {

/// FNV-1a over 64-bit words (the update-log checksum idiom at store scale).
struct Fnv64 {
  uint64_t h = 14695981039346656037ULL;
  void Mix(uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  void MixF32(float f) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    Mix(bits);
  }
};

}  // namespace

uint64_t ComputeStoreDigest(const std::vector<WorkerStore>& stores,
                            const uint64_t* tombstones,
                            size_t tombstone_words) {
  Fnv64 fnv;
  fnv.Mix(stores.size());
  for (const WorkerStore& store : stores) {
    fnv.Mix(static_cast<uint64_t>(store.machine_id()));
    fnv.Mix(store.blocks().size());
    for (const WorkerStore::Block& block : store.blocks()) {
      fnv.Mix(block.vec_shard);
      fnv.Mix(block.dim_block);
      fnv.Mix(block.range.begin);
      fnv.Mix(block.range.end);
      fnv.Mix(block.lists.size());
      // The list map is unordered; digest in sorted-id order so two builds
      // with different insertion histories still agree.
      std::vector<int32_t> ids;
      ids.reserve(block.lists.size());
      for (const auto& [list_id, slice] : block.lists) ids.push_back(list_id);
      std::sort(ids.begin(), ids.end());
      for (const int32_t list_id : ids) {
        const ListSlice& ls = block.lists.at(list_id);
        const size_t rows = ls.slice.num_rows();
        const size_t width = ls.slice.width();
        fnv.Mix(static_cast<uint64_t>(list_id));
        fnv.Mix(rows);
        for (size_t r = 0; r < rows; ++r) {
          fnv.Mix(static_cast<uint64_t>(ls.slice.GlobalId(r)));
          const float* row = ls.slice.Row(r);
          for (size_t c = 0; c < width; ++c) fnv.MixF32(row[c]);
        }
        fnv.Mix(ls.block_norm_sq.size());
        for (const float f : ls.block_norm_sq) fnv.MixF32(f);
        fnv.Mix(ls.total_norm_sq.size());
        for (const float f : ls.total_norm_sq) fnv.MixF32(f);
        fnv.Mix(ls.codes.size());
        for (size_t i = 0; i < ls.codes.size(); ++i) {
          fnv.Mix(static_cast<uint64_t>(ls.codes[i]) ^ (i << 8));
        }
        fnv.Mix(ls.code_err.size());
        for (const float f : ls.code_err) fnv.MixF32(f);
      }
    }
  }
  fnv.Mix(tombstone_words);
  for (size_t w = 0; w < tombstone_words; ++w) fnv.Mix(tombstones[w]);
  return fnv.h;
}

Result<WorkerHello> MakeEngineHello(HarmonyEngine* engine, uint32_t worker_id,
                                    uint32_t num_workers) {
  if (!engine->built()) {
    return Status::FailedPrecondition("engine not built");
  }
  HARMONY_ASSIGN_OR_RETURN(const StoreSnapshot snap, engine->AcquireSnapshot());
  const PartitionPlan& plan = engine->plan();
  WorkerHello hello;
  hello.version = kWireVersion;
  hello.worker_id = worker_id;
  hello.num_workers = num_workers;
  hello.num_machines = static_cast<uint32_t>(plan.num_machines);
  hello.replication = static_cast<uint32_t>(plan.replication);
  hello.b_dim = static_cast<uint32_t>(plan.num_dim_blocks);
  hello.dim = static_cast<uint32_t>(engine->index().dim());
  hello.generation = snap.generation;
  hello.digest =
      ComputeStoreDigest(*snap.stores, snap.tombstones, snap.tombstone_words);
  return hello;
}

SocketWorker::SocketWorker(HarmonyEngine* engine, SocketWorkerOptions opts)
    : engine_(engine),
      opts_(opts),
      shim_(opts.faults, 2ULL * opts.worker_id + 1) {}

Status SocketWorker::Init() {
  HARMONY_RETURN_NOT_OK(opts_.faults.Validate());
  HARMONY_ASSIGN_OR_RETURN(snap_, engine_->AcquireSnapshot());
  HARMONY_ASSIGN_OR_RETURN(
      hello_, MakeEngineHello(engine_, opts_.worker_id, opts_.num_workers));
  init_done_ = true;
  return Status::OK();
}

bool SocketWorker::KillSwitchFired(const SocketChannel& ch) {
  const uint64_t kill = opts_.faults.kill_after_frames;
  if (kill == 0) return false;
  const uint64_t total = frames_before_channel_ + ch.frames_sent();
  if (total < kill) return false;
  if (opts_.kill_is_exit) {
    // Process mode: die hard, exactly as a crashed worker would — no
    // destructors, no flushes, the peer sees the stream cut.
    _exit(kKillExitCode);
  }
  killed_ = true;
  return true;
}

Result<std::vector<uint32_t>> SocketWorker::HandleStageScan(
    const std::vector<uint32_t>& payload) const {
  HARMONY_ASSIGN_OR_RETURN(StageScanRequest req,
                           DecodeStageScanRequest(payload));
  const PartitionPlan& plan = engine_->plan();
  const std::vector<WorkerStore>& stores = *snap_.stores;
  // Semantic validation: everything the decode caps could not know. A
  // frontend/worker state divergence surfaces here as a Status reply, never
  // as an out-of-bounds read.
  if (req.machine >= stores.size()) {
    return Status::InvalidArgument("scan machine " +
                                   std::to_string(req.machine) +
                                   " out of range");
  }
  if (req.dim_block >= plan.num_dim_blocks) {
    return Status::InvalidArgument("scan dim_block " +
                                   std::to_string(req.dim_block) +
                                   " out of range");
  }
  if (req.metric > static_cast<uint32_t>(Metric::kCosine)) {
    return Status::InvalidArgument("scan metric " + std::to_string(req.metric) +
                                   " unknown");
  }
  const DimRange range = plan.dim_ranges[req.dim_block];
  if (req.width != range.width()) {
    return Status::InvalidArgument(
        "scan width " + std::to_string(req.width) + " != block width " +
        std::to_string(range.width()));
  }
  const WorkerStore& store = stores[req.machine];
  std::vector<const ListSlice*> slices(req.lists.size(), nullptr);
  for (size_t li = 0; li < req.lists.size(); ++li) {
    slices[li] = store.FindListSlice(req.vec_shard, req.dim_block,
                                     req.lists[li]);
  }
  const size_t count = req.id.size();
  for (size_t i = 0; i < count; ++i) {
    const int32_t li = req.list[i];
    if (li < 0 || static_cast<size_t>(li) >= slices.size()) {
      return Status::InvalidArgument("candidate references list index " +
                                     std::to_string(li) + " out of range");
    }
    if (slices[li] == nullptr) {
      return Status::InvalidArgument(
          "candidate references list " + std::to_string(req.lists[li]) +
          " not stored on machine " + std::to_string(req.machine));
    }
    if (req.row[i] < 0 || static_cast<size_t>(req.row[i]) >=
                              slices[li]->slice.num_rows()) {
      return Status::InvalidArgument("candidate row " +
                                     std::to_string(req.row[i]) +
                                     " out of range for its list slice");
    }
  }
  if (req.use_norms && req.rem_p_sq.size() != count) {
    return Status::InvalidArgument("norm column size mismatch");
  }

  BlockScanParams scan;
  scan.metric = static_cast<Metric>(req.metric);
  scan.use_norms = req.use_norms;
  scan.prune = req.prune;
  scan.tau = req.tau;
  scan.rem_q_sq = req.rem_q_sq;
  scan.q_slice = req.q_slice.data();
  scan.width = req.width;
  scan.slices = slices.data();
  scan.use_batched = req.use_batched;
  // Default (null-table) dispatch: the process-wide kernel tier. Tiers and
  // tuned shapes are bit-transparent, so the reply is bit-identical to the
  // frontend's own scan regardless of which tier either process runs.
  BlockScanCounters counters;
  const size_t w = ScanBlock(scan, 0, count, req.id.data(), req.list.data(),
                             req.row.data(), req.partial.data(),
                             req.use_norms ? req.rem_p_sq.data() : nullptr,
                             /*bound=*/nullptr, &counters);
  StageScanResult res;
  res.ops = counters.ops;
  res.dropped = counters.dropped;
  res.has_norms = req.use_norms;
  res.id.assign(req.id.begin(), req.id.begin() + w);
  res.list.assign(req.list.begin(), req.list.begin() + w);
  res.row.assign(req.row.begin(), req.row.begin() + w);
  res.partial.assign(req.partial.begin(), req.partial.begin() + w);
  if (req.use_norms) {
    res.rem_p_sq.assign(req.rem_p_sq.begin(), req.rem_p_sq.begin() + w);
  }
  std::vector<uint32_t> out;
  EncodeStageScanResult(res, &out);
  return out;
}

Status SocketWorker::ServeChannel(SocketChannel* ch,
                                  const std::atomic<bool>* stop) {
  HARMONY_CHECK(init_done_);
  if (shim_.enabled()) ch->set_fault_injector(&shim_);
  ch->set_deadline_millis(opts_.poll_ms);
  std::vector<uint32_t> reply;
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    Result<WireMessage> msg = ch->Recv();
    if (!msg.ok()) {
      const StatusCode code = msg.status().code();
      if (code == StatusCode::kTimeout) continue;  // idle; re-check stop
      if (code == StatusCode::kUnavailable) return Status::OK();  // hangup
      return msg.status();  // torn/corrupt stream: drop the connection
    }
    ++requests_served_;
    Status sent;
    switch (msg.value().op) {
      case kOpHello: {
        Result<WorkerHello> theirs = DecodeHello(msg.value().payload);
        Status check = theirs.ok()
                           ? CheckHelloMatch(hello_, theirs.value())
                           : theirs.status();
        if (check.ok()) {
          EncodeHello(hello_, &reply);
          sent = ch->Send(kOpHelloAck, reply);
        } else {
          EncodeErrorStatus(check, &reply);
          sent = ch->Send(kOpError, reply);
        }
        break;
      }
      case kOpStageScan: {
        Result<std::vector<uint32_t>> res = HandleStageScan(msg.value().payload);
        if (res.ok()) {
          sent = ch->Send(kOpStageResult, res.value());
        } else {
          EncodeErrorStatus(res.status(), &reply);
          sent = ch->Send(kOpError, reply);
        }
        break;
      }
      case kOpPing:
        sent = ch->Send(kOpPong, nullptr, 0);
        break;
      case kOpShutdown:
        shutdown_ = true;
        return Status::OK();
      default: {
        EncodeErrorStatus(
            Status::InvalidArgument("unknown opcode " +
                                    std::to_string(msg.value().op)),
            &reply);
        sent = ch->Send(kOpError, reply);
        break;
      }
    }
    if (!sent.ok()) return sent;  // peer gone mid-reply
    if (KillSwitchFired(*ch)) {
      ch->Close();
      return Status::Unavailable("worker killed by fault plan after " +
                                 std::to_string(opts_.faults.kill_after_frames) +
                                 " frames");
    }
  }
  return Status::OK();
}

Status SocketWorker::Serve(SocketListener* listener,
                           const std::atomic<bool>* stop) {
  HARMONY_CHECK(init_done_);
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    if (shutdown_ || killed_) break;
    Result<int> fd = listener->AcceptFd(opts_.poll_ms);
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kTimeout) continue;
      return fd.status();
    }
    SocketChannel ch(fd.value(), /*tenant=*/0, /*adopt_tenant=*/true);
    const Status served = ServeChannel(&ch, stop);
    frames_before_channel_ += ch.frames_sent();
    if (killed_) return served;
    // A torn connection (fault shim, crashed frontend, corrupt stream) must
    // never stop the worker: go back to accepting — that is what the
    // frontend's reconnect-with-backoff dials into.
    (void)served;
  }
  return Status::OK();
}

}  // namespace harmony
