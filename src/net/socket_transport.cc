#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace harmony {
namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deadline timepoint for a per-operation budget; < 0 means "no deadline".
int64_t DeadlineAt(int64_t budget_ms) {
  return budget_ms < 0 ? -1 : NowMillis() + budget_ms;
}

/// Remaining poll timeout toward `deadline_at` (-1 = block).
Result<int> PollTimeout(int64_t deadline_at) {
  if (deadline_at < 0) return -1;
  const int64_t rem = deadline_at - NowMillis();
  if (rem <= 0) return Status::Timeout("socket deadline expired");
  return static_cast<int>(std::min<int64_t>(rem, 1 << 30));
}

/// Polls `fd` for `events` until readable/writable or the deadline passes.
Status PollFor(int fd, short events, int64_t deadline_at) {
  while (true) {
    HARMONY_ASSIGN_OR_RETURN(const int timeout, PollTimeout(deadline_at));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Timeout("socket deadline expired");
    if (errno == EINTR) continue;
    return Status::IoError(std::string("poll: ") + strerror(errno));
  }
}

Status MakeSockaddr(const SocketAddr& addr, sockaddr_storage* ss,
                    socklen_t* len) {
  memset(ss, 0, sizeof(*ss));
  if (addr.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(ss);
    sun->sun_family = AF_UNIX;
    if (addr.path.size() + 1 > sizeof(sun->sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + addr.path);
    }
    memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.path.size() + 1);
    return Status::OK();
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(ss);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host: " + addr.host);
  }
  *len = sizeof(sockaddr_in);
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr uint16_t kFlagFin = 1;

uint32_t OpWord(uint16_t op, uint16_t flags) {
  return static_cast<uint32_t>(op) | (static_cast<uint32_t>(flags) << 16);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t init) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string SocketAddr::ToString() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<SocketAddr> ParseSocketAddr(const std::string& spec) {
  SocketAddr addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      return Status::InvalidArgument("empty unix socket path: " + spec);
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("expected tcp:host:port, got " + spec);
    }
    addr.is_unix = false;
    addr.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = strtol(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Status::InvalidArgument("bad port in " + spec);
    }
    addr.port = static_cast<uint16_t>(port);
    return addr;
  }
  return Status::InvalidArgument(
      "socket address must start with unix: or tcp:, got " + spec);
}

// --- SocketChannel -----------------------------------------------------

SocketChannel::SocketChannel(int fd, uint16_t tenant, bool adopt_tenant)
    : fd_(fd), tenant_(tenant), adopt_tenant_(adopt_tenant) {}

SocketChannel::~SocketChannel() { Close(); }

SocketChannel& SocketChannel::operator=(SocketChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    tenant_ = other.tenant_;
    adopt_tenant_ = other.adopt_tenant_;
    tenant_locked_ = other.tenant_locked_;
    send_seq_ = other.send_seq_;
    recv_seq_ = other.recv_seq_;
    deadline_ms_ = other.deadline_ms_;
    frames_sent_ = other.frames_sent_;
    frames_received_ = other.frames_received_;
    shim_ = other.shim_;
    other.fd_ = -1;
  }
  return *this;
}

void SocketChannel::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status SocketChannel::WriteAll(const uint8_t* data, size_t size,
                               int64_t deadline_at) {
  size_t off = 0;
  while (off < size) {
    HARMONY_RETURN_NOT_OK(PollFor(fd_, POLLOUT, deadline_at));
    const ssize_t n = send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return Status::IoError(std::string("send: ") + strerror(errno));
  }
  return Status::OK();
}

Status SocketChannel::ReadAll(uint8_t* data, size_t size, int64_t deadline_at,
                              size_t read_cap, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t off = 0;
  while (off < size) {
    HARMONY_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline_at));
    const size_t want = std::min(size - off, read_cap);
    const ssize_t n = recv(fd_, data + off, want, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (off == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Unavailable("peer closed connection");
      }
      return Status::IoError("peer closed connection mid-frame (truncated after " +
                             std::to_string(off) + " of " +
                             std::to_string(size) + " bytes)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    return Status::IoError(std::string("recv: ") + strerror(errno));
  }
  return Status::OK();
}

Status SocketChannel::SendFrame(uint16_t op, bool fin, const uint32_t* chunk,
                                size_t words, int64_t deadline_at) {
  if (!valid()) return Status::FailedPrecondition("channel is closed");
  FrameHeader h;
  h.tenant = tenant_;
  h.seq = send_seq_;
  h.length = static_cast<uint16_t>(words + 2);

  std::vector<uint32_t> payload(words + 2);
  payload[0] = OpWord(op, fin ? kFlagFin : 0);
  if (words > 0) std::memcpy(payload.data() + 2, chunk, words * sizeof(uint32_t));
  uint32_t crc = Crc32(&payload[0], sizeof(uint32_t));
  if (words > 0) crc = Crc32(payload.data() + 2, words * sizeof(uint32_t), crc);
  payload[1] = crc;

  std::vector<uint8_t> wire;
  wire.reserve(FrameWireBytes(payload.size()));
  AppendFrameBytes(h, payload.data(), &wire);

  // Deterministic connection-layer faults, keyed by this channel's send
  // frame counter so a replay fails on the identical frame.
  if (shim_ != nullptr && shim_->enabled()) {
    const uint64_t op_index = frames_sent_;
    if (shim_->Stall(op_index)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(shim_->plan().stall_micros));
    }
    if (shim_->Reset(op_index)) {
      Close();
      return Status::IoError("injected connection reset before send");
    }
    size_t torn = 0;
    if (shim_->TearWrite(op_index, wire.size(), &torn)) {
      // Best-effort write of the torn prefix, then hard-close: the peer
      // sees a truncated frame, we see a dead connection.
      (void)WriteAll(wire.data(), torn, deadline_at);
      Close();
      return Status::IoError("injected torn write (" + std::to_string(torn) +
                             "/" + std::to_string(wire.size()) + " bytes)");
    }
  }

  HARMONY_RETURN_NOT_OK(WriteAll(wire.data(), wire.size(), deadline_at));
  ++send_seq_;
  ++frames_sent_;
  return Status::OK();
}

Status SocketChannel::Send(uint16_t op, const uint32_t* payload, size_t words) {
  if (!valid()) return Status::FailedPrecondition("channel is closed");
  const int64_t deadline_at = DeadlineAt(deadline_ms_);
  size_t off = 0;
  do {
    const size_t chunk = std::min(words - off, kMaxChunkWords);
    const bool fin = off + chunk == words;
    HARMONY_RETURN_NOT_OK(
        SendFrame(op, fin, payload + off, chunk, deadline_at));
    off += chunk;
  } while (off < words);
  return Status::OK();
}

Result<WireMessage> SocketChannel::Recv() {
  if (!valid()) return Status::FailedPrecondition("channel is closed");
  const int64_t deadline_at = DeadlineAt(deadline_ms_);
  WireMessage msg;
  bool first_frame = true;
  while (true) {
    // Per-frame short-read fault: one coin keyed by the receive frame
    // counter caps every recv() of this frame, exercising reassembly.
    size_t read_cap = static_cast<size_t>(-1);
    if (shim_ != nullptr && shim_->enabled()) {
      const uint64_t op_index = frames_received_;
      if (shim_->Stall(op_index)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(shim_->plan().stall_micros));
      }
      if (shim_->Reset(op_index)) {
        Close();
        return Status::IoError("injected connection reset before recv");
      }
      size_t cap = 0;
      if (shim_->ShortRead(op_index, &cap)) read_cap = cap;
    }

    uint8_t header_bytes[FrameHeader::kWireBytes];
    bool clean_eof = false;
    Status st = ReadAll(header_bytes, sizeof(header_bytes), deadline_at,
                        read_cap, first_frame ? &clean_eof : nullptr);
    if (!st.ok()) return st;
    uint64_t word = 0;
    std::memcpy(&word, header_bytes, sizeof(word));
    HARMONY_ASSIGN_OR_RETURN(const FrameHeader h, ValidateFrameHeader(word));
    if (h.length < 2) {
      return Status::IoError("frame too short for opcode + checksum: " +
                             std::to_string(h.length) + " words");
    }
    if (adopt_tenant_ && !tenant_locked_) {
      tenant_ = h.tenant;
      tenant_locked_ = true;
    } else if (h.tenant != tenant_) {
      return Status::IoError("frame tenant mismatch: got " +
                             std::to_string(h.tenant) + ", expected " +
                             std::to_string(tenant_));
    }
    if (h.seq != recv_seq_) {
      return Status::IoError("out-of-sequence frame: got seq " +
                             std::to_string(h.seq) + ", expected " +
                             std::to_string(recv_seq_));
    }

    std::vector<uint32_t> payload(h.length);
    HARMONY_RETURN_NOT_OK(
        ReadAll(reinterpret_cast<uint8_t*>(payload.data()),
                payload.size() * sizeof(uint32_t), deadline_at, read_cap,
                nullptr));
    uint32_t crc = Crc32(&payload[0], sizeof(uint32_t));
    if (h.length > 2) {
      crc = Crc32(payload.data() + 2, (h.length - 2) * sizeof(uint32_t), crc);
    }
    if (crc != payload[1]) {
      return Status::IoError("frame checksum mismatch (seq " +
                             std::to_string(h.seq) + ")");
    }
    ++recv_seq_;
    ++frames_received_;

    const uint16_t op = static_cast<uint16_t>(payload[0]);
    const uint16_t flags = static_cast<uint16_t>(payload[0] >> 16);
    if (first_frame) {
      msg.op = op;
      first_frame = false;
    } else if (op != msg.op) {
      return Status::IoError("opcode changed mid-message: " +
                             std::to_string(op) + " vs " +
                             std::to_string(msg.op));
    }
    if (msg.payload.size() + (h.length - 2) > kMaxMessageWords) {
      return Status::IoError("reassembled message exceeds cap");
    }
    msg.payload.insert(msg.payload.end(), payload.begin() + 2, payload.end());
    if (flags & kFlagFin) return msg;
  }
}

// --- SocketListener ----------------------------------------------------

SocketListener::~SocketListener() { Close(); }

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    addr_ = std::move(other.addr_);
    other.fd_ = -1;
  }
  return *this;
}

void SocketListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<SocketListener> SocketListener::Listen(const SocketAddr& addr) {
  const int family = addr.is_unix ? AF_UNIX : AF_INET;
  const int fd = socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  SocketListener listener;
  listener.fd_ = fd;
  listener.addr_ = addr;
  if (addr.is_unix) {
    unlink(addr.path.c_str());
  } else {
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage ss;
  socklen_t len = 0;
  HARMONY_RETURN_NOT_OK(MakeSockaddr(addr, &ss, &len));
  if (bind(fd, reinterpret_cast<sockaddr*>(&ss), len) < 0) {
    return Status::IoError("bind " + addr.ToString() + ": " + strerror(errno));
  }
  if (listen(fd, 16) < 0) {
    return Status::IoError("listen " + addr.ToString() + ": " +
                           strerror(errno));
  }
  if (!addr.is_unix && addr.port == 0) {
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      listener.addr_.port = ntohs(bound.sin_port);
    }
  }
  HARMONY_RETURN_NOT_OK(SetNonBlocking(fd));
  return listener;
}

Result<int> SocketListener::AcceptFd(int64_t deadline_ms) {
  if (!valid()) return Status::FailedPrecondition("listener is closed");
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  while (true) {
    HARMONY_RETURN_NOT_OK(PollFor(fd_, POLLIN, deadline_at));
    const int conn = accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      HARMONY_RETURN_NOT_OK(SetNonBlocking(conn));
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    return Status::IoError(std::string("accept: ") + strerror(errno));
  }
}

Result<int> ConnectFd(const SocketAddr& addr, int64_t deadline_ms) {
  const int family = addr.is_unix ? AF_UNIX : AF_INET;
  const int fd = socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  sockaddr_storage ss;
  socklen_t len = 0;
  st = MakeSockaddr(addr, &ss, &len);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  if (connect(fd, reinterpret_cast<sockaddr*>(&ss), len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string err = strerror(errno);
      close(fd);
      return Status::Unavailable("connect " + addr.ToString() + ": " + err);
    }
    st = PollFor(fd, POLLOUT, deadline_at);
    if (!st.ok()) {
      close(fd);
      return st;
    }
    int so_error = 0;
    socklen_t elen = sizeof(so_error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &elen) < 0 ||
        so_error != 0) {
      close(fd);
      return Status::Unavailable("connect " + addr.ToString() + ": " +
                                 strerror(so_error != 0 ? so_error : errno));
    }
  }
  if (!addr.is_unix) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<SocketChannel> ConnectChannel(const SocketAddr& addr, uint16_t tenant,
                                     int64_t deadline_ms,
                                     uint32_t max_attempts,
                                     uint64_t backoff_seed) {
  Status last = Status::Unavailable("no connect attempts made");
  for (uint32_t attempt = 0; attempt < std::max(max_attempts, 1u); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          BackoffDelayMicros(backoff_seed, attempt - 1)));
    }
    Result<int> fd = ConnectFd(addr, deadline_ms);
    if (fd.ok()) {
      SocketChannel ch(fd.value(), tenant);
      ch.set_deadline_millis(deadline_ms);
      return ch;
    }
    last = fd.status();
  }
  return last;
}

Result<std::pair<SocketChannel, SocketChannel>> MakeChannelPair(
    uint16_t tenant) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return Status::IoError(std::string("socketpair: ") + strerror(errno));
  }
  for (const int fd : fds) {
    const Status st = SetNonBlocking(fd);
    if (!st.ok()) {
      close(fds[0]);
      close(fds[1]);
      return st;
    }
  }
  return std::make_pair(SocketChannel(fds[0], tenant),
                        SocketChannel(fds[1], 0, /*adopt_tenant=*/true));
}

}  // namespace harmony
