#ifndef HARMONY_NET_SOCKET_BACKEND_H_
#define HARMONY_NET_SOCKET_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/engine.h"
#include "net/socket_fault.h"
#include "net/socket_proto.h"
#include "net/socket_transport.h"
#include "util/status.h"

namespace harmony {

struct SocketFrontendOptions {
  /// Per-attempt connect budget; the retry loop owns the overall budget.
  int64_t connect_deadline_ms = 2000;
  /// Per-RPC send/receive deadline.
  int64_t rpc_deadline_ms = 10000;
  /// Delivery attempts per RPC before the worker is declared dead. Each
  /// failed attempt reconnects and retries the (idempotent) request.
  uint32_t max_attempts = 3;
  /// Seed of the deterministic retry backoff (BackoffDelayMicros).
  uint64_t backoff_seed = 0x50C7E7ULL;
  /// Frontend-side deterministic fault shim, applied to every worker
  /// channel (channel salt 2 * worker index).
  SocketFaultPlan faults;
};

struct SocketNetStats {
  uint64_t rpcs = 0;          ///< Requests that eventually delivered.
  uint64_t rpc_failures = 0;  ///< Attempts that failed (torn/timeout/reset).
  uint64_t reconnects = 0;    ///< Successful re-dials (incl. first dials).
  uint64_t workers_marked_dead = 0;
  uint64_t workers_rejoined = 0;
};

/// \brief The frontend's connection table to its worker processes: one
/// serial RPC channel per worker, machine -> worker ownership map
/// (machine % num_workers), retry with seeded backoff, dead-worker marking
/// and restart rejoin (re-dial + handshake). Single-threaded by design —
/// ExecuteSocket drives chains sequentially; the transport's robustness,
/// not parallelism, is what this backend exists to prove.
class SocketFrontend {
 public:
  explicit SocketFrontend(SocketFrontendOptions opts = {});

  /// Dials and handshakes every worker. `expect` pins the engine identity
  /// (shape/generation/digest); its worker_id is overridden per peer. Fails
  /// fast on any mismatch (kFailedPrecondition) or unreachable worker.
  Status Connect(const std::vector<SocketAddr>& workers,
                 const WorkerHello& expect);

  size_t num_workers() const { return peers_.size(); }
  /// Worker process owning `machine`'s stores.
  size_t WorkerOf(size_t machine) const { return machine % peers_.size(); }
  bool WorkerDead(size_t w) const { return peers_[w].dead; }
  size_t workers_dead() const;

  /// One round-trip RPC to worker `w` with retry/backoff/reconnect.
  /// `attempts_out` (may be null) receives the delivery attempts used —
  /// max_attempts when the call exhausts its budget and marks the worker
  /// dead (return kUnavailable). A kOpError reply decodes to its Status and
  /// returns it without retrying (the worker is alive; the request lost).
  Result<WireMessage> Call(size_t w, uint16_t op,
                           const std::vector<uint32_t>& payload,
                           uint32_t* attempts_out = nullptr);

  Status Ping(size_t w);

  /// Re-dials every dead worker (restart rejoin): a worker that came back
  /// with a matching handshake — same generation and digest, i.e. it
  /// replayed its update log — is marked live again. Workers still down
  /// stay dead; only a handshake mismatch fails the call.
  Status ReconnectDead();

  /// Best-effort kOpShutdown to every live worker.
  void ShutdownWorkers();

  const SocketNetStats& stats() const { return stats_; }
  const WorkerHello& expect() const { return expect_; }

 private:
  struct Peer {
    SocketAddr addr;
    SocketChannel ch;
    bool dead = false;
    std::unique_ptr<SocketFaultInjector> shim;
  };

  /// Connect + hello/ack handshake for peer `w`; on success the peer's
  /// channel is replaced.
  Status Dial(size_t w);

  SocketFrontendOptions opts_;
  WorkerHello expect_;
  std::vector<Peer> peers_;
  SocketNetStats stats_;
};

/// \brief The third execution backend, next to ExecuteSimulated and
/// ExecuteThreaded: the same rank-staged chain pipeline, but every
/// dimension-stage scan is an RPC to the worker process owning the block's
/// machine. The frontend keeps routing, candidate build, prewarm, pruning
/// thresholds, health folding, fault ledger and result heaps; workers scan
/// their (bit-identical) stores and return compacted survivors. On a
/// fault-free run the merged results are bit-identical to both in-process
/// engines (monotone pruning makes them interleaving-independent).
///
/// Failure ladder per stage, mirroring the replicated threaded path: retry
/// with backoff (inside SocketFrontend::Call) -> failover across the
/// block's replicas in health order -> all replicas down: the block is
/// lost, booked as a dynamic hop loss and the query tagged degraded. Dead
/// workers feed NodeHealthTracker, folded at each rank barrier.
///
/// Scope gates (Status, not silent): PQ streams and modeled message-level
/// FaultPlans are not supported over sockets (connection-level faults are
/// the SocketFaultPlan's job); shared scans fall back to solo dispatch
/// (identical results, group batching is an in-process optimization).
Result<ThreadedOutput> ExecuteSocket(const IvfIndex& index,
                                     const PartitionPlan& plan,
                                     const std::vector<WorkerStore>& stores,
                                     const PrewarmCache& prewarm,
                                     const BatchRouting& routing,
                                     const DatasetView& queries,
                                     const ExecOptions& opts,
                                     SocketFrontend* net);

/// Engine-level entry: routes `queries` and executes them over `net`
/// (the socket sibling of HarmonyEngine::SearchBatchThreaded).
Result<ThreadedOutput> SearchBatchOverSockets(HarmonyEngine* engine,
                                              SocketFrontend* net,
                                              const DatasetView& queries,
                                              size_t k, size_t nprobe);

}  // namespace harmony

#endif  // HARMONY_NET_SOCKET_BACKEND_H_
