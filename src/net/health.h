#ifndef HARMONY_NET_HEALTH_H_
#define HARMONY_NET_HEALTH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace harmony {

/// \brief Deterministic per-node health tracker feeding replica selection.
///
/// Both execution engines own one tracker per batch. During a probe rank,
/// chain schedules record delivery attempts / failures / observed crashes
/// per node (atomic, commutative — safe from worker threads). At each rank
/// barrier the *client* thread calls FoldEpoch(), which folds the recorded
/// counters into per-node EWMAs in fixed node order and derives the
/// quarantine set the *next* rank's replica ordering reads.
///
/// Determinism: all records come from ChainLossSchedule walks, which are
/// pure functions of (fault plan, chain, replica order); counter folding is
/// commutative addition; and selection only ever reads the epoch snapshot
/// (never the in-flight counters). The simulated and threaded engines
/// therefore compute identical health states — and identical routing — for
/// the same plan, regardless of thread or event timing.
class NodeHealthTracker {
 public:
  explicit NodeHealthTracker(size_t num_nodes);

  size_t num_nodes() const { return num_nodes_; }

  /// Records `n` delivery attempts aimed at `node` this epoch.
  void RecordAttempts(size_t node, uint64_t n) {
    if (n != 0) nodes_[node].attempts.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records `n` dropped attempts (timeouts) aimed at `node` this epoch.
  void RecordFailures(size_t node, uint64_t n) {
    if (n != 0) nodes_[node].failures.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records that `node` was observed crashed. Sticky for the batch.
  void RecordDead(size_t node) {
    nodes_[node].dead.store(1, std::memory_order_relaxed);
  }

  /// Folds this epoch's counters into the EWMAs and resets them. Call from
  /// exactly one thread (the client) at a rank barrier, never concurrently
  /// with Record*.
  void FoldEpoch();

  /// True when replica selection should demote `node` behind healthy peers:
  /// it is known dead or its failure EWMA crossed the quarantine threshold.
  bool Quarantined(size_t node) const { return nodes_[node].quarantined; }
  /// True when the node was ever observed crashed this batch.
  bool KnownDead(size_t node) const {
    return nodes_[node].dead.load(std::memory_order_relaxed) != 0;
  }
  /// EWMA of the per-epoch failed-attempt fraction in [0, 1].
  double FailureEwma(size_t node) const { return nodes_[node].failure_ewma; }
  /// EWMA of the per-epoch absolute failure count (a latency-pressure
  /// proxy: every failure costs its sender a retry-backoff timeout).
  double PenaltyEwma(size_t node) const { return nodes_[node].penalty_ewma; }

  std::string ToString() const;

  /// Failure-rate EWMA at or above this quarantines a node.
  static constexpr double kQuarantineThreshold = 0.25;
  /// EWMA fold factor: new = (1 - alpha) * old + alpha * this_epoch.
  static constexpr double kAlpha = 0.5;

 private:
  struct Node {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint32_t> dead{0};
    // Epoch-folded state, written only by FoldEpoch on the client thread.
    double failure_ewma = 0.0;
    double penalty_ewma = 0.0;
    bool quarantined = false;
  };

  size_t num_nodes_;
  std::unique_ptr<Node[]> nodes_;  // atomics are not movable; fixed array
};

}  // namespace harmony

#endif  // HARMONY_NET_HEALTH_H_
