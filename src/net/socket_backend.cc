#include "net/socket_backend.h"

#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/chain_exec.h"
#include "core/exec_plan.h"
#include "core/router.h"
#include "util/timer.h"

namespace harmony {

SocketFrontend::SocketFrontend(SocketFrontendOptions opts)
    : opts_(opts) {}

Status SocketFrontend::Connect(const std::vector<SocketAddr>& workers,
                               const WorkerHello& expect) {
  if (workers.empty()) {
    return Status::InvalidArgument("socket frontend needs >= 1 worker");
  }
  HARMONY_RETURN_NOT_OK(opts_.faults.Validate());
  expect_ = expect;
  expect_.num_workers = static_cast<uint32_t>(workers.size());
  peers_.clear();
  peers_.resize(workers.size());
  for (size_t w = 0; w < workers.size(); ++w) {
    peers_[w].addr = workers[w];
    if (opts_.faults.enabled()) {
      peers_[w].shim =
          std::make_unique<SocketFaultInjector>(opts_.faults, 2ULL * w);
    }
  }
  for (size_t w = 0; w < workers.size(); ++w) {
    HARMONY_RETURN_NOT_OK(Dial(w));
  }
  return Status::OK();
}

size_t SocketFrontend::workers_dead() const {
  size_t n = 0;
  for (const Peer& p : peers_) n += p.dead ? 1 : 0;
  return n;
}

Status SocketFrontend::Dial(size_t w) {
  Peer& p = peers_[w];
  p.ch.Close();
  HARMONY_ASSIGN_OR_RETURN(const int fd,
                           ConnectFd(p.addr, opts_.connect_deadline_ms));
  SocketChannel ch(fd, static_cast<uint16_t>(w + 1));
  ch.set_deadline_millis(opts_.rpc_deadline_ms);
  if (p.shim != nullptr) ch.set_fault_injector(p.shim.get());
  WorkerHello mine = expect_;
  mine.worker_id = static_cast<uint32_t>(w);
  std::vector<uint32_t> payload;
  EncodeHello(mine, &payload);
  HARMONY_RETURN_NOT_OK(ch.Send(kOpHello, payload));
  HARMONY_ASSIGN_OR_RETURN(const WireMessage ack, ch.Recv());
  if (ack.op == kOpError) return DecodeErrorStatus(ack.payload);
  if (ack.op != kOpHelloAck) {
    return Status::IoError("unexpected handshake reply opcode " +
                           std::to_string(ack.op));
  }
  HARMONY_ASSIGN_OR_RETURN(const WorkerHello theirs, DecodeHello(ack.payload));
  HARMONY_RETURN_NOT_OK(CheckHelloMatch(mine, theirs));
  p.ch = std::move(ch);
  ++stats_.reconnects;
  return Status::OK();
}

Result<WireMessage> SocketFrontend::Call(size_t w, uint16_t op,
                                         const std::vector<uint32_t>& payload,
                                         uint32_t* attempts_out) {
  HARMONY_CHECK(w < peers_.size());
  if (attempts_out != nullptr) *attempts_out = 0;
  Peer& p = peers_[w];
  if (p.dead) {
    return Status::Unavailable("worker " + std::to_string(w) +
                               " is marked dead");
  }
  Status last = Status::Unavailable("no attempt made");
  for (uint32_t attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Deterministic capped exponential backoff: a pure function of
      // (seed, worker, attempt) — a replayed failure retries on the same
      // schedule.
      const uint64_t delay = BackoffDelayMicros(
          opts_.backoff_seed + 0x9E3779B97F4A7C15ULL * (w + 1), attempt - 1);
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    if (!p.ch.valid()) {
      Status dialed = Dial(w);
      if (!dialed.ok()) {
        if (dialed.code() == StatusCode::kFailedPrecondition) {
          // Handshake identity mismatch (e.g. a restarted worker that did
          // not replay its log): retrying cannot fix state divergence.
          if (attempts_out != nullptr) *attempts_out = attempt + 1;
          return dialed;
        }
        ++stats_.rpc_failures;
        last = std::move(dialed);
        continue;
      }
    }
    Status sent = p.ch.Send(op, payload);
    if (!sent.ok()) {
      p.ch.Close();
      ++stats_.rpc_failures;
      last = std::move(sent);
      continue;
    }
    Result<WireMessage> reply = p.ch.Recv();
    if (!reply.ok()) {
      p.ch.Close();
      ++stats_.rpc_failures;
      last = reply.status();
      continue;
    }
    if (attempts_out != nullptr) *attempts_out = attempt + 1;
    ++stats_.rpcs;
    // Application-level rejection from a live worker: surface the Status
    // as-is, no retry (the request, not the transport, is the problem).
    if (reply.value().op == kOpError) {
      return DecodeErrorStatus(reply.value().payload);
    }
    return reply;
  }
  p.dead = true;
  p.ch.Close();
  ++stats_.workers_marked_dead;
  if (attempts_out != nullptr) *attempts_out = opts_.max_attempts;
  return Status::Unavailable(
      "worker " + std::to_string(w) + " unreachable after " +
      std::to_string(opts_.max_attempts) + " attempts: " + last.message());
}

Status SocketFrontend::Ping(size_t w) {
  HARMONY_ASSIGN_OR_RETURN(const WireMessage pong, Call(w, kOpPing, {}));
  if (pong.op != kOpPong) {
    return Status::IoError("ping answered with opcode " +
                           std::to_string(pong.op));
  }
  return Status::OK();
}

Status SocketFrontend::ReconnectDead() {
  for (size_t w = 0; w < peers_.size(); ++w) {
    if (!peers_[w].dead) continue;
    bool joined = false;
    for (uint32_t attempt = 0; attempt < opts_.max_attempts && !joined;
         ++attempt) {
      if (attempt > 0) {
        const uint64_t delay = BackoffDelayMicros(
            opts_.backoff_seed + 0x9E3779B97F4A7C15ULL * (w + 1), attempt - 1);
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      Status dialed = Dial(w);
      if (dialed.ok()) {
        joined = true;
      } else if (dialed.code() == StatusCode::kFailedPrecondition) {
        return dialed;  // came back with divergent state: replay missing
      }
    }
    if (joined) {
      peers_[w].dead = false;
      ++stats_.workers_rejoined;
    }
  }
  return Status::OK();
}

void SocketFrontend::ShutdownWorkers() {
  for (Peer& p : peers_) {
    if (!p.dead && p.ch.valid()) {
      (void)p.ch.Send(kOpShutdown, nullptr, 0);
    }
  }
}

namespace {

/// In-process half of the socket backend: plain per-query state driven by
/// one thread (the frontend's sequential chain loop), so the ExecBackend
/// surface needs no synchronization — PostStage runs inline and PostHop is
/// a plain call (the real hops are the RPCs, handled outside the
/// executor).
class SocketLocalBackend final : public ExecBackend {
 public:
  struct QueryState {
    explicit QueryState(size_t k) : heap(k) {}
    TopKHeap heap;
    std::unordered_set<int64_t> prewarmed;
    uint8_t degraded = 0;
    size_t chains_left = 0;
    double done_seconds = -1.0;
  };

  SocketLocalBackend(size_t num_queries, size_t k) {
    states_.reserve(num_queries);
    for (size_t q = 0; q < num_queries; ++q) states_.emplace_back(k);
  }

  QueryState& state(size_t q) { return states_[q]; }

  void ReadThreshold(int32_t query, float* tau, bool* heap_full) override {
    const TopKHeap& heap = states_[static_cast<size_t>(query)].heap;
    *tau = heap.threshold();
    *heap_full = heap.full();
  }
  const std::unordered_set<int64_t>* PrewarmedIds(size_t query) override {
    return &states_[query].prewarmed;
  }
  void WithQueryHeap(int32_t query,
                     const std::function<void(TopKHeap&)>& fn) override {
    fn(states_[static_cast<size_t>(query)].heap);
  }
  void TagDegraded(int32_t query) override {
    states_[static_cast<size_t>(query)].degraded = 1;
  }
  void ChargeStreamedBytes(size_t machine, uint64_t bytes) override {
    (void)machine;
    bytes_streamed_ += bytes;
  }
  void ChargeCompressedBytes(size_t machine, uint64_t bytes) override {
    (void)machine;
    bytes_streamed_ += bytes;
    bytes_compressed_ += bytes;
  }
  void PostStage(size_t machine, std::function<void()> stage) override {
    (void)machine;
    stage();
  }
  uint32_t PostHop(size_t machine, uint64_t msg_key, uint32_t max_retries,
                   std::function<void()> stage) override {
    (void)machine;
    (void)msg_key;
    (void)max_retries;
    stage();
    return 1;
  }

  uint64_t bytes_streamed() const { return bytes_streamed_; }
  uint64_t bytes_compressed() const { return bytes_compressed_; }

 private:
  std::vector<QueryState> states_;
  uint64_t bytes_streamed_ = 0;
  uint64_t bytes_compressed_ = 0;
};

/// Runs one chain's dimension stages over the RPC channels: per stage,
/// walk the block's replicas in health order, ship the scan, apply the
/// compacted survivors. All replicas down => the block is lost exactly as
/// a threaded baton past its retry budget (BookDynamicHopLoss + degrade).
Status RunChainOverSockets(const ExecContext& ctx, SocketLocalBackend* backend,
                           FaultLedger* ledger, NodeHealthTracker* health,
                           SocketFrontend* net, const QueryChain& chain,
                           ChainExecState* task) {
  const PartitionPlan& plan = *ctx.plan;
  const size_t shard = static_cast<size_t>(chain.shard);
  ChainCandidates& cand = task->cand;
  std::vector<uint32_t> payload;
  std::vector<uint8_t> rorder;
  for (size_t p = 0; p < task->order.size(); ++p) {
    if (cand.id.empty()) break;
    const size_t d = task->order[p];
    const DimRange range = plan.dim_ranges[d];
    const BlockScanParams scan =
        MakeStageScanParams(ctx, backend, chain, cand, d, p, task->rem_q_sq);

    StageScanRequest req;
    req.vec_shard = static_cast<uint32_t>(shard);
    req.dim_block = static_cast<uint32_t>(d);
    req.metric = static_cast<uint32_t>(scan.metric);
    req.prune = scan.prune;
    req.use_norms = scan.use_norms;
    req.use_batched = scan.use_batched;
    req.tau = scan.tau;
    req.rem_q_sq = scan.rem_q_sq;
    req.width = static_cast<uint32_t>(range.width());
    req.q_slice.assign(scan.q_slice, scan.q_slice + range.width());
    req.lists = chain.lists;
    req.id = cand.id;
    req.list = cand.list;
    req.row = cand.row;
    req.partial = cand.partial;
    if (scan.use_norms) req.rem_p_sq = cand.rem_p_sq;

    StageReplicaOrder(ctx, chain, d, &rorder);
    bool delivered = false;
    uint32_t skipped = 0;
    size_t deliver_machine = 0;
    StageScanResult result;
    for (size_t ri = 0; ri < rorder.size() && !delivered; ++ri) {
      const size_t machine =
          static_cast<size_t>(plan.ReplicaOf(shard, d, rorder[ri]));
      const size_t w = net->WorkerOf(machine);
      if (net->WorkerDead(w)) {
        ++skipped;
        continue;
      }
      req.machine = static_cast<uint32_t>(machine);
      EncodeStageScanRequest(req, &payload);
      uint32_t attempts = 0;
      Result<WireMessage> reply =
          net->Call(w, kOpStageScan, payload, &attempts);
      if (reply.ok()) {
        health->RecordAttempts(machine, attempts);
        if (attempts > 1) health->RecordFailures(machine, attempts - 1);
        ledger->BookDelivery(attempts);
        if (reply.value().op != kOpStageResult) {
          return Status::IoError("stage scan answered with opcode " +
                                 std::to_string(reply.value().op));
        }
        HARMONY_ASSIGN_OR_RETURN(result,
                                 DecodeStageScanResult(reply.value().payload));
        if (result.has_norms != scan.use_norms ||
            result.id.size() > req.id.size()) {
          return Status::IoError("stage scan reply shape mismatch");
        }
        delivered = true;
        deliver_machine = machine;
      } else {
        const StatusCode code = reply.status().code();
        // A live worker rejecting the request (decode/validation/state
        // divergence) is a protocol failure, not a dead peer: failing over
        // would mask real divergence. Fail the batch loudly.
        if (code == StatusCode::kInvalidArgument ||
            code == StatusCode::kFailedPrecondition ||
            code == StatusCode::kNotSupported ||
            code == StatusCode::kIoError) {
          return reply.status();
        }
        // Transport exhaustion: Call marked the worker dead. Every machine
        // that worker owned is now known-dead for replica ordering.
        health->RecordAttempts(machine, attempts);
        health->RecordFailures(machine, attempts);
        for (size_t m = 0; m < plan.num_machines; ++m) {
          if (net->WorkerOf(m) == w) health->RecordDead(m);
        }
        ++skipped;
      }
    }
    if (!delivered) {
      // Whole replica set unreachable: the block is lost; the query runs
      // on and completes degraded (rem_q_sq keeps the block's mass — the
      // pruning bound stays conservative without it scanned).
      ledger->BookDynamicHopLoss(chain.query, ctx.max_retries);
      continue;
    }
    for (uint32_t i = 0; i < skipped; ++i) ledger->BookFailover();

    const size_t survivors = result.id.size();
    cand.id = std::move(result.id);
    cand.list = std::move(result.list);
    cand.row = std::move(result.row);
    cand.partial = std::move(result.partial);
    if (scan.use_norms) {
      cand.rem_p_sq = std::move(result.rem_p_sq);
      task->rem_q_sq -= cand.q_block_norm[d];
    }
    ++task->processed;
    task->scanned_mask |= uint64_t{1} << d;
    backend->ChargeStreamedBytes(
        deliver_machine,
        static_cast<uint64_t>(survivors) * range.width() * sizeof(float));
    if (survivors == 0) break;
  }
  return Status::OK();
}

/// The non-PQ rank-barrier merge, verbatim from
/// ChainExecutor::MergeChainResults (PQ streams are gated off over
/// sockets).
void MergeChain(const ExecContext& ctx, ExecBackend* backend,
                const QueryChain& chain, const ChainCandidates& cand) {
  backend->WithQueryHeap(chain.query, [&](TopKHeap& heap) {
    for (size_t i = 0; i < cand.id.size(); ++i) {
      if (ctx.IsDeleted(cand.id[i])) continue;  // dead at the rank barrier
      const float dist = ctx.use_ip ? -cand.partial[i] : cand.partial[i];
      heap.Push(cand.id[i], dist);
    }
  });
}

}  // namespace

Result<ThreadedOutput> ExecuteSocket(const IvfIndex& index,
                                     const PartitionPlan& plan,
                                     const std::vector<WorkerStore>& stores,
                                     const PrewarmCache& prewarm,
                                     const BatchRouting& routing,
                                     const DatasetView& queries,
                                     const ExecOptions& opts,
                                     SocketFrontend* net) {
  if (net == nullptr || net->num_workers() == 0) {
    return Status::InvalidArgument("socket backend requires connected workers");
  }
  if (stores.size() != plan.num_machines) {
    return Status::InvalidArgument("store count does not match plan");
  }
  if (opts.use_pq_streams) {
    return Status::NotSupported(
        "PQ streams are not supported over the socket backend");
  }
  if (opts.faults.enabled()) {
    return Status::InvalidArgument(
        "modeled FaultPlans are sim/threaded-only; socket runs inject "
        "connection-level faults via SocketFrontendOptions::faults");
  }
  if (opts.hedge_after > 0.0) {
    return Status::NotSupported(
        "hedged requests are not supported over the socket backend");
  }
  StopWatch watch;
  HARMONY_ASSIGN_OR_RETURN(
      ExecContext ctx, MakeExecContext(index, plan, stores, prewarm, routing,
                                       queries, opts));
  NodeHealthTracker health(plan.num_machines);
  ctx.AttachHealth(&health);

  SocketLocalBackend backend(queries.size(), opts.k);
  for (const QueryChain& chain : routing.chains) {
    ++backend.state(static_cast<size_t>(chain.query)).chains_left;
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    SocketLocalBackend::QueryState& state = backend.state(q);
    PrewarmQuery(ctx, q, &state.heap, &state.prewarmed, {});
  }

  FaultLedger ledger(&backend);
  ChainExecutor executor(ctx, &backend, &ledger, [] {});
  const auto note_chain_done = [&backend, &watch](int32_t query) {
    SocketLocalBackend::QueryState& state =
        backend.state(static_cast<size_t>(query));
    if (--state.chains_left == 0) {
      state.done_seconds = watch.ElapsedSeconds();
    }
  };
  // Queries the router gave no chain at all complete at t=0 (prewarm only).
  for (size_t q = 0; q < queries.size(); ++q) {
    if (backend.state(q).chains_left == 0) {
      backend.state(q).done_seconds = watch.ElapsedSeconds();
    }
  }

  // Rank-staged chain loop, sequential: later ranks inherit tightened
  // thresholds exactly as in both in-process engines; the rank barrier
  // folds health epochs so replica ordering shifts only between ranks.
  size_t begin = 0;
  size_t chain_index = 0;
  while (begin < routing.chains.size()) {
    size_t end = begin;
    const int32_t rank = routing.chains[begin].probe_rank;
    while (end < routing.chains.size() &&
           routing.chains[end].probe_rank == rank) {
      ++end;
    }
    for (size_t c = begin; c < end; ++c, ++chain_index) {
      const QueryChain& chain = routing.chains[c];
      std::shared_ptr<ChainExecState> task = executor.PrepareChain(chain);
      if (task == nullptr) {
        note_chain_done(chain.query);
        continue;
      }
      if (executor.BuildSoloOrder(task.get(), chain_index)) {
        note_chain_done(chain.query);
        continue;
      }
      HARMONY_RETURN_NOT_OK(RunChainOverSockets(ctx, &backend, &ledger,
                                                &health, net, chain,
                                                task.get()));
      MergeChain(ctx, &backend, chain, task->cand);
      note_chain_done(chain.query);
    }
    health.FoldEpoch();
    begin = end;
  }

  ThreadedOutput out;
  out.results.resize(queries.size());
  out.degraded.assign(queries.size(), 0);
  out.query_seconds.assign(queries.size(), -1.0);
  out.faults = ledger.Snapshot();
  for (size_t q = 0; q < queries.size(); ++q) {
    SocketLocalBackend::QueryState& state = backend.state(q);
    out.results[q] = state.heap.SortedResults();
    out.query_seconds[q] = state.done_seconds;
    if (state.degraded != 0) {
      out.degraded[q] = 1;
      ++out.faults.degraded_queries;
    }
  }
  out.bytes_streamed = backend.bytes_streamed();
  out.bytes_compressed = backend.bytes_compressed();
  out.wall_seconds = watch.ElapsedSeconds();
  return out;
}

Result<ThreadedOutput> SearchBatchOverSockets(HarmonyEngine* engine,
                                              SocketFrontend* net,
                                              const DatasetView& queries,
                                              size_t k, size_t nprobe) {
  if (!engine->built()) {
    return Status::FailedPrecondition("engine not built");
  }
  HARMONY_ASSIGN_OR_RETURN(const StoreSnapshot snap, engine->AcquireSnapshot());
  const ExecOptions exec = engine->BuildExecOptions(k, nprobe);
  const BatchRouting routing =
      RouteBatch(engine->index(), engine->plan(), queries, nprobe,
                 exec.shared_scans ? exec.query_group_size : 1);
  return ExecuteSocket(engine->index(), engine->plan(), *snap.stores,
                       engine->prewarm_cache(), routing, queries, exec, net);
}

}  // namespace harmony
