#include "storage/dataset.h"

#include <cmath>

namespace harmony {

Status Dataset::Append(const float* v, size_t len) {
  if (dim_ == 0) {
    if (len == 0) return Status::InvalidArgument("vector dimension must be > 0");
    dim_ = len;
  }
  if (len != dim_) {
    return Status::InvalidArgument("appended vector has dimension " +
                                   std::to_string(len) + ", expected " +
                                   std::to_string(dim_));
  }
  data_.insert(data_.end(), v, v + len);
  return Status::OK();
}

Dataset Dataset::Gather(const std::vector<int64_t>& row_ids) const {
  Dataset out(row_ids.size(), dim_);
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const float* src = Row(static_cast<size_t>(row_ids[i]));
    float* dst = out.MutableRow(i);
    for (size_t d = 0; d < dim_; ++d) dst[d] = src[d];
  }
  return out;
}

void NormalizeRows(Dataset* dataset) {
  const size_t n = dataset->size();
  const size_t dim = dataset->dim();
  for (size_t i = 0; i < n; ++i) {
    float* row = dataset->MutableRow(i);
    double norm_sq = 0.0;
    for (size_t d = 0; d < dim; ++d) norm_sq += double{row[d]} * row[d];
    if (norm_sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (size_t d = 0; d < dim; ++d) row[d] *= inv;
  }
}

}  // namespace harmony
