#ifndef HARMONY_STORAGE_DATASET_H_
#define HARMONY_STORAGE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace harmony {

/// \brief Non-owning view over a row-major matrix of float vectors.
///
/// All Harmony components operate on views so that base vectors are stored
/// exactly once per grid block (space complexity O(NB * D), Section 4.3).
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(const float* data, size_t num_vectors, size_t dim)
      : data_(data), num_vectors_(num_vectors), dim_(dim) {}

  const float* data() const { return data_; }
  size_t size() const { return num_vectors_; }
  size_t dim() const { return dim_; }
  bool empty() const { return num_vectors_ == 0; }

  /// Pointer to the first component of row `i`.
  const float* Row(size_t i) const { return data_ + i * dim_; }

  /// Total bytes referenced by this view.
  size_t SizeBytes() const { return num_vectors_ * dim_ * sizeof(float); }

 private:
  const float* data_ = nullptr;
  size_t num_vectors_ = 0;
  size_t dim_ = 0;
};

/// \brief Owning row-major float matrix.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t num_vectors, size_t dim)
      : dim_(dim), data_(num_vectors * dim, 0.0f) {}
  Dataset(std::vector<float> data, size_t dim)
      : dim_(dim), data_(std::move(data)) {}

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;

  size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  float* MutableRow(size_t i) { return data_.data() + i * dim_; }
  const float* Row(size_t i) const { return data_.data() + i * dim_; }

  DatasetView View() const { return DatasetView(data_.data(), size(), dim_); }

  const std::vector<float>& raw() const { return data_; }
  std::vector<float>* mutable_raw() { return &data_; }

  /// Appends one vector; `v` must have exactly `dim()` components.
  Status Append(const float* v, size_t len);

  /// Copies the selected rows into a new dataset (used when assigning
  /// clusters to vector shards).
  Dataset Gather(const std::vector<int64_t>& row_ids) const;

  size_t SizeBytes() const { return data_.size() * sizeof(float); }

 private:
  size_t dim_ = 0;
  std::vector<float> data_;
};

/// \brief L2-normalizes every row in place; rows with zero norm are left
/// untouched. Cosine-metric indexes pre-normalize so cosine reduces to
/// inner product (Section 3.1).
void NormalizeRows(Dataset* dataset);

}  // namespace harmony

#endif  // HARMONY_STORAGE_DATASET_H_
