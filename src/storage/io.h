#ifndef HARMONY_STORAGE_IO_H_
#define HARMONY_STORAGE_IO_H_

#include <string>

#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Writes a dataset in the classic `.fvecs` format used by SIFT/GIST
/// benchmark distributions: for each vector, a little-endian int32 dimension
/// followed by `dim` float32 components.
Status WriteFvecs(const std::string& path, const DatasetView& data);

/// \brief Reads an `.fvecs` file. Fails if rows disagree on dimension or the
/// file is truncated.
Result<Dataset> ReadFvecs(const std::string& path);

/// \brief Writes Harmony's own compact binary format:
/// magic "HVDB" | uint64 n | uint64 dim | n*dim float32.
Status WriteHvdb(const std::string& path, const DatasetView& data);

/// \brief Reads the Harmony binary format written by WriteHvdb.
Result<Dataset> ReadHvdb(const std::string& path);

}  // namespace harmony

#endif  // HARMONY_STORAGE_IO_H_
