#include "storage/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace harmony {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kHvdbMagic[4] = {'H', 'V', 'D', 'B'};

}  // namespace

Status WriteFvecs(const std::string& path, const DatasetView& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  const int32_t dim = static_cast<int32_t>(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(data.Row(i), sizeof(float), data.dim(), f.get()) !=
            data.dim()) {
      return Status::IoError("short write: " + path);
    }
  }
  return Status::OK();
}

Result<Dataset> ReadFvecs(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::vector<float> data;
  size_t dim = 0;
  for (;;) {
    int32_t row_dim = 0;
    const size_t got = std::fread(&row_dim, sizeof(row_dim), 1, f.get());
    if (got == 0) break;  // Clean EOF.
    if (row_dim <= 0) {
      return Status::IoError("corrupt fvecs header in " + path);
    }
    if (dim == 0) {
      dim = static_cast<size_t>(row_dim);
    } else if (static_cast<size_t>(row_dim) != dim) {
      return Status::IoError("inconsistent dimension in " + path);
    }
    const size_t old = data.size();
    data.resize(old + dim);
    if (std::fread(data.data() + old, sizeof(float), dim, f.get()) != dim) {
      return Status::IoError("truncated fvecs row in " + path);
    }
  }
  if (dim == 0) return Status::IoError("empty fvecs file: " + path);
  return Dataset(std::move(data), dim);
}

Status WriteHvdb(const std::string& path, const DatasetView& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  const uint64_t n = data.size();
  const uint64_t dim = data.dim();
  if (std::fwrite(kHvdbMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1) {
    return Status::IoError("short write: " + path);
  }
  const size_t count = data.size() * data.dim();
  if (count > 0 &&
      std::fwrite(data.data(), sizeof(float), count, f.get()) != count) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

Result<Dataset> ReadHvdb(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  uint64_t n = 0;
  uint64_t dim = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&dim, sizeof(dim), 1, f.get()) != 1) {
    return Status::IoError("truncated header: " + path);
  }
  if (magic[0] != kHvdbMagic[0] || magic[1] != kHvdbMagic[1] ||
      magic[2] != kHvdbMagic[2] || magic[3] != kHvdbMagic[3]) {
    return Status::IoError("bad magic in " + path);
  }
  if (dim == 0) return Status::IoError("zero dimension in " + path);
  std::vector<float> data(n * dim);
  if (!data.empty() &&
      std::fread(data.data(), sizeof(float), data.size(), f.get()) !=
          data.size()) {
    return Status::IoError("truncated payload: " + path);
  }
  return Dataset(std::move(data), static_cast<size_t>(dim));
}

}  // namespace harmony
