#ifndef HARMONY_STORAGE_UPDATE_LOG_H_
#define HARMONY_STORAGE_UPDATE_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace harmony {

/// One mutation in the update stream.
enum class UpdateOp : uint8_t {
  kInsert = 1,  ///< Payload is the full vector; `id` is the assigned gid.
  kDelete = 2,  ///< No payload; `id` is the tombstoned gid.
};

/// \brief One versioned log record. `seq` is the record's position on the
/// log's append axis (assigned by Append*, monotone, never reused); `gen`
/// is the generation the record was appended under — records with
/// gen < head().gen have been folded into the frozen store by a merge and
/// survive only until Compact() reclaims them.
struct UpdateRecord {
  UpdateOp op = UpdateOp::kInsert;
  uint64_t seq = 0;
  uint64_t gen = 0;
  int64_t id = 0;
  std::vector<float> vec;  ///< Insert payload (dim floats); empty for deletes.
};

/// \brief Generation marker: a (generation, sequence) cursor into the log,
/// the same head/tail idiom a queue object keeps so readers can tell
/// compacted history from pending records ("gen/seq" in ToString).
struct UpdateLogMarker {
  uint64_t gen = 0;
  uint64_t seq = 0;

  bool operator==(const UpdateLogMarker& o) const {
    return gen == o.gen && seq == o.seq;
  }
  std::string ToString() const;
};

/// \brief Durable append-only update log with head/tail generation markers.
///
/// The tail marker names the next append slot; the head marker names the
/// first record that is NOT yet folded into the frozen generation — a merge
/// advances the head to the tail and bumps the generation, after which the
/// records below the head are dead weight kept only for audit until
/// Compact() drops them. Encode/Decode is versioned and length-framed per
/// record with a per-record checksum; Decode rejects truncated or corrupt
/// input with a status (never crashes), so a torn tail on disk loses the
/// torn record, not the process.
class UpdateLog {
 public:
  UpdateLog() = default;
  explicit UpdateLog(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  const UpdateLogMarker& head() const { return head_; }
  const UpdateLogMarker& tail() const { return tail_; }
  /// Retained records, ascending by seq (may start past seq 0 after
  /// Compact).
  const std::vector<UpdateRecord>& records() const { return records_; }
  /// Records at or past the head marker — the not-yet-merged suffix.
  size_t pending() const { return static_cast<size_t>(tail_.seq - head_.seq); }

  /// Appends an insert of `vec` (must have exactly dim() floats) assigned
  /// global id `id`; returns the record's seq.
  uint64_t AppendInsert(int64_t id, const float* vec, size_t dim);

  /// Appends a tombstone for `id`; returns the record's seq.
  uint64_t AppendDelete(int64_t id);

  /// A merge folded every pending record into the frozen generation:
  /// advance the head marker to the tail and open the next generation.
  void MarkMerged();

  /// Drops retained records below the head marker (already merged); the
  /// next Save writes only the pending suffix.
  void Compact();

  /// Serializes markers + retained records (format "HVUL", version 1).
  void EncodeTo(std::string* out) const;

  /// Parses a buffer produced by EncodeTo. Any framing, bounds, version,
  /// or checksum violation returns IoError — including a payload truncated
  /// mid-record — and never reads past `size`.
  static Result<UpdateLog> DecodeFrom(const void* data, size_t size);

  Status Save(const std::string& path) const;
  static Result<UpdateLog> Load(const std::string& path);

  /// Crash-restart recovery hook: Load(path) when the file exists, a fresh
  /// empty log of `dim` when it does not (first boot — nothing to replay).
  /// A present-but-corrupt file still fails loudly; silently starting
  /// empty would drop acknowledged updates.
  static Result<UpdateLog> LoadOrEmpty(const std::string& path, size_t dim);

 private:
  size_t dim_ = 0;
  UpdateLogMarker head_;
  UpdateLogMarker tail_;
  std::vector<UpdateRecord> records_;
};

}  // namespace harmony

#endif  // HARMONY_STORAGE_UPDATE_LOG_H_
