#include "storage/dim_slice.h"

namespace harmony {

std::vector<DimRange> EvenDimBlocks(size_t dim, size_t num_blocks) {
  std::vector<DimRange> blocks;
  if (dim == 0 || num_blocks == 0) return blocks;
  if (num_blocks > dim) num_blocks = dim;
  blocks.reserve(num_blocks);
  const size_t base = dim / num_blocks;
  const size_t extra = dim % num_blocks;
  size_t begin = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t width = base + (b < extra ? 1 : 0);
    blocks.push_back(DimRange{begin, begin + width});
    begin += width;
  }
  return blocks;
}

Result<DimSlicedMatrix> DimSlicedMatrix::FromColumns(
    const DatasetView& source, DimRange range, std::vector<int64_t> row_ids) {
  if (range.end > source.dim() || range.begin >= range.end) {
    return Status::InvalidArgument("dimension range out of bounds");
  }
  DimSlicedMatrix out;
  out.range_ = range;
  out.row_ids_ = std::move(row_ids);
  const size_t width = range.width();
  out.data_.resize(out.row_ids_.size() * width);
  for (size_t i = 0; i < out.row_ids_.size(); ++i) {
    const int64_t gid = out.row_ids_[i];
    if (gid < 0 || static_cast<size_t>(gid) >= source.size()) {
      return Status::OutOfRange("row id out of bounds: " + std::to_string(gid));
    }
    const float* src = source.Row(static_cast<size_t>(gid)) + range.begin;
    float* dst = out.data_.data() + i * width;
    for (size_t d = 0; d < width; ++d) dst[d] = src[d];
  }
  return out;
}

Result<DimSlicedMatrix> DimSlicedMatrix::FromAllRows(
    const DatasetView& source, DimRange range, std::vector<int64_t> labels) {
  if (range.end > source.dim() || range.begin >= range.end) {
    return Status::InvalidArgument("dimension range out of bounds");
  }
  if (labels.size() != source.size()) {
    return Status::InvalidArgument("labels must match source row count");
  }
  DimSlicedMatrix out;
  out.range_ = range;
  out.row_ids_ = std::move(labels);
  const size_t width = range.width();
  out.data_.resize(source.size() * width);
  for (size_t i = 0; i < source.size(); ++i) {
    const float* src = source.Row(i) + range.begin;
    float* dst = out.data_.data() + i * width;
    for (size_t d = 0; d < width; ++d) dst[d] = src[d];
  }
  return out;
}

}  // namespace harmony
