#ifndef HARMONY_STORAGE_DIM_SLICE_H_
#define HARMONY_STORAGE_DIM_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "util/logging.h"
#include "util/status.h"

namespace harmony {

/// \brief Half-open dimension range [begin, end) — one dimension block
/// `I_k` of the paper's dimension-based partition.
struct DimRange {
  size_t begin = 0;
  size_t end = 0;

  size_t width() const { return end - begin; }

  friend bool operator==(const DimRange& a, const DimRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// \brief Splits `dim` dimensions into `num_blocks` contiguous, disjoint
/// ranges whose union is [0, dim). Widths differ by at most one, matching
/// the paper's even quartering ([1, d/4], [d/4+1, d/2], ...).
std::vector<DimRange> EvenDimBlocks(size_t dim, size_t num_blocks);

/// \brief Column-block copy of a matrix: the rows of one vector shard
/// restricted to one dimension block, stored contiguously.
///
/// In a deployment this is the per-machine storage of a grid block
/// `(V_i, D_j)`; storing the slice contiguously is what makes per-block
/// partial distance kernels stream linearly through memory.
class DimSlicedMatrix {
 public:
  DimSlicedMatrix() = default;

  /// Copies columns [range.begin, range.end) of `source` into this slice.
  /// `row_ids` gives, for each local row, the global vector id it carries.
  static Result<DimSlicedMatrix> FromColumns(const DatasetView& source,
                                             DimRange range,
                                             std::vector<int64_t> row_ids);

  /// Slices every row of `source` in order; `labels[i]` is the global id of
  /// source row i (labels.size() must equal source.size()). This is how a
  /// grid block slices one IVF list whose vectors are stored locally.
  static Result<DimSlicedMatrix> FromAllRows(const DatasetView& source,
                                             DimRange range,
                                             std::vector<int64_t> labels);

  size_t num_rows() const { return row_ids_.size(); }
  DimRange range() const { return range_; }
  size_t width() const { return range_.width(); }

  /// Local row -> global vector id.
  int64_t GlobalId(size_t local_row) const { return row_ids_[local_row]; }
  const std::vector<int64_t>& row_ids() const { return row_ids_; }

  /// Pointer to the (contiguous) slice of local row `i`.
  const float* Row(size_t i) const { return data_.data() + i * range_.width(); }

  /// Pointer to the first of `count` contiguous rows starting at `first`.
  /// Rows are stored back-to-back — row stride equals width() — which is
  /// the layout contract the batched scan kernels stream (docs/kernels.md).
  const float* RowBlock(size_t first, size_t count) const {
    HARMONY_CHECK(first + count <= row_ids_.size());
    return data_.data() + first * range_.width();
  }

  /// Appends one row given the *full-dimension* vector it comes from; the
  /// matrix copies its own column range. Used by incremental inserts.
  void AppendFullRow(const float* full_vector, int64_t global_id) {
    row_ids_.push_back(global_id);
    data_.insert(data_.end(), full_vector + range_.begin,
                 full_vector + range_.end);
  }

  size_t SizeBytes() const {
    return data_.size() * sizeof(float) + row_ids_.size() * sizeof(int64_t);
  }

 private:
  DimRange range_;
  std::vector<int64_t> row_ids_;
  std::vector<float> data_;  // num_rows x range_.width(), row-major.
};

}  // namespace harmony

#endif  // HARMONY_STORAGE_DIM_SLICE_H_
