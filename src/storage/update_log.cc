#include "storage/update_log.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace harmony {

namespace {

constexpr char kLogMagic[4] = {'H', 'V', 'U', 'L'};
constexpr uint32_t kLogVersion = 1;
constexpr uint16_t kRecordMarker = 0xA55A;
constexpr uint8_t kRecordVersion = 1;

/// FNV-1a over a byte span: the per-record integrity check.
uint32_t Fnv1a(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutBytes(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

template <typename T>
void Put(std::string* out, T v) {
  PutBytes(out, &v, sizeof(v));
}

/// Bounds-checked little cursor over the decode buffer; every read that
/// would cross `size` fails instead of touching memory.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool ReadBytes(void* out, size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool Read(T* out) {
    return ReadBytes(out, sizeof(T));
  }
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::string UpdateLogMarker::ToString() const {
  return std::to_string(gen) + "/" + std::to_string(seq);
}

uint64_t UpdateLog::AppendInsert(int64_t id, const float* vec, size_t dim) {
  UpdateRecord rec;
  rec.op = UpdateOp::kInsert;
  rec.seq = tail_.seq;
  rec.gen = tail_.gen;
  rec.id = id;
  rec.vec.assign(vec, vec + dim);
  records_.push_back(std::move(rec));
  return tail_.seq++;
}

uint64_t UpdateLog::AppendDelete(int64_t id) {
  UpdateRecord rec;
  rec.op = UpdateOp::kDelete;
  rec.seq = tail_.seq;
  rec.gen = tail_.gen;
  rec.id = id;
  records_.push_back(std::move(rec));
  return tail_.seq++;
}

void UpdateLog::MarkMerged() {
  ++tail_.gen;
  head_.gen = tail_.gen;
  head_.seq = tail_.seq;
}

void UpdateLog::Compact() {
  size_t keep = 0;
  while (keep < records_.size() && records_[keep].seq < head_.seq) ++keep;
  records_.erase(records_.begin(), records_.begin() + keep);
}

void UpdateLog::EncodeTo(std::string* out) const {
  PutBytes(out, kLogMagic, sizeof(kLogMagic));
  Put(out, kLogVersion);
  Put(out, static_cast<uint64_t>(dim_));
  Put(out, head_.gen);
  Put(out, head_.seq);
  Put(out, tail_.gen);
  Put(out, tail_.seq);
  Put(out, static_cast<uint64_t>(records_.size()));
  for (const UpdateRecord& rec : records_) {
    std::string body;
    Put(&body, kRecordMarker);
    Put(&body, kRecordVersion);
    Put(&body, static_cast<uint8_t>(rec.op));
    Put(&body, rec.seq);
    Put(&body, rec.gen);
    Put(&body, rec.id);
    Put(&body, static_cast<uint32_t>(rec.vec.size()));
    if (!rec.vec.empty()) {
      PutBytes(&body, rec.vec.data(), rec.vec.size() * sizeof(float));
    }
    out->append(body);
    Put(out, Fnv1a(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
  }
}

Result<UpdateLog> UpdateLog::DecodeFrom(const void* data, size_t size) {
  Reader r{static_cast<const uint8_t*>(data), size};
  char magic[4];
  uint32_t version = 0;
  uint64_t dim = 0, count = 0;
  UpdateLog log;
  if (!r.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kLogMagic, sizeof(magic)) != 0) {
    return Status::IoError("update log: bad magic");
  }
  if (!r.Read(&version) || version != kLogVersion) {
    return Status::IoError("update log: unsupported version");
  }
  if (!r.Read(&dim) || !r.Read(&log.head_.gen) || !r.Read(&log.head_.seq) ||
      !r.Read(&log.tail_.gen) || !r.Read(&log.tail_.seq) || !r.Read(&count)) {
    return Status::IoError("update log: truncated header");
  }
  if (dim > (1u << 24) || count > (uint64_t{1} << 32)) {
    return Status::IoError("update log: implausible header fields");
  }
  if (log.head_.gen > log.tail_.gen || log.head_.seq > log.tail_.seq) {
    return Status::IoError("update log: head marker past tail");
  }
  log.dim_ = static_cast<size_t>(dim);
  uint64_t prev_seq = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const size_t body_begin = r.pos;
    uint16_t marker = 0;
    uint8_t rec_version = 0, op = 0;
    UpdateRecord rec;
    uint32_t vec_len = 0;
    if (!r.Read(&marker) || marker != kRecordMarker) {
      return Status::IoError("update log: bad record marker at record " +
                             std::to_string(i));
    }
    if (!r.Read(&rec_version) || rec_version != kRecordVersion) {
      return Status::IoError("update log: unsupported record version");
    }
    if (!r.Read(&op) || !r.Read(&rec.seq) || !r.Read(&rec.gen) ||
        !r.Read(&rec.id) || !r.Read(&vec_len)) {
      return Status::IoError("update log: truncated record header");
    }
    if (op != static_cast<uint8_t>(UpdateOp::kInsert) &&
        op != static_cast<uint8_t>(UpdateOp::kDelete)) {
      return Status::IoError("update log: unknown op");
    }
    rec.op = static_cast<UpdateOp>(op);
    if (rec.op == UpdateOp::kInsert ? vec_len != dim : vec_len != 0) {
      return Status::IoError("update log: payload length mismatch");
    }
    if (vec_len > 0) {
      rec.vec.resize(vec_len);
      if (!r.ReadBytes(rec.vec.data(), vec_len * sizeof(float))) {
        return Status::IoError("update log: truncated payload");
      }
    }
    const size_t body_end = r.pos;
    uint32_t checksum = 0;
    if (!r.Read(&checksum) ||
        checksum != Fnv1a(r.data + body_begin, body_end - body_begin)) {
      return Status::IoError("update log: checksum mismatch at record " +
                             std::to_string(i));
    }
    if (rec.seq >= log.tail_.seq || (i > 0 && rec.seq <= prev_seq)) {
      return Status::IoError("update log: sequence numbers not ascending");
    }
    prev_seq = rec.seq;
    log.records_.push_back(std::move(rec));
  }
  if (r.pos != size) {
    return Status::IoError("update log: trailing bytes after last record");
  }
  return log;
}

Status UpdateLog::Save(const std::string& path) const {
  std::string buf;
  EncodeTo(&buf);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

Result<UpdateLog> UpdateLog::Load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::string buf;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    buf.append(chunk, got);
  }
  return DecodeFrom(buf.data(), buf.size());
}

Result<UpdateLog> UpdateLog::LoadOrEmpty(const std::string& path, size_t dim) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return UpdateLog(dim);
  f.reset();
  return Load(path);
}

}  // namespace harmony
