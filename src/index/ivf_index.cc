#include "index/ivf_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>

#include "index/scan_kernel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace harmony {

namespace {

constexpr char kIvfMagic[5] = {'H', 'I', 'V', 'F', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  if (!WritePod(f, n)) return false;
  return v.empty() || std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (!ReadPod(f, &n)) return false;
  v->resize(n);
  return v->empty() || std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace

Status IvfIndex::Train(const DatasetView& data) {
  if (trained()) return Status::FailedPrecondition("index already trained");
  if (data.size() < params_.nlist) {
    return Status::InvalidArgument("need at least nlist training points");
  }
  StopWatch watch;
  KMeansParams km;
  km.num_clusters = params_.nlist;
  km.max_iters = params_.train_iters;
  km.seed = params_.seed;
  km.num_threads = params_.train_threads;
  // For large nlist, k-means++ seeding dominates training time without
  // improving IVF recall much; fall back to random seeding.
  km.use_kmeanspp = params_.nlist <= 256;

  Result<KMeansResult> trained_result = [&]() -> Result<KMeansResult> {
    if (params_.max_train_points > 0 && data.size() > params_.max_train_points) {
      Rng rng(params_.seed ^ 0xABCDEF);
      std::vector<int64_t> ids(data.size());
      for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i);
      rng.Shuffle(&ids);
      ids.resize(params_.max_train_points);
      Dataset sample(ids.size(), data.dim());
      for (size_t i = 0; i < ids.size(); ++i) {
        const float* src = data.Row(static_cast<size_t>(ids[i]));
        std::copy(src, src + data.dim(), sample.MutableRow(i));
      }
      return TrainKMeans(sample.View(), km);
    }
    return TrainKMeans(data, km);
  }();
  if (!trained_result.ok()) return trained_result.status();

  centroids_ = std::move(trained_result.value().centroids);
  list_ids_.assign(params_.nlist, {});
  list_vectors_.assign(params_.nlist, Dataset());
  build_stats_.train_seconds = watch.ElapsedSeconds();
  return Status::OK();
}

Status IvfIndex::Add(const DatasetView& data) {
  if (!trained()) return Status::FailedPrecondition("Train() must run first");
  if (data.dim() != dim()) {
    return Status::InvalidArgument("dimension mismatch on Add");
  }
  StopWatch watch;
  const DatasetView cent = centroids_.View();
  for (size_t i = 0; i < data.size(); ++i) {
    const int32_t list = NearestCentroid(cent, data.Row(i));
    const int64_t id = static_cast<int64_t>(num_vectors_ + i);
    list_ids_[static_cast<size_t>(list)].push_back(id);
    HARMONY_RETURN_NOT_OK(list_vectors_[static_cast<size_t>(list)].Append(
        data.Row(i), data.dim()));
  }
  num_vectors_ += data.size();
  build_stats_.add_seconds += watch.ElapsedSeconds();
  return Status::OK();
}

Status IvfIndex::AddAssigned(int32_t list_id, int64_t id, const float* vec,
                             size_t dim) {
  if (!trained()) return Status::FailedPrecondition("Train() must run first");
  if (dim != this->dim()) {
    return Status::InvalidArgument("dimension mismatch on AddAssigned");
  }
  if (list_id < 0 || static_cast<size_t>(list_id) >= nlist()) {
    return Status::InvalidArgument("list id out of range");
  }
  if (id < 0) return Status::InvalidArgument("negative global id");
  list_ids_[static_cast<size_t>(list_id)].push_back(id);
  HARMONY_RETURN_NOT_OK(
      list_vectors_[static_cast<size_t>(list_id)].Append(vec, dim));
  ++num_vectors_;
  return Status::OK();
}

size_t IvfIndex::RemoveIds(const uint64_t* bits, size_t words) {
  if (bits == nullptr || words == 0) return 0;
  const auto is_set = [bits, words](int64_t id) {
    if (id < 0) return false;
    const size_t word = static_cast<size_t>(id) >> 6;
    if (word >= words) return false;
    return ((bits[word] >> (static_cast<size_t>(id) & 63)) & 1u) != 0;
  };
  size_t removed = 0;
  for (size_t l = 0; l < nlist(); ++l) {
    std::vector<int64_t>& ids = list_ids_[l];
    bool any = false;
    for (const int64_t id : ids) {
      if (is_set(id)) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    const DatasetView old_vecs = list_vectors_[l].View();
    std::vector<int64_t> kept_ids;
    Dataset kept_vecs;
    kept_ids.reserve(ids.size());
    kept_vecs = Dataset(std::vector<float>(), dim());
    for (size_t r = 0; r < ids.size(); ++r) {
      if (is_set(ids[r])) {
        ++removed;
        continue;
      }
      kept_ids.push_back(ids[r]);
      (void)kept_vecs.Append(old_vecs.Row(r), dim());
    }
    list_ids_[l] = std::move(kept_ids);
    list_vectors_[l] = std::move(kept_vecs);
  }
  num_vectors_ -= removed;
  return removed;
}

std::vector<int32_t> IvfIndex::ProbeLists(const float* query,
                                          size_t nprobe) const {
  const size_t k = std::min(nprobe, nlist());
  // Centroid rows are contiguous, so one batched kernel call scores all of
  // them; selection is then a partial top-nprobe (nth_element + sort of the
  // selected prefix) instead of ordering the whole scored set. Ties break
  // by list id, matching the historical (distance, id) partial sort.
  std::vector<float> scores(nlist(), 0.0f);
  ScanKernels().l2_batch(query, centroids_.Row(0), nlist(), dim(),
                         scores.data());
  std::vector<int32_t> out(nlist());
  std::iota(out.begin(), out.end(), 0);
  const auto nearer = [&scores](int32_t a, int32_t b) {
    const float da = scores[static_cast<size_t>(a)];
    const float db = scores[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  };
  if (k < nlist()) {
    std::nth_element(out.begin(), out.begin() + static_cast<long>(k),
                     out.end(), nearer);
    out.resize(k);
  }
  std::sort(out.begin(), out.end(), nearer);
  return out;
}

Result<std::vector<Neighbor>> IvfIndex::Search(const float* query, size_t k,
                                               size_t nprobe) const {
  if (!trained()) return Status::FailedPrecondition("index not trained");
  if (num_vectors_ == 0) return Status::FailedPrecondition("index empty");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }
  TopKHeap heap(k);
  const ScanKernelTable& kernels = ScanKernels();
  const bool use_l2 = metric() == Metric::kL2;
  std::vector<float> scores;
  for (const int32_t list : ProbeLists(query, nprobe)) {
    const auto& ids = list_ids_[static_cast<size_t>(list)];
    if (ids.empty()) continue;
    // A list's vectors are one contiguous row-major matrix: score the whole
    // list with one batched kernel call, then feed the heap in row order
    // (push order and distances are identical to the per-row path).
    const DatasetView vecs = ListVectors(static_cast<size_t>(list));
    scores.assign(ids.size(), 0.0f);
    if (use_l2) {
      kernels.l2_batch(query, vecs.Row(0), ids.size(), dim(), scores.data());
    } else {
      kernels.ip_batch(query, vecs.Row(0), ids.size(), dim(), scores.data());
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      heap.Push(ids[i], use_l2 ? scores[i] : -scores[i]);
    }
  }
  return heap.SortedResults();
}

std::vector<int64_t> IvfIndex::ListSizes() const {
  std::vector<int64_t> sizes(nlist());
  for (size_t c = 0; c < nlist(); ++c) {
    sizes[c] = static_cast<int64_t>(list_ids_[c].size());
  }
  return sizes;
}

size_t IvfIndex::SizeBytes() const {
  size_t bytes = centroids_.SizeBytes();
  for (size_t c = 0; c < nlist(); ++c) {
    bytes += list_vectors_[c].SizeBytes();
    bytes += list_ids_[c].size() * sizeof(int64_t);
  }
  return bytes;
}

Status IvfIndex::Save(const std::string& path) const {
  if (!trained()) return Status::FailedPrecondition("index not trained");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  bool ok = std::fwrite(kIvfMagic, 1, sizeof(kIvfMagic), f.get()) ==
            sizeof(kIvfMagic);
  ok = ok && WritePod(f.get(), static_cast<uint64_t>(params_.nlist));
  ok = ok && WritePod(f.get(), static_cast<int32_t>(params_.metric));
  ok = ok && WritePod(f.get(), static_cast<uint64_t>(params_.seed));
  ok = ok && WritePod(f.get(), static_cast<uint64_t>(dim()));
  ok = ok && WritePod(f.get(), static_cast<uint64_t>(num_vectors_));
  ok = ok && WriteVec(f.get(), centroids_.raw());
  for (size_t l = 0; ok && l < nlist(); ++l) {
    ok = ok && WriteVec(f.get(), list_ids_[l]);
    ok = ok && WriteVec(f.get(), list_vectors_[l].raw());
  }
  return ok ? Status::OK() : Status::IoError("short write: " + path);
}

Result<IvfIndex> IvfIndex::Load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[sizeof(kIvfMagic)];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kIvfMagic, sizeof(magic)) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  uint64_t nlist = 0, seed = 0, dim = 0, num_vectors = 0;
  int32_t metric = 0;
  if (!ReadPod(f.get(), &nlist) || !ReadPod(f.get(), &metric) ||
      !ReadPod(f.get(), &seed) || !ReadPod(f.get(), &dim) ||
      !ReadPod(f.get(), &num_vectors)) {
    return Status::IoError("truncated header: " + path);
  }
  if (nlist == 0 || dim == 0) {
    return Status::IoError("corrupt header in " + path);
  }
  IvfParams params;
  params.nlist = static_cast<size_t>(nlist);
  params.metric = static_cast<Metric>(metric);
  params.seed = seed;
  IvfIndex index(params);
  std::vector<float> centroid_data;
  if (!ReadVec(f.get(), &centroid_data) ||
      centroid_data.size() != nlist * dim) {
    return Status::IoError("truncated centroids: " + path);
  }
  index.centroids_ = Dataset(std::move(centroid_data),
                             static_cast<size_t>(dim));
  index.list_ids_.resize(params.nlist);
  index.list_vectors_.resize(params.nlist);
  uint64_t total = 0;
  for (size_t l = 0; l < params.nlist; ++l) {
    std::vector<float> vec_data;
    if (!ReadVec(f.get(), &index.list_ids_[l]) ||
        !ReadVec(f.get(), &vec_data)) {
      return Status::IoError("truncated list " + std::to_string(l) + ": " +
                             path);
    }
    if (vec_data.size() != index.list_ids_[l].size() * dim) {
      return Status::IoError("list size mismatch in " + path);
    }
    total += index.list_ids_[l].size();
    index.list_vectors_[l] = Dataset(std::move(vec_data),
                                     static_cast<size_t>(dim));
  }
  if (total != num_vectors) {
    return Status::IoError("vector count mismatch in " + path);
  }
  index.num_vectors_ = static_cast<size_t>(num_vectors);
  return index;
}

}  // namespace harmony
