// AVX2 batched block-scan kernels. Compiled with -mavx2 -mfma (see
// src/CMakeLists.txt) and referenced only when the running CPU reports
// AVX2 support — ScanKernels() resolves the table once at first use.
//
// Bitwise-identity contract (docs/kernels.md): every row of a batched call
// goes through exactly the operation sequence of this TU's single-row
// RowImpl — 16-wide chunks into two accumulators, an 8-wide chunk into the
// first, horizontal sum, then an unfused scalar tail (-ffp-contract=off is
// pinned on this TU so the tail's rounding is not compiler-discretionary) —
// and widths below 16 fall back to the portable bodies, preserving the
// historical runtime-dispatch cutover bit-for-bit. The register blocking
// (4/6/8 rows, picked by the autotuned KernelShape on the shaped entries)
// only reuses each *query* load across the row group; it never reorders a
// row's own accumulation, so every shape produces identical bits.

#include "index/scan_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace harmony {
namespace avx2 {

namespace {

/// Horizontal sum of an 8-float register; identical to distance_avx2.cc.
inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

/// Horizontal sums of four registers at once, lane i holding Hsum256(v_i).
/// Each lane goes through the *same* addition tree as Hsum256 —
/// lo+hi, then ((s0+s1)+(s2+s3)) via two hadd levels — so the results are
/// bit-identical to four scalar Hsum256 calls at a third of the shuffle
/// uops. This is what makes the row blocking pay off at narrow widths,
/// where the reduction rivals the accumulation loop in cost.
inline __m128 Hsum256x4(__m256 v0, __m256 v1, __m256 v2, __m256 v3) {
  const __m128 s0 = _mm_add_ps(_mm256_castps256_ps128(v0),
                               _mm256_extractf128_ps(v0, 1));
  const __m128 s1 = _mm_add_ps(_mm256_castps256_ps128(v1),
                               _mm256_extractf128_ps(v1, 1));
  const __m128 s2 = _mm_add_ps(_mm256_castps256_ps128(v2),
                               _mm256_extractf128_ps(v2, 1));
  const __m128 s3 = _mm_add_ps(_mm256_castps256_ps128(v3),
                               _mm256_extractf128_ps(v3, 1));
  const __m128 h01 = _mm_hadd_ps(s0, s1);  // [s00+s01, s02+s03, s10+s11, ..]
  const __m128 h23 = _mm_hadd_ps(s2, s3);
  return _mm_hadd_ps(h01, h23);  // lane i = (si0+si1)+(si2+si3)
}

inline __m256 FmaddOrMulAdd(__m256 a, __m256 b, __m256 acc) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(a, b, acc);
#else
  return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
#endif
}

/// Single-row kernel: the frozen AVX2 accumulation sequence — 16-wide
/// chunks into two accumulators, an 8-wide chunk into the first, the
/// Hsum256 tree, then a scalar tail. Defined here (not delegated to
/// distance_avx2.cc) because this TU pins -ffp-contract=off: the scalar
/// tail must round each multiply separately so the batch/group/AVX-512
/// kernels — whose tails are compiled identically — can reproduce it
/// bit-for-bit at every width. distance_avx2.cc predates that pin and its
/// tail contraction is compiler-discretionary, so it cannot serve as the
/// table's row reference.
template <bool kIp>
float RowImpl(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    if constexpr (kIp) {
      acc0 = FmaddOrMulAdd(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
      acc1 = FmaddOrMulAdd(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    } else {
      const __m256 d0 =
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
      const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                      _mm256_loadu_ps(b + i + 8));
      acc0 = FmaddOrMulAdd(d0, d0, acc0);
      acc1 = FmaddOrMulAdd(d1, d1, acc1);
    }
  }
  for (; i + 8 <= dim; i += 8) {
    if constexpr (kIp) {
      acc0 = FmaddOrMulAdd(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    } else {
      const __m256 d =
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
      acc0 = FmaddOrMulAdd(d, d, acc0);
    }
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    if constexpr (kIp) {
      total += a[i] * b[i];
    } else {
      const float d = a[i] - b[i];
      total += d * d;
    }
  }
  return total;
}

/// Pulls the head of an upcoming row toward L1 while the current row group
/// computes. Rows are one contiguous stream, so the hardware prefetcher
/// covers the body; issuing more than a few lines here only burns load-port
/// slots (measured: full-row prefetch costs ~15% at width >= 128).
inline void PrefetchRow(const float* row, size_t width) {
  const size_t lines = std::min<size_t>(width, 64);
  for (size_t i = 0; i < lines; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(row + i), _MM_HINT_T0);
  }
}

/// Reduces RB (acc0, acc1) register pairs to scalars, four at a time
/// through Hsum256x4 and one at a time through Hsum256 for the remainder —
/// each lane runs the identical addition tree either way.
template <size_t RB>
inline void ReduceBlock(const __m256* a0, const __m256* a1, float* t) {
  size_t g = 0;
  for (; g + 4 <= RB; g += 4) {
    alignas(16) float s[4];
    _mm_store_ps(
        s, Hsum256x4(_mm256_add_ps(a0[g], a1[g]),
                     _mm256_add_ps(a0[g + 1], a1[g + 1]),
                     _mm256_add_ps(a0[g + 2], a1[g + 2]),
                     _mm256_add_ps(a0[g + 3], a1[g + 3])));
    t[g] = s[0];
    t[g + 1] = s[1];
    t[g + 2] = s[2];
    t[g + 3] = s[3];
  }
  for (; g < RB; ++g) t[g] = Hsum256(_mm256_add_ps(a0[g], a1[g]));
}

/// Register-blocked batch body: RB rows' frozen accumulation chains carried
/// concurrently, `pf` rows of the next group prefetched ahead. Per row the
/// sequence is exactly the single-row AVX2 kernel; RB and pf never change a
/// bit of the result.
template <size_t RB, bool kIp>
void BatchImpl(const float* q, const float* rows, size_t count, size_t width,
               float* accum, size_t pf) {
  size_t r = 0;
  for (; r + RB <= count; r += RB) {
    const float* rp[RB];
    for (size_t g = 0; g < RB; ++g) rp[g] = rows + (r + g) * width;
    if (pf != 0 && r + RB + pf <= count) {
      for (size_t g = 0; g < pf; ++g) {
        PrefetchRow(rows + (r + RB + g) * width, width);
      }
    }
    __m256 a0[RB], a1[RB];
    for (size_t g = 0; g < RB; ++g) {
      a0[g] = _mm256_setzero_ps();
      a1[g] = _mm256_setzero_ps();
    }
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      const __m256 q1 = _mm256_loadu_ps(q + i + 8);
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd(q0, _mm256_loadu_ps(rp[g] + i), a0[g]);
          a1[g] = FmaddOrMulAdd(q1, _mm256_loadu_ps(rp[g] + i + 8), a1[g]);
        } else {
          __m256 d = _mm256_sub_ps(q0, _mm256_loadu_ps(rp[g] + i));
          a0[g] = FmaddOrMulAdd(d, d, a0[g]);
          d = _mm256_sub_ps(q1, _mm256_loadu_ps(rp[g] + i + 8));
          a1[g] = FmaddOrMulAdd(d, d, a1[g]);
        }
      }
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd(q0, _mm256_loadu_ps(rp[g] + i), a0[g]);
        } else {
          const __m256 d = _mm256_sub_ps(q0, _mm256_loadu_ps(rp[g] + i));
          a0[g] = FmaddOrMulAdd(d, d, a0[g]);
        }
      }
    }
    float t[RB];
    ReduceBlock<RB>(a0, a1, t);
    for (; i < width; ++i) {
      const float qi = q[i];
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          t[g] += qi * rp[g][i];
        } else {
          const float d = qi - rp[g][i];
          t[g] += d * d;
        }
      }
    }
    for (size_t g = 0; g < RB; ++g) accum[r + g] += t[g];
  }
  for (; r < count; ++r) {
    accum[r] += RowImpl<kIp>(q, rows + r * width, width);
  }
}

template <bool kIp>
void BatchShapedImpl(const float* q, const float* rows, size_t count,
                     size_t width, float* accum, KernelShape shape) {
  // Small-batch guard: below the row block there is nothing to register-
  // block — dispatch straight to the tier's canonical per-row kernel, the
  // exact exported function the per-row path runs, so tiny runs pay
  // per-row cost, never blocked-kernel setup.
  if (count < shape.row_block) {
    for (size_t r = 0; r < count; ++r) {
      accum[r] += kIp ? IpRow(q, rows + r * width, width)
                      : L2Row(q, rows + r * width, width);
    }
    return;
  }
  switch (shape.row_block) {
    case 6:
      BatchImpl<6, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
    case 8:
      BatchImpl<8, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
    default:
      BatchImpl<4, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
  }
}

}  // namespace

float L2Row(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::L2Row(a, b, width);
  return RowImpl<false>(a, b, width);
}

float IpRow(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::IpRow(a, b, width);
  return RowImpl<true>(a, b, width);
}

void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  if (width < 16) {
    portable::L2BatchShaped(q, rows, count, width, accum, shape);
    return;
  }
  BatchShapedImpl<false>(q, rows, count, width, accum, shape);
}

void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  if (width < 16) {
    portable::IpBatchShaped(q, rows, count, width, accum, shape);
    return;
  }
  BatchShapedImpl<true>(q, rows, count, width, accum, shape);
}

void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  // Historical default shape: 4-row blocking, 2-row prefetch.
  L2BatchShaped(q, rows, count, width, accum, KernelShape{4, 4, 2});
}

void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  // IP has no subtract temporary, so 6 rows x 2 accumulators plus the two
  // query registers still fit the 16 ymm registers; the wider group
  // amortizes each query load over 6 FMAs instead of 4 (the kernel is
  // load-port-bound, so fewer loads per row is the win).
  IpBatchShaped(q, rows, count, width, accum, KernelShape{6, 4, 2});
}

namespace {

/// Query-tiled scan over one row at a time: the row chunks v0/v1 are loaded
/// once and scored against NQ queries (two accumulators each — NQ <= 4
/// keeps 2*NQ + 2 + 1 ymm registers live; wider tiles spill and exist only
/// for the autotuner to measure and reject on this tier). Per (query, row)
/// the chunking, accumulator split, reduction, and scalar tail are exactly
/// the single-row scheme, so the tile is bit-identical to NQ independent
/// batch calls.
template <size_t NQ, bool kIp>
void GroupTile(const float* const* qs, const float* rows, size_t count,
               size_t width, float* const* accums, size_t pf) {
  static_assert(NQ >= 2 && NQ <= kMaxQueryTile);
  for (size_t r = 0; r < count; ++r) {
    if (pf != 0 && r + pf < count) PrefetchRow(rows + (r + pf) * width, width);
    const float* row = rows + r * width;
    __m256 a0[NQ], a1[NQ];
    for (size_t g = 0; g < NQ; ++g) {
      a0[g] = _mm256_setzero_ps();
      a1[g] = _mm256_setzero_ps();
    }
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      const __m256 v1 = _mm256_loadu_ps(row + i + 8);
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i), v0, a0[g]);
          a1[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i + 8), v1, a1[g]);
        } else {
          __m256 d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i), v0);
          a0[g] = FmaddOrMulAdd(d, d, a0[g]);
          d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i + 8), v1);
          a1[g] = FmaddOrMulAdd(d, d, a1[g]);
        }
      }
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i), v0, a0[g]);
        } else {
          const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i), v0);
          a0[g] = FmaddOrMulAdd(d, d, a0[g]);
        }
      }
    }
    float t[NQ];
    ReduceBlock<NQ>(a0, a1, t);
    for (; i < width; ++i) {
      const float ri = row[i];
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          t[g] += qs[g][i] * ri;
        } else {
          const float d = qs[g][i] - ri;
          t[g] += d * d;
        }
      }
    }
    for (size_t g = 0; g < NQ; ++g) accums[g][r] += t[g];
  }
}

/// Runtime tile-width dispatch: n == 1 degenerates to a batch call (same
/// bits), 2..8 pick the matching GroupTile instantiation.
template <bool kIp>
void GroupTileRun(const float* const* qs, size_t n, const float* rows,
                  size_t count, size_t width, float* const* accums,
                  KernelShape shape) {
  const size_t pf = shape.prefetch;
  switch (n) {
    case 1:
      BatchShapedImpl<kIp>(qs[0], rows, count, width, accums[0], shape);
      break;
    case 2:
      GroupTile<2, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 3:
      GroupTile<3, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 4:
      GroupTile<4, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 5:
      GroupTile<5, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 6:
      GroupTile<6, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 7:
      GroupTile<7, kIp>(qs, rows, count, width, accums, pf);
      break;
    default:
      GroupTile<8, kIp>(qs, rows, count, width, accums, pf);
      break;
  }
}

template <bool kIp>
void GroupShapedImpl(const float* const* qs, size_t nq, const float* rows,
                     size_t count, size_t width, float* const* accums,
                     KernelShape shape) {
  const size_t qt =
      std::clamp<size_t>(shape.query_tile, 2, kMaxQueryTile);
  size_t g = 0;
  for (; g + qt <= nq; g += qt) {
    GroupTileRun<kIp>(qs + g, qt, rows, count, width, accums + g, shape);
  }
  if (g < nq) {
    GroupTileRun<kIp>(qs + g, nq - g, rows, count, width, accums + g, shape);
  }
}

}  // namespace

void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  if (width < 16) {
    portable::L2GroupShaped(qs, nq, rows, count, width, accums, shape);
    return;
  }
  GroupShapedImpl<false>(qs, nq, rows, count, width, accums, shape);
}

void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  if (width < 16) {
    portable::IpGroupShaped(qs, nq, rows, count, width, accums, shape);
    return;
  }
  GroupShapedImpl<true>(qs, nq, rows, count, width, accums, shape);
}

void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  L2GroupShaped(qs, nq, rows, count, width, accums, KernelShape{4, 4, 2});
}

void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  IpGroupShaped(qs, nq, rows, count, width, accums, KernelShape{6, 4, 2});
}

uint64_t PruneMaskL2(const float* partial, size_t count, float tau) {
  uint64_t mask = 0;
  const __m256 vtau = _mm256_set1_ps(tau);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 p = _mm256_loadu_ps(partial + i);
    const __m256 gt = _mm256_cmp_ps(p, vtau, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm256_movemask_ps(gt)))
            << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskL2(partial + i, count - i, tau) << i;
  }
  return mask;
}

uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau) {
  uint64_t mask = 0;
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 zero = _mm256_setzero_ps();
  // Hoisting max(0, rem_q_sq) feeds the multiply the same operand the
  // scalar CanPrune computes per candidate; _mm256_max_ps(x, 0) returns 0
  // for NaN inputs exactly like std::max(0.0f, x).
  const __m256 rq = _mm256_set1_ps(std::max(0.0f, rem_q_sq));
  const __m256 sign = _mm256_set1_ps(-0.0f);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 rp = _mm256_max_ps(_mm256_loadu_ps(rem_p_sq + i), zero);
    const __m256 rest = _mm256_sqrt_ps(_mm256_mul_ps(rp, rq));
    const __m256 lower =
        _mm256_xor_ps(_mm256_add_ps(_mm256_loadu_ps(partial + i), rest), sign);
    const __m256 gt = _mm256_cmp_ps(lower, vtau, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm256_movemask_ps(gt)))
            << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskIp(partial + i, rem_p_sq + i, count - i,
                                  rem_q_sq, tau)
            << i;
  }
  return mask;
}

void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out) {
  // 8 rows per iteration, one ymm lane per row. For each subspace m the 8
  // rows' byte codes are widened to int32 indices and gathered from the
  // m-th LUT segment; the per-lane adds run in ascending-m order with a
  // single accumulator, the exact addition sequence of the scalar kernel —
  // so the gather kernel is bit-identical to portable::AdcBatch.
  size_t r = 0;
  for (; r + 8 <= count; r += 8) {
    __m256 acc = _mm256_setzero_ps();
    alignas(32) int32_t idx[8];
    for (size_t m = 0; m < code_size; ++m) {
      const uint8_t* col = codes + r * code_size + m;
      for (size_t l = 0; l < 8; ++l) {
        idx[l] = static_cast<int32_t>(col[l * code_size]);
      }
      const __m256i vi = _mm256_load_si256(reinterpret_cast<__m256i*>(idx));
      const __m256 vals = _mm256_i32gather_ps(lut + m * ksub, vi, 4);
      acc = _mm256_add_ps(acc, vals);
    }
    _mm256_storeu_ps(out + r, acc);
  }
  if (r < count) {
    portable::AdcBatch(lut, ksub, codes + r * code_size, code_size, count - r,
                       out + r);
  }
}

}  // namespace avx2
}  // namespace harmony

#endif  // __AVX2__
