// AVX2 batched block-scan kernels. Compiled with -mavx2 -mfma (see
// src/CMakeLists.txt) and referenced only when the running CPU reports
// AVX2 support — ScanKernels() resolves the table once at first use.
//
// Bitwise-identity contract (docs/kernels.md): every row of a batched call
// goes through exactly the operation sequence of the single-row AVX2
// kernels in distance_avx2.cc — 16-wide chunks into two accumulators, an
// 8-wide chunk into the first, horizontal sum, then a scalar tail — and
// widths below 16 fall back to the portable bodies, preserving the
// historical runtime-dispatch cutover bit-for-bit. The 4-row register
// blocking only reuses each *query* load across the row group; it never
// reorders a row's own accumulation.

#include "index/scan_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

#include "index/distance_simd.h"

namespace harmony {
namespace avx2 {

namespace {

/// Horizontal sum of an 8-float register; identical to distance_avx2.cc.
inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

/// Horizontal sums of four registers at once, lane i holding Hsum256(v_i).
/// Each lane goes through the *same* addition tree as Hsum256 —
/// lo+hi, then ((s0+s1)+(s2+s3)) via two hadd levels — so the results are
/// bit-identical to four scalar Hsum256 calls at a third of the shuffle
/// uops. This is what makes the 4-row blocking pay off at narrow widths,
/// where the reduction rivals the accumulation loop in cost.
inline __m128 Hsum256x4(__m256 v0, __m256 v1, __m256 v2, __m256 v3) {
  const __m128 s0 = _mm_add_ps(_mm256_castps256_ps128(v0),
                               _mm256_extractf128_ps(v0, 1));
  const __m128 s1 = _mm_add_ps(_mm256_castps256_ps128(v1),
                               _mm256_extractf128_ps(v1, 1));
  const __m128 s2 = _mm_add_ps(_mm256_castps256_ps128(v2),
                               _mm256_extractf128_ps(v2, 1));
  const __m128 s3 = _mm_add_ps(_mm256_castps256_ps128(v3),
                               _mm256_extractf128_ps(v3, 1));
  const __m128 h01 = _mm_hadd_ps(s0, s1);  // [s00+s01, s02+s03, s10+s11, ..]
  const __m128 h23 = _mm_hadd_ps(s2, s3);
  return _mm_hadd_ps(h01, h23);  // lane i = (si0+si1)+(si2+si3)
}

inline __m256 FmaddOrMulAdd(__m256 a, __m256 b, __m256 acc) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(a, b, acc);
#else
  return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
#endif
}

/// Pulls the head of an upcoming row toward L1 while the current row group
/// computes. Rows are one contiguous stream, so the hardware prefetcher
/// covers the body; issuing more than a few lines here only burns load-port
/// slots (measured: full-row prefetch costs ~15% at width >= 128).
inline void PrefetchRow(const float* row, size_t width) {
  const size_t lines = std::min<size_t>(width, 64);
  for (size_t i = 0; i < lines; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(row + i), _MM_HINT_T0);
  }
}

}  // namespace

float L2Row(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::L2Row(a, b, width);
  return simd::L2SqDistanceAvx2(a, b, width);
}

float IpRow(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::IpRow(a, b, width);
  return simd::InnerProductAvx2(a, b, width);
}

void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  if (width < 16) {
    portable::L2Batch(q, rows, count, width, accum);
    return;
  }
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const float* r0 = rows + r * width;
    const float* r1 = r0 + width;
    const float* r2 = r1 + width;
    const float* r3 = r2 + width;
    if (r + 8 <= count) {
      PrefetchRow(r3 + width, width);
      PrefetchRow(r3 + 2 * width, width);
    }
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      const __m256 q1 = _mm256_loadu_ps(q + i + 8);
      __m256 d = _mm256_sub_ps(q0, _mm256_loadu_ps(r0 + i));
      a00 = FmaddOrMulAdd(d, d, a00);
      d = _mm256_sub_ps(q1, _mm256_loadu_ps(r0 + i + 8));
      a01 = FmaddOrMulAdd(d, d, a01);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r1 + i));
      a10 = FmaddOrMulAdd(d, d, a10);
      d = _mm256_sub_ps(q1, _mm256_loadu_ps(r1 + i + 8));
      a11 = FmaddOrMulAdd(d, d, a11);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r2 + i));
      a20 = FmaddOrMulAdd(d, d, a20);
      d = _mm256_sub_ps(q1, _mm256_loadu_ps(r2 + i + 8));
      a21 = FmaddOrMulAdd(d, d, a21);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r3 + i));
      a30 = FmaddOrMulAdd(d, d, a30);
      d = _mm256_sub_ps(q1, _mm256_loadu_ps(r3 + i + 8));
      a31 = FmaddOrMulAdd(d, d, a31);
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      __m256 d = _mm256_sub_ps(q0, _mm256_loadu_ps(r0 + i));
      a00 = FmaddOrMulAdd(d, d, a00);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r1 + i));
      a10 = FmaddOrMulAdd(d, d, a10);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r2 + i));
      a20 = FmaddOrMulAdd(d, d, a20);
      d = _mm256_sub_ps(q0, _mm256_loadu_ps(r3 + i));
      a30 = FmaddOrMulAdd(d, d, a30);
    }
    alignas(16) float t[4];
    _mm_store_ps(t, Hsum256x4(_mm256_add_ps(a00, a01), _mm256_add_ps(a10, a11),
                              _mm256_add_ps(a20, a21),
                              _mm256_add_ps(a30, a31)));
    float t0 = t[0], t1 = t[1], t2 = t[2], t3 = t[3];
    for (; i < width; ++i) {
      const float qi = q[i];
      float d = qi - r0[i];
      t0 += d * d;
      d = qi - r1[i];
      t1 += d * d;
      d = qi - r2[i];
      t2 += d * d;
      d = qi - r3[i];
      t3 += d * d;
    }
    accum[r] += t0;
    accum[r + 1] += t1;
    accum[r + 2] += t2;
    accum[r + 3] += t3;
  }
  for (; r < count; ++r) {
    accum[r] += simd::L2SqDistanceAvx2(q, rows + r * width, width);
  }
}

void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  if (width < 16) {
    portable::IpBatch(q, rows, count, width, accum);
    return;
  }
  // IP has no subtract temporary, so 6 rows x 2 accumulators plus the two
  // query registers still fit the 16 ymm registers; the wider group
  // amortizes each query load over 6 FMAs instead of 4 (the kernel is
  // load-port-bound, so fewer loads per row is the win).
  size_t r = 0;
  for (; r + 6 <= count; r += 6) {
    const float* r0 = rows + r * width;
    const float* r1 = r0 + width;
    const float* r2 = r1 + width;
    const float* r3 = r2 + width;
    const float* r4 = r3 + width;
    const float* r5 = r4 + width;
    if (r + 12 <= count) {
      PrefetchRow(r5 + width, width);
      PrefetchRow(r5 + 2 * width, width);
    }
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
    __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      const __m256 q1 = _mm256_loadu_ps(q + i + 8);
      a00 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r0 + i), a00);
      a01 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r0 + i + 8), a01);
      a10 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r1 + i), a10);
      a11 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r1 + i + 8), a11);
      a20 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r2 + i), a20);
      a21 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r2 + i + 8), a21);
      a30 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r3 + i), a30);
      a31 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r3 + i + 8), a31);
      a40 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r4 + i), a40);
      a41 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r4 + i + 8), a41);
      a50 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r5 + i), a50);
      a51 = FmaddOrMulAdd(q1, _mm256_loadu_ps(r5 + i + 8), a51);
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      a00 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r0 + i), a00);
      a10 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r1 + i), a10);
      a20 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r2 + i), a20);
      a30 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r3 + i), a30);
      a40 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r4 + i), a40);
      a50 = FmaddOrMulAdd(q0, _mm256_loadu_ps(r5 + i), a50);
    }
    alignas(16) float t[4];
    _mm_store_ps(t, Hsum256x4(_mm256_add_ps(a00, a01), _mm256_add_ps(a10, a11),
                              _mm256_add_ps(a20, a21),
                              _mm256_add_ps(a30, a31)));
    float t0 = t[0], t1 = t[1], t2 = t[2], t3 = t[3];
    float t4 = Hsum256(_mm256_add_ps(a40, a41));
    float t5 = Hsum256(_mm256_add_ps(a50, a51));
    for (; i < width; ++i) {
      const float qi = q[i];
      t0 += qi * r0[i];
      t1 += qi * r1[i];
      t2 += qi * r2[i];
      t3 += qi * r3[i];
      t4 += qi * r4[i];
      t5 += qi * r5[i];
    }
    accum[r] += t0;
    accum[r + 1] += t1;
    accum[r + 2] += t2;
    accum[r + 3] += t3;
    accum[r + 4] += t4;
    accum[r + 5] += t5;
  }
  for (; r < count; ++r) {
    accum[r] += simd::InnerProductAvx2(q, rows + r * width, width);
  }
}

namespace {

/// Query-tiled L2 over one row at a time: the row chunks v0/v1 are loaded
/// once and scored against NQ queries (two accumulators each — NQ <= 4
/// keeps 2*NQ + 2 + 1 ymm registers live). Per (query, row) the chunking,
/// accumulator split, reduction, and scalar tail are exactly the single-row
/// scheme, so the tile is bit-identical to NQ independent L2Batch calls.
template <size_t NQ>
void L2GroupTile(const float* const* qs, const float* rows, size_t count,
                 size_t width, float* const* accums) {
  static_assert(NQ >= 2 && NQ <= kMaxQueryGroup);
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    const float* row = rows + r * width;
    __m256 a0[NQ], a1[NQ];
    for (size_t g = 0; g < NQ; ++g) {
      a0[g] = _mm256_setzero_ps();
      a1[g] = _mm256_setzero_ps();
    }
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      const __m256 v1 = _mm256_loadu_ps(row + i + 8);
      for (size_t g = 0; g < NQ; ++g) {
        __m256 d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i), v0);
        a0[g] = FmaddOrMulAdd(d, d, a0[g]);
        d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i + 8), v1);
        a1[g] = FmaddOrMulAdd(d, d, a1[g]);
      }
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      for (size_t g = 0; g < NQ; ++g) {
        const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i), v0);
        a0[g] = FmaddOrMulAdd(d, d, a0[g]);
      }
    }
    float t[NQ];
    if constexpr (NQ == 4) {
      alignas(16) float s[4];
      _mm_store_ps(s,
                   Hsum256x4(_mm256_add_ps(a0[0], a1[0]),
                             _mm256_add_ps(a0[1], a1[1]),
                             _mm256_add_ps(a0[2], a1[2]),
                             _mm256_add_ps(a0[3], a1[3])));
      for (size_t g = 0; g < NQ; ++g) t[g] = s[g];
    } else {
      for (size_t g = 0; g < NQ; ++g) {
        t[g] = Hsum256(_mm256_add_ps(a0[g], a1[g]));
      }
    }
    for (; i < width; ++i) {
      const float ri = row[i];
      for (size_t g = 0; g < NQ; ++g) {
        const float d = qs[g][i] - ri;
        t[g] += d * d;
      }
    }
    for (size_t g = 0; g < NQ; ++g) accums[g][r] += t[g];
  }
}

template <size_t NQ>
void IpGroupTile(const float* const* qs, const float* rows, size_t count,
                 size_t width, float* const* accums) {
  static_assert(NQ >= 2 && NQ <= kMaxQueryGroup);
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    const float* row = rows + r * width;
    __m256 a0[NQ], a1[NQ];
    for (size_t g = 0; g < NQ; ++g) {
      a0[g] = _mm256_setzero_ps();
      a1[g] = _mm256_setzero_ps();
    }
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      const __m256 v1 = _mm256_loadu_ps(row + i + 8);
      for (size_t g = 0; g < NQ; ++g) {
        a0[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i), v0, a0[g]);
        a1[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i + 8), v1, a1[g]);
      }
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      for (size_t g = 0; g < NQ; ++g) {
        a0[g] = FmaddOrMulAdd(_mm256_loadu_ps(qs[g] + i), v0, a0[g]);
      }
    }
    float t[NQ];
    if constexpr (NQ == 4) {
      alignas(16) float s[4];
      _mm_store_ps(s,
                   Hsum256x4(_mm256_add_ps(a0[0], a1[0]),
                             _mm256_add_ps(a0[1], a1[1]),
                             _mm256_add_ps(a0[2], a1[2]),
                             _mm256_add_ps(a0[3], a1[3])));
      for (size_t g = 0; g < NQ; ++g) t[g] = s[g];
    } else {
      for (size_t g = 0; g < NQ; ++g) {
        t[g] = Hsum256(_mm256_add_ps(a0[g], a1[g]));
      }
    }
    for (; i < width; ++i) {
      const float ri = row[i];
      for (size_t g = 0; g < NQ; ++g) t[g] += qs[g][i] * ri;
    }
    for (size_t g = 0; g < NQ; ++g) accums[g][r] += t[g];
  }
}

}  // namespace

void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  if (width < 16) {
    portable::L2Group(qs, nq, rows, count, width, accums);
    return;
  }
  size_t g = 0;
  for (; g + kMaxQueryGroup <= nq; g += kMaxQueryGroup) {
    L2GroupTile<4>(qs + g, rows, count, width, accums + g);
  }
  switch (nq - g) {
    case 1:
      L2Batch(qs[g], rows, count, width, accums[g]);
      break;
    case 2:
      L2GroupTile<2>(qs + g, rows, count, width, accums + g);
      break;
    case 3:
      L2GroupTile<3>(qs + g, rows, count, width, accums + g);
      break;
    default:
      break;
  }
}

void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  if (width < 16) {
    portable::IpGroup(qs, nq, rows, count, width, accums);
    return;
  }
  size_t g = 0;
  for (; g + kMaxQueryGroup <= nq; g += kMaxQueryGroup) {
    IpGroupTile<4>(qs + g, rows, count, width, accums + g);
  }
  switch (nq - g) {
    case 1:
      IpBatch(qs[g], rows, count, width, accums[g]);
      break;
    case 2:
      IpGroupTile<2>(qs + g, rows, count, width, accums + g);
      break;
    case 3:
      IpGroupTile<3>(qs + g, rows, count, width, accums + g);
      break;
    default:
      break;
  }
}

uint32_t PruneMaskL2(const float* partial, size_t count, float tau) {
  uint32_t mask = 0;
  const __m256 vtau = _mm256_set1_ps(tau);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 p = _mm256_loadu_ps(partial + i);
    const __m256 gt = _mm256_cmp_ps(p, vtau, _CMP_GT_OQ);
    mask |= static_cast<uint32_t>(_mm256_movemask_ps(gt)) << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskL2(partial + i, count - i, tau) << i;
  }
  return mask;
}

uint32_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau) {
  uint32_t mask = 0;
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 zero = _mm256_setzero_ps();
  // Hoisting max(0, rem_q_sq) feeds the multiply the same operand the
  // scalar CanPrune computes per candidate; _mm256_max_ps(x, 0) returns 0
  // for NaN inputs exactly like std::max(0.0f, x).
  const __m256 rq = _mm256_set1_ps(std::max(0.0f, rem_q_sq));
  const __m256 sign = _mm256_set1_ps(-0.0f);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 rp = _mm256_max_ps(_mm256_loadu_ps(rem_p_sq + i), zero);
    const __m256 rest = _mm256_sqrt_ps(_mm256_mul_ps(rp, rq));
    const __m256 lower =
        _mm256_xor_ps(_mm256_add_ps(_mm256_loadu_ps(partial + i), rest), sign);
    const __m256 gt = _mm256_cmp_ps(lower, vtau, _CMP_GT_OQ);
    mask |= static_cast<uint32_t>(_mm256_movemask_ps(gt)) << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskIp(partial + i, rem_p_sq + i, count - i,
                                  rem_q_sq, tau)
            << i;
  }
  return mask;
}

void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out) {
  // 8 rows per iteration, one ymm lane per row. For each subspace m the 8
  // rows' byte codes are widened to int32 indices and gathered from the
  // m-th LUT segment; the per-lane adds run in ascending-m order with a
  // single accumulator, the exact addition sequence of the scalar kernel —
  // so the gather kernel is bit-identical to portable::AdcBatch.
  size_t r = 0;
  for (; r + 8 <= count; r += 8) {
    __m256 acc = _mm256_setzero_ps();
    alignas(32) int32_t idx[8];
    for (size_t m = 0; m < code_size; ++m) {
      const uint8_t* col = codes + r * code_size + m;
      for (size_t l = 0; l < 8; ++l) {
        idx[l] = static_cast<int32_t>(col[l * code_size]);
      }
      const __m256i vi = _mm256_load_si256(reinterpret_cast<__m256i*>(idx));
      const __m256 vals = _mm256_i32gather_ps(lut + m * ksub, vi, 4);
      acc = _mm256_add_ps(acc, vals);
    }
    _mm256_storeu_ps(out + r, acc);
  }
  if (r < count) {
    portable::AdcBatch(lut, ksub, codes + r * code_size, code_size, count - r,
                       out + r);
  }
}

}  // namespace avx2
}  // namespace harmony

#endif  // __AVX2__
