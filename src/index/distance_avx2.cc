// AVX2 implementations of the hot distance kernels. This translation unit
// is compiled with -mavx2 (see src/CMakeLists.txt); distance.cc dispatches
// to these at runtime only when the CPU reports AVX2 support, so the
// library still runs on older machines. This mirrors the paper's use of
// MKL/AVX-512 kernels on its Xeon testbed (Section 5).

#include "index/distance_simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace harmony {
namespace simd {

namespace {

/// Horizontal sum of an 8-float register.
inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

}  // namespace

float L2SqDistanceAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
#else
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
#endif
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(d, d, acc0);
#else
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d, d));
#endif
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

float InnerProductAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                             _mm256_loadu_ps(b + i + 8)));
#endif
  }
  for (; i + 8 <= dim; i += 8) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
#endif
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return total;
}

}  // namespace simd
}  // namespace harmony

#endif  // __AVX2__
