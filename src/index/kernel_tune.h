#ifndef HARMONY_INDEX_KERNEL_TUNE_H_
#define HARMONY_INDEX_KERNEL_TUNE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "index/distance.h"
#include "index/scan_kernel.h"

namespace harmony {

/// \brief One resolved kernel choice: the tier table plus the tuned tile
/// shape the shaped entries run with. A null table means "use the
/// process-wide ScanKernels() table through the unshaped entries" — the
/// historical behavior, and what default-constructed scan params get.
struct KernelDispatch {
  const ScanKernelTable* table = nullptr;
  KernelShape shape;
};

/// \brief The startup micro-autotuner's output (docs/kernels.md,
/// "dispatch tiers and autotuning"): per (metric, dim-block width bucket),
/// the tile shape the batched/group kernels should run with, under one
/// resolved dispatch tier.
///
/// Determinism contract: shapes are bit-transparent — every (tier, shape)
/// computes identical result bits (scan_kernel.h), so the tuner can be
/// arbitrarily noisy without perturbing results, goldens, or byte/op
/// accounting. What IS pinned is the *replay*: MakeExecContext records the
/// resolved table in the ExecContext, both engines read the same object, so
/// simulated and threaded runs of one batch always execute the identical
/// kernels. Tests pin the whole table via ExecOptions::kernel_tune or the
/// HARMONY_KERNEL_TUNE profile string; `--kernel-tier` pins the tier.
struct KernelTuneTable {
  /// Width buckets: [0,16) [16,32) [32,64) [64,128) [128,inf). Bucket 0 is
  /// below every SIMD cutover (the portable fall-through), so its shape is
  /// never measured, only defaulted.
  static constexpr size_t kNumBuckets = 5;

  static size_t WidthBucket(size_t width) {
    if (width < 16) return 0;
    if (width < 32) return 1;
    if (width < 64) return 2;
    if (width < 128) return 3;
    return 4;
  }

  /// Resolved dispatch tier (never kAuto).
  KernelTier tier = KernelTier::kPortable;
  /// shapes[metric][bucket]; metric index 0 = L2, 1 = IP/cosine.
  KernelShape shapes[2][kNumBuckets];

  static size_t MetricIndex(Metric m) { return m == Metric::kL2 ? 0 : 1; }

  const KernelShape& shape(Metric m, size_t width) const {
    return shapes[MetricIndex(m)][WidthBucket(width)];
  }

  /// The tier table + tuned shape for one stage width.
  KernelDispatch DispatchFor(Metric m, size_t width) const {
    return KernelDispatch{&ScanKernelsFor(tier), shape(m, width)};
  }

  bool operator==(const KernelTuneTable& o) const;

  /// Profile string round-trip, e.g.
  /// "avx512 l2=4.4.2,8.4.4,8.4.4,8.8.4,8.8.8 ip=4.4.2,...": tier name,
  /// then per metric the kNumBuckets shapes as row_block.query_tile.prefetch.
  std::string ToString() const;
  static bool Parse(std::string_view profile, KernelTuneTable* out);
};

/// Historical default shapes for `tier` (what the unshaped table entries
/// hard-code): the fallback when tuning is skipped and the seed the
/// measured search starts from.
KernelTuneTable DefaultKernelTune(KernelTier tier);

/// Runs the micro-autotuner for `tier` (resolved first; kAuto picks the
/// best available): times the candidate shapes — row-block 4/6/8 x
/// prefetch 0/2/4/8 on the batch kernels, query-tile 2/4/8 on the group
/// kernels — per (metric, width bucket) on synthetic rows and keeps the
/// fastest, with a fixed candidate order and strict-improvement ties so the
/// pick is deterministic given the timings. A few milliseconds of work.
KernelTuneTable MeasureKernelTune(KernelTier tier);

/// The process-wide tune table for `requested` (resolved), measured once on
/// first use and cached — or, when the HARMONY_KERNEL_TUNE environment
/// variable holds a parsable profile whose tier is available, that profile
/// verbatim (the cross-process pin for reproducible runs). Thread-safe.
const KernelTuneTable& ResolveKernelTune(KernelTier requested);

}  // namespace harmony

#endif  // HARMONY_INDEX_KERNEL_TUNE_H_
