#include "index/distance.h"

#include "index/scan_kernel.h"

namespace harmony {

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

// All single-row entry points route through the process-wide kernel table:
// CPU dispatch is resolved once at first use (index/scan_kernel.cc), not
// re-checked per call. The table's row kernels keep the historical
// behaviour bit-for-bit: AVX2 bodies for width >= 16, the portable
// reference below that.

float L2SqDistance(const float* a, const float* b, size_t dim) {
  return ScanKernels().l2_row(a, b, dim);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  return ScanKernels().ip_row(a, b, dim);
}

float PartialL2Sq(const float* a_slice, const float* b_slice, size_t width) {
  return ScanKernels().l2_row(a_slice, b_slice, width);
}

float PartialIp(const float* a_slice, const float* b_slice, size_t width) {
  return ScanKernels().ip_row(a_slice, b_slice, width);
}

float Distance(Metric metric, const float* a, const float* b, size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2SqDistance(a, b, dim);
    case Metric::kInnerProduct:
    case Metric::kCosine:
      return -InnerProduct(a, b, dim);
  }
  return 0.0f;
}

}  // namespace harmony
