#include "index/distance.h"

#include "index/distance_simd.h"


namespace harmony {

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

namespace {

/// Runtime CPU dispatch, resolved once. The portable kernels below are the
/// fallback (and the reference the SIMD kernels are tested against).
const bool kUseAvx2 = simd::Avx2Available();

float L2SqDistancePortable(const float* a, const float* b, size_t dim);
float InnerProductPortable(const float* a, const float* b, size_t dim);

}  // namespace

float L2SqDistance(const float* a, const float* b, size_t dim) {
  if (kUseAvx2 && dim >= 16) return simd::L2SqDistanceAvx2(a, b, dim);
  return L2SqDistancePortable(a, b, dim);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  if (kUseAvx2 && dim >= 16) return simd::InnerProductAvx2(a, b, dim);
  return InnerProductPortable(a, b, dim);
}

namespace {

float L2SqDistancePortable(const float* a, const float* b, size_t dim) {
  // Four accumulators let the compiler vectorize without relying on
  // -ffast-math reassociation.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float InnerProductPortable(const float* a, const float* b, size_t dim) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace

float PartialL2Sq(const float* a_slice, const float* b_slice, size_t width) {
  return L2SqDistance(a_slice, b_slice, width);
}

float PartialIp(const float* a_slice, const float* b_slice, size_t width) {
  return InnerProduct(a_slice, b_slice, width);
}

float Distance(Metric metric, const float* a, const float* b, size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2SqDistance(a, b, dim);
    case Metric::kInnerProduct:
    case Metric::kCosine:
      return -InnerProduct(a, b, dim);
  }
  return 0.0f;
}

}  // namespace harmony
