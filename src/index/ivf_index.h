#ifndef HARMONY_INDEX_IVF_INDEX_H_
#define HARMONY_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/distance.h"
#include "index/kmeans.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Configuration of the cluster-based (IVF) index. All Harmony
/// distribution strategies share the same clustering (Section 6.1: "all
/// methods adopt the same clustering algorithm and number of clusters").
struct IvfParams {
  size_t nlist = 64;
  Metric metric = Metric::kL2;
  size_t train_iters = 8;
  uint64_t seed = 42;
  /// Train k-means on at most this many sampled rows (0 = use all).
  size_t max_train_points = 0;
  /// Threads for k-means training passes (KMeansParams::num_threads);
  /// training is bit-identical for every value.
  size_t train_threads = 1;
};

/// \brief Statistics of one index build, matching the stages the paper
/// breaks Figure 10 into.
struct IvfBuildStats {
  double train_seconds = 0.0;  // k-means training ("Train")
  double add_seconds = 0.0;    // assigning base vectors to lists ("Add")
};

/// \brief Inverted-file index over full-dimension vectors.
///
/// This is both the single-node baseline ("Faiss" in the paper's evaluation)
/// and the clustering substrate that Harmony's partitioner distributes.
class IvfIndex {
 public:
  explicit IvfIndex(IvfParams params = IvfParams()) : params_(params) {}

  const IvfParams& params() const { return params_; }
  Metric metric() const { return params_.metric; }
  size_t nlist() const { return centroids_.size(); }
  size_t dim() const { return centroids_.dim(); }
  size_t num_vectors() const { return num_vectors_; }
  bool trained() const { return !centroids_.empty(); }
  const IvfBuildStats& build_stats() const { return build_stats_; }

  /// Trains cluster centers with k-means.
  Status Train(const DatasetView& data);

  /// Assigns vectors to inverted lists. Ids continue densely from previous
  /// Add calls. Requires Train() first.
  Status Add(const DatasetView& data);

  /// Appends one vector with a caller-assigned global id to list `list_id`
  /// — the merge path (docs/mutability.md) folds delta rows in with ids
  /// handed out by the engine, which stay sparse after deletes. Requires
  /// Train() first.
  Status AddAssigned(int32_t list_id, int64_t id, const float* vec,
                     size_t dim);

  /// Physically removes every row whose id bit is set in the tombstone
  /// bitset (`words` 64-bit words, id i at word i/64 bit i%64). Ids are
  /// never reused: num_vectors() shrinks but surviving ids keep their
  /// values, so the id space becomes sparse. Returns the number of rows
  /// removed.
  size_t RemoveIds(const uint64_t* bits, size_t words);

  /// ANNS: scans the `nprobe` nearest lists. Results ascend by distance.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       size_t nprobe) const;

  /// Lists (by centroid distance, ascending) the query would probe.
  std::vector<int32_t> ProbeLists(const float* query, size_t nprobe) const;

  const Dataset& centroids() const { return centroids_; }

  /// Global vector ids stored in list `list_id`.
  const std::vector<int64_t>& ListIds(size_t list_id) const {
    return list_ids_[list_id];
  }

  /// Vectors of list `list_id`, row i matching ListIds(list_id)[i].
  DatasetView ListVectors(size_t list_id) const {
    return list_vectors_[list_id].View();
  }

  std::vector<int64_t> ListSizes() const;

  /// Memory footprint of the index payload (centroids + lists + ids).
  size_t SizeBytes() const;

  /// Serializes the trained, populated index to `path` (format "HIVF1").
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save().
  static Result<IvfIndex> Load(const std::string& path);

 private:
  IvfParams params_;
  Dataset centroids_;
  std::vector<std::vector<int64_t>> list_ids_;
  std::vector<Dataset> list_vectors_;
  size_t num_vectors_ = 0;
  IvfBuildStats build_stats_;
};

}  // namespace harmony

#endif  // HARMONY_INDEX_IVF_INDEX_H_
