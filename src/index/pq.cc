#include "index/pq.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "index/distance.h"
#include "index/kmeans.h"
#include "index/scan_kernel.h"

namespace harmony {

Status ProductQuantizer::Train(const DatasetView& data) {
  if (trained()) return Status::FailedPrecondition("quantizer already trained");
  if (params_.num_subspaces == 0 || params_.bits == 0 || params_.bits > 8) {
    return Status::InvalidArgument("need 1..8 bits and >= 1 subspace");
  }
  if (data.dim() < params_.num_subspaces) {
    return Status::InvalidArgument("more subspaces than dimensions");
  }
  const size_t ksub = codewords();
  if (data.size() < ksub) {
    return Status::InvalidArgument(
        "need at least " + std::to_string(ksub) + " training vectors");
  }
  dim_ = data.dim();
  bands_ = EvenDimBlocks(dim_, params_.num_subspaces);
  codebooks_.resize(params_.num_subspaces);

  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    const DimRange band = bands_[m];
    // Materialize the band's columns and run k-means on them.
    Dataset sub(data.size(), band.width());
    for (size_t i = 0; i < data.size(); ++i) {
      const float* src = data.Row(i) + band.begin;
      std::copy(src, src + band.width(), sub.MutableRow(i));
    }
    KMeansParams km;
    km.num_clusters = ksub;
    km.max_iters = params_.train_iters;
    km.seed = params_.seed + m;
    km.use_kmeanspp = ksub <= 64;
    HARMONY_ASSIGN_OR_RETURN(KMeansResult result, TrainKMeans(sub.View(), km));
    codebooks_[m] = result.centroids.raw();
  }
  return Status::OK();
}

void ProductQuantizer::Encode(const float* vec, uint8_t* code) const {
  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    const DimRange band = bands_[m];
    const float* sub = vec + band.begin;
    const float* book = codebooks_[m].data();
    size_t best = 0;
    float best_dist = std::numeric_limits<float>::max();
    for (size_t c = 0; c < codewords(); ++c) {
      const float d = L2SqDistance(sub, book + c * band.width(), band.width());
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    code[m] = static_cast<uint8_t>(best);
  }
}

std::vector<uint8_t> ProductQuantizer::EncodeBatch(
    const DatasetView& data) const {
  std::vector<uint8_t> codes(data.size() * code_size());
  for (size_t i = 0; i < data.size(); ++i) {
    Encode(data.Row(i), codes.data() + i * code_size());
  }
  return codes;
}

void ProductQuantizer::Decode(const uint8_t* code, float* out) const {
  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    const DimRange band = bands_[m];
    const float* word = codebooks_[m].data() + code[m] * band.width();
    std::copy(word, word + band.width(), out + band.begin);
  }
}

void ProductQuantizer::ComputeLookupTable(const float* query,
                                          float* table) const {
  const size_t ksub = codewords();
  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    const DimRange band = bands_[m];
    const float* sub = query + band.begin;
    const float* book = codebooks_[m].data();
    float* row = table + m * ksub;
    for (size_t c = 0; c < ksub; ++c) {
      row[c] = L2SqDistance(sub, book + c * band.width(), band.width());
    }
  }
}

void ProductQuantizer::ComputeLookupTableIp(const float* query,
                                            float* table) const {
  const size_t ksub = codewords();
  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    const DimRange band = bands_[m];
    const float* sub = query + band.begin;
    const float* book = codebooks_[m].data();
    float* row = table + m * ksub;
    for (size_t c = 0; c < ksub; ++c) {
      row[c] = InnerProduct(sub, book + c * band.width(), band.width());
    }
  }
}

float ProductQuantizer::AdcDistance(const float* table,
                                    const uint8_t* code) const {
  const size_t ksub = codewords();
  float total = 0.0f;
  for (size_t m = 0; m < params_.num_subspaces; ++m) {
    total += table[m * ksub + code[m]];
  }
  return total;
}

size_t ProductQuantizer::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& book : codebooks_) bytes += book.size() * sizeof(float);
  return bytes;
}

Status GridQuantizer::Train(const DatasetView& data,
                            const std::vector<DimRange>& ranges,
                            const GridPqParams& params) {
  if (ranges.empty()) return Status::InvalidArgument("no dim ranges to train");
  if (params.num_subspaces == 0 || params.bits == 0 || params.bits > 8) {
    return Status::InvalidArgument("need 1..8 bits and >= 1 subspace");
  }
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least 2 training vectors");
  }
  size_t total = 0;
  for (const DimRange& r : ranges) total += r.width();
  if (total != data.dim()) {
    return Status::InvalidArgument("dim ranges do not cover the data dim");
  }
  // Clamp the codeword budget to the corpus so small test datasets still
  // train; the clamp depends only on (n, bits), so every block — and every
  // engine — sees the same effective parameters.
  size_t bits = params.bits;
  while (bits > 1 && (size_t{1} << bits) > data.size()) --bits;

  blocks_.clear();
  params_ = params;
  dim_ = data.dim();
  ranges_ = ranges;
  blocks_.reserve(ranges.size());
  for (size_t d = 0; d < ranges.size(); ++d) {
    const DimRange range = ranges[d];
    // Apportion the subspace budget by block width, >= 1 and <= width.
    size_t m_b = (params.num_subspaces * range.width() + dim_ / 2) / dim_;
    m_b = std::min(std::max<size_t>(m_b, 1), range.width());
    Dataset sub(data.size(), range.width());
    for (size_t i = 0; i < data.size(); ++i) {
      const float* src = data.Row(i) + range.begin;
      std::copy(src, src + range.width(), sub.MutableRow(i));
    }
    PqParams pq;
    pq.num_subspaces = m_b;
    pq.bits = bits;
    pq.train_iters = params.train_iters;
    pq.seed = params.seed + 1315423911u * (d + 1);
    ProductQuantizer q(pq);
    HARMONY_RETURN_NOT_OK(q.Train(sub.View()));
    blocks_.push_back(std::move(q));
  }
  return Status::OK();
}

size_t GridQuantizer::SizeBytes() const {
  size_t bytes = 0;
  for (const ProductQuantizer& q : blocks_) bytes += q.SizeBytes();
  return bytes;
}

Status IvfPqIndex::Train(const DatasetView& data) {
  if (trained_) return Status::FailedPrecondition("index already trained");
  if (data.size() < params_.nlist) {
    return Status::InvalidArgument("need at least nlist training points");
  }
  KMeansParams km;
  km.num_clusters = params_.nlist;
  km.max_iters = params_.train_iters;
  km.seed = params_.seed;
  km.use_kmeanspp = params_.nlist <= 256;
  HARMONY_ASSIGN_OR_RETURN(KMeansResult coarse, TrainKMeans(data, km));
  centroids_ = std::move(coarse.centroids);

  // PQ is trained on residuals (vector - coarse centroid), the IVFADC
  // formulation: residual energy is much smaller than raw energy, so the
  // codebooks spend their precision where it matters.
  Dataset residuals(data.size(), data.dim());
  const DatasetView cents = centroids_.View();
  for (size_t i = 0; i < data.size(); ++i) {
    const int32_t list = coarse.assignments[i];
    const float* center = cents.Row(static_cast<size_t>(list));
    const float* row = data.Row(i);
    float* out = residuals.MutableRow(i);
    for (size_t d = 0; d < data.dim(); ++d) out[d] = row[d] - center[d];
  }
  pq_ = ProductQuantizer(params_.pq);
  HARMONY_RETURN_NOT_OK(pq_.Train(residuals.View()));

  list_ids_.assign(params_.nlist, {});
  list_codes_.assign(params_.nlist, {});
  trained_ = true;
  return Status::OK();
}

Status IvfPqIndex::Add(const DatasetView& data) {
  if (!trained_) return Status::FailedPrecondition("Train() must run first");
  if (data.dim() != dim()) {
    return Status::InvalidArgument("dimension mismatch on Add");
  }
  const DatasetView cents = centroids_.View();
  std::vector<float> residual(dim());
  std::vector<uint8_t> code(pq_.code_size());
  for (size_t i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    const int32_t list = NearestCentroid(cents, row);
    const float* center = cents.Row(static_cast<size_t>(list));
    for (size_t d = 0; d < dim(); ++d) residual[d] = row[d] - center[d];
    pq_.Encode(residual.data(), code.data());
    auto& codes = list_codes_[static_cast<size_t>(list)];
    codes.insert(codes.end(), code.begin(), code.end());
    list_ids_[static_cast<size_t>(list)].push_back(
        static_cast<int64_t>(num_vectors_ + i));
  }
  num_vectors_ += data.size();
  return Status::OK();
}

Result<std::vector<Neighbor>> IvfPqIndex::Search(const float* query, size_t k,
                                                 size_t nprobe) const {
  if (!trained_) return Status::FailedPrecondition("index not trained");
  if (num_vectors_ == 0) return Status::FailedPrecondition("index empty");
  if (k == 0 || nprobe == 0) {
    return Status::InvalidArgument("k and nprobe must be > 0");
  }
  // Rank coarse cells by centroid distance.
  const size_t probes = std::min(nprobe, nlist());
  std::vector<std::pair<float, int32_t>> scored(nlist());
  for (size_t c = 0; c < nlist(); ++c) {
    scored[c] = {L2SqDistance(query, centroids_.Row(c), dim()),
                 static_cast<int32_t>(c)};
  }
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(probes),
                    scored.end());

  TopKHeap heap(k);
  std::vector<float> residual(dim());
  std::vector<float> table(pq_.num_subspaces() * pq_.codewords());
  for (size_t p = 0; p < probes; ++p) {
    const size_t list = static_cast<size_t>(scored[p].second);
    const auto& ids = list_ids_[list];
    if (ids.empty()) continue;
    // Per-cell lookup table on the query residual (IVFADC).
    const float* center = centroids_.Row(list);
    for (size_t d = 0; d < dim(); ++d) residual[d] = query[d] - center[d];
    pq_.ComputeLookupTable(residual.data(), table.data());
    const uint8_t* codes = list_codes_[list].data();
    // Batched ADC through the shared scan-kernel tier (same SIMD gather the
    // grid's quantized block streams use); bit-identical to AdcDistance.
    const ScanKernelTable& kt = ScanKernels();
    constexpr size_t kChunk = 256;
    float adc[kChunk];
    size_t done = 0;
    while (done < ids.size()) {
      const size_t n = std::min(kChunk, ids.size() - done);
      kt.adc_batch(table.data(), pq_.codewords(),
                   codes + done * pq_.code_size(), pq_.code_size(), n, adc);
      for (size_t i = 0; i < n; ++i) heap.Push(ids[done + i], adc[i]);
      done += n;
    }
  }
  return heap.SortedResults();
}

size_t IvfPqIndex::SizeBytes() const {
  size_t bytes = centroids_.SizeBytes() + pq_.SizeBytes();
  for (size_t l = 0; l < list_ids_.size(); ++l) {
    bytes += list_ids_[l].size() * sizeof(int64_t) + list_codes_[l].size();
  }
  return bytes;
}

}  // namespace harmony
