#ifndef HARMONY_INDEX_PQ_H_
#define HARMONY_INDEX_PQ_H_

#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "storage/dim_slice.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Product-quantizer configuration: vectors are split into
/// `num_subspaces` contiguous dimension bands, each quantized to one of
/// `1 << bits` codewords learned by k-means.
struct PqParams {
  size_t num_subspaces = 8;  // M
  size_t bits = 8;           // log2(codewords per subspace), <= 8
  size_t train_iters = 10;
  uint64_t seed = 42;
};

/// \brief Product quantizer (Jégou et al.), the lossy-compression
/// alternative the paper contrasts with its distribution approach
/// (Section 2.1). Encodes a d-dim float vector into M bytes; asymmetric
/// distance computation (ADC) approximates L2² from a per-query lookup
/// table without decompressing.
class ProductQuantizer {
 public:
  explicit ProductQuantizer(PqParams params = PqParams()) : params_(params) {}

  const PqParams& params() const { return params_; }
  bool trained() const { return !codebooks_.empty(); }
  size_t dim() const { return dim_; }
  size_t num_subspaces() const { return params_.num_subspaces; }
  size_t codewords() const { return size_t{1} << params_.bits; }
  size_t code_size() const { return params_.num_subspaces; }  // bytes

  /// Learns the per-subspace codebooks from training vectors.
  Status Train(const DatasetView& data);

  /// Encodes one vector into `code_size()` bytes.
  void Encode(const float* vec, uint8_t* code) const;

  /// Encodes every row; result is row-major n x code_size().
  std::vector<uint8_t> EncodeBatch(const DatasetView& data) const;

  /// Reconstructs the quantized approximation of `code` into `out` (dim()
  /// floats).
  void Decode(const uint8_t* code, float* out) const;

  /// Fills the per-query ADC table: `table[m * codewords() + c]` is the
  /// squared L2 distance between the query's m-th band and codeword c.
  /// `table` must hold num_subspaces() * codewords() floats.
  void ComputeLookupTable(const float* query, float* table) const;

  /// Approximate squared L2 distance from a precomputed lookup table.
  float AdcDistance(const float* table, const uint8_t* code) const;

  /// Subspace m's dimension range.
  DimRange Subspace(size_t m) const { return bands_[m]; }

  size_t SizeBytes() const;

 private:
  PqParams params_;
  size_t dim_ = 0;
  std::vector<DimRange> bands_;
  /// codebooks_[m] is codewords() x band-width, row-major.
  std::vector<std::vector<float>> codebooks_;
};

/// \brief IVF with PQ-compressed residuals (IVFADC): the standard
/// memory-frugal single-node baseline. Stores M bytes per vector instead of
/// 4*d, at the cost of approximate distances (and hence recall).
class IvfPqIndex {
 public:
  struct Params {
    size_t nlist = 64;
    PqParams pq;
    size_t train_iters = 8;
    uint64_t seed = 42;
  };

  IvfPqIndex() : IvfPqIndex(Params{}) {}
  explicit IvfPqIndex(Params params) : params_(params) {}

  bool trained() const { return trained_; }
  size_t dim() const { return centroids_.dim(); }
  size_t nlist() const { return centroids_.size(); }
  size_t num_vectors() const { return num_vectors_; }

  /// Trains the coarse quantizer and the PQ codebooks (on residuals).
  Status Train(const DatasetView& data);

  /// Encodes and stores vectors (residual-encoded per coarse cell).
  Status Add(const DatasetView& data);

  /// ADC search over the `nprobe` nearest cells; ascending approximate
  /// distance.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       size_t nprobe) const;

  /// Compressed index footprint (centroids + codebooks + codes + ids).
  size_t SizeBytes() const;

 private:
  Params params_;
  ProductQuantizer pq_;
  Dataset centroids_;
  std::vector<std::vector<int64_t>> list_ids_;
  std::vector<std::vector<uint8_t>> list_codes_;  // n_l x code_size
  size_t num_vectors_ = 0;
  bool trained_ = false;
};

}  // namespace harmony

#endif  // HARMONY_INDEX_PQ_H_
