#ifndef HARMONY_INDEX_PQ_H_
#define HARMONY_INDEX_PQ_H_

#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "storage/dim_slice.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Product-quantizer configuration: vectors are split into
/// `num_subspaces` contiguous dimension bands, each quantized to one of
/// `1 << bits` codewords learned by k-means.
struct PqParams {
  size_t num_subspaces = 8;  // M
  size_t bits = 8;           // log2(codewords per subspace), <= 8
  size_t train_iters = 10;
  uint64_t seed = 42;
};

/// \brief Product quantizer (Jégou et al.), the lossy-compression
/// alternative the paper contrasts with its distribution approach
/// (Section 2.1). Encodes a d-dim float vector into M bytes; asymmetric
/// distance computation (ADC) approximates L2² from a per-query lookup
/// table without decompressing.
class ProductQuantizer {
 public:
  explicit ProductQuantizer(PqParams params = PqParams()) : params_(params) {}

  const PqParams& params() const { return params_; }
  bool trained() const { return !codebooks_.empty(); }
  size_t dim() const { return dim_; }
  size_t num_subspaces() const { return params_.num_subspaces; }
  size_t codewords() const { return size_t{1} << params_.bits; }
  size_t code_size() const { return params_.num_subspaces; }  // bytes

  /// Learns the per-subspace codebooks from training vectors.
  Status Train(const DatasetView& data);

  /// Encodes one vector into `code_size()` bytes.
  void Encode(const float* vec, uint8_t* code) const;

  /// Encodes every row; result is row-major n x code_size().
  std::vector<uint8_t> EncodeBatch(const DatasetView& data) const;

  /// Reconstructs the quantized approximation of `code` into `out` (dim()
  /// floats).
  void Decode(const uint8_t* code, float* out) const;

  /// Fills the per-query ADC table: `table[m * codewords() + c]` is the
  /// squared L2 distance between the query's m-th band and codeword c.
  /// `table` must hold num_subspaces() * codewords() floats.
  void ComputeLookupTable(const float* query, float* table) const;

  /// Inner-product variant: `table[m * codewords() + c]` is the dot product
  /// between the query's m-th band and codeword c, so the ADC sum estimates
  /// the full inner product of query and vector over dim().
  void ComputeLookupTableIp(const float* query, float* table) const;

  /// Approximate squared L2 distance from a precomputed lookup table.
  float AdcDistance(const float* table, const uint8_t* code) const;

  /// Subspace m's dimension range.
  DimRange Subspace(size_t m) const { return bands_[m]; }

  size_t SizeBytes() const;

 private:
  PqParams params_;
  size_t dim_ = 0;
  std::vector<DimRange> bands_;
  /// codebooks_[m] is codewords() x band-width, row-major.
  std::vector<std::vector<float>> codebooks_;
};

/// \brief Grid-aligned product quantization: one ProductQuantizer per
/// partition-plan dimension block, so each (vec_shard, dim_block) grid block
/// can stream M_b-byte codes instead of width_b * 4 float bytes. The total
/// subspace budget `num_subspaces` is apportioned across blocks by width
/// (M_b ~ M * width_b / dim, at least 1 per block, at most width_b), and the
/// per-block seed is derived deterministically from the base seed and the
/// block index, so a (data, ranges, params) triple always yields the same
/// codebooks regardless of thread count or engine.
struct GridPqParams {
  size_t num_subspaces = 16;  ///< Across the full dimension, split per block.
  size_t bits = 8;            ///< log2(codewords per subspace), <= 8.
  size_t train_iters = 10;
  uint64_t seed = 42;
};

class GridQuantizer {
 public:
  GridQuantizer() = default;

  bool trained() const { return !blocks_.empty(); }
  size_t dim() const { return dim_; }
  size_t num_blocks() const { return blocks_.size(); }
  const GridPqParams& params() const { return params_; }
  const std::vector<DimRange>& ranges() const { return ranges_; }
  /// Block d's quantizer; its dim() is ranges()[d].width() and its code
  /// operates on the columns [ranges()[d].begin, ranges()[d].end).
  const ProductQuantizer& block(size_t d) const { return blocks_[d]; }
  /// Bytes per row in block d's code stream.
  size_t code_size(size_t d) const { return blocks_[d].code_size(); }

  /// Trains one quantizer per dim range on the corresponding columns of
  /// `data`. When the training set is smaller than 2^bits the codeword
  /// budget is clamped (deterministically, same for every block) so small
  /// corpora still train. Retrains from scratch if already trained.
  Status Train(const DatasetView& data, const std::vector<DimRange>& ranges,
               const GridPqParams& params);

  void Reset() {
    blocks_.clear();
    ranges_.clear();
    dim_ = 0;
  }

  /// Codebook footprint across all blocks.
  size_t SizeBytes() const;

 private:
  GridPqParams params_;
  size_t dim_ = 0;
  std::vector<DimRange> ranges_;
  std::vector<ProductQuantizer> blocks_;
};

/// \brief IVF with PQ-compressed residuals (IVFADC): the standard
/// memory-frugal single-node baseline. Stores M bytes per vector instead of
/// 4*d, at the cost of approximate distances (and hence recall).
class IvfPqIndex {
 public:
  struct Params {
    size_t nlist = 64;
    PqParams pq;
    size_t train_iters = 8;
    uint64_t seed = 42;
  };

  IvfPqIndex() : IvfPqIndex(Params{}) {}
  explicit IvfPqIndex(Params params) : params_(params) {}

  bool trained() const { return trained_; }
  size_t dim() const { return centroids_.dim(); }
  size_t nlist() const { return centroids_.size(); }
  size_t num_vectors() const { return num_vectors_; }

  /// Trains the coarse quantizer and the PQ codebooks (on residuals).
  Status Train(const DatasetView& data);

  /// Encodes and stores vectors (residual-encoded per coarse cell).
  Status Add(const DatasetView& data);

  /// ADC search over the `nprobe` nearest cells; ascending approximate
  /// distance.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       size_t nprobe) const;

  /// Compressed index footprint (centroids + codebooks + codes + ids).
  size_t SizeBytes() const;

 private:
  Params params_;
  ProductQuantizer pq_;
  Dataset centroids_;
  std::vector<std::vector<int64_t>> list_ids_;
  std::vector<std::vector<uint8_t>> list_codes_;  // n_l x code_size
  size_t num_vectors_ = 0;
  bool trained_ = false;
};

}  // namespace harmony

#endif  // HARMONY_INDEX_PQ_H_
