#ifndef HARMONY_INDEX_DISTANCE_SIMD_H_
#define HARMONY_INDEX_DISTANCE_SIMD_H_

#include <cstddef>

namespace harmony {
namespace simd {

/// AVX2 kernels (defined in distance_avx2.cc, compiled with -mavx2; only
/// ever *called* after a runtime CPU check — see distance.cc).
float L2SqDistanceAvx2(const float* a, const float* b, size_t dim);
float InnerProductAvx2(const float* a, const float* b, size_t dim);

/// True when this build carries the AVX2 kernels AND the running CPU
/// supports them.
bool Avx2Available();

/// True when this build carries the AVX-512 scan kernels
/// (scan_kernel_avx512.cc, compiled with -mavx512f/dq/bw) AND the running
/// CPU supports those sets.
bool Avx512Available();

}  // namespace simd
}  // namespace harmony

#endif  // HARMONY_INDEX_DISTANCE_SIMD_H_
