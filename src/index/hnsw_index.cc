#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "util/rng.h"

namespace harmony {

namespace {

/// Min-heap on distance for the expansion frontier.
struct Closer {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.id > b.id;
  }
};

}  // namespace

Status HnswIndex::Add(const DatasetView& vectors) {
  if (vectors.empty()) return Status::OK();
  if (!data_.empty() && vectors.dim() != data_.dim()) {
    return Status::InvalidArgument("dimension mismatch on Add");
  }
  if (level_rng_state_ == 0) level_rng_state_ = params_.seed | 1;
  Rng rng(level_rng_state_);

  const double level_mult = 1.0 / std::log(static_cast<double>(params_.m));
  for (size_t v = 0; v < vectors.size(); ++v) {
    HARMONY_RETURN_NOT_OK(data_.Append(vectors.Row(v), vectors.dim()));
    const size_t node = data_.size() - 1;
    const float* vec = data_.Row(node);

    // Exponentially-distributed level.
    const int level = static_cast<int>(
        -std::log(std::max(1e-12, rng.NextDouble())) * level_mult);
    Node entry;
    entry.level = level;
    entry.neighbors.resize(static_cast<size_t>(level) + 1);
    nodes_.push_back(std::move(entry));

    if (entry_point_ < 0) {
      entry_point_ = static_cast<int32_t>(node);
      max_level_ = level;
      continue;
    }

    // Phase 1: greedy descent through levels above the new node's level.
    int32_t cur = entry_point_;
    for (int l = max_level_; l > level; --l) {
      cur = GreedyStep(vec, cur, l);
    }
    // Phase 2: beam search + connect at each level from min(level,max) to 0.
    for (int l = std::min(level, max_level_); l >= 0; --l) {
      const std::vector<Neighbor> candidates =
          SearchLevel(vec, cur, params_.ef_construction, l);
      const size_t max_m = l == 0 ? params_.m * 2 : params_.m;
      Connect(node, l, candidates, max_m);
      if (!candidates.empty()) {
        cur = static_cast<int32_t>(candidates.front().id);
      }
    }
    if (level > max_level_) {
      max_level_ = level;
      entry_point_ = static_cast<int32_t>(node);
    }
  }
  // Persist RNG progression across Add calls for deterministic rebuilds of
  // identical insertion sequences.
  level_rng_state_ = rng.NextU64() | 1;
  return Status::OK();
}

int32_t HnswIndex::GreedyStep(const float* query, int32_t entry,
                              int level) const {
  int32_t cur = entry;
  float cur_dist = Dist(query, static_cast<size_t>(cur));
  bool improved = true;
  while (improved) {
    improved = false;
    for (const int32_t nb :
         nodes_[static_cast<size_t>(cur)].neighbors[static_cast<size_t>(level)]) {
      const float d = Dist(query, static_cast<size_t>(nb));
      if (d < cur_dist) {
        cur_dist = d;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLevel(const float* query, int32_t entry,
                                             size_t ef, int level) const {
  std::priority_queue<Neighbor, std::vector<Neighbor>, Closer> frontier;
  TopKHeap best(ef);
  std::unordered_set<int32_t> visited;

  const float entry_dist = Dist(query, static_cast<size_t>(entry));
  frontier.push({entry, entry_dist});
  best.Push(entry, entry_dist);
  visited.insert(entry);

  while (!frontier.empty()) {
    const Neighbor cur = frontier.top();
    frontier.pop();
    if (best.full() && cur.distance > best.threshold()) break;
    for (const int32_t nb :
         nodes_[static_cast<size_t>(cur.id)].neighbors[static_cast<size_t>(level)]) {
      if (!visited.insert(nb).second) continue;
      const float d = Dist(query, static_cast<size_t>(nb));
      if (!best.full() || d < best.threshold()) {
        frontier.push({nb, d});
        best.Push(nb, d);
      }
    }
  }
  return best.SortedResults();
}

std::vector<int32_t> HnswIndex::SelectNeighbors(
    const float* vec, std::vector<Neighbor> candidates, size_t max_m) const {
  std::sort(candidates.begin(), candidates.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  // HNSW's diversity heuristic (Algorithm 4): keep a candidate only if it
  // is closer to `vec` than to every already-kept neighbor. This is what
  // preserves long-range edges between clusters — plain closest-first
  // selection disconnects well-separated clusters and strands points with
  // no in-edges.
  std::vector<int32_t> kept;
  std::vector<Neighbor> skipped;
  for (const Neighbor& cand : candidates) {
    if (kept.size() >= max_m) break;
    bool diverse = true;
    for (const int32_t s : kept) {
      const float to_kept = Dist(data_.Row(static_cast<size_t>(cand.id)),
                                 static_cast<size_t>(s));
      if (to_kept < cand.distance) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      kept.push_back(static_cast<int32_t>(cand.id));
    } else {
      skipped.push_back(cand);
    }
  }
  // keepPrunedConnections: fill the remaining capacity with the closest
  // skipped candidates.
  for (size_t i = 0; i < skipped.size() && kept.size() < max_m; ++i) {
    kept.push_back(static_cast<int32_t>(skipped[i].id));
  }
  (void)vec;
  return kept;
}

void HnswIndex::Connect(size_t node, int level,
                        const std::vector<Neighbor>& candidates,
                        size_t max_m) {
  std::vector<Neighbor> filtered;
  filtered.reserve(candidates.size());
  for (const Neighbor& c : candidates) {
    if (static_cast<size_t>(c.id) != node) filtered.push_back(c);
  }
  auto& my_edges = nodes_[node].neighbors[static_cast<size_t>(level)];
  my_edges = SelectNeighbors(data_.Row(node), filtered, max_m);

  for (const int32_t nb : my_edges) {
    auto& their_edges =
        nodes_[static_cast<size_t>(nb)].neighbors[static_cast<size_t>(level)];
    their_edges.push_back(static_cast<int32_t>(node));
    if (their_edges.size() > max_m) {
      const float* their_vec = data_.Row(static_cast<size_t>(nb));
      std::vector<Neighbor> scored;
      scored.reserve(their_edges.size());
      for (const int32_t e : their_edges) {
        scored.push_back({e, Dist(their_vec, static_cast<size_t>(e))});
      }
      their_edges = SelectNeighbors(their_vec, std::move(scored), max_m);
    }
  }
}

Result<std::vector<Neighbor>> HnswIndex::Search(const float* query, size_t k,
                                                size_t ef) const {
  if (data_.empty()) return Status::FailedPrecondition("index is empty");
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  ef = std::max(ef, k);
  int32_t cur = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    cur = GreedyStep(query, cur, l);
  }
  std::vector<Neighbor> found = SearchLevel(query, cur, ef, 0);
  if (found.size() > k) found.resize(k);
  return found;
}

std::pair<uint64_t, uint64_t> HnswIndex::CrossPartitionEdges(
    size_t num_machines) const {
  uint64_t cross = 0, total = 0;
  if (num_machines == 0) return {0, 0};
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const auto& level_edges : nodes_[n].neighbors) {
      for (const int32_t nb : level_edges) {
        ++total;
        if (n % num_machines !=
            static_cast<size_t>(nb) % num_machines) {
          ++cross;
        }
      }
    }
  }
  return {cross, total};
}

size_t HnswIndex::SizeBytes() const {
  size_t bytes = data_.SizeBytes();
  for (const Node& node : nodes_) {
    for (const auto& level_edges : node.neighbors) {
      bytes += level_edges.size() * sizeof(int32_t);
    }
  }
  return bytes;
}

}  // namespace harmony
