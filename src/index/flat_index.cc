#include "index/flat_index.h"

namespace harmony {

Status FlatIndex::Add(const DatasetView& vectors) {
  if (vectors.empty()) return Status::OK();
  if (!data_.empty() && vectors.dim() != data_.dim()) {
    return Status::InvalidArgument("dimension mismatch on Add");
  }
  for (size_t i = 0; i < vectors.size(); ++i) {
    HARMONY_RETURN_NOT_OK(data_.Append(vectors.Row(i), vectors.dim()));
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> FlatIndex::Search(const float* query,
                                                size_t k) const {
  if (data_.empty()) return Status::FailedPrecondition("index is empty");
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  TopKHeap heap(k);
  const size_t n = data_.size();
  const size_t dim = data_.dim();
  for (size_t i = 0; i < n; ++i) {
    const float d = Distance(metric_, query, data_.Row(i), dim);
    heap.Push(static_cast<int64_t>(i), d);
  }
  return heap.SortedResults();
}

Result<std::vector<std::vector<Neighbor>>> FlatIndex::SearchBatch(
    const DatasetView& queries, size_t k) const {
  if (queries.dim() != data_.dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  std::vector<std::vector<Neighbor>> out(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    HARMONY_ASSIGN_OR_RETURN(out[q], Search(queries.Row(q), k));
  }
  return out;
}

}  // namespace harmony
