#ifndef HARMONY_INDEX_KMEANS_H_
#define HARMONY_INDEX_KMEANS_H_

#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Parameters for Lloyd's k-means with k-means++ seeding.
struct KMeansParams {
  size_t num_clusters = 16;
  size_t max_iters = 10;
  /// Relative improvement in total inertia below which training stops early.
  double tolerance = 1e-4;
  uint64_t seed = 42;
  /// k-means++ seeding is O(n * k * d); for large k a random-sample seeding
  /// is cheaper and nearly as good for IVF purposes.
  bool use_kmeanspp = true;
  /// Worker threads for the assignment/scoring passes (1 = serial). The
  /// point ranges and the partial-sum reduction order are fixed functions of
  /// n alone, so training is bit-identical for every thread count.
  size_t num_threads = 1;
};

/// \brief Output of k-means training.
struct KMeansResult {
  Dataset centroids;                  // num_clusters x dim
  std::vector<int32_t> assignments;   // one entry per input row
  std::vector<int64_t> cluster_sizes; // one entry per cluster
  double inertia = 0.0;               // sum of squared distances to centroids
  size_t iterations_run = 0;
};

/// \brief Trains k-means on `data`. Empty clusters are re-seeded from the
/// point currently farthest from its centroid, so every returned cluster is
/// non-empty whenever `data.size() >= num_clusters`.
Result<KMeansResult> TrainKMeans(const DatasetView& data,
                                 const KMeansParams& params);

/// \brief Index of the centroid closest (in L2) to `vec`.
int32_t NearestCentroid(const DatasetView& centroids, const float* vec);

}  // namespace harmony

#endif  // HARMONY_INDEX_KMEANS_H_
