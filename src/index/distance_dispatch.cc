#include "index/distance_simd.h"

namespace harmony {
namespace simd {

#if !defined(__AVX2__) && !defined(HARMONY_HAVE_AVX2_TU)
// The AVX2 translation unit was not built; provide stubs so the dispatcher
// links (they are never called because Avx2Available() returns false).
float L2SqDistanceAvx2(const float*, const float*, size_t) { return 0.0f; }
float InnerProductAvx2(const float*, const float*, size_t) { return 0.0f; }
#endif

bool Avx2Available() {
#if defined(HARMONY_HAVE_AVX2_TU)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace simd
}  // namespace harmony
