#include "index/distance_simd.h"

#include "util/logging.h"

namespace harmony {
namespace simd {

#if !defined(__AVX2__) && !defined(HARMONY_HAVE_AVX2_TU)
// The AVX2 translation unit was not built; the dispatcher never selects
// these because Avx2Available() returns false. Returning a silent wrong
// result here would be a correctness footgun if the dispatch logic ever
// regressed, so reaching a stub aborts loudly instead.
float L2SqDistanceAvx2(const float*, const float*, size_t) {
  HARMONY_CHECK_MSG(false,
                    "L2SqDistanceAvx2 stub called: AVX2 TU not built but "
                    "dispatch selected the AVX2 kernel");
  return 0.0f;  // Unreachable.
}
float InnerProductAvx2(const float*, const float*, size_t) {
  HARMONY_CHECK_MSG(false,
                    "InnerProductAvx2 stub called: AVX2 TU not built but "
                    "dispatch selected the AVX2 kernel");
  return 0.0f;  // Unreachable.
}
#endif

bool Avx2Available() {
#if defined(HARMONY_HAVE_AVX2_TU)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool Avx512Available() {
#if defined(HARMONY_HAVE_AVX512_TU)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512bw");
#else
  return false;
#endif
}

}  // namespace simd
}  // namespace harmony
