#include "index/scan_kernel.h"

#include <algorithm>
#include <cmath>

#include "index/distance_simd.h"

namespace harmony {

namespace portable {

float L2Row(const float* a, const float* b, size_t width) {
  // Four accumulators let the compiler vectorize without relying on
  // -ffast-math reassociation. This body is the bitwise reference for every
  // other L2 kernel in the table.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= width; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < width; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float IpRow(const float* a, const float* b, size_t width) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= width; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < width; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

namespace {

/// Rows ~2 iterations ahead of the current one are pulled toward L1 while
/// the current group computes; one line per 16 floats.
inline void PrefetchRow(const float* row, size_t width) {
  for (size_t i = 0; i < width; i += 16) {
    __builtin_prefetch(row + i, /*rw=*/0, /*locality=*/3);
  }
}

}  // namespace

void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    accum[r] += L2Row(q, rows + r * width, width);
  }
}

void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    accum[r] += IpRow(q, rows + r * width, width);
  }
}

void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  // Row-outer, query-inner: each row is loaded from memory once per query
  // tile and scored against every query in the group. Per (query, row) the
  // body is L2Row, the bitwise reference for the whole L2 column.
  for (size_t q0 = 0; q0 < nq; q0 += kMaxQueryGroup) {
    const size_t qn = std::min(kMaxQueryGroup, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += L2Row(qs[q0 + g], row, width);
      }
    }
  }
}

void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  for (size_t q0 = 0; q0 < nq; q0 += kMaxQueryGroup) {
    const size_t qn = std::min(kMaxQueryGroup, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += IpRow(qs[q0 + g], row, width);
      }
    }
  }
}

uint32_t PruneMaskL2(const float* partial, size_t count, float tau) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    if (partial[i] > tau) mask |= uint32_t{1} << i;
  }
  return mask;
}

uint32_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau) {
  // Identical arithmetic to CanPrune (core/pruning.h): the Cauchy–Schwarz
  // bound on the unprocessed blocks' inner-product contribution.
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    const float rest =
        std::sqrt(std::max(0.0f, rem_p_sq[i]) * std::max(0.0f, rem_q_sq));
    if (-(partial[i] + rest) > tau) mask |= uint32_t{1} << i;
  }
  return mask;
}

void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out) {
  // One accumulator, ascending-m: the bitwise reference for the AVX2 gather
  // kernel (which runs the same per-lane addition sequence) and identical to
  // ProductQuantizer::AdcDistance.
  for (size_t r = 0; r < count; ++r) {
    const uint8_t* code = codes + r * code_size;
    float acc = 0.0f;
    for (size_t m = 0; m < code_size; ++m) acc += lut[m * ksub + code[m]];
    out[r] = acc;
  }
}

}  // namespace portable

namespace {

constexpr ScanKernelTable kPortableTable = {
    portable::L2Row,       portable::IpRow,       portable::L2Batch,
    portable::IpBatch,     portable::L2Group,     portable::IpGroup,
    portable::PruneMaskL2, portable::PruneMaskIp, portable::AdcBatch,
    "portable",
};

#if defined(HARMONY_HAVE_AVX2_TU)
constexpr ScanKernelTable kAvx2Table = {
    avx2::L2Row,       avx2::IpRow,       avx2::L2Batch,
    avx2::IpBatch,     avx2::L2Group,     avx2::IpGroup,
    avx2::PruneMaskL2, avx2::PruneMaskIp, avx2::AdcBatch,
    "avx2",
};
#endif

ScanKernelTable ResolveTable() {
#if defined(HARMONY_HAVE_AVX2_TU)
  if (simd::Avx2Available()) return kAvx2Table;
#endif
  return kPortableTable;
}

}  // namespace

const ScanKernelTable& ScanKernels() {
  // Resolved exactly once; hot loops pay a table load, never a CPU check.
  static const ScanKernelTable table = ResolveTable();
  return table;
}

}  // namespace harmony
