#include "index/scan_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "index/distance_simd.h"

namespace harmony {

namespace portable {

float L2Row(const float* a, const float* b, size_t width) {
  // Four accumulators let the compiler vectorize without relying on
  // -ffast-math reassociation. This body is the bitwise reference for every
  // other L2 kernel in the table.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= width; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < width; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float IpRow(const float* a, const float* b, size_t width) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= width; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < width; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

namespace {

/// Rows `prefetch` iterations ahead of the current one are pulled toward L1
/// while the current group computes; one line per 16 floats.
inline void PrefetchRow(const float* row, size_t width) {
  for (size_t i = 0; i < width; i += 16) {
    __builtin_prefetch(row + i, /*rw=*/0, /*locality=*/3);
  }
}

}  // namespace

void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    accum[r] += L2Row(q, rows + r * width, width);
  }
}

void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
    accum[r] += IpRow(q, rows + r * width, width);
  }
}

void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  // Row-outer, query-inner: each row is loaded from memory once per query
  // tile and scored against every query in the group. Per (query, row) the
  // body is L2Row, the bitwise reference for the whole L2 column.
  for (size_t q0 = 0; q0 < nq; q0 += kMaxQueryGroup) {
    const size_t qn = std::min(kMaxQueryGroup, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += L2Row(qs[q0 + g], row, width);
      }
    }
  }
}

void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  for (size_t q0 = 0; q0 < nq; q0 += kMaxQueryGroup) {
    const size_t qn = std::min(kMaxQueryGroup, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (r + 2 < count) PrefetchRow(rows + (r + 2) * width, width);
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += IpRow(qs[q0 + g], row, width);
      }
    }
  }
}

// The portable tier has no register-blocked variants — the row loop IS the
// per-row path — so the shaped entries only honor the prefetch distance and
// the query-tile width. Results are L2Row/IpRow per (query, row) for any
// shape, like every other tier.

void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  const size_t pf = shape.prefetch;
  for (size_t r = 0; r < count; ++r) {
    if (pf != 0 && r + pf < count) PrefetchRow(rows + (r + pf) * width, width);
    accum[r] += L2Row(q, rows + r * width, width);
  }
}

void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  const size_t pf = shape.prefetch;
  for (size_t r = 0; r < count; ++r) {
    if (pf != 0 && r + pf < count) PrefetchRow(rows + (r + pf) * width, width);
    accum[r] += IpRow(q, rows + r * width, width);
  }
}

void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  const size_t qt = std::clamp<size_t>(shape.query_tile, 1, kMaxQueryTile);
  const size_t pf = shape.prefetch;
  for (size_t q0 = 0; q0 < nq; q0 += qt) {
    const size_t qn = std::min(qt, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (pf != 0 && r + pf < count) {
        PrefetchRow(rows + (r + pf) * width, width);
      }
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += L2Row(qs[q0 + g], row, width);
      }
    }
  }
}

void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  const size_t qt = std::clamp<size_t>(shape.query_tile, 1, kMaxQueryTile);
  const size_t pf = shape.prefetch;
  for (size_t q0 = 0; q0 < nq; q0 += qt) {
    const size_t qn = std::min(qt, nq - q0);
    for (size_t r = 0; r < count; ++r) {
      if (pf != 0 && r + pf < count) {
        PrefetchRow(rows + (r + pf) * width, width);
      }
      const float* row = rows + r * width;
      for (size_t g = 0; g < qn; ++g) {
        accums[q0 + g][r] += IpRow(qs[q0 + g], row, width);
      }
    }
  }
}

uint64_t PruneMaskL2(const float* partial, size_t count, float tau) {
  uint64_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    if (partial[i] > tau) mask |= uint64_t{1} << i;
  }
  return mask;
}

uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau) {
  // Identical arithmetic to CanPrune (core/pruning.h): the Cauchy–Schwarz
  // bound on the unprocessed blocks' inner-product contribution.
  uint64_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    const float rest =
        std::sqrt(std::max(0.0f, rem_p_sq[i]) * std::max(0.0f, rem_q_sq));
    if (-(partial[i] + rest) > tau) mask |= uint64_t{1} << i;
  }
  return mask;
}

void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out) {
  // One accumulator, ascending-m: the bitwise reference for the SIMD gather
  // kernels (which run the same per-lane addition sequence) and identical to
  // ProductQuantizer::AdcDistance.
  for (size_t r = 0; r < count; ++r) {
    const uint8_t* code = codes + r * code_size;
    float acc = 0.0f;
    for (size_t m = 0; m < code_size; ++m) acc += lut[m * ksub + code[m]];
    out[r] = acc;
  }
}

}  // namespace portable

namespace {

constexpr ScanKernelTable kPortableTable = {
    portable::L2Row,          portable::IpRow,
    portable::L2Batch,        portable::IpBatch,
    portable::L2Group,        portable::IpGroup,
    portable::L2BatchShaped,  portable::IpBatchShaped,
    portable::L2GroupShaped,  portable::IpGroupShaped,
    portable::PruneMaskL2,    portable::PruneMaskIp,
    portable::AdcBatch,       "portable",
};

#if defined(HARMONY_HAVE_AVX2_TU)
constexpr ScanKernelTable kAvx2Table = {
    avx2::L2Row,          avx2::IpRow,
    avx2::L2Batch,        avx2::IpBatch,
    avx2::L2Group,        avx2::IpGroup,
    avx2::L2BatchShaped,  avx2::IpBatchShaped,
    avx2::L2GroupShaped,  avx2::IpGroupShaped,
    avx2::PruneMaskL2,    avx2::PruneMaskIp,
    avx2::AdcBatch,       "avx2",
};
#endif

#if defined(HARMONY_HAVE_AVX512_TU)
constexpr ScanKernelTable kAvx512Table = {
    avx512::L2Row,          avx512::IpRow,
    avx512::L2Batch,        avx512::IpBatch,
    avx512::L2Group,        avx512::IpGroup,
    avx512::L2BatchShaped,  avx512::IpBatchShaped,
    avx512::L2GroupShaped,  avx512::IpGroupShaped,
    avx512::PruneMaskL2,    avx512::PruneMaskIp,
    avx512::AdcBatch,       "avx512",
};
#endif

/// Widest tier available on this build + CPU.
KernelTier BestAvailableTier() {
#if defined(HARMONY_HAVE_AVX512_TU)
  if (simd::Avx512Available()) return KernelTier::kAvx512;
#endif
#if defined(HARMONY_HAVE_AVX2_TU)
  if (simd::Avx2Available()) return KernelTier::kAvx2;
#endif
  return KernelTier::kPortable;
}

/// HARMONY_KERNEL_TIER, parsed once: the process-wide pin CI legs use to
/// run a whole test binary on one tier. Unset/unparsable/unavailable ->
/// kAuto (the CPU pick).
KernelTier EnvTier() {
  static const KernelTier tier = [] {
    const char* env = std::getenv("HARMONY_KERNEL_TIER");
    KernelTier t = KernelTier::kAuto;
    if (env != nullptr && ParseKernelTier(env, &t) && !KernelTierAvailable(t)) {
      t = KernelTier::kAuto;
    }
    return t;
  }();
  return tier;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAuto:
      return "auto";
    case KernelTier::kPortable:
      return "portable";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "auto";
}

bool ParseKernelTier(std::string_view name, KernelTier* out) {
  if (name == "auto") {
    *out = KernelTier::kAuto;
  } else if (name == "portable") {
    *out = KernelTier::kPortable;
  } else if (name == "avx2") {
    *out = KernelTier::kAvx2;
  } else if (name == "avx512") {
    *out = KernelTier::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool KernelTierAvailable(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAuto:
    case KernelTier::kPortable:
      return true;
    case KernelTier::kAvx2:
      return simd::Avx2Available();
    case KernelTier::kAvx512:
      return simd::Avx512Available();
  }
  return false;
}

KernelTier ResolveKernelTier(KernelTier requested) {
  if (requested == KernelTier::kAuto) {
    const KernelTier pinned = EnvTier();
    return pinned == KernelTier::kAuto ? BestAvailableTier() : pinned;
  }
  return KernelTierAvailable(requested) ? requested : BestAvailableTier();
}

const ScanKernelTable& ScanKernelsFor(KernelTier tier) {
  switch (ResolveKernelTier(tier)) {
#if defined(HARMONY_HAVE_AVX512_TU)
    case KernelTier::kAvx512:
      return kAvx512Table;
#endif
#if defined(HARMONY_HAVE_AVX2_TU)
    case KernelTier::kAvx2:
      return kAvx2Table;
#endif
    default:
      return kPortableTable;
  }
}

const ScanKernelTable& ScanKernels() {
  // Resolved exactly once; hot loops pay a table load, never a CPU check.
  static const ScanKernelTable& table = ScanKernelsFor(KernelTier::kAuto);
  return table;
}

}  // namespace harmony
