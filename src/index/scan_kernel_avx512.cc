// AVX-512 batched block-scan kernels. Compiled with
// -mavx512f -mavx512dq -mavx512bw (plus -mavx2 -mfma for the shared 256-bit
// reduction/tail code; see src/CMakeLists.txt) and referenced only when the
// running CPU reports those sets — ScanKernels() resolves the table once.
//
// Bitwise-identity contract (docs/kernels.md): this tier is constructed to
// be bit-identical to the AVX2 tier, not merely to itself. Each 512-bit
// accumulator is treated as two independent 256-bit lanes — one 512-bit FMA
// over a 16-float chunk computes, lane for lane, exactly what the AVX2
// kernels' two 256-bit FMAs compute (the low half is AVX2's acc0, the high
// half acc1). The reduction splits the halves back apart, runs the leftover
// 8-wide chunk and the Hsum256 addition tree on 256-bit registers, and
// finishes with the same scalar tail. Widths below 16 fall back to the
// portable bodies, preserving the historical dispatch cutover. The payoff:
// half the FMA instructions per row and 32 zmm registers — room for 8-row
// batch blocks and 8-query group tiles (one accumulator per row/query
// instead of two) — without changing a single result bit, so `avx2` and
// `avx512` dispatch are interchangeable under every pinned golden.

#include "index/scan_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>

namespace harmony {
namespace avx512 {

namespace {

/// Horizontal sum of an 8-float register; identical to distance_avx2.cc.
inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

/// Four horizontal sums at once; every lane runs the Hsum256 addition tree
/// (bit-identical, see scan_kernel_avx2.cc).
inline __m128 Hsum256x4(__m256 v0, __m256 v1, __m256 v2, __m256 v3) {
  const __m128 s0 = _mm_add_ps(_mm256_castps256_ps128(v0),
                               _mm256_extractf128_ps(v0, 1));
  const __m128 s1 = _mm_add_ps(_mm256_castps256_ps128(v1),
                               _mm256_extractf128_ps(v1, 1));
  const __m128 s2 = _mm_add_ps(_mm256_castps256_ps128(v2),
                               _mm256_extractf128_ps(v2, 1));
  const __m128 s3 = _mm_add_ps(_mm256_castps256_ps128(v3),
                               _mm256_extractf128_ps(v3, 1));
  const __m128 h01 = _mm_hadd_ps(s0, s1);
  const __m128 h23 = _mm_hadd_ps(s2, s3);
  return _mm_hadd_ps(h01, h23);
}

inline __m256 FmaddOrMulAdd256(__m256 a, __m256 b, __m256 acc) {
#if defined(__FMA__)
  return _mm256_fmadd_ps(a, b, acc);
#else
  return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
#endif
}

/// 512-bit FMA: per 32-bit lane the identical operation (and rounding) of
/// the two 256-bit FMAs it replaces.
inline __m512 Fmadd512(__m512 a, __m512 b, __m512 acc) {
  return _mm512_fmadd_ps(a, b, acc);
}

inline void PrefetchRow(const float* row, size_t width) {
  const size_t lines = std::min<size_t>(width, 64);
  for (size_t i = 0; i < lines; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(row + i), _MM_HINT_T0);
  }
}

/// Reduces RB accumulator pairs exactly like the AVX2 tier.
template <size_t RB>
inline void ReduceBlock(const __m256* a0, const __m256* a1, float* t) {
  size_t g = 0;
  for (; g + 4 <= RB; g += 4) {
    alignas(16) float s[4];
    _mm_store_ps(
        s, Hsum256x4(_mm256_add_ps(a0[g], a1[g]),
                     _mm256_add_ps(a0[g + 1], a1[g + 1]),
                     _mm256_add_ps(a0[g + 2], a1[g + 2]),
                     _mm256_add_ps(a0[g + 3], a1[g + 3])));
    t[g] = s[0];
    t[g + 1] = s[1];
    t[g + 2] = s[2];
    t[g + 3] = s[3];
  }
  for (; g < RB; ++g) t[g] = Hsum256(_mm256_add_ps(a0[g], a1[g]));
}

/// Single-row kernel, bit-identical to the AVX2 tier's RowImpl: the zmm
/// accumulator's low 256 bits evolve exactly like AVX2's acc0, the high
/// bits like acc1; the 8-wide chunk, the reduction and the unfused scalar
/// tail (both TUs pin -ffp-contract=off) then ARE the AVX2 code.
template <bool kIp>
float RowImpl(const float* a, const float* b, size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    if constexpr (kIp) {
      acc = Fmadd512(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc);
    } else {
      const __m512 d =
          _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
      acc = Fmadd512(d, d, acc);
    }
  }
  __m256 acc0 = _mm512_castps512_ps256(acc);
  __m256 acc1 = _mm512_extractf32x8_ps(acc, 1);
  for (; i + 8 <= dim; i += 8) {
    if constexpr (kIp) {
      acc0 = FmaddOrMulAdd256(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                              acc0);
    } else {
      const __m256 d =
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
      acc0 = FmaddOrMulAdd256(d, d, acc0);
    }
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    if constexpr (kIp) {
      total += a[i] * b[i];
    } else {
      const float d = a[i] - b[i];
      total += d * d;
    }
  }
  return total;
}

/// Register-blocked batch body: one zmm accumulator per row (the AVX2
/// pair packed into halves), so even RB = 8 leaves most of the 32 zmm
/// registers free. Per row the sequence is frozen; RB and pf are
/// bit-transparent.
template <size_t RB, bool kIp>
void BatchImpl(const float* q, const float* rows, size_t count, size_t width,
               float* accum, size_t pf) {
  size_t r = 0;
  for (; r + RB <= count; r += RB) {
    const float* rp[RB];
    for (size_t g = 0; g < RB; ++g) rp[g] = rows + (r + g) * width;
    if (pf != 0 && r + RB + pf <= count) {
      for (size_t g = 0; g < pf; ++g) {
        PrefetchRow(rows + (r + RB + g) * width, width);
      }
    }
    __m512 a[RB];
    for (size_t g = 0; g < RB; ++g) a[g] = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          a[g] = Fmadd512(qv, _mm512_loadu_ps(rp[g] + i), a[g]);
        } else {
          const __m512 d = _mm512_sub_ps(qv, _mm512_loadu_ps(rp[g] + i));
          a[g] = Fmadd512(d, d, a[g]);
        }
      }
    }
    __m256 a0[RB], a1[RB];
    for (size_t g = 0; g < RB; ++g) {
      a0[g] = _mm512_castps512_ps256(a[g]);
      a1[g] = _mm512_extractf32x8_ps(a[g], 1);
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 q0 = _mm256_loadu_ps(q + i);
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd256(q0, _mm256_loadu_ps(rp[g] + i), a0[g]);
        } else {
          const __m256 d = _mm256_sub_ps(q0, _mm256_loadu_ps(rp[g] + i));
          a0[g] = FmaddOrMulAdd256(d, d, a0[g]);
        }
      }
    }
    float t[RB];
    ReduceBlock<RB>(a0, a1, t);
    for (; i < width; ++i) {
      const float qi = q[i];
      for (size_t g = 0; g < RB; ++g) {
        if constexpr (kIp) {
          t[g] += qi * rp[g][i];
        } else {
          const float d = qi - rp[g][i];
          t[g] += d * d;
        }
      }
    }
    for (size_t g = 0; g < RB; ++g) accum[r + g] += t[g];
  }
  for (; r < count; ++r) {
    accum[r] += RowImpl<kIp>(q, rows + r * width, width);
  }
}

template <bool kIp>
void BatchShapedImpl(const float* q, const float* rows, size_t count,
                     size_t width, float* accum, KernelShape shape) {
  if (count < shape.row_block) {
    // Small-batch guard: straight to the tier's canonical per-row kernel —
    // the exact exported function the per-row path runs.
    for (size_t r = 0; r < count; ++r) {
      accum[r] += kIp ? IpRow(q, rows + r * width, width)
                      : L2Row(q, rows + r * width, width);
    }
    return;
  }
  switch (shape.row_block) {
    case 6:
      BatchImpl<6, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
    case 8:
      BatchImpl<8, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
    default:
      BatchImpl<4, kIp>(q, rows, count, width, accum, shape.prefetch);
      break;
  }
}

/// Query-tiled scan: one zmm accumulator per query, the row chunk loaded
/// once per 16 floats and scored against up to kMaxQueryTile queries.
template <size_t NQ, bool kIp>
void GroupTile(const float* const* qs, const float* rows, size_t count,
               size_t width, float* const* accums, size_t pf) {
  static_assert(NQ >= 2 && NQ <= kMaxQueryTile);
  for (size_t r = 0; r < count; ++r) {
    if (pf != 0 && r + pf < count) PrefetchRow(rows + (r + pf) * width, width);
    const float* row = rows + r * width;
    __m512 a[NQ];
    for (size_t g = 0; g < NQ; ++g) a[g] = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= width; i += 16) {
      const __m512 v = _mm512_loadu_ps(row + i);
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          a[g] = Fmadd512(_mm512_loadu_ps(qs[g] + i), v, a[g]);
        } else {
          const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(qs[g] + i), v);
          a[g] = Fmadd512(d, d, a[g]);
        }
      }
    }
    __m256 a0[NQ], a1[NQ];
    for (size_t g = 0; g < NQ; ++g) {
      a0[g] = _mm512_castps512_ps256(a[g]);
      a1[g] = _mm512_extractf32x8_ps(a[g], 1);
    }
    for (; i + 8 <= width; i += 8) {
      const __m256 v0 = _mm256_loadu_ps(row + i);
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          a0[g] = FmaddOrMulAdd256(_mm256_loadu_ps(qs[g] + i), v0, a0[g]);
        } else {
          const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(qs[g] + i), v0);
          a0[g] = FmaddOrMulAdd256(d, d, a0[g]);
        }
      }
    }
    float t[NQ];
    ReduceBlock<NQ>(a0, a1, t);
    for (; i < width; ++i) {
      const float ri = row[i];
      for (size_t g = 0; g < NQ; ++g) {
        if constexpr (kIp) {
          t[g] += qs[g][i] * ri;
        } else {
          const float d = qs[g][i] - ri;
          t[g] += d * d;
        }
      }
    }
    for (size_t g = 0; g < NQ; ++g) accums[g][r] += t[g];
  }
}

template <bool kIp>
void GroupTileRun(const float* const* qs, size_t n, const float* rows,
                  size_t count, size_t width, float* const* accums,
                  KernelShape shape) {
  const size_t pf = shape.prefetch;
  switch (n) {
    case 1:
      BatchShapedImpl<kIp>(qs[0], rows, count, width, accums[0], shape);
      break;
    case 2:
      GroupTile<2, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 3:
      GroupTile<3, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 4:
      GroupTile<4, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 5:
      GroupTile<5, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 6:
      GroupTile<6, kIp>(qs, rows, count, width, accums, pf);
      break;
    case 7:
      GroupTile<7, kIp>(qs, rows, count, width, accums, pf);
      break;
    default:
      GroupTile<8, kIp>(qs, rows, count, width, accums, pf);
      break;
  }
}

template <bool kIp>
void GroupShapedImpl(const float* const* qs, size_t nq, const float* rows,
                     size_t count, size_t width, float* const* accums,
                     KernelShape shape) {
  const size_t qt =
      std::clamp<size_t>(shape.query_tile, 2, kMaxQueryTile);
  size_t g = 0;
  for (; g + qt <= nq; g += qt) {
    GroupTileRun<kIp>(qs + g, qt, rows, count, width, accums + g, shape);
  }
  if (g < nq) {
    GroupTileRun<kIp>(qs + g, nq - g, rows, count, width, accums + g, shape);
  }
}

}  // namespace

float L2Row(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::L2Row(a, b, width);
  return RowImpl<false>(a, b, width);
}

float IpRow(const float* a, const float* b, size_t width) {
  if (width < 16) return portable::IpRow(a, b, width);
  return RowImpl<true>(a, b, width);
}

void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  if (width < 16) {
    portable::L2BatchShaped(q, rows, count, width, accum, shape);
    return;
  }
  BatchShapedImpl<false>(q, rows, count, width, accum, shape);
}

void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape) {
  if (width < 16) {
    portable::IpBatchShaped(q, rows, count, width, accum, shape);
    return;
  }
  BatchShapedImpl<true>(q, rows, count, width, accum, shape);
}

void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  // Default shape: 8-row blocking (one zmm per row makes it free here),
  // 2-row prefetch; the autotuner refines per width bucket.
  L2BatchShaped(q, rows, count, width, accum, KernelShape{8, 4, 2});
}

void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum) {
  IpBatchShaped(q, rows, count, width, accum, KernelShape{8, 4, 2});
}

void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  if (width < 16) {
    portable::L2GroupShaped(qs, nq, rows, count, width, accums, shape);
    return;
  }
  GroupShapedImpl<false>(qs, nq, rows, count, width, accums, shape);
}

void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape) {
  if (width < 16) {
    portable::IpGroupShaped(qs, nq, rows, count, width, accums, shape);
    return;
  }
  GroupShapedImpl<true>(qs, nq, rows, count, width, accums, shape);
}

void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  L2GroupShaped(qs, nq, rows, count, width, accums, KernelShape{8, 4, 2});
}

void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums) {
  IpGroupShaped(qs, nq, rows, count, width, accums, KernelShape{8, 4, 2});
}

uint64_t PruneMaskL2(const float* partial, size_t count, float tau) {
  // 16 lanes per compare, four compares filling the whole 64-bit mask; the
  // decisions are IEEE compares, identical across every tier.
  uint64_t mask = 0;
  const __m512 vtau = _mm512_set1_ps(tau);
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __mmask16 gt =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(partial + i), vtau, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(gt) << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskL2(partial + i, count - i, tau) << i;
  }
  return mask;
}

uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau) {
  uint64_t mask = 0;
  const __m512 vtau = _mm512_set1_ps(tau);
  const __m512 zero = _mm512_setzero_ps();
  // max(x, 0) returns 0 for NaN inputs exactly like std::max(0.0f, x), and
  // IEEE sqrt/mul/add round identically at every register width — the mask
  // is bit-identical to the portable and AVX2 kernels.
  const __m512 rq = _mm512_set1_ps(std::max(0.0f, rem_q_sq));
  const __m512 sign = _mm512_set1_ps(-0.0f);
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512 rp = _mm512_max_ps(_mm512_loadu_ps(rem_p_sq + i), zero);
    const __m512 rest = _mm512_sqrt_ps(_mm512_mul_ps(rp, rq));
    const __m512 lower =
        _mm512_xor_ps(_mm512_add_ps(_mm512_loadu_ps(partial + i), rest), sign);
    const __mmask16 gt = _mm512_cmp_ps_mask(lower, vtau, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(gt) << i;
  }
  if (i < count) {
    mask |= portable::PruneMaskIp(partial + i, rem_p_sq + i, count - i,
                                  rem_q_sq, tau)
            << i;
  }
  return mask;
}

void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out) {
  // 16 rows per iteration, one zmm lane per row; per-lane adds run in
  // ascending-m order with a single accumulator — bit-identical to
  // portable::AdcBatch like the AVX2 gather kernel.
  size_t r = 0;
  for (; r + 16 <= count; r += 16) {
    __m512 acc = _mm512_setzero_ps();
    alignas(64) int32_t idx[16];
    for (size_t m = 0; m < code_size; ++m) {
      const uint8_t* col = codes + r * code_size + m;
      for (size_t l = 0; l < 16; ++l) {
        idx[l] = static_cast<int32_t>(col[l * code_size]);
      }
      const __m512i vi = _mm512_load_si512(reinterpret_cast<__m512i*>(idx));
      const __m512 vals = _mm512_i32gather_ps(vi, lut + m * ksub, 4);
      acc = _mm512_add_ps(acc, vals);
    }
    _mm512_storeu_ps(out + r, acc);
  }
  if (r < count) {
    portable::AdcBatch(lut, ksub, codes + r * code_size, code_size, count - r,
                       out + r);
  }
}

}  // namespace avx512
}  // namespace harmony

#endif  // __AVX512F__ && __AVX512DQ__
