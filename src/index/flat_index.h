#ifndef HARMONY_INDEX_FLAT_INDEX_H_
#define HARMONY_INDEX_FLAT_INDEX_H_

#include <vector>

#include "index/distance.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Exact brute-force index. Used to compute ground truth for recall
/// measurement and as the exhaustive-search oracle in tests.
class FlatIndex {
 public:
  explicit FlatIndex(Metric metric = Metric::kL2) : metric_(metric) {}

  Metric metric() const { return metric_; }
  size_t size() const { return data_.size(); }
  size_t dim() const { return data_.dim(); }

  /// Adds vectors; ids are assigned densely in insertion order.
  Status Add(const DatasetView& vectors);

  /// Exact k-nearest-neighbor search, ascending by distance.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k) const;

  /// Batch search helper; row i of the result corresponds to query i.
  Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const DatasetView& queries, size_t k) const;

 private:
  Metric metric_;
  Dataset data_;
};

}  // namespace harmony

#endif  // HARMONY_INDEX_FLAT_INDEX_H_
