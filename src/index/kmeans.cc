#include "index/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/distance.h"
#include "index/scan_kernel.h"
#include "util/rng.h"

namespace harmony {

namespace {

// Chooses initial centroids. k-means++ draws each next seed with probability
// proportional to squared distance from the nearest already-chosen seed.
Dataset SeedCentroids(const DatasetView& data, const KMeansParams& params,
                      Rng* rng) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t k = params.num_clusters;
  Dataset centroids(k, dim);

  auto copy_row = [&](size_t src, size_t dst) {
    const float* s = data.Row(src);
    float* d = centroids.MutableRow(dst);
    std::copy(s, s + dim, d);
  };

  if (!params.use_kmeanspp) {
    // Random distinct rows (sampling without replacement via partial
    // Fisher-Yates over indices).
    std::vector<int64_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int64_t>(i);
    for (size_t c = 0; c < k; ++c) {
      const size_t j = c + rng->NextBounded(n - c);
      std::swap(ids[c], ids[j]);
      copy_row(static_cast<size_t>(ids[c]), c);
    }
    return centroids;
  }

  std::vector<float> min_dist_sq(n, std::numeric_limits<float>::max());
  std::vector<float> dist_sq(n);
  size_t first = rng->NextBounded(n);
  copy_row(first, 0);
  for (size_t c = 1; c < k; ++c) {
    const float* prev = centroids.Row(c - 1);
    // The training rows form one contiguous matrix: one batched kernel call
    // scores every point against the newest seed.
    std::fill(dist_sq.begin(), dist_sq.end(), 0.0f);
    ScanKernels().l2_batch(prev, data.Row(0), n, dim, dist_sq.data());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (dist_sq[i] < min_dist_sq[i]) min_dist_sq[i] = dist_sq[i];
      total += min_dist_sq[i];
    }
    size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng->NextBounded(n);
    } else {
      double target = rng->NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= min_dist_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    copy_row(chosen, c);
  }
  return centroids;
}

}  // namespace

namespace {

/// Batched scoring of `vec` against every (contiguous) centroid row into
/// `scores`, then the argmin in centroid order — bitwise the same distances
/// and the same tie-breaking as the historical per-centroid loop.
int32_t ArgminCentroid(const DatasetView& centroids, const float* vec,
                       std::vector<float>* scores) {
  scores->assign(centroids.size(), 0.0f);
  ScanKernels().l2_batch(vec, centroids.Row(0), centroids.size(),
                         centroids.dim(), scores->data());
  int32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (size_t c = 0; c < centroids.size(); ++c) {
    if ((*scores)[c] < best_dist) {
      best_dist = (*scores)[c];
      best = static_cast<int32_t>(c);
    }
  }
  return best;
}

}  // namespace

int32_t NearestCentroid(const DatasetView& centroids, const float* vec) {
  thread_local std::vector<float> scores;
  return ArgminCentroid(centroids, vec, &scores);
}

Result<KMeansResult> TrainKMeans(const DatasetView& data,
                                 const KMeansParams& params) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t k = params.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be > 0");
  if (n < k) {
    return Status::InvalidArgument(
        "k-means needs at least num_clusters points; got " +
        std::to_string(n) + " < " + std::to_string(k));
  }

  Rng rng(params.seed);
  KMeansResult result;
  result.centroids = SeedCentroids(data, params, &rng);
  result.assignments.assign(n, 0);
  result.cluster_sizes.assign(k, 0);

  std::vector<double> sums(k * dim, 0.0);
  std::vector<float> cent_dist(k);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < std::max<size_t>(1, params.max_iters); ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step: per point, one batched kernel call over the
    // (contiguous) centroid rows, then the argmin in centroid order.
    double inertia = 0.0;
    std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
    std::fill(sums.begin(), sums.end(), 0.0);
    const DatasetView cent = result.centroids.View();
    for (size_t i = 0; i < n; ++i) {
      const float* row = data.Row(i);
      std::fill(cent_dist.begin(), cent_dist.end(), 0.0f);
      ScanKernels().l2_batch(row, cent.Row(0), k, dim, cent_dist.data());
      int32_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (size_t c = 0; c < k; ++c) {
        if (cent_dist[c] < best_dist) {
          best_dist = cent_dist[c];
          best = static_cast<int32_t>(c);
        }
      }
      result.assignments[i] = best;
      ++result.cluster_sizes[best];
      inertia += best_dist;
      double* sum = sums.data() + static_cast<size_t>(best) * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += row[d];
    }
    result.inertia = inertia;

    // Update step; re-seed empty clusters from the globally farthest point.
    for (size_t c = 0; c < k; ++c) {
      if (result.cluster_sizes[c] == 0) {
        size_t far_i = 0;
        float far_d = -1.0f;
        for (size_t i = 0; i < n; ++i) {
          const float d =
              L2SqDistance(cent.Row(static_cast<size_t>(result.assignments[i])),
                           data.Row(i), dim);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        const float* src = data.Row(far_i);
        float* dst = result.centroids.MutableRow(c);
        std::copy(src, src + dim, dst);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(result.cluster_sizes[c]);
      const double* sum = sums.data() + c * dim;
      float* dst = result.centroids.MutableRow(c);
      for (size_t d = 0; d < dim; ++d) {
        dst[d] = static_cast<float>(sum[d] * inv);
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          prev_inertia > 0.0 ? (prev_inertia - inertia) / prev_inertia : 0.0;
      if (rel >= 0.0 && rel < params.tolerance) break;
    }
    prev_inertia = inertia;
  }

  // Final assignment pass so assignments match the returned centroids.
  const DatasetView cent = result.centroids.View();
  std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
  double inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t best = ArgminCentroid(cent, data.Row(i), &cent_dist);
    result.assignments[i] = best;
    ++result.cluster_sizes[best];
    inertia += cent_dist[static_cast<size_t>(best)];
  }
  result.inertia = inertia;
  return result;
}

}  // namespace harmony
