#include "index/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "index/distance.h"
#include "index/scan_kernel.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace harmony {

namespace {

/// Fixed number of contiguous point ranges the scoring passes are split
/// into. The split depends on n alone — never on the thread count — and
/// partial sums are reduced in ascending range order, so every pool size
/// (including the serial path) produces bit-identical training.
constexpr size_t kAssignRanges = 16;

size_t RangeCount(size_t n) { return std::min<size_t>(kAssignRanges, n); }

/// Runs `fn(r)` for every range, on the pool when one is available.
void ForEachRange(ThreadPool* pool, size_t ranges,
                  const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(ranges, fn);
  } else {
    for (size_t r = 0; r < ranges; ++r) fn(r);
  }
}

// Chooses initial centroids. k-means++ draws each next seed with probability
// proportional to squared distance from the nearest already-chosen seed.
Dataset SeedCentroids(const DatasetView& data, const KMeansParams& params,
                      ThreadPool* pool, Rng* rng) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t k = params.num_clusters;
  Dataset centroids(k, dim);

  auto copy_row = [&](size_t src, size_t dst) {
    const float* s = data.Row(src);
    float* d = centroids.MutableRow(dst);
    std::copy(s, s + dim, d);
  };

  if (!params.use_kmeanspp) {
    // Random distinct rows (sampling without replacement via partial
    // Fisher-Yates over indices).
    std::vector<int64_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int64_t>(i);
    for (size_t c = 0; c < k; ++c) {
      const size_t j = c + rng->NextBounded(n - c);
      std::swap(ids[c], ids[j]);
      copy_row(static_cast<size_t>(ids[c]), c);
    }
    return centroids;
  }

  std::vector<float> min_dist_sq(n, std::numeric_limits<float>::max());
  std::vector<float> dist_sq(n);
  const size_t ranges = RangeCount(n);
  size_t first = rng->NextBounded(n);
  copy_row(first, 0);
  for (size_t c = 1; c < k; ++c) {
    const float* prev = centroids.Row(c - 1);
    // The training rows form one contiguous matrix: batched kernel calls
    // score every point against the newest seed. Rows score independently,
    // so splitting the batch across ranges changes no bits; the RNG-driven
    // selection below stays serial in point order.
    ForEachRange(pool, ranges, [&](size_t r) {
      const size_t lo = r * n / ranges;
      const size_t hi = (r + 1) * n / ranges;
      std::fill(dist_sq.begin() + lo, dist_sq.begin() + hi, 0.0f);
      ScanKernels().l2_batch(prev, data.Row(lo), hi - lo, dim,
                             dist_sq.data() + lo);
    });
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (dist_sq[i] < min_dist_sq[i]) min_dist_sq[i] = dist_sq[i];
      total += min_dist_sq[i];
    }
    size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng->NextBounded(n);
    } else {
      double target = rng->NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= min_dist_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    copy_row(chosen, c);
  }
  return centroids;
}

}  // namespace

namespace {

/// Batched scoring of `vec` against every (contiguous) centroid row into
/// `scores`, then the argmin in centroid order — bitwise the same distances
/// and the same tie-breaking as the historical per-centroid loop.
int32_t ArgminCentroid(const DatasetView& centroids, const float* vec,
                       std::vector<float>* scores) {
  scores->assign(centroids.size(), 0.0f);
  ScanKernels().l2_batch(vec, centroids.Row(0), centroids.size(),
                         centroids.dim(), scores->data());
  int32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (size_t c = 0; c < centroids.size(); ++c) {
    if ((*scores)[c] < best_dist) {
      best_dist = (*scores)[c];
      best = static_cast<int32_t>(c);
    }
  }
  return best;
}

/// One assignment pass: per point the nearest centroid (ArgminCentroid
/// bits), accumulated into per-range partial sums/sizes/inertia that are
/// reduced in ascending range order. `sums` (k*dim) may be null when the
/// caller only needs assignments/sizes/inertia (the final pass).
void AssignPoints(const DatasetView& data, const DatasetView& cent,
                  ThreadPool* pool, int32_t* assignments, double* sums,
                  int64_t* sizes, double* inertia_out) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t k = cent.size();
  const size_t ranges = RangeCount(n);
  std::vector<double> part_sums(sums != nullptr ? ranges * k * dim : 0, 0.0);
  std::vector<int64_t> part_sizes(ranges * k, 0);
  std::vector<double> part_inertia(ranges, 0.0);

  ForEachRange(pool, ranges, [&](size_t r) {
    const size_t lo = r * n / ranges;
    const size_t hi = (r + 1) * n / ranges;
    std::vector<float> cent_dist(k);
    double* rsums = sums != nullptr ? part_sums.data() + r * k * dim : nullptr;
    int64_t* rsizes = part_sizes.data() + r * k;
    double inertia = 0.0;
    for (size_t i = lo; i < hi; ++i) {
      const float* row = data.Row(i);
      const int32_t best = ArgminCentroid(cent, row, &cent_dist);
      assignments[i] = best;
      ++rsizes[best];
      inertia += cent_dist[static_cast<size_t>(best)];
      if (rsums != nullptr) {
        double* sum = rsums + static_cast<size_t>(best) * dim;
        for (size_t d = 0; d < dim; ++d) sum[d] += row[d];
      }
    }
    part_inertia[r] = inertia;
  });

  std::fill(sizes, sizes + k, 0);
  if (sums != nullptr) std::fill(sums, sums + k * dim, 0.0);
  double inertia = 0.0;
  for (size_t r = 0; r < ranges; ++r) {
    inertia += part_inertia[r];
    const int64_t* rsizes = part_sizes.data() + r * k;
    for (size_t c = 0; c < k; ++c) sizes[c] += rsizes[c];
    if (sums != nullptr) {
      const double* rsums = part_sums.data() + r * k * dim;
      for (size_t j = 0; j < k * dim; ++j) sums[j] += rsums[j];
    }
  }
  *inertia_out = inertia;
}

}  // namespace

int32_t NearestCentroid(const DatasetView& centroids, const float* vec) {
  thread_local std::vector<float> scores;
  return ArgminCentroid(centroids, vec, &scores);
}

Result<KMeansResult> TrainKMeans(const DatasetView& data,
                                 const KMeansParams& params) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t k = params.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be > 0");
  if (n < k) {
    return Status::InvalidArgument(
        "k-means needs at least num_clusters points; got " +
        std::to_string(n) + " < " + std::to_string(k));
  }

  // The pool is shared by seeding, the Lloyd iterations and the final
  // assignment pass; with num_threads <= 1 no pool is created and every
  // pass runs serially over the same fixed ranges (same bits).
  std::unique_ptr<ThreadPool> pool;
  if (params.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(params.num_threads);
  }

  Rng rng(params.seed);
  KMeansResult result;
  result.centroids = SeedCentroids(data, params, pool.get(), &rng);
  result.assignments.assign(n, 0);
  result.cluster_sizes.assign(k, 0);

  std::vector<double> sums(k * dim, 0.0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < std::max<size_t>(1, params.max_iters); ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step: per point, one batched kernel call over the
    // (contiguous) centroid rows, then the argmin in centroid order.
    double inertia = 0.0;
    const DatasetView cent = result.centroids.View();
    AssignPoints(data, cent, pool.get(), result.assignments.data(),
                 sums.data(), result.cluster_sizes.data(), &inertia);
    result.inertia = inertia;

    // Update step; re-seed empty clusters from the globally farthest point.
    for (size_t c = 0; c < k; ++c) {
      if (result.cluster_sizes[c] == 0) {
        size_t far_i = 0;
        float far_d = -1.0f;
        for (size_t i = 0; i < n; ++i) {
          const float d =
              L2SqDistance(cent.Row(static_cast<size_t>(result.assignments[i])),
                           data.Row(i), dim);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        const float* src = data.Row(far_i);
        float* dst = result.centroids.MutableRow(c);
        std::copy(src, src + dim, dst);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(result.cluster_sizes[c]);
      const double* sum = sums.data() + c * dim;
      float* dst = result.centroids.MutableRow(c);
      for (size_t d = 0; d < dim; ++d) {
        dst[d] = static_cast<float>(sum[d] * inv);
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          prev_inertia > 0.0 ? (prev_inertia - inertia) / prev_inertia : 0.0;
      if (rel >= 0.0 && rel < params.tolerance) break;
    }
    prev_inertia = inertia;
  }

  // Final assignment pass so assignments match the returned centroids.
  const DatasetView cent = result.centroids.View();
  double inertia = 0.0;
  AssignPoints(data, cent, pool.get(), result.assignments.data(),
               /*sums=*/nullptr, result.cluster_sizes.data(), &inertia);
  result.inertia = inertia;
  return result;
}

}  // namespace harmony
