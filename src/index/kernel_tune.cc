#include "index/kernel_tune.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <vector>

namespace harmony {

namespace {

/// Candidate grids (fixed order — the deterministic tie-break: a later
/// candidate must be strictly faster to displace an earlier one).
constexpr size_t kRowBlocks[] = {4, 6, 8};
constexpr size_t kQueryTiles[] = {2, 4, 8};
constexpr size_t kPrefetches[] = {0, 2, 4, 8};

/// Synthetic workload: enough rows that the row stream outruns L1 (the
/// regime the engines' runs live in), few enough that a full measurement
/// stays in the low milliseconds.
constexpr size_t kTuneRows = 256;
constexpr size_t kTuneGroupQueries = 8;
/// Representative width per bucket (bucket 0 is the sub-cutover portable
/// fall-through and is never measured).
constexpr size_t kBucketWidth[KernelTuneTable::kNumBuckets] = {8, 24, 48, 96,
                                                              192};

/// Deterministic fill; a local LCG keeps the tuner self-contained.
void FillSynthetic(float* out, size_t n, uint64_t seed) {
  uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    // Map to [-1, 1): plenty of mantissa variety, no overflow risk when
    // partial sums accumulate across timing reps.
    out[i] = static_cast<float>(static_cast<int32_t>(s >> 33)) *
             (1.0f / 1073741824.0f);
  }
}

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Min-of-5 timed samples of `fn` run `iters` times each (plus one warmup):
/// on a shared vCPU the minimum is the stable signal, and any residual
/// noise only moves the pick between bit-identical shapes.
template <typename Fn>
double TimeNs(const Fn& fn, size_t iters) {
  fn();
  double best = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 5; ++rep) {
    const double t0 = NowNs();
    for (size_t it = 0; it < iters; ++it) fn();
    best = std::min(best, (NowNs() - t0) / static_cast<double>(iters));
  }
  return best;
}

/// Hysteresis of the measured search: a candidate must beat the incumbent
/// by this factor to displace it. The incumbent starts as the tier's
/// historical default shape, so timing noise degenerates to the known-good
/// default instead of promoting a 1%-lucky stranger.
constexpr double kImprovement = 0.97;

/// Spins `fn` for ~`target_ns` of wall time. After idle, 512-bit code
/// executes at reduced throughput for tens of microseconds while the upper
/// vector lanes power up; a tuner that times inside that window concludes
/// AVX-512 is slower than AVX2 when it is not. Every measured comparison
/// warms the units past that window first.
template <typename Fn>
void WarmUpVectorUnits(const Fn& fn, double target_ns = 2e6) {
  const double t0 = NowNs();
  do {
    fn();
  } while (NowNs() - t0 < target_ns);
}

/// kAuto tier pick: when both SIMD tiers are live, time their default batch
/// kernels head-to-head once (any outcome is bit-identical, so noise here
/// is harmless); prefer the wider tier on ties.
KernelTier PickAutoTier() {
  const bool has512 = KernelTierAvailable(KernelTier::kAvx512);
  const bool has2 = KernelTierAvailable(KernelTier::kAvx2);
  if (!has512) return has2 ? KernelTier::kAvx2 : KernelTier::kPortable;
  if (!has2) return KernelTier::kAvx512;
  const ScanKernelTable& t512 = ScanKernelsFor(KernelTier::kAvx512);
  const ScanKernelTable& t2 = ScanKernelsFor(KernelTier::kAvx2);
  // Head-to-head over a couple of widths, scored as the median of paired
  // (avx2, avx512) samples. Host frequency states drift on millisecond
  // scales, so two independently-minimized times can come from different
  // clock regimes; pairing cancels the drift. The wider tier is the
  // incumbent and only loses to a decisive median margin.
  std::vector<double> ratios;
  for (const size_t w : {64, 96, 128}) {
    std::vector<float> q(w), rows(kTuneRows * w), accum(kTuneRows, 0.0f);
    FillSynthetic(q.data(), q.size(), 11);
    FillSynthetic(rows.data(), rows.size(), 12);
    const size_t iters = 8;
    auto run2 = [&] {
      t2.l2_batch(q.data(), rows.data(), kTuneRows, w, accum.data());
    };
    auto run512 = [&] {
      t512.l2_batch(q.data(), rows.data(), kTuneRows, w, accum.data());
    };
    WarmUpVectorUnits(run2);
    WarmUpVectorUnits(run512);
    for (int rep = 0; rep < 5; ++rep) {
      const double ns2 = TimeNs(run2, iters);
      const double ns512 = TimeNs(run512, iters);
      ratios.push_back(ns2 / ns512);
    }
  }
  // The guard exists for machines whose sustained 512-bit frequency
  // license costs tens of percent, not to adjudicate a few-percent
  // micro-difference (which run-to-run noise on a shared vCPU swamps):
  // AVX2 has to win by a wide margin in at least three quarters of the
  // pairs to displace the wider incumbent. A machine with a true
  // sustained penalty shows it in essentially every pair.
  constexpr double kTierMargin = 0.90;
  const size_t q3 = (3 * ratios.size()) / 4;
  std::nth_element(ratios.begin(), ratios.begin() + q3, ratios.end());
  return ratios[q3] < kTierMargin ? KernelTier::kAvx2 : KernelTier::kAvx512;
}

/// HARMONY_KERNEL_TUNE, parsed once: a pinned profile for cross-process
/// reproducibility of the *choice* (results never depend on it).
const std::optional<KernelTuneTable>& EnvTune() {
  static const std::optional<KernelTuneTable> tune =
      []() -> std::optional<KernelTuneTable> {
    const char* env = std::getenv("HARMONY_KERNEL_TUNE");
    if (env == nullptr) return std::nullopt;
    KernelTuneTable t;
    if (!KernelTuneTable::Parse(env, &t) || !KernelTierAvailable(t.tier)) {
      std::fprintf(stderr,
                   "HARMONY_KERNEL_TUNE ignored (unparsable profile or "
                   "unavailable tier): %s\n",
                   env);
      return std::nullopt;
    }
    return t;
  }();
  return tune;
}

}  // namespace

bool KernelTuneTable::operator==(const KernelTuneTable& o) const {
  if (tier != o.tier) return false;
  for (size_t m = 0; m < 2; ++m) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      if (!(shapes[m][b] == o.shapes[m][b])) return false;
    }
  }
  return true;
}

std::string KernelTuneTable::ToString() const {
  std::string out = KernelTierName(tier);
  for (size_t m = 0; m < 2; ++m) {
    out += m == 0 ? " l2=" : " ip=";
    for (size_t b = 0; b < kNumBuckets; ++b) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%s%u.%u.%u", b == 0 ? "" : ",",
                    shapes[m][b].row_block, shapes[m][b].query_tile,
                    shapes[m][b].prefetch);
      out += buf;
    }
  }
  return out;
}

bool KernelTuneTable::Parse(std::string_view profile, KernelTuneTable* out) {
  // "<tier> l2=r.q.p,r.q.p,r.q.p,r.q.p,r.q.p ip=..." — whitespace-split.
  KernelTuneTable t;
  size_t pos = profile.find(' ');
  if (pos == std::string_view::npos) return false;
  if (!ParseKernelTier(profile.substr(0, pos), &t.tier) ||
      t.tier == KernelTier::kAuto) {
    return false;
  }
  std::string_view rest = profile.substr(pos + 1);
  for (size_t m = 0; m < 2; ++m) {
    const std::string_view key = m == 0 ? "l2=" : "ip=";
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.substr(0, key.size()) != key) return false;
    rest.remove_prefix(key.size());
    for (size_t b = 0; b < kNumBuckets; ++b) {
      unsigned rb = 0, qt = 0, pf = 0;
      int used = 0;
      if (std::sscanf(std::string(rest.substr(0, 16)).c_str(), "%u.%u.%u%n",
                      &rb, &qt, &pf, &used) != 3) {
        return false;
      }
      if (rb < 1 || rb > 16 || qt < 1 || qt > kMaxQueryTile || pf > 32) {
        return false;
      }
      t.shapes[m][b] = KernelShape{static_cast<uint8_t>(rb),
                                   static_cast<uint8_t>(qt),
                                   static_cast<uint8_t>(pf)};
      rest.remove_prefix(static_cast<size_t>(used));
      if (b + 1 < kNumBuckets) {
        if (rest.empty() || rest.front() != ',') return false;
        rest.remove_prefix(1);
      }
    }
  }
  *out = t;
  return true;
}

KernelTuneTable DefaultKernelTune(KernelTier tier) {
  KernelTuneTable t;
  t.tier = ResolveKernelTier(tier);
  // The historical hard-coded shapes of each tier's unshaped entries.
  KernelShape l2{4, 4, 2}, ip{6, 4, 2};
  if (t.tier == KernelTier::kAvx512) {
    l2 = KernelShape{8, 4, 2};
    ip = KernelShape{8, 4, 2};
  } else if (t.tier == KernelTier::kPortable) {
    ip = KernelShape{4, 4, 2};
  }
  for (size_t b = 0; b < KernelTuneTable::kNumBuckets; ++b) {
    t.shapes[0][b] = l2;
    t.shapes[1][b] = ip;
  }
  return t;
}

KernelTuneTable MeasureKernelTune(KernelTier tier) {
  const KernelTier resolved =
      tier == KernelTier::kAuto ? PickAutoTier() : ResolveKernelTier(tier);
  KernelTuneTable tune = DefaultKernelTune(resolved);
  const ScanKernelTable& kt = ScanKernelsFor(resolved);
  const bool simd = resolved != KernelTier::kPortable;

  constexpr size_t kMaxW = kBucketWidth[KernelTuneTable::kNumBuckets - 1];
  std::vector<float> rows(kTuneRows * kMaxW), accum(kTuneRows);
  std::vector<float> qdata(kTuneGroupQueries * kMaxW);
  std::vector<float> gaccum(kTuneGroupQueries * kTuneRows);
  FillSynthetic(rows.data(), rows.size(), 1);
  FillSynthetic(qdata.data(), qdata.size(), 2);
  std::vector<const float*> qs(kTuneGroupQueries);
  std::vector<float*> accums(kTuneGroupQueries);

  // Power up the vector units before any timed shape comparison; the
  // incumbent default is timed first and a cold start would handicap it.
  {
    const size_t w = kBucketWidth[1];
    const KernelShape warm = tune.shapes[0][1];
    WarmUpVectorUnits([&] {
      kt.l2_batch_shaped(qdata.data(), rows.data(), kTuneRows, w, accum.data(),
                         warm);
    });
  }

  for (size_t m = 0; m < 2; ++m) {
    const auto batch = m == 0 ? kt.l2_batch_shaped : kt.ip_batch_shaped;
    const auto group = m == 0 ? kt.l2_group_shaped : kt.ip_group_shaped;
    for (size_t b = 1; b < KernelTuneTable::kNumBuckets; ++b) {
      const size_t w = kBucketWidth[b];
      for (size_t g = 0; g < kTuneGroupQueries; ++g) {
        qs[g] = qdata.data() + g * w;
        accums[g] = gaccum.data() + g * kTuneRows;
      }
      const size_t iters =
          std::max<size_t>(1, (size_t{1} << 17) / (kTuneRows * w));
      // Row block x prefetch on the batch kernel (the portable tier has no
      // register blocking, so only the prefetch axis is searched there).
      // The incumbent is the tier's historical default, timed first; every
      // candidate must improve on the incumbent by 1/kImprovement to win.
      KernelShape best = tune.shapes[m][b];
      const auto time_batch = [&](KernelShape shape) {
        return TimeNs(
            [&] {
              batch(qs[0], rows.data(), kTuneRows, w, accum.data(), shape);
            },
            iters);
      };
      double best_ns = time_batch(best);
      for (const size_t rb : kRowBlocks) {
        if (!simd && rb != best.row_block) continue;
        for (const size_t pf : kPrefetches) {
          KernelShape shape = best;
          shape.row_block = static_cast<uint8_t>(rb);
          shape.prefetch = static_cast<uint8_t>(pf);
          if (shape == best) continue;  // incumbent already timed
          const double ns = time_batch(shape);
          if (ns < kImprovement * best_ns) {
            best_ns = ns;
            best.row_block = shape.row_block;
            best.prefetch = shape.prefetch;
          }
        }
      }
      // Query tile on the group kernel, with the batch winner fixed.
      const auto time_group = [&](KernelShape shape) {
        return TimeNs(
            [&] {
              group(qs.data(), kTuneGroupQueries, rows.data(), kTuneRows, w,
                    accums.data(), shape);
            },
            std::max<size_t>(1, iters / kTuneGroupQueries));
      };
      best_ns = time_group(best);
      for (const size_t qt : kQueryTiles) {
        KernelShape shape = best;
        shape.query_tile = static_cast<uint8_t>(qt);
        if (shape == best) continue;
        const double ns = time_group(shape);
        if (ns < kImprovement * best_ns) {
          best_ns = ns;
          best.query_tile = shape.query_tile;
        }
      }
      tune.shapes[m][b] = best;
    }
  }
  return tune;
}

const KernelTuneTable& ResolveKernelTune(KernelTier requested) {
  const std::optional<KernelTuneTable>& env = EnvTune();
  if (env.has_value() &&
      (requested == KernelTier::kAuto ||
       ResolveKernelTier(requested) == env->tier)) {
    return *env;
  }
  // One measured table per requested tier, cached for the process — the
  // "once per process" of the startup micro-autotuner. Function-local
  // statics make each slot thread-safe.
  switch (requested == KernelTier::kAuto ? KernelTier::kAuto
                                         : ResolveKernelTier(requested)) {
    case KernelTier::kPortable: {
      static const KernelTuneTable t = MeasureKernelTune(KernelTier::kPortable);
      return t;
    }
    case KernelTier::kAvx2: {
      static const KernelTuneTable t = MeasureKernelTune(KernelTier::kAvx2);
      return t;
    }
    case KernelTier::kAvx512: {
      static const KernelTuneTable t = MeasureKernelTune(KernelTier::kAvx512);
      return t;
    }
    case KernelTier::kAuto:
    default: {
      static const KernelTuneTable t = MeasureKernelTune(KernelTier::kAuto);
      return t;
    }
  }
}

}  // namespace harmony
