#ifndef HARMONY_INDEX_HNSW_INDEX_H_
#define HARMONY_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/distance.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief HNSW construction/search parameters (Malkov & Yashunin).
struct HnswParams {
  size_t m = 16;                // max neighbors per node (level > 0)
  size_t ef_construction = 100; // beam width while building
  Metric metric = Metric::kL2;
  uint64_t seed = 42;
};

/// \brief Hierarchical Navigable Small World graph index — the
/// graph-based single-node family the paper's related work contrasts with
/// cluster-based indexes (Section 2.1). Implemented here as a baseline to
/// demonstrate the paper's motivating claim: graph traversals chase
/// data-dependent edges, which is precisely what makes graphs hard to
/// partition across machines (every hop may cross a machine boundary),
/// whereas IVF lists partition cleanly.
class HnswIndex {
 public:
  explicit HnswIndex(HnswParams params = HnswParams()) : params_(params) {}

  const HnswParams& params() const { return params_; }
  size_t size() const { return data_.size(); }
  size_t dim() const { return data_.dim(); }

  /// Inserts vectors one by one (ids dense in insertion order).
  Status Add(const DatasetView& vectors);

  /// Beam search with width `ef` (>= k), ascending by distance.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       size_t ef) const;

  /// Number of graph edges whose endpoints would live on different machines
  /// under a `num_machines`-way hash partition of the nodes — the paper's
  /// "query paths tend to introduce edges across machines" observation,
  /// quantified. Returns (cross_edges, total_edges).
  std::pair<uint64_t, uint64_t> CrossPartitionEdges(size_t num_machines) const;

  size_t SizeBytes() const;

 private:
  struct Node {
    int level = 0;
    /// neighbors[l] = adjacency at level l (0..level).
    std::vector<std::vector<int32_t>> neighbors;
  };

  float Dist(const float* query, size_t node) const {
    return Distance(params_.metric, query, data_.Row(node), data_.dim());
  }

  /// Greedy descent at one level from `entry`, returning the local minimum.
  int32_t GreedyStep(const float* query, int32_t entry, int level) const;

  /// Best-first beam search at one level.
  std::vector<Neighbor> SearchLevel(const float* query, int32_t entry,
                                    size_t ef, int level) const;

  /// HNSW Algorithm 4: diversity-pruned neighbor selection with
  /// keep-pruned backfill.
  std::vector<int32_t> SelectNeighbors(const float* vec,
                                       std::vector<Neighbor> candidates,
                                       size_t max_m) const;

  /// Connects `node` at `level` to a diverse subset of `candidates`,
  /// adding reciprocal edges and re-selecting overflowing neighbor lists.
  void Connect(size_t node, int level, const std::vector<Neighbor>& candidates,
               size_t max_m);

  HnswParams params_;
  Dataset data_;
  std::vector<Node> nodes_;
  int32_t entry_point_ = -1;
  int max_level_ = -1;
  uint64_t level_rng_state_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_INDEX_HNSW_INDEX_H_
