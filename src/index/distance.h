#ifndef HARMONY_INDEX_DISTANCE_H_
#define HARMONY_INDEX_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/dim_slice.h"

namespace harmony {

/// \brief Distance/similarity metrics supported by Harmony.
///
/// Cosine assumes pre-normalized vectors, reducing to inner product
/// (Section 3.1, "Cosine Similarity").
enum class Metric { kL2, kInnerProduct, kCosine };

const char* MetricToString(Metric metric);

/// Squared Euclidean distance over `dim` components.
float L2SqDistance(const float* a, const float* b, size_t dim);

/// Inner product over `dim` components.
float InnerProduct(const float* a, const float* b, size_t dim);

/// Partial squared L2 over one contiguous slice of `width` components:
/// `d_k^2(p, q) = sum_{i in I_k} (p_i - q_i)^2` from Section 3.1. Both
/// pointers address the *slice*, not the full vector.
float PartialL2Sq(const float* a_slice, const float* b_slice, size_t width);

/// Partial inner product over one contiguous slice (`alpha_k` in the paper).
float PartialIp(const float* a_slice, const float* b_slice, size_t width);

/// \brief Converts a raw metric value into Harmony's internal "distance"
/// convention where smaller is always better: L2² stays as-is, inner
/// product / cosine are negated.
inline float MetricValueToDistance(Metric metric, float value) {
  return metric == Metric::kL2 ? value : -value;
}

/// \brief Full-vector distance under `metric` in the smaller-is-better
/// convention.
float Distance(Metric metric, const float* a, const float* b, size_t dim);

/// \brief Number of scalar multiply-add operations charged by the simulator
/// for one distance computation over `width` components. Both metrics cost
/// ~2 flops per component; we charge `width` "ops" (one fused op per
/// component) which is what matters for *relative* cost.
inline uint64_t DistanceOpCost(size_t width) {
  return static_cast<uint64_t>(width);
}

}  // namespace harmony

#endif  // HARMONY_INDEX_DISTANCE_H_
