#ifndef HARMONY_INDEX_SCAN_KERNEL_H_
#define HARMONY_INDEX_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace harmony {

/// \brief Kernel dispatch tier (docs/kernels.md, "dispatch tiers").
///
/// `kAuto` resolves to the widest tier this build carries AND the running
/// CPU supports; the explicit tiers pin dispatch for tests, goldens and
/// perf bisection. The AVX-512 kernels are constructed to be bit-identical
/// to the AVX2 ones (each 512-bit accumulator is two independent 256-bit
/// lanes), so `kAvx2` and `kAvx512` are interchangeable without changing a
/// single result bit; `kPortable` is its own bitwise family above the
/// width-16 cutover (a different accumulator split).
enum class KernelTier : uint8_t { kAuto = 0, kPortable, kAvx2, kAvx512 };

/// "auto", "portable", "avx2" or "avx512".
const char* KernelTierName(KernelTier tier);
bool ParseKernelTier(std::string_view name, KernelTier* out);

/// True when this build carries the tier's TU and the running CPU supports
/// it. kAuto and kPortable are always available.
bool KernelTierAvailable(KernelTier tier);

/// Maps a requested tier to the one dispatch will actually use: kAuto picks
/// the widest available tier (the HARMONY_KERNEL_TIER environment variable,
/// read once, overrides the pick — the CI lever for running a whole process
/// on a pinned tier); an explicitly requested but unavailable tier falls
/// back to the widest available one.
KernelTier ResolveKernelTier(KernelTier requested);

/// \brief Tile shape of the shaped batch/group kernels — the knobs the
/// startup micro-autotuner (index/kernel_tune.h) searches over.
///
/// Every shape computes bit-identical results: the per-(query,row)
/// accumulation order is frozen by the tier, and the shape only decides how
/// many independent rows'/queries' accumulation chains are carried
/// concurrently and how far ahead rows are software-prefetched. Defaults
/// reproduce the historical hard-coded loops.
struct KernelShape {
  uint8_t row_block = 4;   ///< Rows per register tile (4, 6 or 8).
  uint8_t query_tile = 4;  ///< Queries per group tile (2, 4 or 8).
  uint8_t prefetch = 2;    ///< Upcoming rows to prefetch (0, 2, 4 or 8).

  bool operator==(const KernelShape& o) const {
    return row_block == o.row_block && query_tile == o.query_tile &&
           prefetch == o.prefetch;
  }
};

/// \brief Batched block-scan kernels (docs/kernels.md).
///
/// The dimension-block scan (Algorithm 1) spends its time accumulating
/// partial L2/IP between one query slice and many contiguous rows of a
/// `DimSlicedMatrix`. The kernels here are the batched counterparts of the
/// single-row `PartialL2Sq`/`PartialIp` pair, with three properties the
/// engines rely on:
///
///  * **Hoisted dispatch.** `ScanKernels()` resolves the CPU-specific
///    kernel table exactly once; hot loops call through function pointers
///    instead of re-checking CPU features per candidate.
///  * **Layout contract.** A batched call covers `count` rows stored
///    back-to-back with stride `width` — exactly the row layout of a
///    `DimSlicedMatrix` (see `DimSlicedMatrix::RowBlock`). Kernels
///    register-block a row group at a time (4 by default, KernelShape picks
///    4/6/8 on the shaped entries), reusing each query load across the row
///    group, and software-prefetch upcoming rows.
///  * **Bitwise identity.** For every row, the accumulation order (chunking,
///    accumulator splitting, horizontal reduction, scalar tail) is exactly
///    that of the single-row kernel of the same tier, so batched, grouped,
///    shaped and per-row scans produce bit-identical partial sums. This is
///    what keeps determinism tests, fault-replay byte-identity, and the
///    simulator's `DistanceOpCost` accounting unchanged — and what lets the
///    autotuner pick any shape freely.
struct ScanKernelTable {
  /// Single-row partials; same results as PartialL2Sq / PartialIp.
  float (*l2_row)(const float* a, const float* b, size_t width);
  float (*ip_row)(const float* a, const float* b, size_t width);

  /// Batched partials over `count` contiguous rows (stride == width):
  /// `accum[i] += partial(q, rows + i * width)` for i in [0, count).
  void (*l2_batch)(const float* q, const float* rows, size_t count,
                   size_t width, float* accum);
  void (*ip_batch)(const float* q, const float* rows, size_t count,
                   size_t width, float* accum);

  /// Query-group batched partials (shared scans): for each query g in
  /// [0, nq), `accums[g][i] += partial(qs[g], rows + i * width)` over the
  /// same `count` contiguous rows. The row block is streamed once per
  /// query tile instead of once per query; per (query, row) the
  /// accumulation order is exactly that of `l2_batch`/`ip_batch`, so a
  /// group call is bit-identical to nq independent batch calls. `nq` may
  /// exceed the tile width — kernels tile the query axis internally.
  void (*l2_group)(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums);
  void (*ip_group)(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums);

  /// Shaped twins of the batch/group entries: identical results for every
  /// shape (see KernelShape), with the row-block width, query-tile width
  /// and prefetch distance taken from `shape` instead of the historical
  /// constants. Counts below the row block dispatch to the per-row path —
  /// the small-batch guard that keeps tiny runs at per-row cost.
  void (*l2_batch_shaped)(const float* q, const float* rows, size_t count,
                          size_t width, float* accum, KernelShape shape);
  void (*ip_batch_shaped)(const float* q, const float* rows, size_t count,
                          size_t width, float* accum, KernelShape shape);
  void (*l2_group_shaped)(const float* const* qs, size_t nq,
                          const float* rows, size_t count, size_t width,
                          float* const* accums, KernelShape shape);
  void (*ip_group_shaped)(const float* const* qs, size_t nq,
                          const float* rows, size_t count, size_t width,
                          float* const* accums, KernelShape shape);

  /// Vectorized prune bounds over up to 64 candidates: bit i of the result
  /// is set iff candidate i can be pruned, with decisions identical to the
  /// scalar `CanPrune` (core/pruning.h). L2 prunes when `partial[i] > tau`;
  /// IP/cosine when `-(partial[i] + sqrt(max(0, rem_p_sq[i]) *
  /// max(0, rem_q_sq))) > tau`. 64-wide so one AVX-512 call fills a whole
  /// mask register chunk (four 16-lane compares).
  uint64_t (*prune_mask_l2)(const float* partial, size_t count, float tau);
  uint64_t (*prune_mask_ip)(const float* partial, const float* rem_p_sq,
                            size_t count, float rem_q_sq, float tau);

  /// Batched ADC over `count` contiguous code rows (stride == code_size
  /// bytes): `out[i] = sum_m lut[m * ksub + codes[i * code_size + m]]`.
  /// Writes block-local ADC sums (does NOT accumulate) — the caller folds
  /// them into running partials so the same kernel serves L2 and IP tables.
  /// Per row the additions run in ascending-m order with one accumulator,
  /// matching ProductQuantizer::AdcDistance bit for bit.
  void (*adc_batch)(const float* lut, size_t ksub, const uint8_t* codes,
                    size_t code_size, size_t count, float* out);

  /// "avx512", "avx2" or "portable"; surfaced in logs and
  /// BENCH_kernels.json.
  const char* name;
};

/// The process-wide kernel table, resolved once (first call) from the CPU's
/// capabilities (and HARMONY_KERNEL_TIER). Never changes afterwards.
const ScanKernelTable& ScanKernels();

/// The table of one specific tier; `tier` must be available (or kAuto /
/// kPortable). Used by the execution core to honor a plan-recorded tier.
const ScanKernelTable& ScanKernelsFor(KernelTier tier);

/// Portable reference kernels — the fallback table entries and the ground
/// truth the SIMD kernels are tested against. Also the scalar bodies the
/// SIMD kernels fall back to below the width cutover, preserving the
/// historical `width >= 16` dispatch cutover bit-for-bit.
namespace portable {
float L2Row(const float* a, const float* b, size_t width);
float IpRow(const float* a, const float* b, size_t width);
void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
uint64_t PruneMaskL2(const float* partial, size_t count, float tau);
uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau);
void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out);
}  // namespace portable

/// AVX2 kernels, defined in scan_kernel_avx2.cc (compiled with -mavx2;
/// referenced only when the build carries that TU and the CPU supports
/// AVX2). Row/batch kernels fall back to the portable bodies below
/// width 16, matching the historical dispatch cutover.
namespace avx2 {
float L2Row(const float* a, const float* b, size_t width);
float IpRow(const float* a, const float* b, size_t width);
void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
uint64_t PruneMaskL2(const float* partial, size_t count, float tau);
uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau);
void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out);
}  // namespace avx2

/// AVX-512 kernels, defined in scan_kernel_avx512.cc (compiled with
/// -mavx512f/dq/bw; referenced only when the build carries that TU and the
/// CPU supports those sets). Bit-identical to the avx2 kernels: each
/// 512-bit accumulator register is treated as two independent 256-bit
/// lanes, so one 512-bit FMA over a 16-float chunk computes lane-for-lane
/// exactly what the AVX2 kernels' two 256-bit FMAs compute, and the
/// reduction splits the halves back apart and runs the AVX2 reduction tree.
/// Widths below 16 fall back to the portable bodies like every other tier.
namespace avx512 {
float L2Row(const float* a, const float* b, size_t width);
float IpRow(const float* a, const float* b, size_t width);
void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void L2BatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void IpBatchShaped(const float* q, const float* rows, size_t count,
                   size_t width, float* accum, KernelShape shape);
void L2GroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
void IpGroupShaped(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums,
                   KernelShape shape);
uint64_t PruneMaskL2(const float* partial, size_t count, float tau);
uint64_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau);
void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out);
}  // namespace avx512

/// Maximum candidates covered by one prune-mask call.
inline constexpr size_t kPruneMaskWidth = 64;

/// Query-tile width of the *unshaped* group kernels: the AVX2 tile holds
/// two partial accumulators per query (16-wide chunking), so 4 queries
/// consume 8 of the 16 ymm registers and leave room for the shared row
/// chunks and the difference temporary. The shaped group kernels take the
/// tile width from KernelShape instead, up to kMaxQueryTile — AVX-512's 32
/// zmm registers (one accumulator per query) make an 8-query tile viable.
inline constexpr size_t kMaxQueryGroup = 4;
inline constexpr size_t kMaxQueryTile = 8;

}  // namespace harmony

#endif  // HARMONY_INDEX_SCAN_KERNEL_H_
