#ifndef HARMONY_INDEX_SCAN_KERNEL_H_
#define HARMONY_INDEX_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace harmony {

/// \brief Batched block-scan kernels (docs/kernels.md).
///
/// The dimension-block scan (Algorithm 1) spends its time accumulating
/// partial L2/IP between one query slice and many contiguous rows of a
/// `DimSlicedMatrix`. The kernels here are the batched counterparts of the
/// single-row `PartialL2Sq`/`PartialIp` pair, with three properties the
/// engines rely on:
///
///  * **Hoisted dispatch.** `ScanKernels()` resolves the CPU-specific
///    kernel table exactly once; hot loops call through function pointers
///    instead of re-checking CPU features per candidate.
///  * **Layout contract.** A batched call covers `count` rows stored
///    back-to-back with stride `width` — exactly the row layout of a
///    `DimSlicedMatrix` (see `DimSlicedMatrix::RowBlock`). Kernels
///    register-block 4 rows at a time, reusing each query load across the
///    row group, and software-prefetch upcoming rows.
///  * **Bitwise identity.** For every row, the accumulation order (chunking,
///    accumulator splitting, horizontal reduction, scalar tail) is exactly
///    that of the single-row kernel the dispatcher would have picked, so
///    batched and per-row scans produce bit-identical partial sums. This is
///    what keeps determinism tests, fault-replay byte-identity, and the
///    simulator's `DistanceOpCost` accounting unchanged.
struct ScanKernelTable {
  /// Single-row partials; same results as PartialL2Sq / PartialIp.
  float (*l2_row)(const float* a, const float* b, size_t width);
  float (*ip_row)(const float* a, const float* b, size_t width);

  /// Batched partials over `count` contiguous rows (stride == width):
  /// `accum[i] += partial(q, rows + i * width)` for i in [0, count).
  void (*l2_batch)(const float* q, const float* rows, size_t count,
                   size_t width, float* accum);
  void (*ip_batch)(const float* q, const float* rows, size_t count,
                   size_t width, float* accum);

  /// Query-group batched partials (shared scans): for each query g in
  /// [0, nq), `accums[g][i] += partial(qs[g], rows + i * width)` over the
  /// same `count` contiguous rows. The row block is streamed once per
  /// kMaxQueryGroup-sized query tile instead of once per query; per
  /// (query, row) the accumulation order is exactly that of
  /// `l2_batch`/`ip_batch`, so a group call is bit-identical to nq
  /// independent batch calls. `nq` may exceed kMaxQueryGroup — kernels tile
  /// the query axis internally.
  void (*l2_group)(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums);
  void (*ip_group)(const float* const* qs, size_t nq, const float* rows,
                   size_t count, size_t width, float* const* accums);

  /// Vectorized prune bounds over up to 32 candidates: bit i of the result
  /// is set iff candidate i can be pruned, with decisions identical to the
  /// scalar `CanPrune` (core/pruning.h). L2 prunes when `partial[i] > tau`;
  /// IP/cosine when `-(partial[i] + sqrt(max(0, rem_p_sq[i]) *
  /// max(0, rem_q_sq))) > tau`.
  uint32_t (*prune_mask_l2)(const float* partial, size_t count, float tau);
  uint32_t (*prune_mask_ip)(const float* partial, const float* rem_p_sq,
                            size_t count, float rem_q_sq, float tau);

  /// Batched ADC over `count` contiguous code rows (stride == code_size
  /// bytes): `out[i] = sum_m lut[m * ksub + codes[i * code_size + m]]`.
  /// Writes block-local ADC sums (does NOT accumulate) — the caller folds
  /// them into running partials so the same kernel serves L2 and IP tables.
  /// Per row the additions run in ascending-m order with one accumulator,
  /// matching ProductQuantizer::AdcDistance bit for bit.
  void (*adc_batch)(const float* lut, size_t ksub, const uint8_t* codes,
                    size_t code_size, size_t count, float* out);

  /// "avx2" or "portable"; surfaced in logs and BENCH_kernels.json.
  const char* name;
};

/// The process-wide kernel table, resolved once (first call) from the CPU's
/// capabilities. Never changes afterwards.
const ScanKernelTable& ScanKernels();

/// Portable reference kernels — the fallback table entries and the ground
/// truth the SIMD kernels are tested against. Also the scalar bodies the
/// AVX2 kernels fall back to below their width threshold, preserving the
/// historical `width >= 16` dispatch cutover bit-for-bit.
namespace portable {
float L2Row(const float* a, const float* b, size_t width);
float IpRow(const float* a, const float* b, size_t width);
void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
uint32_t PruneMaskL2(const float* partial, size_t count, float tau);
uint32_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau);
void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out);
}  // namespace portable

/// AVX2 kernels, defined in scan_kernel_avx2.cc (compiled with -mavx2;
/// referenced only when the build carries that TU and the CPU supports
/// AVX2). Row/batch kernels fall back to the portable bodies below
/// width 16, matching the historical dispatch cutover.
namespace avx2 {
float L2Row(const float* a, const float* b, size_t width);
float IpRow(const float* a, const float* b, size_t width);
void L2Batch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void IpBatch(const float* q, const float* rows, size_t count, size_t width,
             float* accum);
void L2Group(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
void IpGroup(const float* const* qs, size_t nq, const float* rows,
             size_t count, size_t width, float* const* accums);
uint32_t PruneMaskL2(const float* partial, size_t count, float tau);
uint32_t PruneMaskIp(const float* partial, const float* rem_p_sq,
                     size_t count, float rem_q_sq, float tau);
void AdcBatch(const float* lut, size_t ksub, const uint8_t* codes,
              size_t code_size, size_t count, float* out);
}  // namespace avx2

/// Maximum candidates covered by one prune-mask call.
inline constexpr size_t kPruneMaskWidth = 32;

/// Query-tile width of the group kernels: the AVX2 tile holds two partial
/// accumulators per query (16-wide chunking), so 4 queries consume 8 of the
/// 16 ymm registers and leave room for the shared row chunks and the
/// difference temporary. A 4-query x 4-row tile would need 32 accumulators
/// and spill; the group kernels instead walk rows one at a time and reuse
/// each row load across the query tile.
inline constexpr size_t kMaxQueryGroup = 4;

}  // namespace harmony

#endif  // HARMONY_INDEX_SCAN_KERNEL_H_
