#ifndef HARMONY_UTIL_RNG_H_
#define HARMONY_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace harmony {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Every experiment in the repo derives all randomness from explicit seeds
/// through this class so runs are reproducible across platforms (unlike
/// `std::mt19937` + `std::normal_distribution`, whose outputs are not
/// guaranteed to be identical across standard library implementations).
class Rng {
 public:
  /// Seeds the state via SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // SplitMix64 expansion; guarantees non-zero state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be faster; modulo is fine
    // for our generator quality and workloads.
    return NextU64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal variate (Box-Muller with caching).
  double NextGaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = NextBounded(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// \brief Zipf-distributed integer sampler over {0, ..., n-1}.
///
/// Used to generate skewed query workloads: rank r is drawn with probability
/// proportional to 1 / (r+1)^theta. theta = 0 is uniform; larger theta is
/// more skewed. Uses a precomputed CDF (n is small in our workloads), which
/// makes sampling O(log n) and exact.
class ZipfSampler {
 public:
  /// \param n number of items (> 0)
  /// \param theta skew exponent (>= 0)
  ZipfSampler(size_t n, double theta);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_RNG_H_
