#ifndef HARMONY_UTIL_TOPK_H_
#define HARMONY_UTIL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace harmony {

/// \brief One scored candidate in a nearest-neighbor result set.
struct Neighbor {
  int64_t id = -1;
  float distance = std::numeric_limits<float>::max();

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// \brief Bounded max-heap keeping the K smallest-distance candidates.
///
/// This is the pruning-threshold data structure of Algorithm 1 in the paper:
/// `threshold()` is the current K-th best distance τ; a candidate whose
/// (partial) distance already exceeds τ can never enter the top-K set and is
/// pruned.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) { heap_.reserve(k); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Current pruning threshold τ: the distance of the K-th best candidate,
  /// or +inf while the heap is not yet full (nothing can be pruned).
  float threshold() const {
    return full() ? heap_.front().distance
                  : std::numeric_limits<float>::max();
  }

  /// Offers a candidate; returns true if it was kept.
  bool Push(int64_t id, float distance) {
    if (heap_.size() < k_) {
      heap_.push_back({id, distance});
      std::push_heap(heap_.begin(), heap_.end(), Cmp);
      return true;
    }
    if (distance >= heap_.front().distance) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Cmp);
    heap_.back() = {id, distance};
    std::push_heap(heap_.begin(), heap_.end(), Cmp);
    return true;
  }

  /// Returns candidates sorted by ascending distance (ties by id for
  /// determinism). Does not modify the heap.
  std::vector<Neighbor> SortedResults() const {
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.id < b.id;
    });
    return out;
  }

  void Clear() { heap_.clear(); }

 private:
  static bool Cmp(const Neighbor& a, const Neighbor& b) {
    // Max-heap on distance; ids break ties so the kept set is deterministic.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }

  size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_TOPK_H_
