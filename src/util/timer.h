#ifndef HARMONY_UTIL_TIMER_H_
#define HARMONY_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace harmony {

/// \brief Monotonic wall-clock stopwatch used for real (non-simulated)
/// timing, e.g. in the threaded execution engine and index build benches.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_TIMER_H_
