#ifndef HARMONY_UTIL_STATUS_H_
#define HARMONY_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace harmony {

/// \brief Error categories used across the Harmony code base.
///
/// Mirrors the RocksDB/Arrow convention: a lightweight code plus a
/// human-readable message, no exceptions across API boundaries.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kNotSupported = 8,
  kResourceExhausted = 9,
  kTimeout = 10,
  kUnavailable = 11,
};

/// \brief Returns a stable, uppercase name for a status code ("OK",
/// "INVALID_ARGUMENT", ...). Never returns null.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// message otherwise. Functions that produce a value use `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Modeled after `arrow::Result`. Accessing the value of a failed result is
/// a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out, or returns `fallback` if this holds an error.
  T ValueOr(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace harmony

/// Propagates a non-OK status to the caller, RocksDB-style.
#define HARMONY_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::harmony::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Assigns the value of a `Result<T>` expression or propagates its error.
#define HARMONY_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto HARMONY_CONCAT_(_res, __LINE__) = (rexpr);        \
  if (!HARMONY_CONCAT_(_res, __LINE__).ok())             \
    return HARMONY_CONCAT_(_res, __LINE__).status();     \
  lhs = std::move(HARMONY_CONCAT_(_res, __LINE__)).value()

#define HARMONY_CONCAT_INNER_(a, b) a##b
#define HARMONY_CONCAT_(a, b) HARMONY_CONCAT_INNER_(a, b)

#endif  // HARMONY_UTIL_STATUS_H_
