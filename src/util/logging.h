#ifndef HARMONY_UTIL_LOGGING_H_
#define HARMONY_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace harmony {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level for emitted log lines. Defaults to
/// kInfo; benches lower it to kWarn to keep table output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line; flushes on destruction. Not for hot paths.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Logs and aborts; used by HARMONY_CHECK on invariant violation.
[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr, const std::string& msg);

}  // namespace internal
}  // namespace harmony

#define HARMONY_LOG(level)                                              \
  ::harmony::internal::LogMessage(::harmony::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// Invariant check that is active in all build types (database-style: an
/// index or plan invariant violation must never be silently ignored).
#define HARMONY_CHECK(expr)                                             \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::harmony::internal::FatalCheckFailure(__FILE__, __LINE__, #expr, \
                                             "");                       \
    }                                                                   \
  } while (false)

#define HARMONY_CHECK_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::harmony::internal::FatalCheckFailure(__FILE__, __LINE__, #expr, \
                                             (msg));                    \
    }                                                                   \
  } while (false)

#endif  // HARMONY_UTIL_LOGGING_H_
