#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace harmony {

namespace {
// True on pool worker threads. Lets the Submit assert distinguish the
// documented drain-time path — a running task submitting a continuation
// while the destructor waits, which WorkerLoop still executes — from a
// stray external Submit after destruction began (a lifetime bug).
thread_local bool t_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_ || t_pool_worker);
    tasks_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.size() == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t shards = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace harmony
