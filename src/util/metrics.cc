#include "util/metrics.h"

#include <sstream>

namespace harmony {

LatencyHistogram::LatencyHistogram() {
  // Log-spaced bucket upper bounds from 1us to ~100s.
  double b = 1.0;
  while (b < 1e8) {
    bounds_.push_back(b);
    b *= 1.5;
  }
  bounds_.push_back(1e300);
  counts_.assign(bounds_.size(), 0);
}

void LatencyHistogram::AddMicros(double us) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), us);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  ++counts_[std::min(idx, counts_.size() - 1)];
  ++total_;
}

double LatencyHistogram::PercentileMicros(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  int64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const int64_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i] > 1e200 ? lo * 1.5 + 1.0 : bounds_[i];
      if (counts_[i] == 0) return hi;
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
  }
  return bounds_.back();
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "count=" << total_ << " p50=" << PercentileMicros(50)
     << "us p95=" << PercentileMicros(95) << "us p99=" << PercentileMicros(99)
     << "us";
  return os.str();
}

}  // namespace harmony
