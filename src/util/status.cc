#include "util/status.h"

namespace harmony {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace harmony
