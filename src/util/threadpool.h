#ifndef HARMONY_UTIL_THREADPOOL_H_
#define HARMONY_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace harmony {

/// \brief Fixed-size worker pool used by the threaded execution engine
/// (ThreadedCluster node pools), parallel k-means training, and
/// ground-truth computation (the paper parallelizes per-node distance work
/// with OpenMP; this pool plays that role).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue before joining: every task Submitted before
  /// destruction — including tasks submitted *by running tasks* while the
  /// destructor waits — is executed, never discarded. Production code
  /// (baton-passing in ThreadedCluster) relies on this: a dropped
  /// continuation would strand a chain. Destruction must not race with
  /// concurrent Submit/Wait calls from other threads.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks start in FIFO order (with one thread they also
  /// complete in FIFO order). Tasks must not throw. Tasks may Submit
  /// further tasks, including onto this same pool; they must not call
  /// Wait() on it (a single-thread pool would deadlock).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. Tasks
  /// submitted while Wait blocks (by other threads or by running tasks)
  /// extend the wait. Must not be called from inside a pool task.
  void Wait();

  /// Runs `fn(i)` for i in [0, n), partitioned across the pool, and waits
  /// (same caveats as Wait). Falls back to inline execution when the pool
  /// has a single thread, so single-threaded runs add no synchronization.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Worker count, fixed at construction; always >= 1.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_THREADPOOL_H_
