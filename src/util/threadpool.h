#ifndef HARMONY_UTIL_THREADPOOL_H_
#define HARMONY_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace harmony {

/// \brief Fixed-size worker pool used by the threaded execution engine and
/// by intra-node parallel distance computation (the paper parallelizes
/// per-node distance work with OpenMP; this pool plays that role).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Runs `fn(i)` for i in [0, n), partitioned across the pool, and waits.
  /// Falls back to inline execution when the pool has a single thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_THREADPOOL_H_
