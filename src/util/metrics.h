#ifndef HARMONY_UTIL_METRICS_H_
#define HARMONY_UTIL_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace harmony {

/// \brief Streaming summary of a series of samples (count/mean/min/max/
/// stddev). Cheap enough for per-query latency accounting.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() { *this = RunningStat(); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// \brief Fixed-bucket latency histogram (log-scaled bounds in
/// microseconds). Used by examples to report latency percentiles.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void AddMicros(double us);

  /// Approximate percentile (0 < p < 100) in microseconds, computed by
  /// linear interpolation inside the matching bucket.
  double PercentileMicros(double p) const;

  int64_t count() const { return total_; }
  std::string ToString() const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_UTIL_METRICS_H_
