#ifndef HARMONY_WORKLOAD_GROUND_TRUTH_H_
#define HARMONY_WORKLOAD_GROUND_TRUTH_H_

#include <vector>

#include "index/distance.h"
#include "storage/dataset.h"
#include "util/status.h"
#include "util/topk.h"

namespace harmony {

/// \brief Exact top-K neighbors for every query (brute force). Row q of the
/// result holds the ground truth for query q, ascending by distance.
/// `num_threads > 1` splits the queries across a ThreadPool; each query's
/// scan is independent, so the result is identical for every thread count.
Result<std::vector<std::vector<Neighbor>>> ComputeGroundTruth(
    const DatasetView& base, const DatasetView& queries, size_t k,
    Metric metric, size_t num_threads = 1);

/// \brief recall@K of one result list against its ground truth: the fraction
/// of the true top-K ids present in the returned top-K.
double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& ground_truth, size_t k);

/// \brief Mean recall@K over a batch.
double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     size_t k);

}  // namespace harmony

#endif  // HARMONY_WORKLOAD_GROUND_TRUTH_H_
