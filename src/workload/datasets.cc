#include "workload/datasets.h"

#include <algorithm>
#include <cstdlib>

namespace harmony {

namespace {

std::vector<StandInSpec> BuildRegistry() {
  // name, type, paper_size, paper_dim, n, queries, components, nlist, seed
  return {
      {"starlightcurves", "time-series", 823600, 1024, 8000, 200, 64, 64, 101},
      {"msong", "audio", 992272, 420, 12000, 200, 64, 64, 102},
      {"sift1m", "image", 1000000, 128, 20000, 500, 64, 64, 103},
      {"deep1m", "image", 1000000, 256, 20000, 200, 64, 64, 104},
      {"word2vec", "word-vectors", 1000000, 300, 20000, 200, 64, 64, 105},
      {"handoutlines", "time-series", 1000000, 2709, 4000, 100, 32, 32, 106},
      {"glove1.2m", "text", 1193514, 200, 24000, 200, 64, 64, 107},
      {"glove2.2m", "text", 2196017, 300, 44000, 200, 64, 64, 108},
      {"spacev1b", "text", 1000000000, 100, 100000, 500, 128, 128, 109},
      {"sift1b", "image", 1000000000, 128, 100000, 500, 128, 128, 110},
  };
}

}  // namespace

const std::vector<StandInSpec>& AllStandIns() {
  static const std::vector<StandInSpec>& registry =
      *new std::vector<StandInSpec>(BuildRegistry());
  return registry;
}

std::vector<StandInSpec> SmallStandIns() {
  std::vector<StandInSpec> out;
  for (const StandInSpec& spec : AllStandIns()) {
    if (spec.paper_size < 1000000000ULL) out.push_back(spec);
  }
  return out;
}

Result<StandInSpec> GetStandIn(const std::string& name) {
  for (const StandInSpec& spec : AllStandIns()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no stand-in named '" + name + "'");
}

Result<BenchData> MakeStandIn(const StandInSpec& spec, double scale,
                              double zipf_theta) {
  if (scale <= 0.0) return Status::InvalidArgument("scale must be > 0");
  BenchData out;
  out.spec = spec;
  out.spec.num_vectors = std::max<size_t>(
      spec.num_components * 4,
      static_cast<size_t>(static_cast<double>(spec.num_vectors) * scale));
  out.spec.num_queries = std::max<size_t>(
      16, static_cast<size_t>(static_cast<double>(spec.num_queries) * scale));

  GaussianMixtureSpec mix;
  mix.num_vectors = out.spec.num_vectors;
  mix.dim = spec.paper_dim;
  mix.num_components = spec.num_components;
  // Real embedding datasets have heavily overlapping clusters; keeping the
  // component centers close (relative to within-component noise) makes IVF
  // recall curves and per-slice pruning ratios ramp gradually like the
  // paper's, instead of the step functions a perfectly-separated mixture
  // would produce.
  mix.center_scale = 1.4;
  mix.noise = 1.0;
  // Leading-dimension energy concentration, as in real embeddings; see
  // GaussianMixtureSpec::dim_energy_decay.
  mix.dim_energy_decay = 2.5;
  mix.seed = spec.seed;
  HARMONY_ASSIGN_OR_RETURN(out.mixture, GenerateGaussianMixture(mix));

  QueryWorkloadSpec qspec;
  qspec.num_queries = out.spec.num_queries;
  qspec.zipf_theta = zipf_theta;
  qspec.noise = 1.0;
  qspec.seed = spec.seed ^ 0x5151;
  HARMONY_ASSIGN_OR_RETURN(out.workload, GenerateQueries(out.mixture, qspec));
  return out;
}

double EnvScale(double fallback) {
  const char* env = std::getenv("HARMONY_SCALE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v <= 0.0) return fallback;
  return v;
}

}  // namespace harmony
