#ifndef HARMONY_WORKLOAD_DATASETS_H_
#define HARMONY_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/queries.h"
#include "workload/synthetic.h"

namespace harmony {

/// \brief A synthetic stand-in for one of the paper's evaluation datasets
/// (Table 2). Dimensions match the paper exactly; cardinalities are scaled
/// down so the whole suite runs on one machine (the scale is recorded so
/// reports can state it). See DESIGN.md, "Substitutions".
struct StandInSpec {
  std::string name;          // e.g. "sift1m"
  std::string data_type;     // paper's "Data Type" column
  size_t paper_size = 0;     // paper's base-set cardinality
  size_t paper_dim = 0;      // paper's dimensionality (kept verbatim)
  size_t num_vectors = 0;    // stand-in cardinality
  size_t num_queries = 0;    // stand-in query count
  size_t num_components = 0; // mixture components (cluster structure)
  size_t nlist_hint = 0;     // IVF nlist used by experiments
  uint64_t seed = 0;
};

/// All ten stand-ins of Table 2 in paper order.
const std::vector<StandInSpec>& AllStandIns();

/// The eight "small" datasets used for the 4-node experiments (the paper
/// excludes SpaceV1B / Sift1B from those).
std::vector<StandInSpec> SmallStandIns();

/// Looks up a stand-in by name ("sift1m", "msong", ...).
Result<StandInSpec> GetStandIn(const std::string& name);

/// \brief A fully-materialized benchmark input.
struct BenchData {
  StandInSpec spec;
  GaussianMixture mixture;  // base vectors + generating components
  QueryWorkload workload;   // queries (+ target components)
};

/// Materializes a stand-in. `scale` multiplies the stand-in cardinality and
/// query count (min 1); `zipf_theta` controls query skew (0 = uniform).
Result<BenchData> MakeStandIn(const StandInSpec& spec, double scale = 1.0,
                              double zipf_theta = 0.0);

/// \brief Reads a global scale override from the HARMONY_SCALE environment
/// variable (a positive double), defaulting to `fallback`. Lets users run
/// `HARMONY_SCALE=0.2 ./bench/...` for a quick pass or >1 for more fidelity.
double EnvScale(double fallback = 1.0);

}  // namespace harmony

#endif  // HARMONY_WORKLOAD_DATASETS_H_
