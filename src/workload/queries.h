#ifndef HARMONY_WORKLOAD_QUERIES_H_
#define HARMONY_WORKLOAD_QUERIES_H_

#include <cstdint>

#include "storage/dataset.h"
#include "util/status.h"
#include "workload/synthetic.h"

namespace harmony {

/// \brief Parameters of a query workload drawn from a mixture population.
///
/// `zipf_theta = 0` produces a uniform workload (every component equally
/// likely to be queried); larger theta concentrates queries on a few "hot"
/// components — exactly the skew that breaks vector-based partitioning in
/// the paper's Section 6.2.2 experiment.
struct QueryWorkloadSpec {
  size_t num_queries = 1000;
  double zipf_theta = 0.0;
  /// Query = component center + Gaussian noise of this stddev.
  double noise = 1.0;
  uint64_t seed = 7;
};

/// \brief A generated query set; `target_component[i]` records which mixture
/// component query i was aimed at (used to verify skew in tests).
struct QueryWorkload {
  Dataset queries;
  std::vector<int32_t> target_component;
};

/// Generates queries targeting mixture components under the given skew.
Result<QueryWorkload> GenerateQueries(const GaussianMixture& mixture,
                                      const QueryWorkloadSpec& spec);

/// \brief Generates one query per entry of `tenant_of`, where query i is
/// aimed at mixture component `tenant_of[i] % num_components` with Gaussian
/// noise of stddev `noise` around the center.
///
/// This is the serving-workload shape: each tenant has a stable "home"
/// region of the vector space, so a Zipf-skewed tenant arrival process (hot
/// tenants issue most queries) induces exactly the hot-component query skew
/// that GenerateQueries models with zipf_theta — but with the tenant
/// identity preserved per query for fairness accounting.
Result<QueryWorkload> GenerateQueriesForTenants(
    const GaussianMixture& mixture, const std::vector<int32_t>& tenant_of,
    double noise, uint64_t seed);

/// \brief Empirical skew measure of a workload: the standard deviation of
/// per-component query counts divided by the mean count (coefficient of
/// variation). 0 = perfectly balanced.
double WorkloadSkew(const std::vector<int32_t>& target_component,
                    size_t num_components);

}  // namespace harmony

#endif  // HARMONY_WORKLOAD_QUERIES_H_
