#include "workload/synthetic.h"

#include <cmath>

#include "util/rng.h"

namespace harmony {

Result<GaussianMixture> GenerateGaussianMixture(
    const GaussianMixtureSpec& spec) {
  if (spec.num_vectors == 0 || spec.dim == 0 || spec.num_components == 0) {
    return Status::InvalidArgument("mixture spec fields must be > 0");
  }
  Rng rng(spec.seed);
  GaussianMixture out;
  out.dim_scale.resize(spec.dim);
  for (size_t d = 0; d < spec.dim; ++d) {
    out.dim_scale[d] = static_cast<float>(
        std::exp(-0.5 * spec.dim_energy_decay * static_cast<double>(d) /
                 static_cast<double>(spec.dim)));
  }
  out.component_centers = Dataset(spec.num_components, spec.dim);
  for (size_t c = 0; c < spec.num_components; ++c) {
    float* row = out.component_centers.MutableRow(c);
    for (size_t d = 0; d < spec.dim; ++d) {
      row[d] = static_cast<float>((rng.NextDouble() * 2.0 - 1.0) *
                                  spec.center_scale) *
               out.dim_scale[d];
    }
  }
  out.vectors = Dataset(spec.num_vectors, spec.dim);
  out.component_of.resize(spec.num_vectors);
  for (size_t i = 0; i < spec.num_vectors; ++i) {
    const size_t c = rng.NextBounded(spec.num_components);
    out.component_of[i] = static_cast<int32_t>(c);
    const float* center = out.component_centers.Row(c);
    float* row = out.vectors.MutableRow(i);
    for (size_t d = 0; d < spec.dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.NextGaussian() *
                                              spec.noise) *
                               out.dim_scale[d];
    }
  }
  return out;
}

Dataset GenerateUniform(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset out(n, dim);
  for (size_t i = 0; i < n; ++i) {
    float* row = out.MutableRow(i);
    for (size_t d = 0; d < dim; ++d) row[d] = rng.NextFloat();
  }
  return out;
}

}  // namespace harmony
