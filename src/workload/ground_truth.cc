#include "workload/ground_truth.h"

#include <mutex>
#include <unordered_set>
#include <utility>

#include "index/flat_index.h"
#include "util/threadpool.h"

namespace harmony {

Result<std::vector<std::vector<Neighbor>>> ComputeGroundTruth(
    const DatasetView& base, const DatasetView& queries, size_t k,
    Metric metric, size_t num_threads) {
  FlatIndex flat(metric);
  HARMONY_RETURN_NOT_OK(flat.Add(base));
  if (num_threads <= 1 || queries.size() <= 1) {
    return flat.SearchBatch(queries, k);
  }
  std::vector<std::vector<Neighbor>> out(queries.size());
  std::mutex err_mu;
  Status first_error = Status::OK();
  ThreadPool pool(num_threads);
  pool.ParallelFor(queries.size(), [&](size_t q) {
    Result<std::vector<Neighbor>> r = flat.Search(queries.Row(q), k);
    if (!r.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = r.status();
      return;
    }
    out[q] = std::move(r.value());
  });
  if (!first_error.ok()) return first_error;
  return out;
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& ground_truth, size_t k) {
  if (k == 0 || ground_truth.empty()) return 0.0;
  const size_t gt_k = std::min(k, ground_truth.size());
  std::unordered_set<int64_t> truth;
  truth.reserve(gt_k);
  for (size_t i = 0; i < gt_k; ++i) truth.insert(ground_truth[i].id);
  size_t hits = 0;
  const size_t res_k = std::min(k, result.size());
  for (size_t i = 0; i < res_k; ++i) {
    if (truth.count(result[i].id) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(gt_k);
}

double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     size_t k) {
  if (results.empty() || results.size() != ground_truth.size()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    total += RecallAtK(results[q], ground_truth[q], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace harmony
