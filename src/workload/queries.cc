#include "workload/queries.h"

#include <cmath>

#include "util/rng.h"

namespace harmony {

Result<QueryWorkload> GenerateQueries(const GaussianMixture& mixture,
                                      const QueryWorkloadSpec& spec) {
  if (mixture.component_centers.empty()) {
    return Status::InvalidArgument("mixture has no components");
  }
  if (spec.num_queries == 0) {
    return Status::InvalidArgument("num_queries must be > 0");
  }
  const size_t dim = mixture.component_centers.dim();
  const size_t num_components = mixture.component_centers.size();
  Rng rng(spec.seed);
  ZipfSampler zipf(num_components, spec.zipf_theta);

  QueryWorkload out;
  out.queries = Dataset(spec.num_queries, dim);
  out.target_component.resize(spec.num_queries);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    const size_t c = zipf.Sample(&rng);
    out.target_component[q] = static_cast<int32_t>(c);
    const float* center = mixture.component_centers.Row(c);
    float* row = out.queries.MutableRow(q);
    for (size_t d = 0; d < dim; ++d) {
      const float scale =
          d < mixture.dim_scale.size() ? mixture.dim_scale[d] : 1.0f;
      row[d] = center[d] +
               static_cast<float>(rng.NextGaussian() * spec.noise) * scale;
    }
  }
  return out;
}

Result<QueryWorkload> GenerateQueriesForTenants(
    const GaussianMixture& mixture, const std::vector<int32_t>& tenant_of,
    double noise, uint64_t seed) {
  if (mixture.component_centers.empty()) {
    return Status::InvalidArgument("mixture has no components");
  }
  if (tenant_of.empty()) {
    return Status::InvalidArgument("tenant_of must be non-empty");
  }
  const size_t dim = mixture.component_centers.dim();
  const size_t num_components = mixture.component_centers.size();
  Rng rng(seed);

  QueryWorkload out;
  out.queries = Dataset(tenant_of.size(), dim);
  out.target_component.resize(tenant_of.size());
  for (size_t q = 0; q < tenant_of.size(); ++q) {
    if (tenant_of[q] < 0) {
      return Status::InvalidArgument("tenant ids must be >= 0");
    }
    const size_t c = static_cast<size_t>(tenant_of[q]) % num_components;
    out.target_component[q] = static_cast<int32_t>(c);
    const float* center = mixture.component_centers.Row(c);
    float* row = out.queries.MutableRow(q);
    for (size_t d = 0; d < dim; ++d) {
      const float scale =
          d < mixture.dim_scale.size() ? mixture.dim_scale[d] : 1.0f;
      row[d] = center[d] +
               static_cast<float>(rng.NextGaussian() * noise) * scale;
    }
  }
  return out;
}

double WorkloadSkew(const std::vector<int32_t>& target_component,
                    size_t num_components) {
  if (num_components == 0 || target_component.empty()) return 0.0;
  std::vector<int64_t> counts(num_components, 0);
  for (const int32_t c : target_component) {
    if (c >= 0 && static_cast<size_t>(c) < num_components) ++counts[c];
  }
  const double mean = static_cast<double>(target_component.size()) /
                      static_cast<double>(num_components);
  double var = 0.0;
  for (const int64_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(num_components);
  return mean > 0.0 ? std::sqrt(var) / mean : 0.0;
}

}  // namespace harmony
