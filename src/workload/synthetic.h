#ifndef HARMONY_WORKLOAD_SYNTHETIC_H_
#define HARMONY_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "storage/dataset.h"
#include "util/status.h"

namespace harmony {

/// \brief Parameters of a Gaussian-mixture vector population.
///
/// Real embedding datasets (SIFT, GloVe, Deep) are strongly clustered; a
/// Gaussian mixture with well-separated components reproduces the property
/// Harmony's evaluation depends on: IVF lists with coherent geometry, so
/// dimension-level partial distances separate candidates early.
struct GaussianMixtureSpec {
  size_t num_vectors = 10000;
  size_t dim = 64;
  size_t num_components = 16;
  /// Component centers are drawn uniformly from [-center_scale, center_scale].
  double center_scale = 10.0;
  /// Within-component standard deviation.
  double noise = 1.0;
  /// Per-dimension energy decay: the variance of dimension j (of both the
  /// component centers and the within-component noise) is scaled by
  /// exp(-dim_energy_decay * j / dim). 0 = isotropic. Real embedding sets
  /// (SIFT, GloVe, deep descriptors) concentrate energy in their leading
  /// components; this is what makes early dimension slices carry most of
  /// the distance and early-stop pruning effective (Section 3.1).
  double dim_energy_decay = 0.0;
  uint64_t seed = 1;
};

/// \brief A generated mixture: the vectors plus the generating components,
/// which workload generators reuse to craft cluster-targeted (skewed)
/// query sets.
struct GaussianMixture {
  Dataset vectors;
  Dataset component_centers;          // num_components x dim
  std::vector<int32_t> component_of;  // per vector
  std::vector<float> dim_scale;       // per-dimension std-dev scale factor
};

/// Generates a Gaussian mixture population. Component sizes are balanced
/// (uniform component choice per vector).
Result<GaussianMixture> GenerateGaussianMixture(const GaussianMixtureSpec& spec);

/// Generates `n` x `dim` i.i.d. uniform vectors in [0, 1) (an unclustered
/// worst case for IVF; used in edge-case tests).
Dataset GenerateUniform(size_t n, size_t dim, uint64_t seed);

}  // namespace harmony

#endif  // HARMONY_WORKLOAD_SYNTHETIC_H_
