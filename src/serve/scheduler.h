#ifndef HARMONY_SERVE_SCHEDULER_H_
#define HARMONY_SERVE_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/scan_kernel.h"
#include "serve/arrival.h"

namespace harmony {

/// Why a serving group stopped accepting members.
enum class CloseReason : uint8_t {
  kFull,    ///< Reached ServePolicy::max_group members.
  kSlack,   ///< Oldest member's deadline slack ran out — waiting longer
            ///< would make even the estimate miss the SLO.
  kLinger,  ///< ServePolicy::max_linger_seconds elapsed since the group
            ///< opened (bounds batching delay under light load).
  kDrain,   ///< End of trace: the scheduler flushed remaining members.
};

/// Why an arrival was shed instead of admitted.
enum class ShedReason : uint8_t {
  kNone,          ///< Admitted.
  kDeadline,      ///< Even an immediate dispatch could not meet the SLO
                  ///< (ServePolicy::on_late == kShed).
  kBackpressure,  ///< The tenant's bounded mailbox was full at arrival.
};

/// What to do with an arrival whose deadline cannot be met at full quality.
enum class LatePolicy : uint8_t {
  kShed,     ///< Reject it outright (fail fast, protect the rest).
  kDegrade,  ///< Admit it into a degraded-quality lane (reduced nprobe)
             ///< whose cheaper service estimate may still meet the SLO.
};

/// \brief Admission-control policy. Every field feeds the *deterministic*
/// schedule builder: service times are fixed estimates, never measurements,
/// so the full decision sequence is a pure function of (trace, policy).
struct ServePolicy {
  /// Queries per dispatch group; capped by the scan-kernel query tile.
  size_t max_group = kMaxQueryGroup;
  /// Longest a group may stay open waiting for co-batched queries.
  double max_linger_seconds = 0.002;
  /// Estimated per-query service time (virtual cost model for admission).
  double est_query_seconds = 0.004;
  /// Estimated fixed per-group dispatch overhead.
  double est_dispatch_seconds = 0.0005;
  /// Executor lanes groups are assigned to (earliest-free-lane).
  size_t executors = 1;
  /// Closed-but-not-yet-(estimated)-finished groups the scheduler tolerates
  /// before it stops draining mailboxes (admission stall => backpressure).
  size_t max_pending_groups = 8;
  /// Per-tenant SPSC mailbox capacity (rounded up to a power of two); a
  /// full mailbox sheds the arrival with ShedReason::kBackpressure.
  size_t mailbox_capacity = 64;
  /// Estimated service-time multiplier for degraded-lane queries (the
  /// reduced-nprobe scan does proportionally less work).
  double degrade_cost_factor = 0.5;
  LatePolicy on_late = LatePolicy::kDegrade;
};

/// One admitted query inside a ServingGroup.
struct ScheduledQuery {
  int32_t query_row = 0;
  uint16_t tenant = 0;
  uint16_t tenant_seq = 0;
  /// Index of this query's arrival in ArrivalTrace::arrivals.
  int32_t arrival_index = 0;
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
};

/// \brief One dispatch group: up to max_group queries executed as a single
/// engine batch (sharing scans via the group kernels).
struct ServingGroup {
  std::vector<ScheduledQuery> members;
  double open_seconds = 0.0;
  double close_seconds = 0.0;
  CloseReason close_reason = CloseReason::kFull;
  /// True for degrade-lane groups: executed at reduced nprobe so that
  /// deadline-pressed queries do not drag co-members' recall down (they are
  /// batched with other degraded queries instead).
  bool degraded = false;
  /// Executor lane the group was assigned to at close time.
  size_t lane = 0;
  /// Virtual-estimate execution window on that lane.
  double est_start_seconds = 0.0;
  double est_finish_seconds = 0.0;
};

/// \brief The complete, precomputed decision sequence for one trace: group
/// composition, admission order, shed set, and backpressure telemetry.
///
/// Both engines replay this schedule verbatim — only the *measured*
/// latencies differ between the virtual and real clock. That is the
/// determinism contract the serving tests pin: same (trace, policy) =>
/// byte-identical Fingerprint(), on any backend, any run.
struct ServingSchedule {
  std::vector<ServingGroup> groups;
  /// Per arrival index: group the query was admitted to, -1 if shed.
  std::vector<int32_t> group_of;
  /// Per arrival index: why it was shed (kNone if admitted).
  std::vector<ShedReason> shed_reason;
  /// Arrival indices in the order the scheduler admitted them.
  std::vector<int32_t> admission_order;
  /// Per arrival index: true if admitted into a degraded lane.
  std::vector<uint8_t> degraded;
  size_t shed_deadline = 0;
  size_t shed_backpressure = 0;
  size_t degraded_admits = 0;
  /// Deepest any tenant mailbox got during the run (backpressure telemetry).
  size_t max_mailbox_depth = 0;

  size_t admitted() const { return admission_order.size(); }

  /// FNV-1a over every scheduling decision (group membership, close
  /// reasons, lanes, shed set, admission order). Two schedules with equal
  /// fingerprints made byte-identical decisions.
  uint64_t Fingerprint() const;

  std::string ToString() const;
};

/// Builds the schedule: a single-pass virtual-time simulation of mailboxes,
/// group formation, and admission control. Pure function of its arguments.
ServingSchedule BuildServingSchedule(const ArrivalTrace& trace,
                                     const ServePolicy& policy);

}  // namespace harmony

#endif  // HARMONY_SERVE_SCHEDULER_H_
