#ifndef HARMONY_SERVE_ARRIVAL_H_
#define HARMONY_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "util/status.h"
#include "workload/synthetic.h"

namespace harmony {

/// \brief Parameters of a continuous multi-tenant arrival process.
///
/// Arrivals are an (optionally burst-modulated) Poisson process at mean rate
/// `offered_qps`; each arrival belongs to a tenant drawn Zipf(`zipf_theta`)
/// so a few hot tenants dominate the stream, and each tenant's queries
/// target its home mixture component (see GenerateQueriesForTenants). Every
/// field of the trace is a pure function of this spec — the same spec
/// replays the identical trace on any engine.
struct ArrivalSpec {
  size_t num_queries = 256;
  size_t num_tenants = 4;
  /// Mean offered rate (queries/second) across all tenants.
  double offered_qps = 2000.0;
  /// Tenant popularity skew; 0 = uniform.
  double zipf_theta = 0.8;
  /// 0 = pure Poisson. > 0 compresses intra-burst gaps by (1 + factor) and
  /// stretches inter-burst gaps to preserve the mean rate — an open-loop
  /// approximation of production burstiness.
  double burst_factor = 0.0;
  /// Mean arrivals per burst episode (only used when burst_factor > 0).
  double mean_burst = 8.0;
  /// Per-query latency SLO: deadline = arrival + slo_seconds.
  double slo_seconds = 0.05;
  /// Gaussian query noise around each tenant's home component center.
  double noise = 1.0;
  uint64_t seed = 42;
};

/// \brief One query arrival on the serving timeline.
struct QueryArrival {
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
  uint16_t tenant = 0;
  /// Per-tenant FIFO sequence number (0, 1, 2, ... within the tenant); the
  /// scheduler must admit a tenant's queries in this order.
  uint16_t tenant_seq = 0;
  /// Row of this arrival's vector in ArrivalTrace::queries.
  int32_t query_row = 0;
};

/// \brief A fully-materialized serving trace: query vectors plus timestamped
/// tenant-tagged arrivals sorted by arrival time.
struct ArrivalTrace {
  Dataset queries;
  std::vector<QueryArrival> arrivals;
  /// Mixture component each query targets (recall/skew verification).
  std::vector<int32_t> target_component;
  size_t num_tenants = 0;
  ArrivalSpec spec;

  /// Time of the last arrival (0 when empty).
  double SpanSeconds() const {
    return arrivals.empty() ? 0.0 : arrivals.back().arrival_seconds;
  }
};

/// Generates a deterministic arrival trace over the mixture population.
Result<ArrivalTrace> GenerateArrivalTrace(const GaussianMixture& mixture,
                                          const ArrivalSpec& spec);

}  // namespace harmony

#endif  // HARMONY_SERVE_ARRIVAL_H_
