#ifndef HARMONY_SERVE_ARRIVAL_H_
#define HARMONY_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "storage/dataset.h"
#include "util/status.h"
#include "workload/synthetic.h"

namespace harmony {

/// \brief Parameters of a continuous multi-tenant arrival process.
///
/// Arrivals are an (optionally burst-modulated) Poisson process at mean rate
/// `offered_qps`; each arrival belongs to a tenant drawn Zipf(`zipf_theta`)
/// so a few hot tenants dominate the stream, and each tenant's queries
/// target its home mixture component (see GenerateQueriesForTenants). Every
/// field of the trace is a pure function of this spec — the same spec
/// replays the identical trace on any engine.
struct ArrivalSpec {
  size_t num_queries = 256;
  size_t num_tenants = 4;
  /// Mean offered rate (queries/second) across all tenants.
  double offered_qps = 2000.0;
  /// Tenant popularity skew; 0 = uniform.
  double zipf_theta = 0.8;
  /// 0 = pure Poisson. > 0 compresses intra-burst gaps by (1 + factor) and
  /// stretches inter-burst gaps to preserve the mean rate — an open-loop
  /// approximation of production burstiness.
  double burst_factor = 0.0;
  /// Mean arrivals per burst episode (only used when burst_factor > 0).
  double mean_burst = 8.0;
  /// Per-query latency SLO: deadline = arrival + slo_seconds.
  double slo_seconds = 0.05;
  /// Gaussian query noise around each tenant's home component center.
  double noise = 1.0;
  uint64_t seed = 42;
  /// Mean update arrivals per second (inserts + deletes) riding the same
  /// serving timeline as a second op class; 0 disables the update stream
  /// entirely — the trace (and its schedule fingerprint) is then bit-
  /// identical to a pre-update-stream trace, because the stream draws from
  /// its own derived RNG.
  double update_rate = 0.0;
  /// Fraction of update arrivals that are deletes (the rest are inserts);
  /// only read when update_rate > 0.
  double delete_frac = 0.0;
};

/// \brief One query arrival on the serving timeline.
struct QueryArrival {
  double arrival_seconds = 0.0;
  double deadline_seconds = 0.0;
  uint16_t tenant = 0;
  /// Per-tenant FIFO sequence number (0, 1, 2, ... within the tenant); the
  /// scheduler must admit a tenant's queries in this order.
  uint16_t tenant_seq = 0;
  /// Row of this arrival's vector in ArrivalTrace::queries.
  int32_t query_row = 0;
};

/// \brief One update arrival (insert or delete) on the serving timeline —
/// the second op class a mutable deployment interleaves with queries.
struct UpdateArrival {
  double at_seconds = 0.0;
  bool is_delete = false;
  /// Inserts: row of the new vector in ArrivalTrace::update_vectors.
  /// Deletes: -1.
  int32_t vec_row = -1;
  /// Deletes: raw entropy for picking the victim. The trace cannot know the
  /// engine's live id space, so the frontend resolves the target as
  /// `target_draw % engine->IdSpan()` at apply time — deterministic given
  /// the same engine state sequence.
  uint64_t target_draw = 0;
};

/// \brief A fully-materialized serving trace: query vectors plus timestamped
/// tenant-tagged arrivals sorted by arrival time.
struct ArrivalTrace {
  Dataset queries;
  std::vector<QueryArrival> arrivals;
  /// Mixture component each query targets (recall/skew verification).
  std::vector<int32_t> target_component;
  /// Update stream in timestamp order; empty when spec.update_rate == 0.
  std::vector<UpdateArrival> updates;
  /// Insert payload vectors, row-indexed by UpdateArrival::vec_row.
  Dataset update_vectors;
  size_t num_tenants = 0;
  ArrivalSpec spec;

  /// Time of the last arrival (0 when empty).
  double SpanSeconds() const {
    return arrivals.empty() ? 0.0 : arrivals.back().arrival_seconds;
  }
};

/// Generates a deterministic arrival trace over the mixture population.
Result<ArrivalTrace> GenerateArrivalTrace(const GaussianMixture& mixture,
                                          const ArrivalSpec& spec);

}  // namespace harmony

#endif  // HARMONY_SERVE_ARRIVAL_H_
