#ifndef HARMONY_SERVE_SERVING_STATS_H_
#define HARMONY_SERVE_SERVING_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace harmony {

/// Final disposition of one serving arrival.
enum class QueryOutcome : uint8_t {
  kCompleted,        ///< Executed and finished within its deadline.
  kTimedOut,         ///< Executed, but completion passed the deadline —
                     ///< delivered late rather than dropped (tagged so SLO
                     ///< accounting separates late from lost).
  kShedDeadline,     ///< Never executed: admission judged the SLO unmeetable.
  kShedBackpressure, ///< Never executed: bounded mailbox was full.
};

/// \brief Fixed-layout logarithmic latency histogram: 10 buckets per decade
/// from 1 microsecond to 100 seconds (80 buckets + underflow + overflow).
///
/// Bucket counts — not just quantiles — are part of the deterministic-replay
/// surface: on the virtual-clock backend the same (trace, policy) yields
/// byte-identical bucket vectors, which the serving tests compare directly.
class ServingHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;
  static constexpr size_t kBucketsPerDecade = 10;
  static constexpr size_t kDecades = 8;  // 1us .. 100s
  static constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 2;

  ServingHistogram() : buckets_(kNumBuckets, 0) {}

  void Add(double seconds);

  /// Latency quantile estimate: lower edge of the bucket containing the
  /// q-th sample (exact for samples within one bucket; at worst one bucket
  /// width ~ 26% off, the standard log-histogram trade).
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Lower latency edge of bucket `b` (0 for the underflow bucket).
  static double BucketLowerSeconds(size_t b);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
};

/// Per-tenant serving outcome tallies (fairness accounting).
struct TenantServingStats {
  size_t offered = 0;
  size_t completed = 0;
  size_t timed_out = 0;
  size_t shed = 0;
  double mean_latency_seconds = 0.0;
};

/// One record per arrival, produced by the replay loop.
struct QueryRecord {
  uint16_t tenant = 0;
  QueryOutcome outcome = QueryOutcome::kCompleted;
  bool degraded = false;
  /// Arrival-to-completion latency; < 0 for shed queries (never executed).
  double latency_seconds = -1.0;
};

/// \brief Aggregate serving metrics: SLO attainment, tail latency,
/// throughput, and cross-tenant fairness.
struct ServingStats {
  size_t offered = 0;
  size_t completed = 0;
  size_t timed_out = 0;
  size_t shed_deadline = 0;
  size_t shed_backpressure = 0;
  size_t degraded = 0;

  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;

  /// Span of the run (first arrival to last completion) and the goodput
  /// over it (completed-in-SLO queries per second).
  double duration_seconds = 0.0;
  double goodput_qps = 0.0;
  /// Fraction of offered queries that completed within the SLO.
  double slo_attainment = 0.0;
  /// Fraction shed (either reason) and fraction delivered late.
  double shed_rate = 0.0;
  double timeout_rate = 0.0;

  /// Jain fairness index over per-tenant completion ratios
  /// (completed / offered): 1 = perfectly fair, 1/n = one tenant served.
  double jain_fairness = 1.0;

  std::vector<TenantServingStats> tenants;
  ServingHistogram histogram;

  std::string ToString() const;
};

/// Aggregates per-arrival records into ServingStats. `duration_seconds`
/// should span first arrival to last completion; percentiles are computed
/// from the exact completed+timed-out latencies (not histogram buckets).
ServingStats ComputeServingStats(const std::vector<QueryRecord>& records,
                                 size_t num_tenants, double duration_seconds);

}  // namespace harmony

#endif  // HARMONY_SERVE_SERVING_STATS_H_
