#include "serve/serving_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace harmony {

void ServingHistogram::Add(double seconds) {
  ++count_;
  if (seconds < kMinSeconds) {
    ++buckets_.front();
    return;
  }
  const double decades = std::log10(seconds / kMinSeconds);
  const size_t b =
      1 + static_cast<size_t>(decades * static_cast<double>(kBucketsPerDecade));
  if (b >= kNumBuckets - 1) {
    ++buckets_.back();
    return;
  }
  ++buckets_[b];
}

double ServingHistogram::BucketLowerSeconds(size_t b) {
  if (b == 0) return 0.0;
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(b - 1) /
                            static_cast<double>(kBucketsPerDecade));
}

double ServingHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > rank) return BucketLowerSeconds(b);
  }
  return BucketLowerSeconds(buckets_.size() - 1);
}

ServingStats ComputeServingStats(const std::vector<QueryRecord>& records,
                                 size_t num_tenants,
                                 double duration_seconds) {
  ServingStats stats;
  stats.offered = records.size();
  stats.duration_seconds = duration_seconds;
  stats.tenants.resize(num_tenants);

  std::vector<double> latencies;
  latencies.reserve(records.size());
  std::vector<double> tenant_latency_sum(num_tenants, 0.0);
  std::vector<size_t> tenant_latency_count(num_tenants, 0);

  for (const QueryRecord& r : records) {
    TenantServingStats* tenant =
        r.tenant < num_tenants ? &stats.tenants[r.tenant] : nullptr;
    if (tenant != nullptr) ++tenant->offered;
    if (r.degraded) ++stats.degraded;
    switch (r.outcome) {
      case QueryOutcome::kCompleted:
        ++stats.completed;
        if (tenant != nullptr) ++tenant->completed;
        break;
      case QueryOutcome::kTimedOut:
        ++stats.timed_out;
        if (tenant != nullptr) ++tenant->timed_out;
        break;
      case QueryOutcome::kShedDeadline:
        ++stats.shed_deadline;
        if (tenant != nullptr) ++tenant->shed;
        break;
      case QueryOutcome::kShedBackpressure:
        ++stats.shed_backpressure;
        if (tenant != nullptr) ++tenant->shed;
        break;
    }
    if (r.latency_seconds >= 0.0) {
      latencies.push_back(r.latency_seconds);
      stats.histogram.Add(r.latency_seconds);
      if (r.tenant < num_tenants) {
        tenant_latency_sum[r.tenant] += r.latency_seconds;
        ++tenant_latency_count[r.tenant];
      }
    }
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      const size_t idx =
          static_cast<size_t>(p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    stats.latency_p50_seconds = pct(0.50);
    stats.latency_p95_seconds = pct(0.95);
    stats.latency_p99_seconds = pct(0.99);
    stats.latency_max_seconds = latencies.back();
  }

  for (size_t tnt = 0; tnt < num_tenants; ++tnt) {
    if (tenant_latency_count[tnt] > 0) {
      stats.tenants[tnt].mean_latency_seconds =
          tenant_latency_sum[tnt] /
          static_cast<double>(tenant_latency_count[tnt]);
    }
  }

  if (stats.offered > 0) {
    stats.slo_attainment = static_cast<double>(stats.completed) /
                           static_cast<double>(stats.offered);
    stats.shed_rate =
        static_cast<double>(stats.shed_deadline + stats.shed_backpressure) /
        static_cast<double>(stats.offered);
    stats.timeout_rate = static_cast<double>(stats.timed_out) /
                         static_cast<double>(stats.offered);
  }
  if (duration_seconds > 0.0) {
    stats.goodput_qps =
        static_cast<double>(stats.completed) / duration_seconds;
  }

  // Jain fairness over per-tenant completion ratios; tenants with no
  // offered queries are excluded (they have no claim to serve).
  double sum = 0.0, sum_sq = 0.0;
  size_t active = 0;
  for (size_t tnt = 0; tnt < num_tenants; ++tnt) {
    const TenantServingStats& t = stats.tenants[tnt];
    if (t.offered == 0) continue;
    const double ratio = static_cast<double>(t.completed + t.timed_out) /
                         static_cast<double>(t.offered);
    sum += ratio;
    sum_sq += ratio * ratio;
    ++active;
  }
  if (active > 0 && sum_sq > 0.0) {
    stats.jain_fairness =
        (sum * sum) / (static_cast<double>(active) * sum_sq);
  }
  return stats;
}

std::string ServingStats::ToString() const {
  std::ostringstream os;
  os << "offered=" << offered << " completed=" << completed
     << " timed_out=" << timed_out << " shed_deadline=" << shed_deadline
     << " shed_backpressure=" << shed_backpressure
     << " degraded=" << degraded << " slo=" << slo_attainment
     << " p50=" << latency_p50_seconds << "s p95=" << latency_p95_seconds
     << "s p99=" << latency_p99_seconds << "s goodput=" << goodput_qps
     << "qps jain=" << jain_fairness;
  return os.str();
}

}  // namespace harmony
