#include "serve/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "workload/queries.h"

namespace harmony {

namespace {

/// Exponential variate with the given mean (inverse-CDF on one uniform draw,
/// so the arrival stream consumes a fixed number of RNG words per query).
double NextExp(Rng* rng, double mean) {
  double u = 0.0;
  do {
    u = rng->NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

}  // namespace

Result<ArrivalTrace> GenerateArrivalTrace(const GaussianMixture& mixture,
                                          const ArrivalSpec& spec) {
  if (spec.num_queries == 0) {
    return Status::InvalidArgument("num_queries must be > 0");
  }
  if (spec.num_tenants == 0 || spec.num_tenants > 65536) {
    return Status::InvalidArgument("num_tenants must be in [1, 65536]");
  }
  if (spec.offered_qps <= 0.0) {
    return Status::InvalidArgument("offered_qps must be > 0");
  }
  if (spec.slo_seconds <= 0.0) {
    return Status::InvalidArgument("slo_seconds must be > 0");
  }

  Rng rng(spec.seed);
  ZipfSampler tenant_sampler(spec.num_tenants, spec.zipf_theta);

  const double mean_gap = 1.0 / spec.offered_qps;
  const bool bursty = spec.burst_factor > 0.0 && spec.mean_burst > 1.0;
  // Intra-burst gaps are compressed by (1 + burst_factor); the inter-burst
  // gap absorbs the slack so a full episode (one inter-burst gap plus
  // mean_burst - 1 intra gaps) still averages mean_burst * mean_gap and the
  // offered rate stays spec.offered_qps.
  const double intra_gap =
      bursty ? mean_gap / (1.0 + spec.burst_factor) : mean_gap;
  const double inter_gap =
      bursty ? std::max(intra_gap, spec.mean_burst * mean_gap -
                                       (spec.mean_burst - 1.0) * intra_gap)
             : mean_gap;

  ArrivalTrace trace;
  trace.spec = spec;
  trace.num_tenants = spec.num_tenants;
  trace.arrivals.resize(spec.num_queries);
  std::vector<int32_t> tenant_of(spec.num_queries, 0);
  std::vector<uint16_t> tenant_seq(spec.num_tenants, 0);

  double t = 0.0;
  size_t remaining_in_burst = 0;
  for (size_t i = 0; i < spec.num_queries; ++i) {
    if (bursty) {
      if (remaining_in_burst == 0) {
        // Geometric episode length with mean spec.mean_burst.
        const double p = 1.0 / spec.mean_burst;
        remaining_in_burst = 1;
        while (rng.NextDouble() >= p && remaining_in_burst < 4096) {
          ++remaining_in_burst;
        }
        t += NextExp(&rng, inter_gap);
      } else {
        t += NextExp(&rng, intra_gap);
      }
      --remaining_in_burst;
    } else {
      t += NextExp(&rng, mean_gap);
    }
    const uint16_t tenant =
        static_cast<uint16_t>(tenant_sampler.Sample(&rng));
    QueryArrival& a = trace.arrivals[i];
    a.arrival_seconds = t;
    a.deadline_seconds = t + spec.slo_seconds;
    a.tenant = tenant;
    a.tenant_seq = tenant_seq[tenant]++;
    a.query_row = static_cast<int32_t>(i);
    tenant_of[i] = static_cast<int32_t>(tenant);
  }

  // Query vectors are generated from a seed derived from (but distinct from)
  // the arrival seed so timeline and content are independent streams.
  HARMONY_ASSIGN_OR_RETURN(
      QueryWorkload workload,
      GenerateQueriesForTenants(mixture, tenant_of, spec.noise,
                                spec.seed * 0x9E3779B97F4A7C15ULL + 1));
  trace.queries = std::move(workload.queries);
  trace.target_component = std::move(workload.target_component);

  // Update stream: a second Poisson process over the same timeline, drawn
  // from its own derived RNG *after* every query-stream draw, so a trace
  // with update_rate == 0 is bit-identical to one generated before the
  // update stream existed (schedule fingerprints included).
  if (spec.update_rate > 0.0) {
    if (spec.delete_frac < 0.0 || spec.delete_frac > 1.0) {
      return Status::InvalidArgument("delete_frac must lie in [0, 1]");
    }
    constexpr size_t kMaxUpdates = 1 << 20;
    Rng urng(spec.seed * 0x9E3779B97F4A7C15ULL + 2);
    const double span = trace.SpanSeconds();
    const double update_gap = 1.0 / spec.update_rate;
    std::vector<int32_t> insert_tenants;
    double ut = 0.0;
    while (trace.updates.size() < kMaxUpdates) {
      ut += NextExp(&urng, update_gap);
      if (ut > span) break;
      UpdateArrival u;
      u.at_seconds = ut;
      u.is_delete = urng.NextDouble() < spec.delete_frac;
      if (u.is_delete) {
        u.target_draw = urng.NextU64();
      } else {
        u.vec_row = static_cast<int32_t>(insert_tenants.size());
        insert_tenants.push_back(
            static_cast<int32_t>(tenant_sampler.Sample(&urng)));
      }
      trace.updates.push_back(u);
    }
    if (!insert_tenants.empty()) {
      HARMONY_ASSIGN_OR_RETURN(
          QueryWorkload inserts,
          GenerateQueriesForTenants(mixture, insert_tenants, spec.noise,
                                    spec.seed * 0x9E3779B97F4A7C15ULL + 3));
      trace.update_vectors = std::move(inserts.queries);
    }
  }
  return trace;
}

}  // namespace harmony
